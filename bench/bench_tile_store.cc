// Experiment S1 (Sec. DESIGN.md 14): the tiled historical store.
//
// Series reported:
//   * PutFrame throughput (points/s) while recording full frames into
//     tiled + pyramided pages;
//   * full-resolution region replay rate vs coarse-zoom overview
//     replay of the SAME region — the overview read must be >= 5x
//     faster because it touches an O(1/reduce^2) fraction of the
//     samples (tile pruning is reported via tiles_read);
//   * watermark-bounded catch-up replay across many stored frames.

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "geo/region.h"
#include "store/tile_store.h"

namespace geostreams {
namespace {

using bench_util::BenchLattice;
using bench_util::CheckOk;
using bench_util::ReportPoints;
using bench_util::ValueOrDie;

std::string BenchDir(const std::string& tag) {
  std::string dir =
      std::filesystem::temp_directory_path().string() + "/gsbench-store-" +
      tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// One fully filled frame over the lattice.
void PutBenchFrame(TileStore* store, const GridLattice& lattice,
                   int64_t frame_id) {
  Raster raster(lattice.width(), lattice.height(), 1);
  raster.set_lattice(lattice);
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int64_t col = 0; col < lattice.width(); ++col) {
      raster.Set(col, row, 0.25 + 0.001 * static_cast<double>(col + row));
    }
  }
  const std::vector<uint8_t> filled(
      static_cast<size_t>(lattice.num_cells()), 1);
  FrameInfo info;
  info.frame_id = frame_id;
  info.lattice = lattice;
  info.expected_points = lattice.num_cells();
  CheckOk(store->PutFrame("bench", info, raster, filled), "PutFrame");
}

// --- record path -------------------------------------------------------------

void BM_TileStore_PutFrame(benchmark::State& state) {
  const int64_t side = state.range(0);
  const GridLattice lattice = BenchLattice(side, side);
  TileStoreOptions options;
  options.dir = BenchDir("put-" + std::to_string(side));
  options.tile_size = 64;
  auto store = ValueOrDie(TileStore::Open(options), "TileStore::Open");
  int64_t frame_id = 0;
  for (auto _ : state) {
    PutBenchFrame(store.get(), lattice, frame_id++);
  }
  ReportPoints(state, lattice.num_cells());
  const TileStoreStats stats = store->TotalStats();
  state.counters["tiles_written"] =
      static_cast<double>(stats.tiles_written);
  state.counters["bytes_per_frame"] = static_cast<double>(
      stats.frames_written
          ? stats.bytes_written / stats.frames_written
          : 0);
}
BENCHMARK(BM_TileStore_PutFrame)->Arg(256)->Arg(512);

// --- record path under retention ---------------------------------------------

void BM_TileStore_PutFrame_WithRetention(benchmark::State& state) {
  // Same ingest loop as BM_TileStore_PutFrame, but with a byte budget
  // tight enough that retention constantly prunes frames and
  // deletes/rewrites segments behind the writer (via the background
  // GC thread). The acceptance claim: per-frame ingest cost stays
  // within noise of the unbudgeted row — pruning runs off the PutFrame
  // hot path — while frames_pruned/bytes_reclaimed show the reaper
  // really worked.
  const int64_t side = state.range(0);
  const GridLattice lattice = BenchLattice(side, side);
  TileStoreOptions options;
  options.dir = BenchDir("put-ret-" + std::to_string(side));
  options.tile_size = 64;
  // A handful of frames of budget with ~1-frame segments: the volume
  // reaches steady state within a few iterations and every later
  // PutFrame races a concurrent prune.
  options.retention_max_frames = 6;
  options.segment_max_bytes = 1u << 20;
  options.gc_interval_ms = 5;
  auto store = ValueOrDie(TileStore::Open(options), "TileStore::Open");
  int64_t frame_id = 0;
  for (auto _ : state) {
    PutBenchFrame(store.get(), lattice, frame_id++);
  }
  ReportPoints(state, lattice.num_cells());
  const TileStoreStats stats = store->TotalStats();
  state.counters["frames_pruned"] =
      static_cast<double>(stats.frames_pruned);
  state.counters["segments_deleted"] =
      static_cast<double>(stats.segments_deleted);
  state.counters["segments_rewritten"] =
      static_cast<double>(stats.segments_rewritten);
  state.counters["bytes_reclaimed"] =
      static_cast<double>(stats.bytes_reclaimed);
}
BENCHMARK(BM_TileStore_PutFrame_WithRetention)->Arg(256)->Arg(512);

// --- replay path: full resolution vs overview --------------------------------

/// Shared setup: a recorded 512x512 mosaic, then replay the full
/// region at base resolution (reduce=1) or through the pyramid
/// (reduce=8). The acceptance claim: the overview scan is >= 5x
/// faster for the same region, because it reads ~1/64 of the samples
/// from a coarser level instead of aggregating the base tiles.
void RunRegionScan(benchmark::State& state, int reduce) {
  const int64_t side = 512;
  const GridLattice lattice = BenchLattice(side, side);
  TileStoreOptions options;
  options.dir = BenchDir("scan-r" + std::to_string(reduce));
  options.tile_size = 64;
  auto store = ValueOrDie(TileStore::Open(options), "TileStore::Open");
  PutBenchFrame(store.get(), lattice, 0);

  StoreScan scan;
  scan.reduce = reduce;
  const BoundingBox ext = lattice.Extent();
  scan.region = MakeBBoxRegion(ext.min_x, ext.min_y, ext.max_x, ext.max_y);
  NullSink sink;
  int64_t points = 0;
  for (auto _ : state) {
    CheckOk(store->Scan("bench", scan, &sink), "Scan");
  }
  points = static_cast<int64_t>(sink.points());
  // Points delivered per iteration; wall clock per iteration is what
  // the >= 5x acceptance ratio compares.
  state.counters["points_out"] = static_cast<double>(
      state.iterations() ? points / state.iterations() : 0);
  state.counters["tiles_read_per_iter"] = static_cast<double>(
      state.iterations()
          ? store->TotalStats().tiles_read / state.iterations()
          : 0);
}

void BM_TileStore_RegionScan_FullRes(benchmark::State& state) {
  RunRegionScan(state, /*reduce=*/1);
}
BENCHMARK(BM_TileStore_RegionScan_FullRes);

void BM_TileStore_RegionScan_Overview8(benchmark::State& state) {
  RunRegionScan(state, /*reduce=*/8);
}
BENCHMARK(BM_TileStore_RegionScan_Overview8);

// --- catch-up replay ---------------------------------------------------------

void BM_TileStore_CatchUpReplay(benchmark::State& state) {
  // A late subscriber's history scan: `frames` stored frames replayed
  // in watermark order through one sink, the store-side half of the
  // hybrid QUERY ... SINCE path.
  const int64_t frames = state.range(0);
  const GridLattice lattice = BenchLattice(256, 256);
  TileStoreOptions options;
  options.dir = BenchDir("catchup-" + std::to_string(frames));
  options.tile_size = 64;
  auto store = ValueOrDie(TileStore::Open(options), "TileStore::Open");
  for (int64_t f = 0; f < frames; ++f) {
    PutBenchFrame(store.get(), lattice, f);
  }
  NullSink sink;
  for (auto _ : state) {
    for (int64_t f : store->FrameIds("bench", INT64_MIN, INT64_MAX)) {
      CheckOk(store->ScanFrame("bench", f, StoreScan{}, &sink), "ScanFrame");
    }
  }
  ReportPoints(state, frames * lattice.num_cells());
}
BENCHMARK(BM_TileStore_CatchUpReplay)->Arg(8)->Arg(32);

}  // namespace
}  // namespace geostreams
