// Observability overhead: the disabled-tracing path must be free.
//
// `trace_sample_every=0` leaves every event untraced; operators then
// pay one thread-local load and a branch per Consume. The series
//
//   BM_Tracing_EndToEnd/0   (tracing compiled in, sampling off)
//   BM_Tracing_EndToEnd/64  (1-in-64 batches traced)
//   BM_Tracing_EndToEnd/1   (every batch traced, the worst case)
//
// runs the same ingest -> restriction/NDVI -> delivery pipeline as
// bench_end_to_end.cc; the /0 row must sit within run-to-run noise of
// pre-observability baselines, and the spread /0 -> /1 bounds the
// full cost of span timing + histogram observation. The micro rows
// price the primitives themselves.

#include <atomic>
#include <string>

#include "bench_util.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

namespace geostreams {
namespace {

using bench_util::CheckOk;
using bench_util::ValueOrDie;

constexpr int64_t kCells = 64 << 10;

InstrumentConfig MakeConfig() {
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = kCells;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  config.name_prefix = "goes";
  return config;
}

void BM_Tracing_EndToEnd(benchmark::State& state) {
  DsmsOptions options;
  options.trace_sample_every = static_cast<size_t>(state.range(0));
  DsmsServer server(options);
  StreamGenerator gen(MakeConfig(), ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  for (size_t b = 0; b < 2; ++b) {
    CheckOk(server.RegisterStream(ValueOrDie(gen.Descriptor(b), "desc")),
            "register stream");
  }
  uint64_t frames = 0;
  for (const char* q :
       {"region(goes.band1, bbox(-120, 28, -95, 45))",
        "ndvi(goes.band2, goes.band1)"}) {
    auto id = server.RegisterQuery(
        q, [&frames](int64_t, const Raster&, const std::vector<uint8_t>&) {
          ++frames;
        });
    CheckOk(id.status(), "register query");
  }
  std::vector<EventSink*> sinks = {server.ingest("goes.band2"),
                                   server.ingest("goes.band1")};
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, sinks), "scan");
    ++scan;
  }
  const double points =
      static_cast<double>(state.iterations()) * 2.0 * kCells;
  state.SetItemsProcessed(static_cast<int64_t>(points));
  state.counters["ingest_MBps"] = benchmark::Counter(
      points * 4.0 / 1.0e6, benchmark::Counter::kIsRate);
  state.counters["sample_every"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Tracing_EndToEnd)->Arg(0)->Arg(64)->Arg(1);

void BM_Tracing_UntracedBranch(benchmark::State& state) {
  // The per-operator cost with no active trace: one thread-local load
  // plus a null check. This is what every operator pays per event
  // when sampling is off.
  uint64_t sink = 0;
  for (auto _ : state) {
    if (ActiveTrace() != nullptr) ++sink;
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_Tracing_UntracedBranch);

void BM_Tracing_SpanTimer(benchmark::State& state) {
  // One traced batch's fixed cost: context construction, one span
  // (two clock reads + a vector push), one histogram observe.
  MetricsRegistry registry;
  MetricHistogram* hist = registry.GetHistogram(
      "geostreams_bench_span_us", "bench");
  const std::string name = "op1.bench";
  uint64_t id = 0;
  for (auto _ : state) {
    TraceContext trace(++id, "bench");
    SpanTimer timer(&trace, name, hist);
    benchmark::DoNotOptimize(trace);
  }
  state.counters["observed"] = static_cast<double>(hist->Count());
}
BENCHMARK(BM_Tracing_SpanTimer);

void BM_Tracing_HistogramObserve(benchmark::State& state) {
  MetricHistogram hist(MetricHistogram::LatencyBucketsUs());
  uint64_t v = 0;
  for (auto _ : state) {
    hist.Observe(v++ % 5000);
  }
  benchmark::DoNotOptimize(hist.Count());
}
BENCHMARK(BM_Tracing_HistogramObserve);

void BM_Tracing_HistogramObserveExemplar(benchmark::State& state) {
  // The exemplar-linked observe: the plain observe plus one try-lock
  // protected bucket-slot overwrite (ordinal + pipeline string). The
  // delta over BM_Tracing_HistogramObserve prices what every traced
  // stage observation adds on top of the base histogram.
  MetricHistogram hist(MetricHistogram::LatencyBucketsUs());
  const std::string pipeline = "q1";
  uint64_t v = 0;
  for (auto _ : state) {
    hist.ObserveWithExemplar(v % 5000, v, pipeline);
    ++v;
  }
  benchmark::DoNotOptimize(hist.Count());
}
BENCHMARK(BM_Tracing_HistogramObserveExemplar);

void BM_Tracing_EventLogAppend(benchmark::State& state) {
  // One flight-recorder append: a mutex, a deque push (with eviction
  // once the ring is full), and the detail string copy. Flight events
  // are rare (quarantines, disconnects, retention passes), so this is
  // never on the per-event hot path — the number here bounds the cost
  // of being generous about what gets recorded.
  EventLog log(256);
  const std::string detail = "source=goes.band1 idle_ms=1500 timeout_ms=1000";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        log.Append(EventSeverity::kWarn, "bench", "tick", detail));
  }
  state.counters["total"] = static_cast<double>(log.total());
}
BENCHMARK(BM_Tracing_EventLogAppend);

}  // namespace
}  // namespace geostreams
