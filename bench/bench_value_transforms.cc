// Experiment E2 (Sec. 3.2): pointwise value transforms are O(1) per
// point with no storage; stretch transforms must buffer the frame, so
// their space cost scales with the largest frame (the paper quotes
// ~280 MB for a full-resolution GOES visible frame of 20,840 x
// 10,820 points).
//
// Series reported:
//   * pointwise transform rates (colour->grey, rescale);
//   * stretch rates for linear / hist-eq / Gaussian modes;
//   * buffered_bytes vs frame size for the stretch (linear in frame
//     size) vs pointwise (always 0);
//   * extrapolation counter goes_full_frame_mb: measured bytes/point
//     x the real GOES frame size.

#include "bench_util.h"
#include "ops/stretch_transform_op.h"
#include "ops/value_transform_op.h"

namespace geostreams {
namespace {

using bench_util::BenchLattice;
using bench_util::PrebuiltFrame;
using bench_util::ReportPoints;

void BM_Pointwise_Rescale(benchmark::State& state) {
  const int64_t w = 1024, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  ValueTransformOp op("v", ValueFn::AffineRescale(1, 255.0, 0.0));
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, w * h);
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Pointwise_Rescale);

void BM_Pointwise_ColorToGray(benchmark::State& state) {
  const int64_t w = 512, h = 256;
  ValueTransformOp op("v", ValueFn::ColorToGray());
  NullSink sink;
  op.BindOutput(&sink);
  // Pre-built 3-band batch.
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 3;
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      const double rgb[3] = {static_cast<double>(c % 256),
                             static_cast<double>(r % 256), 128.0};
      batch->Append(static_cast<int32_t>(c), static_cast<int32_t>(r), 0,
                    rgb);
    }
  }
  for (auto _ : state) {
    bench_util::CheckOk(op.input(0)->Consume(StreamEvent::Batch(batch)),
                        "batch");
  }
  ReportPoints(state, w * h);
}
BENCHMARK(BM_Pointwise_ColorToGray);

void BM_Stretch_Modes(benchmark::State& state) {
  const int64_t w = 512, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  StretchOptions opts;
  opts.mode = static_cast<StretchMode>(state.range(0));
  opts.in_lo = 0.0;
  opts.in_hi = 1.5;
  StretchTransformOp op("s", opts);
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, w * h);
  state.SetLabel(StretchModeName(opts.mode));
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Stretch_Modes)->Arg(0)->Arg(1)->Arg(2);

void BM_Stretch_FrameSizeBuffering(benchmark::State& state) {
  // The paper's claim: "the cost of a stretch transform operator is
  // determined by the size of the largest frame that can occur".
  const int64_t n = state.range(0);
  const int64_t w = 512;
  const int64_t h = n / w;
  GridLattice lattice = BenchLattice(w, h);
  StretchOptions opts;
  opts.mode = StretchMode::kLinear;
  opts.in_lo = 0.0;
  opts.in_hi = 1.5;
  StretchTransformOp op("s", opts);
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, n);
  const double buffered =
      static_cast<double>(op.metrics().buffered_bytes_high_water);
  state.counters["frame_points"] = static_cast<double>(n);
  state.counters["buffered_bytes"] = buffered;
  state.counters["bytes_per_point"] = buffered / static_cast<double>(n);
  // Extrapolate to the real GOES visible frame (20,840 x 10,820).
  state.counters["goes_full_frame_mb"] =
      buffered / static_cast<double>(n) * 20840.0 * 10820.0 / 1.0e6;
}
BENCHMARK(BM_Stretch_FrameSizeBuffering)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Arg(2 << 20);

void BM_Pointwise_NoBufferingControl(benchmark::State& state) {
  // Same frame sizes as the stretch sweep, pointwise transform:
  // buffered_bytes must stay 0 regardless of frame size.
  const int64_t n = state.range(0);
  const int64_t w = 512;
  const int64_t h = n / w;
  GridLattice lattice = BenchLattice(w, h);
  ValueTransformOp op("v", ValueFn::AffineRescale(1, 2.0, 0.0));
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, n);
  state.counters["frame_points"] = static_cast<double>(n);
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Pointwise_NoBufferingControl)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Arg(2 << 20);

}  // namespace
}  // namespace geostreams
