// Experiment E6 (Sec. 3.4): pushing the spatial restriction inward
// gives "the most significant space and time gains for query
// evaluation".
//
// Workload: the paper's example query — NDVI over two bands, a value
// transform, re-projection to UTM, and a spatial restriction given in
// UTM coordinates — executed with the optimizer off (naive) and on
// (pushdown), sweeping the restriction's selectivity.
//
// Series reported per (mode, selectivity):
//   * wall-clock per scan and points/s;
//   * points_processed: total points entering all operators (the
//     model's cost driver);
//   * buffered_bytes: peak intermediate state (the space gain).

#include <string>

#include "bench_util.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

namespace geostreams {
namespace {

using bench_util::CheckOk;
using bench_util::ReportPoints;
using bench_util::ValueOrDie;

constexpr int64_t kCells = 48 << 10;

InstrumentConfig MakeConfig() {
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = kCells;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  config.name_prefix = "goes";
  return config;
}

/// The Sec. 3.4 query with a UTM region of the requested relative
/// size. UTM zone 14N (central meridian 99W) sits in the middle of
/// the generator's CONUS sectors; the boxes slice its footprint
/// symmetrically about the central meridian so the region's share of
/// the scanned sector tracks `pct`.
std::string QueryForSelectivity(int pct) {
  const double frac = pct / 100.0;
  // ~+-2800 km of easting around the central meridian at 100% (the
  // whole CONUS footprint of zone 14).
  const double half_width = 2800000.0 * frac;
  const double e_lo = 500000.0 - half_width;
  const double e_hi = 500000.0 + half_width;
  const double n_lo = 2600000.0;  // ~23.5N
  const double n_hi = 5600000.0;  // ~50.5N
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "region(reproject(rescale(ndvi(goes.band2, goes.band1), "
                "100, 100), \"utm:14n\"), bbox(%.0f, %.0f, %.0f, %.0f))",
                e_lo, n_lo, e_hi, n_hi);
  return buf;
}

void RunQuery(benchmark::State& state, bool optimize) {
  const int pct = static_cast<int>(state.range(0));
  StreamGenerator gen(MakeConfig(), ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  StreamCatalog catalog;
  for (size_t b = 0; b < 2; ++b) {
    CheckOk(catalog.Register(ValueOrDie(gen.Descriptor(b), "desc")),
            "register");
  }
  ExprPtr parsed = ValueOrDie(ParseQuery(QueryForSelectivity(pct)), "parse");
  CheckOk(AnalyzeQuery(catalog, parsed), "analyze");
  OptimizerOptions opts;
  if (!optimize) {
    opts.spatial_pushdown = false;
    opts.temporal_pushdown = false;
    opts.merge_restrictions = false;
    opts.fuse_ndvi_macro = false;
  }
  ExprPtr plan_expr = ValueOrDie(OptimizeQuery(catalog, parsed, opts), "opt");

  NullSink sink;
  MemoryTracker tracker;
  auto plan = ValueOrDie(BuildPlan(plan_expr, &sink, &tracker), "plan");
  std::vector<EventSink*> sinks = {plan->input("goes.band2"),
                                   plan->input("goes.band1")};
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, sinks), "scan");
    ++scan;
  }
  ReportPoints(state, 2 * kCells);
  state.SetLabel(optimize ? "optimized" : "naive");
  state.counters["selectivity_pct"] = pct;
  state.counters["points_processed"] =
      static_cast<double>(plan->PointsProcessed());
  state.counters["points_processed_per_scan"] =
      static_cast<double>(plan->PointsProcessed()) /
      static_cast<double>(state.iterations());
  state.counters["buffered_bytes"] =
      static_cast<double>(tracker.HighWaterBytes());
}

void BM_Sec34Query_Naive(benchmark::State& state) {
  RunQuery(state, false);
}
BENCHMARK(BM_Sec34Query_Naive)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_Sec34Query_Optimized(benchmark::State& state) {
  RunQuery(state, true);
}
BENCHMARK(BM_Sec34Query_Optimized)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

// --- optimization latency itself (parser + analyzer + rewriter) -----------------

void BM_ParseAnalyzeOptimize(benchmark::State& state) {
  StreamGenerator gen(MakeConfig(), ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  StreamCatalog catalog;
  for (size_t b = 0; b < 2; ++b) {
    CheckOk(catalog.Register(ValueOrDie(gen.Descriptor(b), "desc")),
            "register");
  }
  const std::string query = QueryForSelectivity(10);
  for (auto _ : state) {
    ExprPtr parsed = ValueOrDie(ParseQuery(query), "parse");
    CheckOk(AnalyzeQuery(catalog, parsed), "analyze");
    ExprPtr optimized =
        ValueOrDie(OptimizeQuery(catalog, parsed), "optimize");
    benchmark::DoNotOptimize(optimized);
  }
}
BENCHMARK(BM_ParseAnalyzeOptimize);

}  // namespace
}  // namespace geostreams
