// Shared helpers for the GeoStreams experiment harness.
//
// Each bench binary regenerates one experiment from DESIGN.md's
// index (E1-E9, F1): it builds the workload the paper's claim is
// about, runs the operators, and reports both wall-clock rates and
// the structural quantities (buffered bytes, points routed) the
// paper's cost analysis predicts.

#ifndef GEOSTREAMS_BENCH_BENCH_UTIL_H_
#define GEOSTREAMS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/stream_event.h"
#include "geo/geographic_crs.h"
#include "geo/lattice.h"
#include "stream/operator.h"

namespace geostreams {
namespace bench_util {

/// Aborts the benchmark binary on error (benchmarks have no Status
/// plumbing; a failed setup is a bug).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// w x h lat/lon lattice over a CONUS-like window.
inline GridLattice BenchLattice(int64_t w, int64_t h) {
  const double step_x = 59.0 / static_cast<double>(w);
  const double step_y = 26.0 / static_cast<double>(h);
  return GridLattice(GeographicCrs::Instance(), -125.0 + step_x / 2.0,
                     50.0 - step_y / 2.0, step_x, -step_y, w, h);
}

/// Pushes one frame of w x h deterministic points, one batch per row.
inline void PushBenchFrame(EventSink* sink, const GridLattice& lattice,
                           int64_t frame_id) {
  FrameInfo info;
  info.frame_id = frame_id;
  info.lattice = lattice;
  info.expected_points = lattice.num_cells();
  CheckOk(sink->Consume(StreamEvent::FrameBegin(info)), "FrameBegin");
  for (int64_t row = 0; row < lattice.height(); ++row) {
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = frame_id;
    batch->band_count = 1;
    batch->Reserve(static_cast<size_t>(lattice.width()));
    for (int64_t col = 0; col < lattice.width(); ++col) {
      const double v =
          0.001 * static_cast<double>(col) +
          0.0001 * static_cast<double>(row) +
          0.01 * static_cast<double>(frame_id % 10);
      batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row),
                     frame_id, v);
    }
    CheckOk(sink->Consume(StreamEvent::Batch(std::move(batch))), "Batch");
  }
  CheckOk(sink->Consume(StreamEvent::FrameEnd(info)), "FrameEnd");
}

/// One frame's worth of events (FrameBegin, one batch per row,
/// FrameEnd) built once and replayed by const reference every
/// iteration. Operators never mutate input batches, so the replay
/// measures operator cost instead of harness-side batch construction
/// — which dominates once the operators themselves are vectorized.
class PrebuiltFrame {
 public:
  PrebuiltFrame(const GridLattice& lattice, int64_t frame_id,
                int bands = 1) {
    FrameInfo info;
    info.frame_id = frame_id;
    info.lattice = lattice;
    info.expected_points = lattice.num_cells();
    events_.push_back(StreamEvent::FrameBegin(info));
    for (int64_t row = 0; row < lattice.height(); ++row) {
      auto batch = std::make_shared<PointBatch>();
      batch->frame_id = frame_id;
      batch->band_count = bands;
      batch->Reserve(static_cast<size_t>(lattice.width()));
      for (int64_t col = 0; col < lattice.width(); ++col) {
        double v[8];
        for (int b = 0; b < bands; ++b) {
          v[b] = 0.001 * static_cast<double>(col) +
                 0.0001 * static_cast<double>(row) +
                 0.01 * static_cast<double>((frame_id + b) % 10);
        }
        batch->Append(static_cast<int32_t>(col), static_cast<int32_t>(row),
                      frame_id, v);
      }
      num_points_ += static_cast<int64_t>(batch->size());
      events_.push_back(StreamEvent::Batch(std::move(batch)));
    }
    events_.push_back(StreamEvent::FrameEnd(info));
  }

  void Replay(EventSink* sink) const {
    for (const StreamEvent& event : events_) {
      CheckOk(sink->Consume(event), "replay");
    }
  }

  int64_t num_points() const { return num_points_; }

 private:
  std::vector<StreamEvent> events_;
  int64_t num_points_ = 0;
};

/// Standard throughput counters.
inline void ReportPoints(benchmark::State& state, int64_t points_per_iter) {
  state.SetItemsProcessed(state.iterations() * points_per_iter);
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * points_per_iter),
      benchmark::Counter::kIsRate);
}

}  // namespace bench_util
}  // namespace geostreams

#endif  // GEOSTREAMS_BENCH_BENCH_UTIL_H_
