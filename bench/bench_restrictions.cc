// Experiment E1 (Sec. 3.1): restriction operators are non-blocking
// and cost O(1) per point, independent of the stream size.
//
// Series reported:
//   * per-point processing rate for spatial / temporal / value
//     restrictions across stream lengths 10^5..10^7 points — the rate
//     must stay flat as the stream grows (constant per-point cost);
//   * rates across selectivities 0..100% (output size must not affect
//     per-input-point cost beyond copy-out);
//   * buffered bytes (always 0: non-blocking).

#include "bench_util.h"
#include "geo/region.h"
#include "ops/restriction_ops.h"
#include "ops/time_set.h"

namespace geostreams {
namespace {

using bench_util::BenchLattice;
using bench_util::PrebuiltFrame;
using bench_util::ReportPoints;

// --- constant per-point cost vs stream length --------------------------------

void BM_SpatialRestriction_StreamLength(benchmark::State& state) {
  // One frame of `n` points; total stream length grows with the
  // argument while the region stays fixed (50% selectivity).
  const int64_t n = state.range(0);
  const int64_t w = 1024;
  const int64_t h = n / w;
  GridLattice lattice = BenchLattice(w, h);
  const BoundingBox ext = lattice.Extent();
  // Western half.
  SpatialRestrictionOp op(
      "r", MakeBBoxRegion(ext.min_x, ext.min_y,
                          (ext.min_x + ext.max_x) / 2.0, ext.max_y));
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, n);
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_SpatialRestriction_StreamLength)
    ->Arg(100 << 10)
    ->Arg(1 << 20)
    ->Arg(4 << 20)
    ->Arg(10 << 20);

// --- selectivity sweep --------------------------------------------------------

void BM_SpatialRestriction_Selectivity(benchmark::State& state) {
  const double selectivity = static_cast<double>(state.range(0)) / 100.0;
  const int64_t w = 1024, h = 512;
  GridLattice lattice = BenchLattice(w, h);
  const BoundingBox ext = lattice.Extent();
  SpatialRestrictionOp op(
      "r", MakeBBoxRegion(ext.min_x, ext.min_y,
                          ext.min_x + ext.width() * selectivity,
                          ext.max_y));
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, w * h);
  state.counters["selectivity_pct"] = static_cast<double>(state.range(0));
  state.counters["points_out"] =
      static_cast<double>(op.metrics().points_out);
}
BENCHMARK(BM_SpatialRestriction_Selectivity)
    ->Arg(0)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100);

// --- region shape cost ---------------------------------------------------------

void BM_SpatialRestriction_RegionShape(benchmark::State& state) {
  const int64_t w = 512, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  const BoundingBox ext = lattice.Extent();
  const double cx = (ext.min_x + ext.max_x) / 2.0;
  const double cy = (ext.min_y + ext.max_y) / 2.0;
  RegionPtr region;
  switch (state.range(0)) {
    case 0:
      region = MakeBBoxRegion(ext.min_x, ext.min_y, cx, cy);
      break;
    case 1:
      region = MakePolygonRegion({{ext.min_x, ext.min_y},
                                  {cx, ext.min_y},
                                  {cx, cy},
                                  {ext.min_x, cy}});
      break;
    case 2:
      region = ConstraintRegion::Disk(cx, cy, ext.height() / 4.0);
      break;
  }
  SpatialRestrictionOp op("r", region);
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, w * h);
  state.SetLabel(state.range(0) == 0   ? "bbox"
                 : state.range(0) == 1 ? "polygon"
                                       : "constraint-disk");
}
BENCHMARK(BM_SpatialRestriction_RegionShape)->Arg(0)->Arg(1)->Arg(2);

// --- temporal / value restrictions ---------------------------------------------

void BM_TemporalRestriction(benchmark::State& state) {
  const int64_t w = 1024, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  TimeSet times = TimeSet::Every(96, 40, 55);
  times.Add(TimeSet::Range(1000, 2000));
  TemporalRestrictionOp op("t", times);
  NullSink sink;
  op.BindOutput(&sink);
  std::vector<PrebuiltFrame> frames;
  for (int64_t f = 0; f < 8; ++f) frames.emplace_back(lattice, f);
  size_t next = 0;
  for (auto _ : state) {
    frames[next++ % frames.size()].Replay(op.input(0));
  }
  ReportPoints(state, w * h);
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_TemporalRestriction);

void BM_ValueRestriction(benchmark::State& state) {
  const int64_t w = 1024, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  ValueRestrictionOp op("v", {{0, 0.2, 0.8}});
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, w * h);
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_ValueRestriction);

// --- frame-level pruning -------------------------------------------------------

void BM_SpatialRestriction_DisjointFramePruning(benchmark::State& state) {
  // Frames that cannot intersect the region are dropped without
  // per-point tests: the rate should far exceed the filtering rate.
  const int64_t w = 1024, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  SpatialRestrictionOp op("r", MakeBBoxRegion(100.0, 100.0, 101.0, 101.0));
  NullSink sink;
  op.BindOutput(&sink);
  PrebuiltFrame frame(lattice, 0);
  for (auto _ : state) {
    frame.Replay(op.input(0));
  }
  ReportPoints(state, w * h);
}
BENCHMARK(BM_SpatialRestriction_DisjointFramePruning);

}  // namespace
}  // namespace geostreams
