// Experiment E4 (Sec. 3.3): composition buffering depends on the
// point organization of the input streams.
//
// "If the data is transmitted on an image-by-image basis, the operator
// has to buffer a complete image whereas for a row-by-row organization
// it only has to buffer a single row of one stream."
//
// Series reported, per organization in {row-by-row, image-by-image}:
//   * throughput of a two-band NDVI composition;
//   * buffered_bytes high-water (one row vs one frame);
//   * buffer_ratio_frame: buffered bytes / full-frame bytes.

#include "bench_util.h"
#include "ops/compose_op.h"
#include "ops/macro_ops.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

namespace geostreams {
namespace {

using bench_util::CheckOk;
using bench_util::ReportPoints;

InstrumentConfig MakeConfig(PointOrganization org, int64_t cells) {
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = cells;
  config.organization = org;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  return config;
}

void RunComposition(benchmark::State& state, PointOrganization org) {
  const int64_t cells = state.range(0);
  StreamGenerator gen(MakeConfig(org, cells), ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  ComposeOp op("ndvi", BinaryValueFn::Ndvi());
  NullSink sink;
  op.BindOutput(&sink);
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, {op.input(0), op.input(1)}), "scan");
    ++scan;
  }
  // Two bands of `cells` points per iteration.
  ReportPoints(state, 2 * cells);
  state.SetLabel(PointOrganizationName(org));
  const double buffered =
      static_cast<double>(op.metrics().buffered_bytes_high_water);
  state.counters["sector_cells"] = static_cast<double>(cells);
  state.counters["buffered_bytes"] = buffered;
  // Bytes per pending entry ~24; a full frame would be cells * 24.
  state.counters["buffer_ratio_frame"] =
      buffered / (static_cast<double>(cells) * 24.0);
  state.counters["matches"] = static_cast<double>(op.matches());
}

void BM_Composition_RowByRow(benchmark::State& state) {
  RunComposition(state, PointOrganization::kRowByRow);
}
BENCHMARK(BM_Composition_RowByRow)
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10);

void BM_Composition_ImageByImage(benchmark::State& state) {
  RunComposition(state, PointOrganization::kImageByImage);
}
BENCHMARK(BM_Composition_ImageByImage)
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10);

// --- gamma function sweep ------------------------------------------------------

void BM_Composition_Gamma(benchmark::State& state) {
  const int64_t cells = 64 << 10;
  StreamGenerator gen(MakeConfig(PointOrganization::kRowByRow, cells),
                      ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  ComposeOp op("c", static_cast<ComposeFn>(state.range(0)), 1);
  NullSink sink;
  op.BindOutput(&sink);
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, {op.input(0), op.input(1)}), "scan");
    ++scan;
  }
  ReportPoints(state, 2 * cells);
  state.SetLabel(ComposeFnName(static_cast<ComposeFn>(state.range(0))));
}
BENCHMARK(BM_Composition_Gamma)->DenseRange(0, 5);

// --- fused NDVI macro vs expanded composition tree (Sec. 4 ablation) ------------

void BM_NdviMacro_Fused(benchmark::State& state) {
  const int64_t cells = 64 << 10;
  StreamGenerator gen(MakeConfig(PointOrganization::kRowByRow, cells),
                      ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  auto op = MakeNdviOp("ndvi");
  NullSink sink;
  op->BindOutput(&sink);
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, {op->input(0), op->input(1)}),
            "scan");
    ++scan;
  }
  ReportPoints(state, 2 * cells);
}
BENCHMARK(BM_NdviMacro_Fused);

void BM_NdviExpanded_ThreeCompositions(benchmark::State& state) {
  // div(sub(nir, vis), add(nir, vis)): three ComposeOps and two
  // broadcast fan-outs — the plan the optimizer fuses away.
  const int64_t cells = 64 << 10;
  StreamGenerator gen(MakeConfig(PointOrganization::kRowByRow, cells),
                      ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  ComposeOp sub("sub", ComposeFn::kSubtract);
  ComposeOp add("add", ComposeFn::kAdd);
  ComposeOp div("div", ComposeFn::kDivide);
  NullSink sink;
  sub.BindOutput(div.input(0));
  add.BindOutput(div.input(1));
  div.BindOutput(&sink);

  class FanOut : public EventSink {
   public:
    FanOut(EventSink* a, EventSink* b) : a_(a), b_(b) {}
    Status Consume(const StreamEvent& e) override {
      GEOSTREAMS_RETURN_IF_ERROR(a_->Consume(e));
      return b_->Consume(e);
    }

   private:
    EventSink* a_;
    EventSink* b_;
  };
  FanOut nir(sub.input(0), add.input(0));
  FanOut vis(sub.input(1), add.input(1));

  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, {&nir, &vis}), "scan");
    ++scan;
  }
  ReportPoints(state, 2 * cells);
  state.counters["pending_bytes"] = static_cast<double>(
      sub.metrics().buffered_bytes_high_water +
      add.metrics().buffered_bytes_high_water +
      div.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_NdviExpanded_ThreeCompositions);

}  // namespace
}  // namespace geostreams
