// Experiment F1 (Fig. 1): point-set organizations of remote-sensing
// instruments and their spatial/temporal proximity structure.
//
// "An important feature of the GeoStreams data model ... is that
// consecutive points in a GeoStream have a close spatial proximity"
// — except across frame boundaries (image-by-image) and for
// point-by-point instruments, where only temporal proximity holds.
//
// Series reported per organization:
//   * generation throughput (the stream generator is the substrate
//     for every other experiment; it must outrun the operators);
//   * mean and p99-style max consecutive-point lattice distance — the
//     quantitative form of Fig. 1: ~1 cell for row-by-row and
//     image-by-image interiors, large for point-by-point.

#include <cmath>

#include "bench_util.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

namespace geostreams {
namespace {

using bench_util::CheckOk;
using bench_util::ReportPoints;

constexpr int64_t kCells = 64 << 10;

/// Measures consecutive-point lattice distances.
class ProximityProbe : public EventSink {
 public:
  Status Consume(const StreamEvent& event) override {
    if (event.kind != EventKind::kPointBatch) return Status::OK();
    const PointBatch& b = *event.batch;
    for (size_t i = 0; i < b.size(); ++i) {
      if (has_prev_) {
        const double dc = b.cols[i] - prev_col_;
        const double dr = b.rows[i] - prev_row_;
        const double d = std::sqrt(dc * dc + dr * dr);
        sum_ += d;
        if (d > max_) max_ = d;
        ++count_;
      }
      prev_col_ = b.cols[i];
      prev_row_ = b.rows[i];
      has_prev_ = true;
    }
    return Status::OK();
  }

  double MeanDistance() const { return count_ ? sum_ / count_ : 0.0; }
  double MaxDistance() const { return max_; }

 private:
  bool has_prev_ = false;
  int32_t prev_col_ = 0;
  int32_t prev_row_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  uint64_t count_ = 0;
};

void RunOrganization(benchmark::State& state, PointOrganization org) {
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = kCells;
  config.organization = org;
  config.bands = {SpectralBand::kVisible};
  StreamGenerator gen(config, ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  ProximityProbe probe;
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, {&probe}), "scan");
    ++scan;
  }
  ReportPoints(state, kCells);
  state.SetLabel(PointOrganizationName(org));
  state.counters["mean_consecutive_cell_distance"] = probe.MeanDistance();
  state.counters["max_consecutive_cell_distance"] = probe.MaxDistance();
}

void BM_Organization_RowByRow(benchmark::State& state) {
  RunOrganization(state, PointOrganization::kRowByRow);
}
BENCHMARK(BM_Organization_RowByRow);

void BM_Organization_ImageByImage(benchmark::State& state) {
  RunOrganization(state, PointOrganization::kImageByImage);
}
BENCHMARK(BM_Organization_ImageByImage);

void BM_Organization_PointByPoint(benchmark::State& state) {
  RunOrganization(state, PointOrganization::kPointByPoint);
}
BENCHMARK(BM_Organization_PointByPoint);

void BM_Generator_GeostationaryProjectionCost(benchmark::State& state) {
  // The geostationary instrument pays inverse projection math per
  // sample; quantifies the substrate cost vs the lat/lon instrument.
  InstrumentConfig config;
  config.crs_name = state.range(0) == 0 ? "latlon" : "geos:-75";
  config.cells_per_sector = kCells;
  config.bands = {SpectralBand::kVisible};
  StreamGenerator gen(config, ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  NullSink sink;
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, {&sink}), "scan");
    ++scan;
  }
  ReportPoints(state, kCells);
  state.SetLabel(config.crs_name);
}
BENCHMARK(BM_Generator_GeostationaryProjectionCost)->Arg(0)->Arg(1);

}  // namespace
}  // namespace geostreams
