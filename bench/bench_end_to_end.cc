// Experiment E8 (Secs. 1 and 4, Fig. 3): end-to-end DSMS throughput.
//
// GOES-class instruments downlink 20-60 GB/day (~0.25-0.7 MB/s
// sustained). This bench drives the whole Fig. 3 pipeline — stream
// generator -> ingest -> shared restriction -> per-query plans
// (restriction / NDVI / reprojection) -> delivery — and reports the
// sustained ingest rate, which must exceed the GOES requirement by a
// wide margin on one core.
//
// Series reported:
//   * ingest MB/s (counting 4 bytes/point, the instrument's sample
//     width) for 1 / 8 / 64 concurrent queries;
//   * per-scan latency;
//   * delivered frames per scan.

#include <atomic>
#include <string>

#include "bench_util.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "stream/executor.h"

namespace geostreams {
namespace {

using bench_util::CheckOk;
using bench_util::ValueOrDie;

constexpr int64_t kCells = 64 << 10;

InstrumentConfig MakeConfig() {
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = kCells;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  config.name_prefix = "goes";
  return config;
}

/// Queries clients would register: regional raw-band subscriptions,
/// NDVI products, and a re-projected product.
std::string QueryForClient(int i) {
  switch (i % 4) {
    case 0: {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "region(goes.band1, bbox(%d, %d, %d, %d))",
                    -125 + (i % 7) * 5, 25 + (i % 5) * 3,
                    -115 + (i % 7) * 5, 33 + (i % 5) * 3);
      return buf;
    }
    case 1:
      return "region(ndvi(goes.band2, goes.band1), "
             "bbox(-120, 28, -95, 45))";
    case 2:
      return "vrange(goes.band2, 0, 0.3, 1.0)";
    default:
      return "region(reproject(ndvi(goes.band2, goes.band1), "
             "\"mercator\"), bbox(-13000000, 3000000, -10000000, 5500000))";
  }
}

void BM_DsmsEndToEnd(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  DsmsOptions options;
  options.shared_restriction = true;
  DsmsServer server(options);
  StreamGenerator gen(MakeConfig(), ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  for (size_t b = 0; b < 2; ++b) {
    CheckOk(server.RegisterStream(ValueOrDie(gen.Descriptor(b), "desc")),
            "register stream");
  }
  uint64_t frames_delivered = 0;
  for (int i = 0; i < num_queries; ++i) {
    auto id = server.RegisterQuery(
        QueryForClient(i),
        [&frames_delivered](int64_t, const Raster&,
                            const std::vector<uint8_t>&) {
          ++frames_delivered;
        });
    CheckOk(id.status(), "register query");
  }
  std::vector<EventSink*> sinks = {server.ingest("goes.band2"),
                                   server.ingest("goes.band1")};
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, sinks), "scan");
    ++scan;
  }
  const double points =
      static_cast<double>(state.iterations()) * 2.0 * kCells;
  state.SetItemsProcessed(static_cast<int64_t>(points));
  // The physical GOES sample is 4 bytes (f32 radiance).
  state.counters["ingest_MBps"] = benchmark::Counter(
      points * 4.0 / 1.0e6, benchmark::Counter::kIsRate);
  state.counters["goes_requirement_MBps"] = 0.7;
  state.counters["queries"] = num_queries;
  state.counters["frames_per_scan"] =
      static_cast<double>(frames_delivered) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DsmsEndToEnd)->Arg(1)->Arg(8)->Arg(64);

void BM_DsmsEndToEnd_PngDelivery(benchmark::State& state) {
  // Same pipeline with PNG encoding turned on for every frame.
  DsmsOptions options;
  options.encode_png = true;
  DsmsServer server(options);
  StreamGenerator gen(MakeConfig(), ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  for (size_t b = 0; b < 2; ++b) {
    CheckOk(server.RegisterStream(ValueOrDie(gen.Descriptor(b), "desc")),
            "register stream");
  }
  uint64_t png_bytes = 0;
  auto id = server.RegisterQuery(
      "region(goes.band1, bbox(-120, 28, -100, 45))",
      [&png_bytes](int64_t, const Raster&, const std::vector<uint8_t>& png) {
        png_bytes += png.size();
      });
  CheckOk(id.status(), "register query");
  std::vector<EventSink*> sinks = {server.ingest("goes.band2"),
                                   server.ingest("goes.band1")};
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, sinks), "scan");
    ++scan;
  }
  state.SetItemsProcessed(state.iterations() * 2 * kCells);
  state.counters["png_bytes_per_scan"] =
      static_cast<double>(png_bytes) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DsmsEndToEnd_PngDelivery);

void BM_DsmsEndToEnd_WorkerPool(benchmark::State& state) {
  // Worker-pool scaling: 16 per-query plans (restriction / NDVI /
  // vrange / reproject mix) executed by a pool of 1/2/4/8 workers.
  // Shared restriction is off so each query's full plan is real work
  // for its pipeline, and the ingest thread only enqueues. On a
  // multi-core host the series demonstrates near-linear scaling until
  // workers exceed cores; `workers=0` rows in BM_DsmsEndToEnd are the
  // synchronous baseline.
  const size_t workers = static_cast<size_t>(state.range(0));
  constexpr int kQueries = 16;
  DsmsOptions options;
  options.shared_restriction = false;
  options.workers = workers;
  options.worker_queue_capacity = 1 << 16;  // measure throughput, not shedding
  DsmsServer server(options);
  StreamGenerator gen(MakeConfig(), ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  for (size_t b = 0; b < 2; ++b) {
    CheckOk(server.RegisterStream(ValueOrDie(gen.Descriptor(b), "desc")),
            "register stream");
  }
  // Callbacks fire concurrently across queries on pool workers.
  std::atomic<uint64_t> frames_delivered{0};
  for (int i = 0; i < kQueries; ++i) {
    auto id = server.RegisterQuery(
        QueryForClient(i),
        [&frames_delivered](int64_t, const Raster&,
                            const std::vector<uint8_t>&) {
          frames_delivered.fetch_add(1, std::memory_order_relaxed);
        });
    CheckOk(id.status(), "register query");
  }
  std::vector<EventSink*> sinks = {server.ingest("goes.band2"),
                                   server.ingest("goes.band1")};
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, sinks), "scan");
    // Each iteration measures fully processed scans: enqueue + drain.
    CheckOk(server.Flush(), "flush");
    ++scan;
  }
  const double points =
      static_cast<double>(state.iterations()) * 2.0 * kCells;
  state.SetItemsProcessed(static_cast<int64_t>(points));
  state.counters["ingest_MBps"] = benchmark::Counter(
      points * 4.0 / 1.0e6, benchmark::Counter::kIsRate);
  state.counters["workers"] = static_cast<double>(server.num_workers());
  state.counters["frames_per_scan"] =
      static_cast<double>(frames_delivered.load()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DsmsEndToEnd_WorkerPool)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_Dsms_ThreadedIngest(benchmark::State& state) {
  // Ingest decoupled from query processing by a bounded queue
  // (StageRunner), as a receiving station would run it.
  DsmsServer server;
  StreamGenerator gen(MakeConfig(), ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");
  for (size_t b = 0; b < 2; ++b) {
    CheckOk(server.RegisterStream(ValueOrDie(gen.Descriptor(b), "desc")),
            "register stream");
  }
  // One single-band query per band so the two ingest worker threads
  // drive disjoint plans (operators are single-threaded by design;
  // cross-band queries would need a serializing stage in front).
  std::atomic<uint64_t> frames{0};
  for (const char* q :
       {"region(goes.band2, bbox(-120, 28, -95, 45))",
        "vrange(goes.band1, 0, 0.2, 0.9)"}) {
    auto id = server.RegisterQuery(
        q, [&frames](int64_t, const Raster&, const std::vector<uint8_t>&) {
          frames.fetch_add(1, std::memory_order_relaxed);
        });
    CheckOk(id.status(), "register query");
  }
  for (auto _ : state) {
    StageRunner nir(server.ingest("goes.band2"), 64);
    StageRunner vis(server.ingest("goes.band1"), 64);
    CheckOk(gen.GenerateScans(0, 4, {&nir, &vis}), "scan");
    CheckOk(nir.Drain(), "drain nir");
    CheckOk(vis.Drain(), "drain vis");
  }
  state.SetItemsProcessed(state.iterations() * 8 * kCells);
  state.counters["ingest_MBps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 8.0 * kCells * 4.0 / 1.0e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dsms_ThreadedIngest);

}  // namespace
}  // namespace geostreams
