// Experiment E3 (Sec. 3.2, Fig. 2): spatial transforms.
//
// Claims reproduced:
//   * magnification needs no neighbouring points -> zero buffering,
//     k^2 output points per input point;
//   * resolution decrease by 1/k needs a k x k neighbourhood per
//     output point -> bounded buffering (about one output row for
//     row-by-row streams), sweep k in {2, 3, 4, 8};
//   * re-projection (Fig. 2b) buffers the scan sector and pays
//     projection math per target point; nearest vs bilinear kernels;
//     geostationary -> lat/lon and lat/lon -> UTM legs.

#include "bench_util.h"
#include "geo/crs_registry.h"
#include "ops/reproject_op.h"
#include "ops/spatial_transform_op.h"

namespace geostreams {
namespace {

using bench_util::BenchLattice;
using bench_util::PushBenchFrame;
using bench_util::ReportPoints;
using bench_util::ValueOrDie;

void BM_Magnify(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int64_t w = 256, h = 128;
  GridLattice lattice = BenchLattice(w, h);
  MagnifyOp op("m", k);
  NullSink sink;
  op.BindOutput(&sink);
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, 0);
  }
  ReportPoints(state, w * h);
  state.counters["k"] = k;
  state.counters["points_out_per_in"] =
      static_cast<double>(op.metrics().points_out) /
      static_cast<double>(op.metrics().points_in);
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Magnify)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

void BM_Reduce(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int64_t w = 1024, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  ReduceOp op("r", k);
  NullSink sink;
  op.BindOutput(&sink);
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, 0);
  }
  ReportPoints(state, w * h);
  state.counters["k"] = k;
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
  // Compare with the whole reduced frame: the row-by-row stream must
  // buffer far less.
  state.counters["frame_cells_after_reduce"] =
      static_cast<double>((w / k) * (h / k));
}
BENCHMARK(BM_Reduce)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

void BM_Affine_Rotation(benchmark::State& state) {
  const int64_t n = 256;
  GridLattice lattice = BenchLattice(n, n);
  AffineOp op("a", AffineMap::RotationAboutCenter(30.0, n, n), lattice,
              state.range(0) == 0 ? ResampleKernel::kNearest
                                  : ResampleKernel::kBilinear);
  NullSink sink;
  op.BindOutput(&sink);
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, 0);
  }
  ReportPoints(state, n * n);
  state.SetLabel(state.range(0) == 0 ? "nearest" : "bilinear");
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Affine_Rotation)->Arg(0)->Arg(1);

void BM_Reproject_GeosToLatLon(benchmark::State& state) {
  // The prototype's first hop: satellite scan angles -> lat/lon.
  auto geos = ValueOrDie(ResolveCrs("geos:-75"), "geos");
  double x0, y0, x1, y1;
  bench_util::CheckOk(geos->FromGeographic(-124.0, 30.0, &x0, &y0), "sw");
  bench_util::CheckOk(geos->FromGeographic(-100.0, 48.0, &x1, &y1), "ne");
  const int64_t w = 256, h = 192;
  const double dx = (x1 - x0) / w;
  const double dy = (y1 - y0) / h;
  GridLattice lattice(geos, x0 + dx / 2.0, y1 - dy / 2.0, dx, -dy, w, h);
  ReprojectOp op("p", GeographicCrs::Instance(),
                 state.range(0) == 0 ? ResampleKernel::kNearest
                                     : ResampleKernel::kBilinear);
  NullSink sink;
  op.BindOutput(&sink);
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, 0);
  }
  ReportPoints(state, w * h);
  state.SetLabel(state.range(0) == 0 ? "nearest" : "bilinear");
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Reproject_GeosToLatLon)->Arg(0)->Arg(1);

void BM_Reproject_LatLonToUtm(benchmark::State& state) {
  // The Sec. 3.4 target CRS. Transverse Mercator series per point.
  const int64_t w = 256, h = 128;
  GridLattice lattice = BenchLattice(w, h);
  auto utm = ValueOrDie(ResolveCrs("utm:10n"), "utm");
  ReprojectOp op("p", utm, ResampleKernel::kBilinear);
  NullSink sink;
  op.BindOutput(&sink);
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, 0);
  }
  ReportPoints(state, w * h);
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Reproject_LatLonToUtm);

void BM_Reproject_FrameSizeBuffering(benchmark::State& state) {
  // Fig. 2b cost: re-projection buffers the scan sector.
  const int64_t n = state.range(0);
  const int64_t w = 512;
  const int64_t h = n / w;
  GridLattice lattice = BenchLattice(w, h);
  auto merc = ValueOrDie(ResolveCrs("mercator"), "mercator");
  ReprojectOp op("p", merc, ResampleKernel::kNearest);
  NullSink sink;
  op.BindOutput(&sink);
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, 0);
  }
  ReportPoints(state, n);
  state.counters["frame_points"] = static_cast<double>(n);
  state.counters["buffered_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Reproject_FrameSizeBuffering)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20);

}  // namespace
}  // namespace geostreams
