// Experiment E7 (Sec. 4): the dynamic cascade tree serves many
// registered queries as one shared spatial-restriction operator.
//
// Workload: N concurrent rectangular regions of interest (mixed
// sizes), a row-by-row stream stabbing every point against the index.
// Baselines: naive per-query filter bank (O(N) per point) and a
// uniform grid index.
//
// Series reported per (structure, N in 1..4096):
//   * stab throughput (points/s) — the cascade tree should stay flat
//     while the filter bank degrades linearly in N;
//   * registration (insert+remove) cost;
//   * structure size diagnostics.

#include <memory>

#include "bench_util.h"
#include "common/math_util.h"
#include "mqo/cascade_tree.h"
#include "mqo/filter_bank.h"
#include "mqo/grid_index.h"
#include "mqo/shared_restriction.h"

namespace geostreams {
namespace {

using bench_util::BenchLattice;
using bench_util::CheckOk;
using bench_util::PushBenchFrame;
using bench_util::ReportPoints;

const int64_t kWidth = 512, kHeight = 256;

/// Mixed workload: 70% city-sized boxes, 25% state-sized, 5% huge.
BoundingBox RandomRegion(const BoundingBox& extent, uint64_t seed, int i) {
  const double fx = HashToUnit(seed + static_cast<uint64_t>(i) * 4 + 0);
  const double fy = HashToUnit(seed + static_cast<uint64_t>(i) * 4 + 1);
  const double fs = HashToUnit(seed + static_cast<uint64_t>(i) * 4 + 2);
  double frac;
  const double cls = HashToUnit(seed + static_cast<uint64_t>(i) * 4 + 3);
  if (cls < 0.70) {
    frac = 0.005 + 0.01 * fs;
  } else if (cls < 0.95) {
    frac = 0.05 + 0.1 * fs;
  } else {
    frac = 0.3 + 0.4 * fs;
  }
  const double w = extent.width() * frac;
  const double h = extent.height() * frac;
  const double x0 = extent.min_x + fx * (extent.width() - w);
  const double y0 = extent.min_y + fy * (extent.height() - h);
  return BoundingBox(x0, y0, x0 + w, y0 + h);
}

std::unique_ptr<RegionIndex> MakeIndex(int kind, const BoundingBox& extent) {
  switch (kind) {
    case 0:
      return std::make_unique<FilterBank>();
    case 1:
      return std::make_unique<GridIndex>(extent, 64, 64);
    default:
      return std::make_unique<CascadeTree>(extent, 10);
  }
}

const char* IndexName(int kind) {
  return kind == 0 ? "filter-bank" : kind == 1 ? "grid-index" : "cascade-tree";
}

void RunStab(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  GridLattice lattice = BenchLattice(kWidth, kHeight);
  const BoundingBox extent = lattice.Extent();
  auto index = MakeIndex(kind, extent);
  for (int i = 0; i < n; ++i) {
    CheckOk(index->Insert(i, RandomRegion(extent, 12345, i)), "insert");
  }
  std::vector<QueryId> hits;
  uint64_t total_hits = 0;
  for (auto _ : state) {
    // Stab every lattice point once (one frame's worth of routing).
    for (int64_t r = 0; r < kHeight; ++r) {
      const double y = lattice.CellY(r);
      for (int64_t c = 0; c < kWidth; ++c) {
        hits.clear();
        index->Stab(lattice.CellX(c), y, &hits);
        total_hits += hits.size();
      }
    }
  }
  ReportPoints(state, kWidth * kHeight);
  state.SetLabel(IndexName(kind));
  state.counters["queries"] = n;
  state.counters["avg_hits_per_point"] =
      static_cast<double>(total_hits) /
      static_cast<double>(static_cast<int64_t>(state.iterations()) * kWidth *
                          kHeight);
}

void BM_Stab(benchmark::State& state) { RunStab(state); }
BENCHMARK(BM_Stab)
    ->ArgsProduct({{0, 1, 2}, {1, 16, 64, 256, 1024, 4096}});

void BM_RegisterUnregister(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  GridLattice lattice = BenchLattice(kWidth, kHeight);
  const BoundingBox extent = lattice.Extent();
  auto index = MakeIndex(kind, extent);
  // Pre-populate with n resident queries.
  for (int i = 0; i < n; ++i) {
    CheckOk(index->Insert(i, RandomRegion(extent, 999, i)), "insert");
  }
  int next = n;
  for (auto _ : state) {
    // Dynamic churn: one client joins, one leaves.
    CheckOk(index->Insert(next, RandomRegion(extent, 999, next)), "insert");
    CheckOk(index->Remove(next - n), "remove");
    ++next;
  }
  state.SetLabel(IndexName(kind));
  state.counters["resident_queries"] = n;
}
BENCHMARK(BM_RegisterUnregister)
    ->ArgsProduct({{0, 1, 2}, {64, 1024, 4096}});

void BM_SharedRestriction_EndToEnd(benchmark::State& state) {
  // Full shared-restriction operator: stab + exact test + per-query
  // output batch assembly, N subscribers on one stream.
  const int kind = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  GridLattice lattice = BenchLattice(kWidth, kHeight);
  const BoundingBox extent = lattice.Extent();
  SharedRestrictionOp op(MakeIndex(kind, extent));
  std::vector<std::unique_ptr<NullSink>> sinks;
  for (int i = 0; i < n; ++i) {
    sinks.push_back(std::make_unique<NullSink>());
    auto region = std::make_shared<BBoxRegion>(
        RandomRegion(extent, 777, i));
    CheckOk(op.RegisterQuery(i, region, sinks.back().get()), "register");
  }
  for (auto _ : state) {
    PushBenchFrame(&op, lattice, 0);
  }
  ReportPoints(state, kWidth * kHeight);
  state.SetLabel(IndexName(kind));
  state.counters["queries"] = n;
}
BENCHMARK(BM_SharedRestriction_EndToEnd)
    ->ArgsProduct({{0, 2}, {16, 256, 1024}});

}  // namespace
}  // namespace geostreams
