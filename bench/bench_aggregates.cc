// Experiment E9 (Sec. 6 outlook): the spatio-temporal aggregate
// operator of [Zhang/Gertz/Aksoy 2004] integrated as a stream
// operator.
//
// Series reported:
//   * throughput vs number of monitored regions (the operator tests
//     every point against every region);
//   * throughput vs window length (state is constant-size, so the
//     rate must not depend on the window);
//   * state bytes (constant, independent of stream length).

#include "bench_util.h"
#include "ops/aggregate_op.h"

namespace geostreams {
namespace {

using bench_util::BenchLattice;
using bench_util::PushBenchFrame;
using bench_util::ReportPoints;

std::vector<RegionPtr> MakeRegions(const BoundingBox& extent, int n) {
  std::vector<RegionPtr> regions;
  for (int i = 0; i < n; ++i) {
    const double fx = (i % 8) / 8.0;
    const double fy = (i / 8 % 8) / 8.0;
    const double x0 = extent.min_x + fx * extent.width();
    const double y0 = extent.min_y + fy * extent.height();
    regions.push_back(MakeBBoxRegion(x0, y0, x0 + extent.width() / 8.0,
                                     y0 + extent.height() / 8.0));
  }
  return regions;
}

void BM_Aggregate_RegionCount(benchmark::State& state) {
  const int regions = static_cast<int>(state.range(0));
  const int64_t w = 512, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  AggregateOp op("a", AggregateFn::kAvg,
                 MakeRegions(lattice.Extent(), regions), 1);
  NullSink sink;
  op.BindOutput(&sink);
  int64_t frame = 0;
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, frame++);
  }
  ReportPoints(state, w * h);
  state.counters["regions"] = regions;
  state.counters["state_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Aggregate_RegionCount)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_Aggregate_WindowLength(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  const int64_t w = 512, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  AggregateOp op("a", AggregateFn::kAvg, MakeRegions(lattice.Extent(), 8),
                 window);
  NullSink sink;
  op.BindOutput(&sink);
  int64_t frame = 0;
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, frame++);
  }
  ReportPoints(state, w * h);
  state.counters["window_frames"] = window;
  state.counters["state_bytes"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}
BENCHMARK(BM_Aggregate_WindowLength)->Arg(1)->Arg(4)->Arg(16)->Arg(96);

void BM_Aggregate_Functions(benchmark::State& state) {
  const auto fn = static_cast<AggregateFn>(state.range(0));
  const int64_t w = 512, h = 256;
  GridLattice lattice = BenchLattice(w, h);
  AggregateOp op("a", fn, MakeRegions(lattice.Extent(), 8), 1);
  NullSink sink;
  op.BindOutput(&sink);
  int64_t frame = 0;
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, frame++);
  }
  ReportPoints(state, w * h);
  state.SetLabel(AggregateFnName(fn));
}
BENCHMARK(BM_Aggregate_Functions)->DenseRange(0, 4);

}  // namespace
}  // namespace geostreams
