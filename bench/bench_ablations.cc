// Ablation experiments for the design choices DESIGN.md calls out.
//
//  A1 batch size      — events carry batches of points rather than
//                       single points; sweeping points-per-batch shows
//                       why (per-event overhead amortization).
//  A2 cascade depth   — the cascade tree's max subdivision depth
//                       trades stab cost (deeper = longer walks) for
//                       partial-list sizes (shallower = more exact
//                       tests at the leaves).
//  A3 load shedding   — throughput recovered and product error
//                       introduced by the three shedding policies at
//                       different keep fractions.
//  A4 frame pruning   — disable the restriction's frame-level extent
//                       check by straddling the region across the
//                       sector edge vs a fully disjoint region.
//  A5 scheduling      — round-robin vs longest-queue-first dispatch
//                       over skewed per-query backlogs (the intro's
//                       "operator scheduling" technique).

#include <memory>

#include "bench_util.h"
#include "common/math_util.h"
#include "mqo/cascade_tree.h"
#include "ops/aggregate_op.h"
#include "ops/restriction_ops.h"
#include "ops/shedding_op.h"
#include "stream/scheduler.h"

namespace geostreams {
namespace {

using bench_util::BenchLattice;
using bench_util::CheckOk;
using bench_util::PushBenchFrame;
using bench_util::ReportPoints;

// --- A1: batch size -------------------------------------------------------------

void BM_Ablation_BatchSize(benchmark::State& state) {
  const int64_t batch_points = state.range(0);
  const int64_t total = 256 << 10;
  GridLattice lattice = BenchLattice(512, total / 512);
  SpatialRestrictionOp op("r", AllRegion::Instance());
  NullSink sink;
  op.BindOutput(&sink);

  // Pre-build the frame's batches at the requested granularity.
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  std::vector<PointBatchPtr> batches;
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int64_t col = 0; col < lattice.width(); ++col) {
      batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row),
                     0, 0.5);
      if (batch->size() >= static_cast<size_t>(batch_points)) {
        batches.push_back(std::move(batch));
        batch = std::make_shared<PointBatch>();
        batch->band_count = 1;
      }
    }
  }
  if (!batch->empty()) batches.push_back(std::move(batch));

  for (auto _ : state) {
    CheckOk(op.input(0)->Consume(StreamEvent::FrameBegin(info)), "begin");
    for (const PointBatchPtr& b : batches) {
      CheckOk(op.input(0)->Consume(StreamEvent::Batch(b)), "batch");
    }
    CheckOk(op.input(0)->Consume(StreamEvent::FrameEnd(info)), "end");
  }
  ReportPoints(state, total);
  state.counters["points_per_batch"] = static_cast<double>(batch_points);
}
BENCHMARK(BM_Ablation_BatchSize)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(64 << 10);

// --- A2: cascade tree depth -------------------------------------------------------

void BM_Ablation_CascadeDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int queries = 1024;
  GridLattice lattice = BenchLattice(512, 256);
  const BoundingBox extent = lattice.Extent();
  CascadeTree tree(extent, depth);
  for (int i = 0; i < queries; ++i) {
    const double fx = HashToUnit(static_cast<uint64_t>(i) * 3 + 1);
    const double fy = HashToUnit(static_cast<uint64_t>(i) * 3 + 2);
    const double frac =
        0.005 + 0.05 * HashToUnit(static_cast<uint64_t>(i) * 3 + 3);
    const double w = extent.width() * frac;
    const double h = extent.height() * frac;
    const double x0 = extent.min_x + fx * (extent.width() - w);
    const double y0 = extent.min_y + fy * (extent.height() - h);
    CheckOk(tree.Insert(i, BoundingBox(x0, y0, x0 + w, y0 + h)), "insert");
  }
  std::vector<QueryId> hits;
  for (auto _ : state) {
    for (int64_t r = 0; r < lattice.height(); ++r) {
      const double y = lattice.CellY(r);
      for (int64_t c = 0; c < lattice.width(); ++c) {
        hits.clear();
        tree.Stab(lattice.CellX(c), y, &hits);
        benchmark::DoNotOptimize(hits.data());
      }
    }
  }
  ReportPoints(state, lattice.num_cells());
  state.counters["max_depth"] = depth;
  state.counters["nodes"] = static_cast<double>(tree.node_count());
}
BENCHMARK(BM_Ablation_CascadeDepth)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(12);

// --- A3: load shedding -------------------------------------------------------------

void BM_Ablation_Shedding(benchmark::State& state) {
  const auto mode = static_cast<SheddingMode>(state.range(0));
  const double keep = static_cast<double>(state.range(1)) / 100.0;
  GridLattice lattice = BenchLattice(512, 256);
  LoadSheddingOp shed("shed", mode, keep);
  auto region = MakeBBoxRegion(-120.0, 28.0, -90.0, 46.0);
  AggregateOp agg("agg", AggregateFn::kAvg, {region}, 1);
  NullSink sink;
  shed.BindOutput(agg.input(0));
  agg.BindOutput(&sink);
  int64_t frame = 0;
  for (auto _ : state) {
    PushBenchFrame(shed.input(0), lattice, frame++);
  }
  ReportPoints(state, lattice.num_cells());
  state.SetLabel(SheddingModeName(mode));
  state.counters["keep_pct"] = static_cast<double>(state.range(1));
  // Product error: shed vs exact average over the SAME frames (the
  // timed loop's frame ids vary, so measure separately on frames
  // 0..7 — drop-frames needs several frames for a meaningful figure).
  double shed_sum = 0.0, exact_sum = 0.0;
  int shed_windows = 0, exact_windows = 0;
  {
    LoadSheddingOp shed2("s2", mode, keep);
    AggregateOp agg2("a2", AggregateFn::kAvg, {region}, 1);
    NullSink s2;
    shed2.BindOutput(agg2.input(0));
    agg2.BindOutput(&s2);
    AggregateOp exact_agg("e", AggregateFn::kAvg, {region}, 1);
    NullSink s3;
    exact_agg.BindOutput(&s3);
    for (int64_t f = 0; f < 8; ++f) {
      PushBenchFrame(shed2.input(0), lattice, f);
      PushBenchFrame(exact_agg.input(0), lattice, f);
    }
    for (const AggregateResult& r : agg2.results()) {
      if (r.count > 0) {
        shed_sum += r.value;
        ++shed_windows;
      }
    }
    for (const AggregateResult& r : exact_agg.results()) {
      exact_sum += r.value;
      ++exact_windows;
    }
  }
  const double exact =
      exact_windows ? exact_sum / exact_windows : 0.0;
  const double shed_avg = shed_windows ? shed_sum / shed_windows : exact;
  state.counters["avg_abs_error_pct"] =
      exact == 0.0 ? 0.0
                   : 100.0 * std::fabs(shed_avg - exact) / std::fabs(exact);
}
BENCHMARK(BM_Ablation_Shedding)
    ->ArgsProduct({{0, 1, 2}, {10, 25, 50, 100}});

// --- A4: frame-level pruning --------------------------------------------------------

void BM_Ablation_FramePruning(benchmark::State& state) {
  // Disjoint region: one bbox test per frame. Straddling region with
  // near-zero selectivity: per-point tests for the whole frame. The
  // gap is the value of the frame-extent check.
  GridLattice lattice = BenchLattice(1024, 256);
  const BoundingBox ext = lattice.Extent();
  RegionPtr region;
  if (state.range(0) == 0) {
    region = MakeBBoxRegion(ext.max_x + 1.0, ext.max_y + 1.0,
                            ext.max_x + 2.0, ext.max_y + 2.0);  // disjoint
  } else {
    // Overlaps one corner cell: prune impossible, selectivity ~0.
    region = MakeBBoxRegion(ext.min_x - 1.0, ext.min_y - 1.0,
                            ext.min_x + 1e-6, ext.min_y + 1e-6);
  }
  SpatialRestrictionOp op("r", region);
  NullSink sink;
  op.BindOutput(&sink);
  for (auto _ : state) {
    PushBenchFrame(op.input(0), lattice, 0);
  }
  ReportPoints(state, lattice.num_cells());
  state.SetLabel(state.range(0) == 0 ? "disjoint(pruned)"
                                     : "corner(per-point)");
}
BENCHMARK(BM_Ablation_FramePruning)->Arg(0)->Arg(1);


// --- A5: scheduling policy ---------------------------------------------------------

void BM_Ablation_SchedulingPolicy(benchmark::State& state) {
  const auto policy = static_cast<SchedulingPolicy>(state.range(0));
  // Eight queries with skewed load: query 0 gets 8x the traffic.
  constexpr int kQueries = 8;
  GridLattice lattice = BenchLattice(256, 64);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<NullSink>> sinks;
    QueryScheduler scheduler(policy, /*queue_capacity=*/1 << 16);
    std::vector<EventSink*> inputs;
    for (int q = 0; q < kQueries; ++q) {
      sinks.push_back(std::make_unique<NullSink>());
      inputs.push_back(scheduler.AddPipeline("q" + std::to_string(q),
                                             sinks.back().get()));
    }
    CheckOk(scheduler.Start(), "start");
    state.ResumeTiming();
    for (int round = 0; round < 8; ++round) {
      PushBenchFrame(inputs[0], lattice, round);
      if (round == 0) {
        for (int q = 1; q < kQueries; ++q) {
          PushBenchFrame(inputs[q], lattice, round);
        }
      }
    }
    CheckOk(scheduler.Stop(), "stop");
  }
  ReportPoints(state, 15 * lattice.num_cells());
  state.SetLabel(SchedulingPolicyName(policy));
}
BENCHMARK(BM_Ablation_SchedulingPolicy)->Arg(0)->Arg(1);

}  // namespace
}  // namespace geostreams
