// Experiment E5 (Sec. 3.3): timestamping policy decides whether a
// composition can ever produce output.
//
// "If incoming points are timestamped based on when the points were
// measured, a stream composition operator would never produce new
// image data as respective timestamps would never match. That is why
// in practice, point data is timestamped using scan-sector
// identifiers."
//
// Series reported per policy in {measurement-time, scan-sector-id}:
//   * matches and points_out (0 vs full frame);
//   * peak pending-buffer bytes (eviction keeps measurement-time
//     bounded, but it still pays a full frame of transient state);
//   * throughput (the doomed composition still costs hashing work).

#include "bench_util.h"
#include "ops/compose_op.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

namespace geostreams {
namespace {

using bench_util::CheckOk;
using bench_util::ReportPoints;

void RunPolicy(benchmark::State& state, TimestampPolicy policy) {
  const int64_t cells = 64 << 10;
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = cells;
  config.organization = PointOrganization::kRowByRow;
  config.timestamp_policy = policy;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  StreamGenerator gen(config, ScanSchedule::GoesRoutine());
  CheckOk(gen.Init(), "init");

  ComposeOp op("ndvi", BinaryValueFn::Ndvi());
  NullSink sink;
  op.BindOutput(&sink);
  int64_t scan = 0;
  for (auto _ : state) {
    CheckOk(gen.GenerateScans(scan, 1, {op.input(0), op.input(1)}), "scan");
    ++scan;
  }
  ReportPoints(state, 2 * cells);
  state.SetLabel(TimestampPolicyName(policy));
  state.counters["matches"] = static_cast<double>(op.matches());
  state.counters["points_out"] =
      static_cast<double>(op.metrics().points_out);
  state.counters["match_rate_pct"] =
      100.0 * static_cast<double>(op.matches()) /
      static_cast<double>(static_cast<int64_t>(state.iterations()) * cells);
  state.counters["pending_bytes_high_water"] = static_cast<double>(
      op.metrics().buffered_bytes_high_water);
}

void BM_Timestamp_ScanSectorId(benchmark::State& state) {
  RunPolicy(state, TimestampPolicy::kScanSectorId);
}
BENCHMARK(BM_Timestamp_ScanSectorId);

void BM_Timestamp_MeasurementTime(benchmark::State& state) {
  RunPolicy(state, TimestampPolicy::kMeasurementTime);
}
BENCHMARK(BM_Timestamp_MeasurementTime);

}  // namespace
}  // namespace geostreams
