// Spatial transform operators G . f_spat (Definition 9, Sec. 3.2).
//
// Three concrete transforms:
//  * MagnifyOp     — resolution increase by k: each incoming point
//                    yields a k x k block of output points. Needs no
//                    neighbouring points, hence no buffering.
//  * ReduceOp      — resolution decrease by 1/k (Fig. 2a): each output
//                    point needs a k x k input neighbourhood. Output
//                    points are emitted as soon as their neighbourhood
//                    completes, so a row-by-row stream buffers only
//                    ~k input rows, while an image-by-image stream
//                    buffers up to the frame. FrameEnd metadata flushes
//                    boundary cells (the paper's "boundary point
//                    interpolations" from scan-sector metadata).
//  * AffineOp      — general affine map between lattices (rotation,
//                    shear, translation, zoom); buffers the frame and
//                    gathers with a resampling kernel.

#ifndef GEOSTREAMS_OPS_SPATIAL_TRANSFORM_OP_H_
#define GEOSTREAMS_OPS_SPATIAL_TRANSFORM_OP_H_

#include <unordered_map>
#include <vector>

#include "raster/frame_assembler.h"
#include "raster/resample.h"
#include "stream/operator.h"

namespace geostreams {

/// Resolution increase by an integer factor (zooming).
class MagnifyOp : public UnaryOperator {
 public:
  MagnifyOp(std::string name, int factor);

  int factor() const { return factor_; }

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  int factor_;
  GridLattice out_lattice_;
};

/// Resolution decrease by an integer factor with box averaging.
class ReduceOp : public UnaryOperator {
 public:
  ReduceOp(std::string name, int factor);

  int factor() const { return factor_; }

  void Reset() override;

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  struct CellAccum {
    double sum = 0.0;
    int32_t count = 0;
    int32_t expected = 0;
    int64_t timestamp = 0;
  };

  Status EmitReady(std::vector<std::pair<int64_t, CellAccum>>* ready);
  Status FlushAll();
  int32_t ExpectedContributions(int64_t ocol, int64_t orow) const;

  int factor_;
  GridLattice in_lattice_;
  GridLattice out_lattice_;
  bool in_frame_ = false;
  int64_t frame_id_ = 0;
  // Key: orow * out_width + ocol.
  std::unordered_map<int64_t, CellAccum> accum_;
};

/// 2x3 affine matrix mapping output lattice cell indices to input
/// lattice cell indices: (ic, ir) = M * (oc, or, 1).
struct AffineMap {
  double m00 = 1.0, m01 = 0.0, m02 = 0.0;
  double m10 = 0.0, m11 = 1.0, m12 = 0.0;

  void Apply(double oc, double orow, double* ic, double* ir) const {
    *ic = m00 * oc + m01 * orow + m02;
    *ir = m10 * oc + m11 * orow + m12;
  }

  /// Rotation by `deg` about the centre of a w x h output lattice,
  /// sampling from an equally-sized input lattice.
  static AffineMap RotationAboutCenter(double deg, int64_t w, int64_t h);
};

/// General affine spatial transform; frame-buffered.
class AffineOp : public UnaryOperator {
 public:
  /// Output lattice geometry is supplied by the planner (it generally
  /// differs from the input's).
  AffineOp(std::string name, AffineMap map, GridLattice out_lattice,
           ResampleKernel kernel);

  void Reset() override;

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  Status FlushFrame(const FrameInfo& info);

  AffineMap map_;
  GridLattice out_lattice_;
  ResampleKernel kernel_;
  FrameAssembler assembler_;
  int64_t frame_timestamp_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_SPATIAL_TRANSFORM_OP_H_
