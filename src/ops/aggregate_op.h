// Spatio-temporal aggregates over raster streams.
//
// The paper's outlook (Sec. 6) names the integration of the
// spatio-temporal aggregate operator of Zhang/Gertz/Aksoy (ACM-GIS
// 2004) as the next extension. This operator computes, for a set of
// named regions and a window of W consecutive frames (scan sectors),
// an aggregate of all point values falling inside each region.
// Windows tumble by default and slide when `slide_frames` < W (the
// sliding form of [27]); sliding windows keep per-frame partial
// aggregates so each frame is scanned once. Results are emitted as a
// 1 x R lattice frame per window (column = region index), keeping the
// algebra closed, and are also available programmatically.

#ifndef GEOSTREAMS_OPS_AGGREGATE_OP_H_
#define GEOSTREAMS_OPS_AGGREGATE_OP_H_

#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "geo/region.h"
#include "stream/operator.h"

namespace geostreams {

enum class AggregateFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateFnName(AggregateFn fn);

/// One completed aggregate value.
struct AggregateResult {
  int region_index = 0;
  int64_t window_start_frame = 0;
  int64_t window_end_frame = 0;  // inclusive
  uint64_t count = 0;
  double value = 0.0;
};

class AggregateOp : public UnaryOperator {
 public:
  /// `window_frames` >= 1 consecutive frames per window;
  /// `slide_frames` in [1, window_frames] — the default (0) slides by
  /// the full window (tumbling).
  AggregateOp(std::string name, AggregateFn fn,
              std::vector<RegionPtr> regions, int window_frames,
              int slide_frames = 0);

  const std::vector<AggregateResult>& results() const { return results_; }

  void Reset() override;

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  struct Accum {
    uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    void Merge(const Accum& other) {
      count += other.count;
      sum += other.sum;
      if (other.min < min) min = other.min;
      if (other.max > max) max = other.max;
    }
  };

  /// Per-frame partial aggregates (one Accum per region).
  struct FramePartial {
    int64_t frame_id = 0;
    std::vector<Accum> accums;
  };

  Status EmitWindow();
  double Finalize(const Accum& a) const;
  void ReportState();

  AggregateFn fn_;
  std::vector<RegionPtr> regions_;
  int window_frames_;
  int slide_frames_;
  GridLattice frame_lattice_;
  std::deque<FramePartial> partials_;  // at most window_frames_ entries
  FramePartial current_;
  bool frame_open_ = false;
  /// Frames accumulated since the last emission.
  int frames_since_emit_ = 0;
  std::vector<AggregateResult> results_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_AGGREGATE_OP_H_
