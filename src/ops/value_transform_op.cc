#include "ops/value_transform_op.h"

#include "common/math_util.h"
#include "common/string_util.h"
#include "kernels/kernels.h"

namespace geostreams {

ValueFn ValueFn::ColorToGray() {
  ValueFn f;
  f.name = "color_to_gray";
  f.in_bands = 3;
  f.out_bands = 1;
  f.kind = Kind::kColorToGray;
  f.fn = [](const double* in, double* out) {
    // ITU-R BT.601 luma weights.
    out[0] = 0.299 * in[0] + 0.587 * in[1] + 0.114 * in[2];
  };
  return f;
}

ValueFn ValueFn::AffineRescale(int bands, double scale, double offset) {
  ValueFn f;
  f.name = StringPrintf("rescale(%g, %g)", scale, offset);
  f.in_bands = bands;
  f.out_bands = bands;
  f.kind = Kind::kAffineRescale;
  f.a = scale;
  f.b = offset;
  f.fn = [bands, scale, offset](const double* in, double* out) {
    for (int b = 0; b < bands; ++b) out[b] = scale * in[b] + offset;
  };
  return f;
}

ValueFn ValueFn::BandSelect(int in_bands, int band) {
  ValueFn f;
  f.name = StringPrintf("band(%d)", band);
  f.in_bands = in_bands;
  f.out_bands = 1;
  f.kind = Kind::kBandSelect;
  f.band = band;
  f.fn = [band](const double* in, double* out) { out[0] = in[band]; };
  return f;
}

ValueFn ValueFn::ClampTo(int bands, double lo, double hi) {
  ValueFn f;
  f.name = StringPrintf("clamp(%g, %g)", lo, hi);
  f.in_bands = bands;
  f.out_bands = bands;
  f.kind = Kind::kClamp;
  f.a = lo;
  f.b = hi;
  f.fn = [bands, lo, hi](const double* in, double* out) {
    for (int b = 0; b < bands; ++b) out[b] = Clamp(in[b], lo, hi);
  };
  return f;
}

ValueFn ValueFn::AbsValue(int bands) {
  ValueFn f;
  f.name = "abs";
  f.in_bands = bands;
  f.out_bands = bands;
  f.kind = Kind::kAbs;
  f.fn = [bands](const double* in, double* out) {
    for (int b = 0; b < bands; ++b) out[b] = in[b] < 0 ? -in[b] : in[b];
  };
  return f;
}

ValueTransformOp::ValueTransformOp(std::string name, ValueFn fn)
    : UnaryOperator(std::move(name)), fn_(std::move(fn)) {}

Status ValueTransformOp::Process(const StreamEvent& event) {
  if (event.kind != EventKind::kPointBatch) return Emit(event);
  const PointBatch& in = *event.batch;
  if (in.band_count != fn_.in_bands) {
    return Status::InvalidArgument(StringPrintf(
        "value transform %s expects %d bands, stream has %d",
        fn_.name.c_str(), fn_.in_bands, in.band_count));
  }
  const size_t n = in.size();
  auto out = std::make_shared<PointBatch>();
  out->frame_id = in.frame_id;
  out->band_count = fn_.out_bands;
  out->cols = in.cols;
  out->rows = in.rows;
  out->timestamps = in.timestamps;
  out->values.resize(n * static_cast<size_t>(fn_.out_bands));
  const double* src = in.values.data();
  double* dst = out->values.data();
  // Built-in transforms run as one kernel pass over the flat sample
  // column (band-pointwise transforms treat n points * b bands as
  // n*b independent samples).
  switch (fn_.kind) {
    case ValueFn::Kind::kColorToGray:
      kernels::ColorToGray(src, n, dst);
      break;
    case ValueFn::Kind::kAffineRescale:
      kernels::AffineRescale(src, n * static_cast<size_t>(fn_.in_bands),
                             fn_.a, fn_.b, dst);
      break;
    case ValueFn::Kind::kBandSelect:
      kernels::BandSelect(src, n, fn_.in_bands, fn_.band, dst);
      break;
    case ValueFn::Kind::kClamp:
      kernels::ClampValues(src, n * static_cast<size_t>(fn_.in_bands), fn_.a,
                           fn_.b, dst);
      break;
    case ValueFn::Kind::kAbs:
      kernels::AbsValues(src, n * static_cast<size_t>(fn_.in_bands), dst);
      break;
    case ValueFn::Kind::kGeneric: {
      if (!fn_.fn) {
        return Status::InvalidArgument(StringPrintf(
            "value transform %s has no function bound", fn_.name.c_str()));
      }
      for (size_t i = 0; i < n; ++i) {
        fn_.fn(&src[i * static_cast<size_t>(fn_.in_bands)],
               &dst[i * static_cast<size_t>(fn_.out_bands)]);
      }
      break;
    }
  }
  return Emit(StreamEvent::Batch(std::move(out)));
}

}  // namespace geostreams
