#include "ops/value_transform_op.h"

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

ValueFn ValueFn::ColorToGray() {
  ValueFn f;
  f.name = "color_to_gray";
  f.in_bands = 3;
  f.out_bands = 1;
  f.fn = [](const double* in, double* out) {
    // ITU-R BT.601 luma weights.
    out[0] = 0.299 * in[0] + 0.587 * in[1] + 0.114 * in[2];
  };
  return f;
}

ValueFn ValueFn::AffineRescale(int bands, double scale, double offset) {
  ValueFn f;
  f.name = StringPrintf("rescale(%g, %g)", scale, offset);
  f.in_bands = bands;
  f.out_bands = bands;
  f.fn = [bands, scale, offset](const double* in, double* out) {
    for (int b = 0; b < bands; ++b) out[b] = scale * in[b] + offset;
  };
  return f;
}

ValueFn ValueFn::BandSelect(int in_bands, int band) {
  ValueFn f;
  f.name = StringPrintf("band(%d)", band);
  f.in_bands = in_bands;
  f.out_bands = 1;
  f.fn = [band](const double* in, double* out) { out[0] = in[band]; };
  return f;
}

ValueFn ValueFn::ClampTo(int bands, double lo, double hi) {
  ValueFn f;
  f.name = StringPrintf("clamp(%g, %g)", lo, hi);
  f.in_bands = bands;
  f.out_bands = bands;
  f.fn = [bands, lo, hi](const double* in, double* out) {
    for (int b = 0; b < bands; ++b) out[b] = Clamp(in[b], lo, hi);
  };
  return f;
}

ValueFn ValueFn::AbsValue(int bands) {
  ValueFn f;
  f.name = "abs";
  f.in_bands = bands;
  f.out_bands = bands;
  f.fn = [bands](const double* in, double* out) {
    for (int b = 0; b < bands; ++b) out[b] = in[b] < 0 ? -in[b] : in[b];
  };
  return f;
}

ValueTransformOp::ValueTransformOp(std::string name, ValueFn fn)
    : UnaryOperator(std::move(name)), fn_(std::move(fn)) {}

Status ValueTransformOp::Process(const StreamEvent& event) {
  if (event.kind != EventKind::kPointBatch) return Emit(event);
  const PointBatch& in = *event.batch;
  if (in.band_count != fn_.in_bands) {
    return Status::InvalidArgument(StringPrintf(
        "value transform %s expects %d bands, stream has %d",
        fn_.name.c_str(), fn_.in_bands, in.band_count));
  }
  auto out = std::make_shared<PointBatch>();
  out->frame_id = in.frame_id;
  out->band_count = fn_.out_bands;
  out->cols = in.cols;
  out->rows = in.rows;
  out->timestamps = in.timestamps;
  out->values.resize(in.size() * static_cast<size_t>(fn_.out_bands));
  for (size_t i = 0; i < in.size(); ++i) {
    fn_.fn(&in.values[i * static_cast<size_t>(fn_.in_bands)],
           &out->values[i * static_cast<size_t>(fn_.out_bands)]);
  }
  return Emit(StreamEvent::Batch(std::move(out)));
}

}  // namespace geostreams
