#include "ops/spatial_transform_op.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

// ---------------------------------------------------------------------------
// MagnifyOp

MagnifyOp::MagnifyOp(std::string name, int factor)
    : UnaryOperator(std::move(name)), factor_(factor) {}

Status MagnifyOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin: {
      out_lattice_ = event.frame.lattice.Magnified(factor_);
      FrameInfo info = event.frame;
      info.lattice = out_lattice_;
      info.expected_points =
          event.frame.expected_points * factor_ * factor_;
      return Emit(StreamEvent::FrameBegin(std::move(info)));
    }
    case EventKind::kFrameEnd: {
      FrameInfo info = event.frame;
      info.lattice = out_lattice_;
      return Emit(StreamEvent::FrameEnd(std::move(info)));
    }
    case EventKind::kStreamEnd:
      return Emit(event);
    case EventKind::kPointBatch:
      break;
  }
  const PointBatch& in = *event.batch;
  auto out = std::make_shared<PointBatch>();
  out->frame_id = in.frame_id;
  out->band_count = in.band_count;
  const auto k = static_cast<size_t>(factor_);
  out->Reserve(in.size() * k * k);
  for (size_t i = 0; i < in.size(); ++i) {
    const int32_t c0 = in.cols[i] * factor_;
    const int32_t r0 = in.rows[i] * factor_;
    const double* vals = &in.values[i * static_cast<size_t>(in.band_count)];
    for (int dr = 0; dr < factor_; ++dr) {
      for (int dc = 0; dc < factor_; ++dc) {
        out->Append(c0 + dc, r0 + dr, in.timestamps[i], vals);
      }
    }
  }
  return Emit(StreamEvent::Batch(std::move(out)));
}

// ---------------------------------------------------------------------------
// ReduceOp

ReduceOp::ReduceOp(std::string name, int factor)
    : UnaryOperator(std::move(name)), factor_(factor) {}

void ReduceOp::Reset() {
  accum_.clear();
  in_frame_ = false;
  ReportBuffered(0);
}

int32_t ReduceOp::ExpectedContributions(int64_t ocol, int64_t orow) const {
  // Edge cells cover fewer input cells when the extent is not a
  // multiple of the factor.
  const int64_t c0 = ocol * factor_;
  const int64_t r0 = orow * factor_;
  const int64_t cw = std::min<int64_t>(factor_, in_lattice_.width() - c0);
  const int64_t rh = std::min<int64_t>(factor_, in_lattice_.height() - r0);
  return static_cast<int32_t>(cw * rh);
}

Status ReduceOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin: {
      in_lattice_ = event.frame.lattice;
      out_lattice_ = in_lattice_.Reduced(factor_);
      in_frame_ = true;
      frame_id_ = event.frame.frame_id;
      accum_.clear();
      FrameInfo info = event.frame;
      info.lattice = out_lattice_;
      info.expected_points = out_lattice_.num_cells();
      return Emit(StreamEvent::FrameBegin(std::move(info)));
    }
    case EventKind::kFrameEnd: {
      GEOSTREAMS_RETURN_IF_ERROR(FlushAll());
      in_frame_ = false;
      FrameInfo info = event.frame;
      info.lattice = out_lattice_;
      return Emit(StreamEvent::FrameEnd(std::move(info)));
    }
    case EventKind::kStreamEnd:
      if (in_frame_) {
        GEOSTREAMS_RETURN_IF_ERROR(FlushAll());
        in_frame_ = false;
      }
      return Emit(event);
    case EventKind::kPointBatch:
      break;
  }
  if (!in_frame_) {
    return Status::FailedPrecondition(
        "resolution decrease requires framed input (scan-sector "
        "metadata bounds the neighbourhood buffers)");
  }
  const PointBatch& in = *event.batch;
  if (in.band_count != 1) {
    return Status::InvalidArgument("ReduceOp supports single-band streams");
  }
  auto out = std::make_shared<PointBatch>();
  out->frame_id = frame_id_;
  out->band_count = 1;
  for (size_t i = 0; i < in.size(); ++i) {
    const int64_t oc = in.cols[i] / factor_;
    const int64_t orow = in.rows[i] / factor_;
    const int64_t key = orow * out_lattice_.width() + oc;
    CellAccum& cell = accum_[key];
    if (cell.count == 0) {
      cell.expected = ExpectedContributions(oc, orow);
      cell.timestamp = in.timestamps[i];
    }
    cell.sum += in.ValueAt(i);
    ++cell.count;
    if (cell.count >= cell.expected) {
      out->Append1(static_cast<int32_t>(oc), static_cast<int32_t>(orow),
                   cell.timestamp, cell.sum / cell.count);
      accum_.erase(key);
    }
  }
  ReportBuffered(accum_.size() * (sizeof(int64_t) + sizeof(CellAccum)));
  if (out->empty()) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(out)));
}

Status ReduceOp::FlushAll() {
  if (accum_.empty()) {
    ReportBuffered(0);
    return Status::OK();
  }
  // Boundary cells whose neighbourhood never completed (points lost or
  // sector cut short): emit the average of what arrived.
  auto out = std::make_shared<PointBatch>();
  out->frame_id = frame_id_;
  out->band_count = 1;
  for (const auto& [key, cell] : accum_) {
    const int64_t orow = key / out_lattice_.width();
    const int64_t oc = key % out_lattice_.width();
    out->Append1(static_cast<int32_t>(oc), static_cast<int32_t>(orow),
                 cell.timestamp, cell.sum / cell.count);
  }
  accum_.clear();
  ReportBuffered(0);
  return Emit(StreamEvent::Batch(std::move(out)));
}

// ---------------------------------------------------------------------------
// AffineOp

AffineMap AffineMap::RotationAboutCenter(double deg, int64_t w, int64_t h) {
  const double rad = DegreesToRadians(deg);
  const double c = std::cos(rad);
  const double s = std::sin(rad);
  const double cx = (static_cast<double>(w) - 1.0) / 2.0;
  const double cy = (static_cast<double>(h) - 1.0) / 2.0;
  // Inverse rotation (output gathers from input).
  AffineMap m;
  m.m00 = c;
  m.m01 = s;
  m.m02 = cx - c * cx - s * cy;
  m.m10 = -s;
  m.m11 = c;
  m.m12 = cy + s * cx - c * cy;
  return m;
}

AffineOp::AffineOp(std::string name, AffineMap map, GridLattice out_lattice,
                   ResampleKernel kernel)
    : UnaryOperator(std::move(name)),
      map_(map),
      out_lattice_(std::move(out_lattice)),
      kernel_(kernel) {}

void AffineOp::Reset() {
  assembler_.Abort();
  ReportBuffered(0);
}

Status AffineOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin: {
      GEOSTREAMS_RETURN_IF_ERROR(assembler_.Begin(event.frame, 1));
      frame_timestamp_ = event.frame.frame_id;
      FrameInfo info = event.frame;
      info.lattice = out_lattice_;
      info.expected_points = out_lattice_.num_cells();
      return Emit(StreamEvent::FrameBegin(std::move(info)));
    }
    case EventKind::kPointBatch: {
      if (!assembler_.active()) {
        return Status::FailedPrecondition(
            "affine transform requires framed input");
      }
      GEOSTREAMS_RETURN_IF_ERROR(assembler_.Add(*event.batch));
      if (!event.batch->empty()) {
        frame_timestamp_ = event.batch->timestamps.front();
      }
      ReportBuffered(assembler_.BufferedBytes());
      return Status::OK();
    }
    case EventKind::kFrameEnd: {
      GEOSTREAMS_RETURN_IF_ERROR(FlushFrame(event.frame));
      FrameInfo info = event.frame;
      info.lattice = out_lattice_;
      return Emit(StreamEvent::FrameEnd(std::move(info)));
    }
    case EventKind::kStreamEnd:
      return Emit(event);
  }
  return Status::OK();
}

Status AffineOp::FlushFrame(const FrameInfo& info) {
  GEOSTREAMS_ASSIGN_OR_RETURN(AssembledFrame frame, assembler_.Finish());
  ReportBuffered(0);
  auto out = std::make_shared<PointBatch>();
  out->frame_id = info.frame_id;
  out->band_count = 1;
  out->Reserve(static_cast<size_t>(out_lattice_.num_cells()));
  for (int64_t r = 0; r < out_lattice_.height(); ++r) {
    for (int64_t c = 0; c < out_lattice_.width(); ++c) {
      double ic = 0.0, ir = 0.0;
      map_.Apply(static_cast<double>(c), static_cast<double>(r), &ic, &ir);
      if (ic < -0.5 || ic > frame.raster.width() - 0.5 || ir < -0.5 ||
          ir > frame.raster.height() - 0.5) {
        continue;  // outside the source frame
      }
      const int64_t nc = static_cast<int64_t>(std::llround(Clamp(
          ic, 0.0, static_cast<double>(frame.raster.width() - 1))));
      const int64_t nr = static_cast<int64_t>(std::llround(Clamp(
          ir, 0.0, static_cast<double>(frame.raster.height() - 1))));
      if (!frame.IsFilled(nc, nr)) continue;
      out->Append1(static_cast<int32_t>(c), static_cast<int32_t>(r),
                   frame_timestamp_,
                   SampleRaster(frame.raster, ic, ir, 0, kernel_));
    }
  }
  if (out->empty()) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(out)));
}

}  // namespace geostreams
