#include "ops/restriction_ops.h"

namespace geostreams {

namespace {

/// Copies the points of `src` selected by `keep` into a fresh batch.
/// Returns nullptr when nothing survives.
PointBatchPtr FilterBatch(const PointBatch& src,
                          const std::vector<char>& keep, size_t kept) {
  if (kept == 0) return nullptr;
  auto out = std::make_shared<PointBatch>();
  out->frame_id = src.frame_id;
  out->band_count = src.band_count;
  out->Reserve(kept);
  for (size_t i = 0; i < src.size(); ++i) {
    if (!keep[i]) continue;
    out->Append(src.cols[i], src.rows[i], src.timestamps[i],
                &src.values[i * static_cast<size_t>(src.band_count)]);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpatialRestrictionOp

SpatialRestrictionOp::SpatialRestrictionOp(std::string name, RegionPtr region)
    : UnaryOperator(std::move(name)), region_(std::move(region)) {}

Status SpatialRestrictionOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      frame_lattice_ = event.frame.lattice;
      in_frame_ = true;
      // Frame-level pruning: a frame whose extent misses the region's
      // bounding box cannot contribute any point.
      frame_may_intersect_ =
          region_->bounds().Intersects(frame_lattice_.Extent());
      return Emit(event);
    case EventKind::kFrameEnd:
      in_frame_ = false;
      return Emit(event);
    case EventKind::kStreamEnd:
      return Emit(event);
    case EventKind::kPointBatch:
      break;
  }
  const PointBatch& batch = *event.batch;
  if (in_frame_ && !frame_may_intersect_) return Status::OK();
  std::vector<char> keep(batch.size(), 0);
  size_t kept = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const double x = frame_lattice_.CellX(batch.cols[i]);
    const double y = frame_lattice_.CellY(batch.rows[i]);
    if (region_->Contains(x, y)) {
      keep[i] = 1;
      ++kept;
    }
  }
  if (kept == batch.size()) return Emit(event);  // pass through unchanged
  PointBatchPtr filtered = FilterBatch(batch, keep, kept);
  if (!filtered) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(filtered)));
}

// ---------------------------------------------------------------------------
// TemporalRestrictionOp

TemporalRestrictionOp::TemporalRestrictionOp(std::string name, TimeSet times)
    : UnaryOperator(std::move(name)), times_(std::move(times)) {}

Status TemporalRestrictionOp::Process(const StreamEvent& event) {
  if (event.kind != EventKind::kPointBatch) return Emit(event);
  const PointBatch& batch = *event.batch;
  std::vector<char> keep(batch.size(), 0);
  size_t kept = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (times_.Contains(batch.timestamps[i])) {
      keep[i] = 1;
      ++kept;
    }
  }
  if (kept == batch.size()) return Emit(event);
  PointBatchPtr filtered = FilterBatch(batch, keep, kept);
  if (!filtered) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(filtered)));
}

// ---------------------------------------------------------------------------
// ValueRestrictionOp

ValueRestrictionOp::ValueRestrictionOp(std::string name,
                                       std::vector<ValueBandRange> ranges)
    : UnaryOperator(std::move(name)), ranges_(std::move(ranges)) {}

Status ValueRestrictionOp::Process(const StreamEvent& event) {
  if (event.kind != EventKind::kPointBatch) return Emit(event);
  const PointBatch& batch = *event.batch;
  std::vector<char> keep(batch.size(), 0);
  size_t kept = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    bool ok = true;
    for (const ValueBandRange& r : ranges_) {
      if (r.band >= batch.band_count) {
        ok = false;
        break;
      }
      const double v = batch.ValueAt(i, r.band);
      if (v < r.lo || v > r.hi) {
        ok = false;
        break;
      }
    }
    if (ok) {
      keep[i] = 1;
      ++kept;
    }
  }
  if (kept == batch.size()) return Emit(event);
  PointBatchPtr filtered = FilterBatch(batch, keep, kept);
  if (!filtered) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(filtered)));
}

}  // namespace geostreams
