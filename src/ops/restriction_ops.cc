#include "ops/restriction_ops.h"

#include "common/string_util.h"

namespace geostreams {

// ---------------------------------------------------------------------------
// SpatialRestrictionOp

SpatialRestrictionOp::SpatialRestrictionOp(std::string name, RegionPtr region)
    : UnaryOperator(std::move(name)),
      region_(region),
      matcher_(std::move(region)) {}

SpatialRestrictionOp::SpatialRestrictionOp(std::string name, RegionPtr region,
                                           GridLattice reference_lattice)
    : UnaryOperator(std::move(name)),
      region_(region),
      matcher_(std::move(region)),
      reference_lattice_(std::move(reference_lattice)),
      has_reference_lattice_(true) {
  frame_lattice_ = reference_lattice_;
  has_frame_geometry_ = true;
}

void SpatialRestrictionOp::Reset() {
  in_frame_ = false;
  frame_may_intersect_ = false;
  if (has_reference_lattice_) {
    frame_lattice_ = reference_lattice_;
    has_frame_geometry_ = true;
  } else {
    frame_lattice_ = GridLattice();
    has_frame_geometry_ = false;
  }
}

Status SpatialRestrictionOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      frame_lattice_ = event.frame.lattice;
      has_frame_geometry_ = true;
      in_frame_ = true;
      // Frame-level pruning: a frame whose extent misses the region's
      // bounding box cannot contribute any point.
      frame_may_intersect_ =
          region_->bounds().Intersects(frame_lattice_.Extent());
      return Emit(event);
    case EventKind::kFrameEnd:
      in_frame_ = false;
      return Emit(event);
    case EventKind::kStreamEnd:
      return Emit(event);
    case EventKind::kPointBatch:
      break;
  }
  const PointBatch& batch = *event.batch;
  if (in_frame_ && !frame_may_intersect_) return Status::OK();
  if (!has_frame_geometry_) {
    // No FrameBegin has arrived and no reference lattice was supplied
    // (frameless organizations get one from the planner): evaluating
    // against a default-constructed lattice would silently collapse
    // every point onto (0, 0)-anchored unit cells.
    return Status::FailedPrecondition(
        "spatial restriction " + name() +
        ": point batch arrived before any frame lattice was known");
  }
  const size_t n = batch.size();
  xs_.resize(n);
  ys_.resize(n);
  keep_.resize(n);
  kernels::CellCoords(frame_lattice_, batch.cols.data(), batch.rows.data(), n,
                      xs_.data(), ys_.data());
  const size_t kept = matcher_.Mask(xs_.data(), ys_.data(), n, keep_.data());
  if (kept == n) return Emit(event);  // pass through unchanged
  PointBatchPtr filtered = kernels::FilterBatch(batch, keep_.data(), kept);
  if (!filtered) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(filtered)));
}

// ---------------------------------------------------------------------------
// TemporalRestrictionOp

TemporalRestrictionOp::TemporalRestrictionOp(std::string name, TimeSet times)
    : UnaryOperator(std::move(name)), times_(std::move(times)) {}

Status TemporalRestrictionOp::Process(const StreamEvent& event) {
  if (event.kind != EventKind::kPointBatch) return Emit(event);
  const PointBatch& batch = *event.batch;
  const size_t n = batch.size();
  // Scan-sector fast path: one timestamp per batch -> one Contains()
  // decides pass-through or drop, no mask or copy.
  if (kernels::TimestampsAllEqual(batch.timestamps.data(), n)) {
    if (n == 0 || times_.Contains(batch.timestamps[0])) return Emit(event);
    return Status::OK();
  }
  keep_.resize(n);
  const size_t kept =
      kernels::TimeSetMask(times_, batch.timestamps.data(), n, keep_.data());
  if (kept == n) return Emit(event);
  PointBatchPtr filtered = kernels::FilterBatch(batch, keep_.data(), kept);
  if (!filtered) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(filtered)));
}

// ---------------------------------------------------------------------------
// ValueRestrictionOp

ValueRestrictionOp::ValueRestrictionOp(std::string name,
                                       std::vector<ValueBandRange> ranges)
    : UnaryOperator(std::move(name)), ranges_(std::move(ranges)) {}

Status ValueRestrictionOp::Process(const StreamEvent& event) {
  if (event.kind != EventKind::kPointBatch) return Emit(event);
  const PointBatch& batch = *event.batch;
  for (const ValueBandRange& r : ranges_) {
    if (r.band < 0) {
      // Would index before the start of the values column; the
      // analyzer rejects this at plan time, this guards directly
      // constructed operators.
      return Status::InvalidArgument(
          StringPrintf("value restriction %s: negative band %d",
                       name().c_str(), r.band));
    }
    if (r.band >= batch.band_count) {
      // Conjunct over a band the stream does not carry: nothing can
      // satisfy it. Same drop-all outcome as the per-point code.
      return Status::OK();
    }
  }
  const size_t n = batch.size();
  const size_t stride = static_cast<size_t>(batch.band_count);
  keep_.assign(n, 1);
  size_t kept = n;
  for (const ValueBandRange& r : ranges_) {
    kept = kernels::ValueRangeMaskAnd(
        batch.values.data() + static_cast<size_t>(r.band), n, stride, r.lo,
        r.hi, keep_.data());
    if (kept == 0) break;
  }
  if (kept == n) return Emit(event);
  PointBatchPtr filtered = kernels::FilterBatch(batch, keep_.data(), kept);
  if (!filtered) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(filtered)));
}

}  // namespace geostreams
