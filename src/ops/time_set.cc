#include "ops/time_set.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

bool TimeSet::Recurring::Contains(int64_t t) const {
  if (period <= 0) return false;
  const int64_t phase = t - FloorDiv(t, period) * period;
  return phase >= phase_lo && phase <= phase_hi;
}

TimeSet TimeSet::All() {
  TimeSet s;
  s.all_ = true;
  return s;
}

TimeSet TimeSet::Instants(std::vector<int64_t> instants) {
  TimeSet s;
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());
  s.instants_ = std::move(instants);
  return s;
}

TimeSet TimeSet::Range(int64_t lo, int64_t hi) {
  TimeSet s;
  s.intervals_.push_back(Interval{lo, hi});
  return s;
}

TimeSet TimeSet::Every(int64_t period, int64_t phase_lo, int64_t phase_hi) {
  TimeSet s;
  s.recurring_.push_back(Recurring{period, phase_lo, phase_hi});
  return s;
}

TimeSet& TimeSet::Add(const TimeSet& other) {
  if (other.all_) {
    all_ = true;
    return *this;
  }
  std::vector<int64_t> merged = instants_;
  merged.insert(merged.end(), other.instants_.begin(),
                other.instants_.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  instants_ = std::move(merged);
  intervals_.insert(intervals_.end(), other.intervals_.begin(),
                    other.intervals_.end());
  recurring_.insert(recurring_.end(), other.recurring_.begin(),
                    other.recurring_.end());
  return *this;
}

bool TimeSet::Contains(int64_t t) const {
  if (all_) return true;
  if (std::binary_search(instants_.begin(), instants_.end(), t)) return true;
  for (const Interval& iv : intervals_) {
    if (iv.Contains(t)) return true;
  }
  for (const Recurring& r : recurring_) {
    if (r.Contains(t)) return true;
  }
  return false;
}

bool TimeSet::DisjointFromRange(int64_t lo, int64_t hi) const {
  if (all_) return false;
  for (int64_t t : instants_) {
    if (t >= lo && t <= hi) return false;
  }
  for (const Interval& iv : intervals_) {
    if (iv.lo <= hi && lo <= iv.hi) return false;
  }
  if (!recurring_.empty()) {
    // A recurring window can intersect any sufficiently long range;
    // only prove disjointness for ranges within one period.
    for (const Recurring& r : recurring_) {
      if (r.period <= 0) continue;
      if (hi - lo + 1 >= r.period) return false;
      const int64_t plo = lo - FloorDiv(lo, r.period) * r.period;
      const int64_t phi = plo + (hi - lo);
      // Window [plo, phi] may wrap around the period boundary.
      const bool disjoint_nowrap =
          phi < r.period && (phi < r.phase_lo || plo > r.phase_hi);
      const bool disjoint_wrap =
          phi >= r.period && (plo > r.phase_hi) &&
          (phi - r.period < r.phase_lo);
      if (!(disjoint_nowrap || disjoint_wrap)) return false;
    }
  }
  return true;
}

std::string TimeSet::ToQueryString() const {
  if (all_) return "all()";
  std::vector<std::string> parts;
  if (!instants_.empty()) {
    std::string s = "instants(";
    for (size_t i = 0; i < instants_.size(); ++i) {
      if (i) s += ", ";
      s += StringPrintf("%lld", static_cast<long long>(instants_[i]));
    }
    parts.push_back(s + ")");
  }
  for (const Interval& iv : intervals_) {
    parts.push_back(StringPrintf("range(%lld, %lld)",
                                 static_cast<long long>(iv.lo),
                                 static_cast<long long>(iv.hi)));
  }
  for (const Recurring& r : recurring_) {
    parts.push_back(StringPrintf(
        "every(%lld, %lld, %lld)", static_cast<long long>(r.period),
        static_cast<long long>(r.phase_lo),
        static_cast<long long>(r.phase_hi)));
  }
  if (parts.empty()) return "instants()";  // empty set (unparseable)
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ", ";
    out += parts[i];
  }
  return out;
}

std::string TimeSet::ToString() const {
  if (all_) return "time(all)";
  std::string s = "time(";
  bool first = true;
  for (int64_t t : instants_) {
    if (!first) s += ", ";
    s += StringPrintf("%lld", static_cast<long long>(t));
    first = false;
  }
  for (const Interval& iv : intervals_) {
    if (!first) s += ", ";
    s += StringPrintf("[%lld, %lld]", static_cast<long long>(iv.lo),
                      static_cast<long long>(iv.hi));
    first = false;
  }
  for (const Recurring& r : recurring_) {
    if (!first) s += ", ";
    s += StringPrintf("every %lld in [%lld, %lld]",
                      static_cast<long long>(r.period),
                      static_cast<long long>(r.phase_lo),
                      static_cast<long long>(r.phase_hi));
    first = false;
  }
  s += ")";
  return s;
}

}  // namespace geostreams
