// Load shedding for image streams.
//
// The paper's introduction lists load shedding among the relational
// DSMS techniques worth adapting ("Most of the proposed techniques,
// such as adaptive query processing, operator scheduling, and load
// shedding, exclusively concentrate on simple structured ... data").
// For raster streams the shedding granularity matters: dropping
// random points leaves salt-and-pepper holes, dropping whole scan
// lines degrades resolution smoothly, dropping whole frames reduces
// the temporal rate. All three policies are deterministic
// (hash-seeded) so shed streams stay reproducible.

#ifndef GEOSTREAMS_OPS_SHEDDING_OP_H_
#define GEOSTREAMS_OPS_SHEDDING_OP_H_

#include <atomic>
#include <string>

#include "stream/operator.h"

namespace geostreams {

enum class SheddingMode : uint8_t {
  kDropPoints,  // per-point sampling
  kDropRows,    // per-scan-line sampling
  kDropFrames,  // per-sector sampling (frame metadata still flows)
};

const char* SheddingModeName(SheddingMode mode);

class LoadSheddingOp : public UnaryOperator {
 public:
  /// Keeps approximately `keep_fraction` of the selected granularity.
  LoadSheddingOp(std::string name, SheddingMode mode, double keep_fraction,
                 uint64_t seed = 1);

  SheddingMode mode() const { return mode_; }
  double keep_fraction() const {
    return keep_fraction_.load(std::memory_order_relaxed);
  }
  uint64_t points_shed() const { return points_shed_; }

  /// Adjusts the keep fraction at runtime (thread-safe): the hook an
  /// adaptive controller uses to react to backlog. Takes effect at
  /// the next point for point/row policies and at the next frame for
  /// the frame policy.
  void set_keep_fraction(double keep);

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  bool Keep(uint64_t key) const;

  SheddingMode mode_;
  std::atomic<double> keep_fraction_;
  uint64_t seed_;
  bool current_frame_shed_ = false;
  uint64_t points_shed_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_SHEDDING_OP_H_
