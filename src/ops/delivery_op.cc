#include "ops/delivery_op.h"

namespace geostreams {

DeliveryOp::DeliveryOp(std::string name, FrameCallback callback,
                       DeliveryOptions options)
    : UnaryOperator(std::move(name)),
      callback_(std::move(callback)),
      options_(options),
      assembler_(options.nodata) {}

void DeliveryOp::Reset() {
  assembler_.Abort();
  frame_pending_ = false;
  points_pending_ = 0;
  ReportBuffered(0);
}

Status DeliveryOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      points_pending_ = 0;
      if (band_count_known_) {
        GEOSTREAMS_RETURN_IF_ERROR(assembler_.Begin(event.frame, band_count_));
        frame_pending_ = false;
      } else {
        // Defer allocation until the first batch reveals band count.
        pending_frame_ = event.frame;
        frame_pending_ = true;
      }
      return Emit(event);
    case EventKind::kPointBatch: {
      if (frame_pending_) {
        band_count_ = event.batch->band_count;
        band_count_known_ = true;
        GEOSTREAMS_RETURN_IF_ERROR(
            assembler_.Begin(pending_frame_, band_count_));
        frame_pending_ = false;
      }
      if (!assembler_.active()) {
        return Status::FailedPrecondition("delivery requires framed input");
      }
      GEOSTREAMS_RETURN_IF_ERROR(assembler_.Add(*event.batch));
      points_pending_ += event.batch->size();
      ReportBuffered(assembler_.BufferedBytes());
      return Emit(event);
    }
    case EventKind::kFrameEnd: {
      if (frame_pending_) {
        // Frame carried no points at all: deliver an all-nodata frame.
        band_count_known_ = true;
        GEOSTREAMS_RETURN_IF_ERROR(
            assembler_.Begin(pending_frame_, band_count_));
        frame_pending_ = false;
      }
      if (assembler_.active()) {
        GEOSTREAMS_ASSIGN_OR_RETURN(AssembledFrame frame,
                                    assembler_.Finish());
        ReportBuffered(0);
        std::vector<uint8_t> png;
        if (options_.encode_png) {
          GEOSTREAMS_ASSIGN_OR_RETURN(
              png,
              RasterToPng(frame.raster, options_.png_lo, options_.png_hi));
          bytes_encoded_ += png.size();
        }
        ++frames_delivered_;
        points_delivered_ += points_pending_;
        points_pending_ = 0;
        if (callback_) callback_(event.frame.frame_id, frame.raster, png);
      }
      return Emit(event);
    }
    case EventKind::kStreamEnd:
      return Emit(event);
  }
  return Status::OK();
}

}  // namespace geostreams
