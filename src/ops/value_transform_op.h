// Pointwise value transforms f_val . G (Definition 8).
//
// These map the value of each point independently — colour to
// grey-scale, band arithmetic, affine rescaling — and therefore
// process point by point with no intermediate storage. Frame-scoped
// stretches that need to see whole frames live in
// stretch_transform_op.h.

#ifndef GEOSTREAMS_OPS_VALUE_TRANSFORM_OP_H_
#define GEOSTREAMS_OPS_VALUE_TRANSFORM_OP_H_

#include <functional>
#include <string>

#include "core/value.h"
#include "stream/operator.h"

namespace geostreams {

/// Pointwise function f_val : V -> W. `in` has in_bands samples, `out`
/// must be filled with out_bands samples.
///
/// The built-in factories also record their kind and parameters so
/// ValueTransformOp can run them as column kernels (src/kernels/)
/// instead of one std::function call per point; `fn` stays populated
/// as the per-point form of the same function. kGeneric functions
/// (custom lambdas) run through `fn`.
struct ValueFn {
  enum class Kind : uint8_t {
    kGeneric,
    kColorToGray,
    kAffineRescale,  // a = scale, b = offset
    kBandSelect,     // band
    kClamp,          // a = lo, b = hi
    kAbs,
  };

  std::string name;
  int in_bands = 1;
  int out_bands = 1;
  Kind kind = Kind::kGeneric;
  double a = 0.0, b = 0.0;
  int band = 0;
  std::function<void(const double* in, double* out)> fn;

  /// Luma-weighted colour (Z^3) to grey-scale (Z).
  static ValueFn ColorToGray();
  /// v -> scale * v + offset on every band.
  static ValueFn AffineRescale(int bands, double scale, double offset);
  /// Selects one band out of `in_bands`.
  static ValueFn BandSelect(int in_bands, int band);
  /// Clamps every band into [lo, hi].
  static ValueFn ClampTo(int bands, double lo, double hi);
  /// v -> |v| on every band.
  static ValueFn AbsValue(int bands);
};

/// Applies a pointwise value transform, changing a stream over V^X
/// into a stream over W^X.
class ValueTransformOp : public UnaryOperator {
 public:
  ValueTransformOp(std::string name, ValueFn fn);

  const ValueFn& fn() const { return fn_; }

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  ValueFn fn_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_VALUE_TRANSFORM_OP_H_
