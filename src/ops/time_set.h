// Temporal restriction sets (Definition 7).
//
// The paper allows T to be "a collection of points in time, an open
// interval or a set of (re-occurring) intervals, e.g., if an
// application requires only data during a specific time period every
// day". TimeSet models all three.

#ifndef GEOSTREAMS_OPS_TIME_SET_H_
#define GEOSTREAMS_OPS_TIME_SET_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace geostreams {

/// A predicate over timestamps, closed under union of the paper's
/// three specification styles.
class TimeSet {
 public:
  struct Interval {
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();  // inclusive
    bool Contains(int64_t t) const { return t >= lo && t <= hi; }
  };

  /// Re-occurring window: timestamps t with (t mod period) in
  /// [phase_lo, phase_hi] (inclusive), e.g. "10:00-14:00 every day".
  struct Recurring {
    int64_t period = 1;
    int64_t phase_lo = 0;
    int64_t phase_hi = 0;
    bool Contains(int64_t t) const;
  };

  TimeSet() = default;

  /// The set of all timestamps.
  static TimeSet All();
  /// A finite collection of instants.
  static TimeSet Instants(std::vector<int64_t> instants);
  /// One inclusive interval; use int64 min/max for open ends.
  static TimeSet Range(int64_t lo, int64_t hi);
  /// A recurring daily-style window.
  static TimeSet Every(int64_t period, int64_t phase_lo, int64_t phase_hi);

  /// Union with another time set.
  TimeSet& Add(const TimeSet& other);

  bool Contains(int64_t t) const;

  /// True when the set was built as All() and never narrowed.
  bool IsAll() const { return all_; }

  /// Conservative: true when no timestamp in [lo, hi] can belong to
  /// the set (used to skip whole frames).
  bool DisjointFromRange(int64_t lo, int64_t hi) const;

  std::string ToString() const;

  /// Comma-separated list of time constructors in the query-language
  /// syntax ("range(0, 100), every(96, 40, 55)"), re-parseable as the
  /// argument list of time().
  std::string ToQueryString() const;

  /// Structure accessors for the vectorized mask kernels
  /// (kernels::TimeSetMask); instants() is sorted.
  const std::vector<int64_t>& instants() const { return instants_; }
  const std::vector<Interval>& intervals() const { return intervals_; }
  const std::vector<Recurring>& recurring() const { return recurring_; }

 private:
  bool all_ = false;
  std::vector<int64_t> instants_;  // sorted
  std::vector<Interval> intervals_;
  std::vector<Recurring> recurring_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_TIME_SET_H_
