// Frame-scoped stretch value transforms (Sec. 3.2).
//
// To "fully utilize the complete range of values in V, point values
// can be scaled. Typical approaches include linear contrast stretch,
// histogram equalization, and Gaussian stretch." These need the
// frame's value statistics before any point can be emitted, so the
// operator buffers each frame in full; its space cost is the size of
// the largest frame in the stream (e.g. ~280 MB for a full GOES
// visible-band frame) — exactly what E2 measures.

#ifndef GEOSTREAMS_OPS_STRETCH_TRANSFORM_OP_H_
#define GEOSTREAMS_OPS_STRETCH_TRANSFORM_OP_H_

#include <memory>
#include <vector>

#include "raster/histogram.h"
#include "stream/operator.h"

namespace geostreams {

enum class StretchMode : uint8_t {
  kLinear,                 // min/max (or percentile-clipped) linear map
  kHistogramEqualization,  // CDF-based remap
  kGaussian,               // map to a target mean/stddev
};

const char* StretchModeName(StretchMode mode);

struct StretchOptions {
  StretchMode mode = StretchMode::kLinear;
  /// Output range the stretch fills (the "complete range of V").
  double out_lo = 0.0;
  double out_hi = 255.0;
  /// kLinear: fraction of mass clipped at each tail (0 = pure min/max).
  double clip_fraction = 0.0;
  /// kGaussian: target mean/stddev as fractions of the output range.
  double gaussian_mean_frac = 0.5;
  double gaussian_std_frac = 0.2;
  /// Histogram resolution for kHistogramEqualization / clipping.
  int histogram_bins = 1024;
  /// Range the input histogram covers.
  double in_lo = 0.0;
  double in_hi = 1024.0;
};

/// Buffers each frame's points, computes the frame statistics on
/// FrameEnd, and re-emits every point with its stretched value.
/// Single-band streams only (stretches are applied per channel in
/// the paper's setting).
class StretchTransformOp : public UnaryOperator {
 public:
  StretchTransformOp(std::string name, StretchOptions options);

  const StretchOptions& options() const { return options_; }

  void Reset() override;

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  Status FlushFrame();
  double StretchValue(double v) const;

  StretchOptions options_;
  // Buffered points of the open frame.
  std::shared_ptr<PointBatch> buffer_;
  Histogram histogram_;
  bool in_frame_ = false;
  // Frame statistics captured at FrameEnd.
  double frame_lo_ = 0.0;
  double frame_hi_ = 1.0;
  double frame_mean_ = 0.0;
  double frame_std_ = 1.0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_STRETCH_TRANSFORM_OP_H_
