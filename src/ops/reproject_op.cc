#include "ops/reproject_op.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

ReprojectOp::ReprojectOp(std::string name, CrsPtr target_crs,
                         ResampleKernel kernel,
                         std::optional<GridLattice> fixed_lattice)
    : UnaryOperator(std::move(name)),
      target_crs_(std::move(target_crs)),
      kernel_(kernel),
      fixed_lattice_(std::move(fixed_lattice)) {}

Result<GridLattice> ReprojectOp::DeriveLattice(const GridLattice& source,
                                               const CrsPtr& target_crs) {
  GEOSTREAMS_RETURN_IF_ERROR(source.Validate());
  const BoundingBox ext =
      TransformBoundingBox(source.Extent(), *source.crs(), *target_crs);
  if (ext.empty()) {
    return Status::OutOfRange(
        "source extent does not map into the target CRS domain");
  }
  // Regular lattice of corresponding size and aspect.
  const int64_t w = source.width();
  const int64_t h = source.height();
  const double dx = ext.width() / static_cast<double>(w);
  const double dy = ext.height() / static_cast<double>(h);
  // Row 0 at the top (north-up): negative dy from the max-y edge.
  return GridLattice(target_crs, ext.min_x + dx / 2.0, ext.max_y - dy / 2.0,
                     dx, -dy, w, h);
}

void ReprojectOp::Reset() {
  assembler_.Abort();
  ReportBuffered(0);
}

Status ReprojectOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin: {
      in_lattice_ = event.frame.lattice;
      if (fixed_lattice_) {
        out_lattice_ = *fixed_lattice_;
      } else {
        GEOSTREAMS_ASSIGN_OR_RETURN(
            out_lattice_, DeriveLattice(in_lattice_, target_crs_));
      }
      GEOSTREAMS_RETURN_IF_ERROR(assembler_.Begin(event.frame, 1));
      frame_timestamp_ = event.frame.frame_id;
      FrameInfo info = event.frame;
      info.lattice = out_lattice_;
      info.expected_points = out_lattice_.num_cells();
      return Emit(StreamEvent::FrameBegin(std::move(info)));
    }
    case EventKind::kPointBatch: {
      if (!assembler_.active()) {
        return Status::FailedPrecondition(
            "re-projection requires framed input");
      }
      if (event.batch->band_count != 1) {
        return Status::InvalidArgument(
            "re-projection supports single-band streams");
      }
      GEOSTREAMS_RETURN_IF_ERROR(assembler_.Add(*event.batch));
      if (!event.batch->empty()) {
        frame_timestamp_ = event.batch->timestamps.front();
      }
      ReportBuffered(assembler_.BufferedBytes());
      return Status::OK();
    }
    case EventKind::kFrameEnd: {
      GEOSTREAMS_RETURN_IF_ERROR(FlushFrame(event.frame));
      FrameInfo info = event.frame;
      info.lattice = out_lattice_;
      return Emit(StreamEvent::FrameEnd(std::move(info)));
    }
    case EventKind::kStreamEnd:
      return Emit(event);
  }
  return Status::OK();
}

Status ReprojectOp::FlushFrame(const FrameInfo& info) {
  GEOSTREAMS_ASSIGN_OR_RETURN(AssembledFrame frame, assembler_.Finish());
  ReportBuffered(0);

  const CoordinateSystem& src_crs = *in_lattice_.crs();
  auto out = std::make_shared<PointBatch>();
  out->frame_id = info.frame_id;
  out->band_count = 1;
  out->Reserve(static_cast<size_t>(out_lattice_.num_cells()));

  for (int64_t r = 0; r < out_lattice_.height(); ++r) {
    const double ty = out_lattice_.CellY(r);
    for (int64_t c = 0; c < out_lattice_.width(); ++c) {
      const double tx = out_lattice_.CellX(c);
      double sx = 0.0, sy = 0.0;
      if (!TransformPoint(*target_crs_, src_crs, tx, ty, &sx, &sy).ok()) {
        continue;  // target cell outside the source projection domain
      }
      // Fractional source cell coordinates.
      const double fc = (sx - in_lattice_.origin_x()) / in_lattice_.dx();
      const double fr = (sy - in_lattice_.origin_y()) / in_lattice_.dy();
      if (fc < -0.5 || fc > frame.raster.width() - 0.5 || fr < -0.5 ||
          fr > frame.raster.height() - 0.5) {
        continue;  // outside the scanned sector
      }
      // Never fabricate a value from a cell the (possibly restricted)
      // stream did not deliver.
      const int64_t nc = static_cast<int64_t>(std::llround(
          Clamp(fc, 0.0, static_cast<double>(frame.raster.width() - 1))));
      const int64_t nr = static_cast<int64_t>(std::llround(
          Clamp(fr, 0.0, static_cast<double>(frame.raster.height() - 1))));
      if (!frame.IsFilled(nc, nr)) continue;
      out->Append1(static_cast<int32_t>(c), static_cast<int32_t>(r),
                   frame_timestamp_,
                   SampleRaster(frame.raster, fc, fr, 0, kernel_));
    }
  }
  if (out->empty()) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(out)));
}

}  // namespace geostreams
