// Stream composition G1 gamma G2 (Definition 10, Sec. 3.3).
//
// Combines two GeoStreams over the same point lattice by matching
// points on BOTH the spatial location and the timestamp. The operator
// is organization-agnostic: it buffers whatever points have no match
// yet, so its space cost emerges from the arrival order —
//  * row-by-row interleaved bands  -> about one scan line buffered;
//  * image-by-image sequential     -> a whole frame buffered;
// exactly the behaviour Sec. 3.3 derives (benchmark E4). Under
// measurement-time timestamps the two sides never match and the
// operator produces no output (E5); buffered points are evicted when
// their frame closes on both sides, so memory stays bounded.

#ifndef GEOSTREAMS_OPS_COMPOSE_OP_H_
#define GEOSTREAMS_OPS_COMPOSE_OP_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/value.h"
#include "stream/operator.h"

namespace geostreams {

/// Binary value function applied to matched point pairs. Defaults to
/// bandwise application of a ComposeFn; macro products (NDVI) plug in
/// their own formula.
struct BinaryValueFn {
  std::string name;
  int out_bands = 1;
  /// Expected band counts per input port; 0 means "any, but equal on
  /// both sides".
  int left_bands = 0;
  int right_bands = 0;
  /// Set by FromComposeFn: the function is plain bandwise gamma, so
  /// matched pairs can run through the column kernel
  /// (kernels::ComposeArith) instead of one std::function call each.
  bool is_gamma = false;
  ComposeFn gamma = ComposeFn::kAdd;
  std::function<void(const double* a, const double* b, double* out)> fn;

  static BinaryValueFn FromComposeFn(ComposeFn gamma, int bands);
  /// (a - b) / (a + b), 0 where a + b == 0 — the NDVI formula of
  /// Sec. 3.4 as a single fused operator ("macro operator", Sec. 4).
  static BinaryValueFn Ndvi();
  /// Concatenates the bands of both sides (left first): builds the
  /// colour (Z^3) and multi-spectral (Z^n) value sets of Sec. 2 from
  /// single-band instrument streams.
  static BinaryValueFn Stack(int left_bands, int right_bands);
};

class ComposeOp : public BinaryOperator {
 public:
  ComposeOp(std::string name, BinaryValueFn fn);
  ComposeOp(std::string name, ComposeFn gamma, int bands = 1);

  const BinaryValueFn& fn() const { return fn_; }

  /// Points matched and emitted so far.
  uint64_t matches() const { return matches_; }

  void Reset() override;

 protected:
  Status Process(int port, const StreamEvent& event) override;

 private:
  struct PKey {
    int64_t t;
    int32_t col;
    int32_t row;
    bool operator==(const PKey& o) const {
      return t == o.t && col == o.col && row == o.row;
    }
  };
  struct PKeyHash {
    size_t operator()(const PKey& k) const;
  };
  struct PendingValue {
    std::array<double, kMaxBands> v;
  };
  using PendingMap = std::unordered_map<PKey, PendingValue, PKeyHash>;

  struct FrameState {
    FrameInfo info;
    bool began[2] = {false, false};
    bool ended[2] = {false, false};
    bool begin_emitted = false;
    bool end_emitted = false;
    /// Matched points produced while another output frame was open.
    std::vector<std::pair<PKey, PendingValue>> held;
    /// Keys buffered per side, for eviction at frame close.
    std::vector<PKey> keys[2];
  };

  Status HandleFrameBegin(int port, const FrameInfo& info);
  Status HandleFrameEnd(int port, const FrameInfo& info);
  Status HandleBatch(int port, const PointBatch& batch);
  Status HandleStreamEnd();
  /// Emits any frames that can now open/close, in frame-id order.
  Status AdvanceOutput();
  Status EmitHeld(FrameState* fs);
  void UpdateBuffered();

  BinaryValueFn fn_;
  int in_bands_[2] = {0, 0};  // learned from the first batch per port
  // Staging columns for the gamma fast path: matched pairs are
  // gathered here in match order, combined with one ComposeArith
  // kernel pass, then appended to the output batch (or held list).
  // Reused across batches; the operator is single-threaded.
  std::vector<PKey> stage_keys_;
  std::vector<double> stage_a_, stage_b_, stage_out_;
  PendingMap pending_[2];
  std::map<int64_t, FrameState> frames_;
  std::optional<int64_t> open_frame_;
  int stream_ends_ = 0;
  uint64_t matches_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_COMPOSE_OP_H_
