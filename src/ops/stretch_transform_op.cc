#include "ops/stretch_transform_op.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

const char* StretchModeName(StretchMode mode) {
  switch (mode) {
    case StretchMode::kLinear:
      return "linear";
    case StretchMode::kHistogramEqualization:
      return "hist-eq";
    case StretchMode::kGaussian:
      return "gaussian";
  }
  return "?";
}

StretchTransformOp::StretchTransformOp(std::string name,
                                       StretchOptions options)
    : UnaryOperator(std::move(name)),
      options_(options),
      histogram_(options.in_lo, options.in_hi, options.histogram_bins) {}

Status StretchTransformOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      if (in_frame_) {
        return Status::FailedPrecondition("nested frame in stretch");
      }
      in_frame_ = true;
      buffer_ = std::make_shared<PointBatch>();
      buffer_->frame_id = event.frame.frame_id;
      histogram_.Reset();
      return Emit(event);
    case EventKind::kPointBatch: {
      const PointBatch& in = *event.batch;
      if (in.band_count != 1) {
        return Status::InvalidArgument(
            StringPrintf("stretch transform needs 1 band, stream has %d",
                         in.band_count));
      }
      if (!in_frame_) {
        // Point-by-point streams carry no frame boundaries; a stretch
        // over them would block forever (the scenario the paper warns
        // about). Refuse instead.
        return Status::FailedPrecondition(
            "stretch transform requires framed input");
      }
      buffer_->band_count = 1;
      buffer_->cols.insert(buffer_->cols.end(), in.cols.begin(),
                           in.cols.end());
      buffer_->rows.insert(buffer_->rows.end(), in.rows.begin(),
                           in.rows.end());
      buffer_->timestamps.insert(buffer_->timestamps.end(),
                                 in.timestamps.begin(), in.timestamps.end());
      buffer_->values.insert(buffer_->values.end(), in.values.begin(),
                             in.values.end());
      histogram_.AddN(in.values.data(), in.values.size());
      ReportBuffered(buffer_->ApproxBytes());
      return Status::OK();
    }
    case EventKind::kFrameEnd: {
      GEOSTREAMS_RETURN_IF_ERROR(FlushFrame());
      in_frame_ = false;
      return Emit(event);
    }
    case EventKind::kStreamEnd:
      if (in_frame_) {
        GEOSTREAMS_RETURN_IF_ERROR(FlushFrame());
        in_frame_ = false;
      }
      return Emit(event);
  }
  return Status::OK();
}

Status StretchTransformOp::FlushFrame() {
  if (!buffer_ || buffer_->empty()) {
    buffer_.reset();
    ReportBuffered(0);
    return Status::OK();
  }
  // Frame statistics.
  switch (options_.mode) {
    case StretchMode::kLinear:
      if (options_.clip_fraction > 0.0) {
        frame_lo_ = histogram_.Quantile(options_.clip_fraction);
        frame_hi_ = histogram_.Quantile(1.0 - options_.clip_fraction);
      } else {
        frame_lo_ = histogram_.Quantile(0.0);
        frame_hi_ = histogram_.Quantile(1.0);
        // Exact min/max beat binned quantiles when unclipped.
        double lo = buffer_->values[0], hi = buffer_->values[0];
        for (double v : buffer_->values) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        frame_lo_ = lo;
        frame_hi_ = hi;
      }
      break;
    case StretchMode::kHistogramEqualization:
      break;  // uses the histogram CDF directly
    case StretchMode::kGaussian:
      frame_mean_ = histogram_.Mean();
      frame_std_ = histogram_.StdDev();
      break;
  }
  if (frame_hi_ <= frame_lo_) frame_hi_ = frame_lo_ + 1.0;
  if (frame_std_ <= 0.0) frame_std_ = 1.0;

  auto out = std::make_shared<PointBatch>();
  out->frame_id = buffer_->frame_id;
  out->band_count = 1;
  out->cols = std::move(buffer_->cols);
  out->rows = std::move(buffer_->rows);
  out->timestamps = std::move(buffer_->timestamps);
  out->values.resize(buffer_->values.size());
  for (size_t i = 0; i < buffer_->values.size(); ++i) {
    out->values[i] = StretchValue(buffer_->values[i]);
  }
  buffer_.reset();
  ReportBuffered(0);
  return Emit(StreamEvent::Batch(std::move(out)));
}

void StretchTransformOp::Reset() {
  buffer_.reset();
  in_frame_ = false;
  histogram_.Reset();
  ReportBuffered(0);
}

double StretchTransformOp::StretchValue(double v) const {
  const double span = options_.out_hi - options_.out_lo;
  switch (options_.mode) {
    case StretchMode::kLinear: {
      const double t = (v - frame_lo_) / (frame_hi_ - frame_lo_);
      return options_.out_lo + span * Clamp(t, 0.0, 1.0);
    }
    case StretchMode::kHistogramEqualization:
      return options_.out_lo + span * histogram_.Cdf(v);
    case StretchMode::kGaussian: {
      const double z = (v - frame_mean_) / frame_std_;
      const double target_mean =
          options_.out_lo + span * options_.gaussian_mean_frac;
      const double target_std = span * options_.gaussian_std_frac;
      return Clamp(target_mean + z * target_std, options_.out_lo,
                   options_.out_hi);
    }
  }
  return v;
}

}  // namespace geostreams
