#include "ops/fault_injector_op.h"

#include "common/string_util.h"

namespace geostreams {

namespace {

Status MakeStatus(StatusCode code, const std::string& message) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kIoError:
      return Status::IoError(message);
    default:
      return Status::Internal(message);
  }
}

}  // namespace

FaultInjectorOp::FaultInjectorOp(std::string name,
                                 std::vector<InjectedFault> faults,
                                 bool verify_checksums)
    : UnaryOperator(std::move(name)),
      faults_(std::move(faults)),
      verify_checksums_(verify_checksums) {}

Status FaultInjectorOp::Process(const StreamEvent& event) {
  if (next_fault_ < faults_.size() &&
      cursor_ == faults_[next_fault_].at_event) {
    const InjectedFault& f = faults_[next_fault_];
    if (fails_remaining_ < 0) fails_remaining_ = f.times;
    if (fails_remaining_ > 0) {
      --fails_remaining_;
      ++faults_injected_;
      if (!IsTransient(f.code)) {
        // Poison / permanent: the supervisor dead-letters or
        // quarantines — either way this event will not come back.
        ++cursor_;
        ++next_fault_;
        fails_remaining_ = -1;
      }
      // Transient: the cursor stays put so the supervisor's retry
      // redelivers the same ordinal.
      return MakeStatus(f.code, f.message);
    }
    // Transient fault exhausted its failure budget: this delivery
    // succeeds. Retire the fault and fall through.
    ++next_fault_;
    fails_remaining_ = -1;
  }
  if (verify_checksums_ && event.kind == EventKind::kPointBatch &&
      event.batch && !event.batch->ChecksumValid()) {
    ++checksum_failures_;
    ++cursor_;  // the corrupt batch is dropped, not retried
    return Status::FailedPrecondition(StringPrintf(
        "point batch checksum mismatch (frame %lld, %zu points)",
        static_cast<long long>(event.batch->frame_id),
        event.batch->size()));
  }
  ++cursor_;
  return Emit(event);
}

}  // namespace geostreams
