// Macro operators computing standard data products (Sec. 4: "special-
// ized macro operators that compute specific data products, such as
// NDVI ... can be directly selected in the user interface, without
// the need to compose otherwise complex queries").
//
// A macro operator fuses a small algebra expression into a single
// physical operator. The optimizer can also expand the same product
// into primitive compositions; tests verify both give identical
// output and the ablation bench compares their costs.

#ifndef GEOSTREAMS_OPS_MACRO_OPS_H_
#define GEOSTREAMS_OPS_MACRO_OPS_H_

#include <memory>

#include "ops/compose_op.h"

namespace geostreams {

/// NDVI = (NIR - VIS) / (NIR + VIS), fused. Port 0 is NIR, port 1 VIS.
std::unique_ptr<ComposeOp> MakeNdviOp(std::string name);

/// Normalized difference of two arbitrary bands (same formula, generic
/// naming — e.g. NDSI with green/swir inputs).
std::unique_ptr<ComposeOp> MakeNormalizedDifferenceOp(std::string name);

/// Simple ratio a / b (e.g. vegetation ratio index).
std::unique_ptr<ComposeOp> MakeBandRatioOp(std::string name);

/// Brightness-temperature style difference a - b (split-window).
std::unique_ptr<ComposeOp> MakeBandDifferenceOp(std::string name);

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_MACRO_OPS_H_
