// Deterministic fault injection for the supervision harness.
//
// FaultInjectorOp sits at the head of a pipeline (or anywhere inside
// it) and passes events through unchanged, except that it
//  * fails on-schedule: a list of InjectedFault entries names event
//    ordinals at which Process returns a chosen non-OK Status. The
//    scheduler's supervisor then exercises its real recovery paths —
//    transient codes (ResourceExhausted / Unavailable) are retried
//    with the SAME event, so the injector's cursor only advances once
//    an event reaches a final disposition (success or dead-letter);
//  * verifies downlink checksums: a PointBatch carrying a non-zero
//    checksum that does not match its content is rejected with
//    FailedPrecondition — the poison path of corrupted instrument
//    data (see StreamGenerator::SetCorruption).
//
// The op is deliberately NOT reset by Operator::Reset(): its
// injection schedule and cursor describe the experiment, not
// per-frame stream state, and must survive supervised restarts.

#ifndef GEOSTREAMS_OPS_FAULT_INJECTOR_OP_H_
#define GEOSTREAMS_OPS_FAULT_INJECTOR_OP_H_

#include <string>
#include <vector>

#include "stream/operator.h"

namespace geostreams {

/// One scheduled failure. Ordinals count every event the op sees
/// (FrameBegin, each PointBatch, FrameEnd, StreamEnd), starting at 0.
/// Entries must be sorted by `at_event`, strictly increasing.
struct InjectedFault {
  uint64_t at_event = 0;
  StatusCode code = StatusCode::kUnavailable;
  std::string message = "injected fault";
  /// Consecutive failures before the event passes (transient codes
  /// only — poison/permanent codes consume the event on first fire,
  /// mirroring the supervisor's dead-letter/quarantine disposition).
  int times = 1;
};

class FaultInjectorOp : public UnaryOperator {
 public:
  /// Checksum verification is opt-in here: the production check lives
  /// at the DsmsServer ingest boundary (verify_ingest_checksums),
  /// where corruption is dead-lettered before it enters any chain.
  /// Pass true to verify mid-pipeline in supervision experiments.
  FaultInjectorOp(std::string name, std::vector<InjectedFault> faults,
                  bool verify_checksums = false);

  /// Events that reached a final disposition (passed or dead-lettered).
  uint64_t events_seen() const { return cursor_; }
  /// Non-OK returns produced by the schedule (retries each count).
  uint64_t faults_injected() const { return faults_injected_; }
  /// Batches rejected for checksum mismatch.
  uint64_t checksum_failures() const { return checksum_failures_; }

  /// Intentionally keeps the schedule and cursor: see file comment.
  void Reset() override {}

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  static bool IsTransient(StatusCode code) {
    return code == StatusCode::kResourceExhausted ||
           code == StatusCode::kUnavailable;
  }

  std::vector<InjectedFault> faults_;
  bool verify_checksums_;
  uint64_t cursor_ = 0;       // ordinal of the next final disposition
  size_t next_fault_ = 0;     // index into faults_
  int fails_remaining_ = -1;  // -1: current fault not yet armed
  uint64_t faults_injected_ = 0;
  uint64_t checksum_failures_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_FAULT_INJECTOR_OP_H_
