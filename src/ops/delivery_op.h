// Stream delivery operator (Sec. 4: "a specialized stream delivery
// operator that ships stream results back to clients using the PNG
// image format").
//
// Assembles each output frame into a raster and hands it to a client
// callback — optionally pre-encoded as PNG bytes. The operator also
// tracks delivery statistics (frames, points, encoded bytes) for the
// end-to-end benchmark.

#ifndef GEOSTREAMS_OPS_DELIVERY_OP_H_
#define GEOSTREAMS_OPS_DELIVERY_OP_H_

#include <functional>

#include "raster/frame_assembler.h"
#include "raster/png_encoder.h"
#include "stream/operator.h"

namespace geostreams {

struct DeliveryOptions {
  /// Encode frames to PNG (costs CPU; off for raw raster delivery).
  bool encode_png = false;
  /// Linear mapping of values to [0, 255] for PNG ([lo, hi]; equal
  /// values mean per-frame min/max).
  double png_lo = 0.0;
  double png_hi = 0.0;
  /// Fill value for lattice cells no point arrived for.
  double nodata = 0.0;
};

/// Frame callback: raster always present; png empty unless encoding
/// was requested.
using FrameCallback = std::function<void(int64_t frame_id,
                                         const Raster& raster,
                                         const std::vector<uint8_t>& png)>;

class DeliveryOp : public UnaryOperator {
 public:
  DeliveryOp(std::string name, FrameCallback callback,
             DeliveryOptions options = {});

  uint64_t frames_delivered() const { return frames_delivered_; }
  /// Points assembled into delivered frames (shed or aborted frames'
  /// points never count).
  uint64_t points_delivered() const { return points_delivered_; }
  uint64_t bytes_encoded() const { return bytes_encoded_; }

  void Reset() override;

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  FrameCallback callback_;
  DeliveryOptions options_;
  FrameAssembler assembler_;
  int band_count_ = 1;
  bool band_count_known_ = false;
  uint64_t frames_delivered_ = 0;
  uint64_t points_delivered_ = 0;
  uint64_t bytes_encoded_ = 0;
  /// Points in the frame currently being assembled; folded into
  /// points_delivered_ only when the frame actually ships.
  uint64_t points_pending_ = 0;
  // Batches seen before band count is known get replayed into the
  // assembler lazily; in practice the first batch fixes it.
  FrameInfo pending_frame_;
  bool frame_pending_ = false;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_DELIVERY_OP_H_
