// Re-projection operator (Sec. 3.2): maps a GeoStream from one
// coordinate system to another.
//
// "One can think of a re-projection as a mathematical framework that
// specifies for every point y in Y what points in X are necessary to
// compute y and its point value." The operator buffers the current
// scan sector (frame), overlays a regular lattice of corresponding
// size/aspect over the transformed spatial extent, and computes each
// target point from the nearest source point or a bilinear
// neighbourhood — the two resampling choices the paper names. Its
// space cost is the frame size; E3 measures it.

#ifndef GEOSTREAMS_OPS_REPROJECT_OP_H_
#define GEOSTREAMS_OPS_REPROJECT_OP_H_

#include <optional>

#include "geo/crs.h"
#include "raster/frame_assembler.h"
#include "raster/resample.h"
#include "stream/operator.h"

namespace geostreams {

class ReprojectOp : public UnaryOperator {
 public:
  /// Re-projects into `target_crs`. If `fixed_lattice` is provided the
  /// output is gathered onto it (the DSMS uses this to serve a fixed
  /// client viewport); otherwise each frame derives an output lattice
  /// covering its own transformed extent with approximately as many
  /// cells as the source sector.
  ReprojectOp(std::string name, CrsPtr target_crs,
              ResampleKernel kernel = ResampleKernel::kNearest,
              std::optional<GridLattice> fixed_lattice = std::nullopt);

  const CrsPtr& target_crs() const { return target_crs_; }

  /// Derives the per-frame output lattice for a source lattice: the
  /// transformed extent overlaid with a regular grid "corresponding in
  /// size and aspect" to the source.
  static Result<GridLattice> DeriveLattice(const GridLattice& source,
                                           const CrsPtr& target_crs);

  void Reset() override;

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  Status FlushFrame(const FrameInfo& info);

  CrsPtr target_crs_;
  ResampleKernel kernel_;
  std::optional<GridLattice> fixed_lattice_;
  GridLattice out_lattice_;
  GridLattice in_lattice_;
  FrameAssembler assembler_;
  int64_t frame_timestamp_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_REPROJECT_OP_H_
