#include "ops/macro_ops.h"

namespace geostreams {

std::unique_ptr<ComposeOp> MakeNdviOp(std::string name) {
  return std::make_unique<ComposeOp>(std::move(name), BinaryValueFn::Ndvi());
}

std::unique_ptr<ComposeOp> MakeNormalizedDifferenceOp(std::string name) {
  BinaryValueFn f = BinaryValueFn::Ndvi();
  f.name = "normalized_difference";
  return std::make_unique<ComposeOp>(std::move(name), std::move(f));
}

std::unique_ptr<ComposeOp> MakeBandRatioOp(std::string name) {
  return std::make_unique<ComposeOp>(std::move(name), ComposeFn::kDivide, 1);
}

std::unique_ptr<ComposeOp> MakeBandDifferenceOp(std::string name) {
  return std::make_unique<ComposeOp>(std::move(name), ComposeFn::kSubtract,
                                     1);
}

}  // namespace geostreams
