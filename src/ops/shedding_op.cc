#include "ops/shedding_op.h"

#include "common/math_util.h"

namespace geostreams {

const char* SheddingModeName(SheddingMode mode) {
  switch (mode) {
    case SheddingMode::kDropPoints:
      return "drop-points";
    case SheddingMode::kDropRows:
      return "drop-rows";
    case SheddingMode::kDropFrames:
      return "drop-frames";
  }
  return "?";
}

LoadSheddingOp::LoadSheddingOp(std::string name, SheddingMode mode,
                               double keep_fraction, uint64_t seed)
    : UnaryOperator(std::move(name)),
      mode_(mode),
      keep_fraction_(Clamp(keep_fraction, 0.0, 1.0)),
      seed_(seed) {}

void LoadSheddingOp::set_keep_fraction(double keep) {
  keep_fraction_.store(Clamp(keep, 0.0, 1.0), std::memory_order_relaxed);
}

bool LoadSheddingOp::Keep(uint64_t key) const {
  return HashToUnit(seed_ ^ key) <
         keep_fraction_.load(std::memory_order_relaxed);
}

Status LoadSheddingOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      if (mode_ == SheddingMode::kDropFrames) {
        current_frame_shed_ =
            !Keep(static_cast<uint64_t>(event.frame.frame_id) * 0x9E37ULL);
      }
      // Frame metadata always flows: downstream buffering operators
      // rely on scan-sector boundaries even under load.
      return Emit(event);
    case EventKind::kFrameEnd:
    case EventKind::kStreamEnd:
      return Emit(event);
    case EventKind::kPointBatch:
      break;
  }
  const PointBatch& in = *event.batch;
  if (mode_ == SheddingMode::kDropFrames) {
    if (!current_frame_shed_) return Emit(event);
    points_shed_ += in.size();
    return Status::OK();
  }
  if (mode_ == SheddingMode::kDropRows) {
    // A generated batch is usually one scan line, but image-organized
    // streams pack many rows per batch: test each point's row.
    auto out = std::make_shared<PointBatch>();
    out->frame_id = in.frame_id;
    out->band_count = in.band_count;
    for (size_t i = 0; i < in.size(); ++i) {
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(in.rows[i])) << 24) ^
          static_cast<uint64_t>(in.timestamps[i]);
      if (!Keep(key)) {
        ++points_shed_;
        continue;
      }
      out->Append(in.cols[i], in.rows[i], in.timestamps[i],
                  &in.values[i * static_cast<size_t>(in.band_count)]);
    }
    if (out->empty()) return Status::OK();
    return Emit(StreamEvent::Batch(std::move(out)));
  }
  // kDropPoints.
  auto out = std::make_shared<PointBatch>();
  out->frame_id = in.frame_id;
  out->band_count = in.band_count;
  for (size_t i = 0; i < in.size(); ++i) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(in.cols[i])) << 40) ^
        (static_cast<uint64_t>(static_cast<uint32_t>(in.rows[i])) << 16) ^
        static_cast<uint64_t>(in.timestamps[i]);
    if (!Keep(key)) {
      ++points_shed_;
      continue;
    }
    out->Append(in.cols[i], in.rows[i], in.timestamps[i],
                &in.values[i * static_cast<size_t>(in.band_count)]);
  }
  if (out->empty()) return Status::OK();
  return Emit(StreamEvent::Batch(std::move(out)));
}

}  // namespace geostreams
