#include "ops/aggregate_op.h"

#include "common/string_util.h"
#include "geo/geographic_crs.h"

namespace geostreams {

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kAvg:
      return "avg";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
  }
  return "?";
}

AggregateOp::AggregateOp(std::string name, AggregateFn fn,
                         std::vector<RegionPtr> regions, int window_frames,
                         int slide_frames)
    : UnaryOperator(std::move(name)),
      fn_(fn),
      regions_(std::move(regions)),
      window_frames_(window_frames < 1 ? 1 : window_frames),
      slide_frames_(slide_frames < 1
                        ? window_frames_
                        : (slide_frames > window_frames_ ? window_frames_
                                                         : slide_frames)) {}

void AggregateOp::Reset() {
  // Drop the open (partially scanned) frame; completed window partials
  // survive so a recovered stream resumes its window where it left off.
  current_ = FramePartial();
  frame_open_ = false;
  ReportState();
}

Status AggregateOp::Process(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      frame_lattice_ = event.frame.lattice;
      current_.frame_id = event.frame.frame_id;
      current_.accums.assign(regions_.size(), Accum());
      frame_open_ = true;
      return Status::OK();
    case EventKind::kPointBatch: {
      if (!frame_open_) {
        return Status::FailedPrecondition(
            "aggregate requires framed input");
      }
      const PointBatch& batch = *event.batch;
      for (size_t i = 0; i < batch.size(); ++i) {
        const double x = frame_lattice_.CellX(batch.cols[i]);
        const double y = frame_lattice_.CellY(batch.rows[i]);
        const double v = batch.ValueAt(i);
        for (size_t ri = 0; ri < regions_.size(); ++ri) {
          if (!regions_[ri]->Contains(x, y)) continue;
          Accum& a = current_.accums[ri];
          ++a.count;
          a.sum += v;
          if (v < a.min) a.min = v;
          if (v > a.max) a.max = v;
        }
      }
      ReportState();
      return Status::OK();
    }
    case EventKind::kFrameEnd: {
      if (!frame_open_) return Status::OK();
      frame_open_ = false;
      partials_.push_back(std::move(current_));
      current_ = FramePartial();
      if (partials_.size() > static_cast<size_t>(window_frames_)) {
        partials_.pop_front();
      }
      ++frames_since_emit_;
      if (partials_.size() == static_cast<size_t>(window_frames_) &&
          frames_since_emit_ >= slide_frames_) {
        frames_since_emit_ = 0;
        GEOSTREAMS_RETURN_IF_ERROR(EmitWindow());
      }
      ReportState();
      return Status::OK();
    }
    case EventKind::kStreamEnd:
      // Flush a final (possibly short) window covering the frames
      // accumulated since the last emission.
      if (!partials_.empty() && frames_since_emit_ > 0) {
        GEOSTREAMS_RETURN_IF_ERROR(EmitWindow());
      }
      partials_.clear();
      frames_since_emit_ = 0;
      ReportState();
      return Emit(event);
  }
  return Status::OK();
}

double AggregateOp::Finalize(const Accum& a) const {
  switch (fn_) {
    case AggregateFn::kCount:
      return static_cast<double>(a.count);
    case AggregateFn::kSum:
      return a.sum;
    case AggregateFn::kAvg:
      return a.count == 0 ? 0.0 : a.sum / static_cast<double>(a.count);
    case AggregateFn::kMin:
      return a.count == 0 ? 0.0 : a.min;
    case AggregateFn::kMax:
      return a.count == 0 ? 0.0 : a.max;
  }
  return 0.0;
}

Status AggregateOp::EmitWindow() {
  if (partials_.empty()) return Status::OK();
  const int64_t start = partials_.front().frame_id;
  const int64_t end = partials_.back().frame_id;

  FrameInfo info;
  info.frame_id = start;
  info.lattice =
      GridLattice(GeographicCrs::Instance(), 0.0, 0.0, 1.0, 1.0,
                  static_cast<int64_t>(regions_.size()), 1);
  info.expected_points = static_cast<int64_t>(regions_.size());
  GEOSTREAMS_RETURN_IF_ERROR(Emit(StreamEvent::FrameBegin(info)));

  auto out = std::make_shared<PointBatch>();
  out->frame_id = start;
  out->band_count = 1;
  for (size_t ri = 0; ri < regions_.size(); ++ri) {
    Accum merged;
    for (const FramePartial& fp : partials_) {
      merged.Merge(fp.accums[ri]);
    }
    AggregateResult res;
    res.region_index = static_cast<int>(ri);
    res.window_start_frame = start;
    res.window_end_frame = end;
    res.count = merged.count;
    res.value = Finalize(merged);
    results_.push_back(res);
    out->Append1(static_cast<int32_t>(ri), 0, start, res.value);
  }
  GEOSTREAMS_RETURN_IF_ERROR(Emit(StreamEvent::Batch(std::move(out))));
  GEOSTREAMS_RETURN_IF_ERROR(Emit(StreamEvent::FrameEnd(info)));

  // Tumbling windows restart from scratch; sliding windows keep the
  // overlapping frames' partials.
  if (slide_frames_ >= window_frames_) {
    partials_.clear();
  } else {
    for (int i = 0; i < slide_frames_ && !partials_.empty(); ++i) {
      partials_.pop_front();
    }
  }
  return Status::OK();
}

void AggregateOp::ReportState() {
  const size_t frames =
      partials_.size() + (frame_open_ ? 1 : 0);
  ReportBuffered(frames * regions_.size() * sizeof(Accum));
}

}  // namespace geostreams
