#include "ops/compose_op.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/string_util.h"
#include "kernels/kernels.h"

namespace geostreams {

BinaryValueFn BinaryValueFn::FromComposeFn(ComposeFn gamma, int bands) {
  BinaryValueFn f;
  f.name = ComposeFnName(gamma);
  f.out_bands = bands;
  f.is_gamma = true;
  f.gamma = gamma;
  f.fn = [gamma, bands](const double* a, const double* b, double* out) {
    for (int i = 0; i < bands; ++i) out[i] = ApplyComposeFn(gamma, a[i], b[i]);
  };
  return f;
}

BinaryValueFn BinaryValueFn::Ndvi() {
  BinaryValueFn f;
  f.name = "ndvi";
  f.out_bands = 1;
  f.fn = [](const double* a, const double* b, double* out) {
    const double sum = a[0] + b[0];
    out[0] = sum == 0.0 ? 0.0 : (a[0] - b[0]) / sum;
  };
  return f;
}

BinaryValueFn BinaryValueFn::Stack(int left_bands, int right_bands) {
  BinaryValueFn f;
  f.name = StringPrintf("stack(%d+%d)", left_bands, right_bands);
  f.out_bands = left_bands + right_bands;
  f.left_bands = left_bands;
  f.right_bands = right_bands;
  f.fn = [left_bands, right_bands](const double* a, const double* b,
                                   double* out) {
    for (int i = 0; i < left_bands; ++i) out[i] = a[i];
    for (int i = 0; i < right_bands; ++i) out[left_bands + i] = b[i];
  };
  return f;
}

size_t ComposeOp::PKeyHash::operator()(const PKey& k) const {
  uint64_t h = static_cast<uint64_t>(k.t);
  h = Mix64(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(k.col)) << 32 |
                 static_cast<uint32_t>(k.row)));
  return static_cast<size_t>(h);
}

ComposeOp::ComposeOp(std::string name, BinaryValueFn fn)
    : BinaryOperator(std::move(name)), fn_(std::move(fn)) {}

ComposeOp::ComposeOp(std::string name, ComposeFn gamma, int bands)
    : BinaryOperator(std::move(name)),
      fn_(BinaryValueFn::FromComposeFn(gamma, bands)) {}

Status ComposeOp::Process(int port, const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      return HandleFrameBegin(port, event.frame);
    case EventKind::kFrameEnd:
      return HandleFrameEnd(port, event.frame);
    case EventKind::kPointBatch:
      return HandleBatch(port, *event.batch);
    case EventKind::kStreamEnd:
      return HandleStreamEnd();
  }
  return Status::OK();
}

Status ComposeOp::HandleFrameBegin(int port, const FrameInfo& info) {
  FrameState& fs = frames_[info.frame_id];
  if (fs.began[port]) {
    return Status::FailedPrecondition(
        StringPrintf("frame %lld began twice on port %d",
                     static_cast<long long>(info.frame_id), port));
  }
  fs.began[port] = true;
  const int other = 1 - port;
  if (fs.began[other]) {
    // Precondition of Definition 10: both streams over the same point
    // lattice (same CRS, same resolution, aligned origins).
    if (!fs.info.lattice.AlignedWith(info.lattice)) {
      return Status::LatticeMismatch(StringPrintf(
          "composition inputs disagree on frame %lld lattice: %s vs %s",
          static_cast<long long>(info.frame_id),
          fs.info.lattice.ToString().c_str(),
          info.lattice.ToString().c_str()));
    }
  } else {
    fs.info = info;
  }
  return AdvanceOutput();
}

Status ComposeOp::HandleFrameEnd(int port, const FrameInfo& info) {
  auto it = frames_.find(info.frame_id);
  if (it == frames_.end() || !it->second.began[port]) {
    return Status::FailedPrecondition(
        StringPrintf("frame %lld ended on port %d without beginning",
                     static_cast<long long>(info.frame_id), port));
  }
  it->second.ended[port] = true;
  return AdvanceOutput();
}

Status ComposeOp::HandleBatch(int port, const PointBatch& batch) {
  // Resolve this port's band count: pinned by the function (stack) or
  // inferred and required to match the other port.
  const int expected = port == 0 ? fn_.left_bands : fn_.right_bands;
  if (expected > 0 && batch.band_count != expected) {
    return Status::InvalidArgument(StringPrintf(
        "composition port %d expects %d bands, stream has %d", port,
        expected, batch.band_count));
  }
  if (in_bands_[port] == 0) {
    in_bands_[port] = batch.band_count;
    const int other = in_bands_[1 - port];
    if (expected == 0 && other != 0 && other != batch.band_count) {
      return Status::InvalidArgument(StringPrintf(
          "composition inputs have different band counts: %d vs %d", other,
          batch.band_count));
    }
  } else if (batch.band_count != in_bands_[port]) {
    return Status::InvalidArgument(StringPrintf(
        "composition port %d band count changed: %d vs %d", port,
        in_bands_[port], batch.band_count));
  }
  auto it = frames_.find(batch.frame_id);
  if (it == frames_.end()) {
    return Status::FailedPrecondition(
        StringPrintf("batch for unknown frame %lld",
                     static_cast<long long>(batch.frame_id)));
  }
  FrameState& fs = it->second;
  const int other = 1 - port;

  std::shared_ptr<PointBatch> out;
  const bool frame_open =
      open_frame_.has_value() && *open_frame_ == batch.frame_id;
  // Gamma fast path: gather matched pairs into contiguous columns and
  // apply the arithmetic with one kernel pass after the join loop.
  // The per-point std::function stays for macro products (NDVI,
  // stack) and for band configurations the staging does not cover.
  const size_t bands = static_cast<size_t>(in_bands_[port]);
  const bool stage = fn_.is_gamma && in_bands_[port] == fn_.out_bands;
  if (stage) {
    stage_keys_.clear();
    stage_a_.clear();
    stage_b_.clear();
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    PKey key{batch.timestamps[i], batch.cols[i], batch.rows[i]};
    auto match = pending_[other].find(key);
    if (match == pending_[other].end()) {
      PendingValue pv;
      for (int b = 0; b < in_bands_[port]; ++b) {
        pv.v[static_cast<size_t>(b)] = batch.ValueAt(i, b);
      }
      pending_[port].emplace(key, pv);
      fs.keys[port].push_back(key);
      continue;
    }
    // Matched: left operand is stream 0's value.
    const double* incoming = &batch.values[i * bands];
    const double* matched = match->second.v.data();
    const double* left = port == 0 ? incoming : matched;
    const double* right = port == 0 ? matched : incoming;
    if (stage) {
      stage_keys_.push_back(key);
      stage_a_.insert(stage_a_.end(), left, left + bands);
      stage_b_.insert(stage_b_.end(), right, right + bands);
    } else {
      PendingValue result;
      fn_.fn(left, right, result.v.data());
      if (frame_open) {
        if (!out) {
          out = std::make_shared<PointBatch>();
          out->frame_id = batch.frame_id;
          out->band_count = fn_.out_bands;
        }
        out->Append(key.col, key.row, key.t, result.v.data());
      } else {
        fs.held.emplace_back(key, result);
      }
    }
    pending_[other].erase(match);
    ++matches_;
  }

  if (stage && !stage_keys_.empty()) {
    stage_out_.resize(stage_a_.size());
    kernels::ComposeArith(fn_.gamma, stage_a_.data(), stage_b_.data(),
                          stage_a_.size(), stage_out_.data());
    if (frame_open) {
      out = std::make_shared<PointBatch>();
      out->frame_id = batch.frame_id;
      out->band_count = fn_.out_bands;
      out->Reserve(stage_keys_.size());
      for (size_t k = 0; k < stage_keys_.size(); ++k) {
        const PKey& key = stage_keys_[k];
        out->Append(key.col, key.row, key.t, &stage_out_[k * bands]);
      }
    } else {
      for (size_t k = 0; k < stage_keys_.size(); ++k) {
        PendingValue result;
        for (size_t b = 0; b < bands; ++b) {
          result.v[b] = stage_out_[k * bands + b];
        }
        fs.held.emplace_back(stage_keys_[k], result);
      }
    }
  }
  UpdateBuffered();
  if (out) return Emit(StreamEvent::Batch(std::move(out)));
  return Status::OK();
}

Status ComposeOp::EmitHeld(FrameState* fs) {
  if (fs->held.empty()) return Status::OK();
  auto out = std::make_shared<PointBatch>();
  out->frame_id = fs->info.frame_id;
  out->band_count = fn_.out_bands;
  out->Reserve(fs->held.size());
  for (const auto& [key, pv] : fs->held) {
    out->Append(key.col, key.row, key.t, pv.v.data());
  }
  fs->held.clear();
  return Emit(StreamEvent::Batch(std::move(out)));
}

Status ComposeOp::AdvanceOutput() {
  while (true) {
    if (open_frame_.has_value()) {
      auto it = frames_.find(*open_frame_);
      FrameState& fs = it->second;
      if (!(fs.ended[0] && fs.ended[1])) break;
      GEOSTREAMS_RETURN_IF_ERROR(EmitHeld(&fs));
      FrameInfo info = fs.info;
      // Evict unmatched points of the closed frame: they can never
      // match now (their counterpart frame is over).
      for (int p = 0; p < 2; ++p) {
        for (const PKey& key : fs.keys[p]) pending_[p].erase(key);
      }
      frames_.erase(it);
      open_frame_.reset();
      UpdateBuffered();
      GEOSTREAMS_RETURN_IF_ERROR(Emit(StreamEvent::FrameEnd(info)));
      continue;
    }
    // Open the next frame, in frame-id order; stop at the first frame
    // one side has not begun yet (per-stream frames arrive in order).
    if (frames_.empty()) break;
    FrameState& fs = frames_.begin()->second;
    if (!(fs.began[0] && fs.began[1]) || fs.begin_emitted) break;
    fs.begin_emitted = true;
    open_frame_ = fs.info.frame_id;
    GEOSTREAMS_RETURN_IF_ERROR(Emit(StreamEvent::FrameBegin(fs.info)));
    GEOSTREAMS_RETURN_IF_ERROR(EmitHeld(&fs));
  }
  return Status::OK();
}

Status ComposeOp::HandleStreamEnd() {
  if (++stream_ends_ < 2) return Status::OK();
  // Force-close everything in order: frames one side never finished
  // are flushed with whatever matched.
  for (auto& [id, fs] : frames_) {
    if (!fs.begin_emitted) {
      GEOSTREAMS_RETURN_IF_ERROR(Emit(StreamEvent::FrameBegin(fs.info)));
    }
    GEOSTREAMS_RETURN_IF_ERROR(EmitHeld(&fs));
    if (!fs.end_emitted) {
      GEOSTREAMS_RETURN_IF_ERROR(Emit(StreamEvent::FrameEnd(fs.info)));
    }
  }
  frames_.clear();
  pending_[0].clear();
  pending_[1].clear();
  open_frame_.reset();
  UpdateBuffered();
  return Emit(StreamEvent::StreamEnd());
}

void ComposeOp::Reset() {
  pending_[0].clear();
  pending_[1].clear();
  frames_.clear();
  open_frame_.reset();
  stream_ends_ = 0;
  UpdateBuffered();
}

void ComposeOp::UpdateBuffered() {
  const int widest = std::max(std::max(in_bands_[0], in_bands_[1]), 1);
  const size_t entry_bytes =
      sizeof(PKey) + static_cast<size_t>(widest) * sizeof(double);
  size_t held = 0;
  for (const auto& [id, fs] : frames_) {
    held += fs.held.size() * (sizeof(PKey) + sizeof(PendingValue));
  }
  ReportBuffered(
      (pending_[0].size() + pending_[1].size()) * entry_bytes + held);
}

}  // namespace geostreams
