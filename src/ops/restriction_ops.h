// Stream restriction operators (Sec. 3.1).
//
// All three restrictions filter points against a condition on the
// spatial, temporal, or value component. They are non-blocking,
// process points one by one, and keep no intermediate point data —
// the cost properties E1 measures.

#ifndef GEOSTREAMS_OPS_RESTRICTION_OPS_H_
#define GEOSTREAMS_OPS_RESTRICTION_OPS_H_

#include <memory>
#include <vector>

#include "geo/region.h"
#include "ops/time_set.h"
#include "stream/operator.h"

namespace geostreams {

/// Spatial restriction G|R (Definition 6). The region is expressed in
/// the stream's CRS; point coordinates are derived from the frame
/// lattice carried by FrameBegin metadata. Frames whose lattice
/// extent cannot intersect the region's bounding box are skipped
/// wholesale (their batches are dropped without per-point tests).
class SpatialRestrictionOp : public UnaryOperator {
 public:
  SpatialRestrictionOp(std::string name, RegionPtr region);

  const Region& region() const { return *region_; }

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  RegionPtr region_;
  GridLattice frame_lattice_;
  bool frame_may_intersect_ = false;
  bool in_frame_ = false;
};

/// Temporal restriction G|T (Definition 7): keeps points whose
/// timestamp belongs to the time set.
class TemporalRestrictionOp : public UnaryOperator {
 public:
  TemporalRestrictionOp(std::string name, TimeSet times);

  const TimeSet& times() const { return times_; }

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  TimeSet times_;
};

/// One conjunct of a value restriction: band sample within [lo, hi].
struct ValueBandRange {
  int band = 0;
  double lo = -1e308;
  double hi = 1e308;
};

/// Value restriction G|V: keeps points whose value lies in V,
/// expressed as a conjunction of per-band ranges.
class ValueRestrictionOp : public UnaryOperator {
 public:
  ValueRestrictionOp(std::string name, std::vector<ValueBandRange> ranges);

  const std::vector<ValueBandRange>& ranges() const { return ranges_; }

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  std::vector<ValueBandRange> ranges_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_RESTRICTION_OPS_H_
