// Stream restriction operators (Sec. 3.1).
//
// All three restrictions filter points against a condition on the
// spatial, temporal, or value component. They are non-blocking and
// keep no intermediate point data — the cost properties E1 measures.
// Since the columnar rework each restriction runs as a kernel pass
// over the batch columns (src/kernels/) producing a keep-mask, then a
// bulk compaction; results are point-for-point identical to the
// per-point formulation.

#ifndef GEOSTREAMS_OPS_RESTRICTION_OPS_H_
#define GEOSTREAMS_OPS_RESTRICTION_OPS_H_

#include <memory>
#include <vector>

#include "geo/region.h"
#include "kernels/kernels.h"
#include "ops/time_set.h"
#include "stream/operator.h"

namespace geostreams {

/// Spatial restriction G|R (Definition 6). The region is expressed in
/// the stream's CRS; point coordinates are derived from the frame
/// lattice carried by FrameBegin metadata. Frames whose lattice
/// extent cannot intersect the region's bounding box are skipped
/// wholesale (their batches are dropped without per-point tests).
///
/// Frameless streams (point-by-point organization) never deliver a
/// FrameBegin, so they must be constructed with a reference lattice —
/// the planner passes the stream descriptor's. A batch arriving
/// before any frame geometry is known is a FailedPrecondition error,
/// not a silent evaluation against a default lattice.
class SpatialRestrictionOp : public UnaryOperator {
 public:
  SpatialRestrictionOp(std::string name, RegionPtr region);
  /// With a reference lattice for batches outside any frame.
  SpatialRestrictionOp(std::string name, RegionPtr region,
                       GridLattice reference_lattice);

  const Region& region() const { return *region_; }

  void Reset() override;

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  RegionPtr region_;
  kernels::RegionMatcher matcher_;
  GridLattice reference_lattice_;
  bool has_reference_lattice_ = false;
  GridLattice frame_lattice_;
  bool has_frame_geometry_ = false;
  bool frame_may_intersect_ = false;
  bool in_frame_ = false;
  // Scratch columns, reused across batches (operators are
  // single-threaded under the scheduler's claim protocol).
  std::vector<double> xs_, ys_;
  std::vector<uint8_t> keep_;
};

/// Temporal restriction G|T (Definition 7): keeps points whose
/// timestamp belongs to the time set. Scan-sector batches carry one
/// timestamp for every point, so a uniform-timestamp check first
/// decides most batches with a single Contains().
class TemporalRestrictionOp : public UnaryOperator {
 public:
  TemporalRestrictionOp(std::string name, TimeSet times);

  const TimeSet& times() const { return times_; }

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  TimeSet times_;
  std::vector<uint8_t> keep_;
};

/// One conjunct of a value restriction: band sample within [lo, hi].
struct ValueBandRange {
  int band = 0;
  double lo = -1e308;
  double hi = 1e308;
};

/// Value restriction G|V: keeps points whose value lies in V,
/// expressed as a conjunction of per-band ranges. A range on a band
/// the batch does not carry drops every point (the conjunct is
/// unsatisfiable); a negative band index is rejected as an error —
/// it would otherwise index before the values column.
class ValueRestrictionOp : public UnaryOperator {
 public:
  ValueRestrictionOp(std::string name, std::vector<ValueBandRange> ranges);

  const std::vector<ValueBandRange>& ranges() const { return ranges_; }

 protected:
  Status Process(const StreamEvent& event) override;

 private:
  std::vector<ValueBandRange> ranges_;
  std::vector<uint8_t> keep_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OPS_RESTRICTION_OPS_H_
