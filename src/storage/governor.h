// Disk-pressure governor shared by the durable journal and the tiled
// historical store.
//
// The paper's stream model is explicit that any stored view of an
// unbounded stream must be finite; PR 7/8 gave the server two on-disk
// subsystems that grow without limit and treat ENOSPC as a silent
// per-record error counter. The governor is the single place that
// (a) accounts on-disk bytes per subsystem ("journal", "store"),
// (b) holds the byte/age budgets retention and compaction enforce,
// and (c) runs the degraded-mode state machine for the whole storage
// plane:
//
//   healthy   — writes admitted; retention keeps usage under budget.
//   degraded  — entered when a subsystem reports an I/O failure
//     (ENOSPC/EIO classified as IoError/ResourceExhausted/Unavailable)
//     or the filesystem's free space drops under `min_free_bytes`.
//     Admit() refuses writes with Unavailable so the journal NACKs
//     producers (never fake durability) and the store sheds PutFrame
//     loudly, while reads — live queries and stored history — keep
//     working untouched.
//
// Self-healing is a write probe: while degraded, Admit() (rate
// limited to one probe per `probe_interval_ms`) and RecordWriteResult
// on a subsystem's own successful write both re-run a small
// create/append/fsync/unlink cycle in `probe_dir` through the same
// WritableFileFactory the subsystems write through — so injected
// ENOSPC faults gate the probe exactly like real ones — and flip the
// plane back to healthy once the probe succeeds and free space is
// back over the floor. Because every NACKed producer retries, the
// admission path itself supplies the probe cadence; no dedicated
// thread is needed.
//
// Thread-safety: degraded() is one relaxed atomic load (hot paths
// branch on it); everything else takes the internal mutex. Probes
// perform file I/O outside the mutex.

#ifndef GEOSTREAMS_STORAGE_GOVERNOR_H_
#define GEOSTREAMS_STORAGE_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "storage/journal.h"  // WritableFileFactory

namespace geostreams {

class EventLog;

struct StorageGovernorOptions {
  /// Directory the write probe uses (usually the journal/store root).
  /// Empty = probes always succeed (state machine still runs on
  /// RecordWriteResult, useful for tests).
  std::string probe_dir;
  /// Degrade when the filesystem holding probe_dir has fewer free
  /// bytes than this, even before a write fails (0 = no floor).
  uint64_t min_free_bytes = 0;
  /// Minimum ms between write probes on the admission path while
  /// degraded (RecordWriteResult successes probe immediately).
  uint64_t probe_interval_ms = 200;
  /// Probe file opener; null = OpenPosixWritable. Tests and the chaos
  /// lane inject FaultyFile so ENOSPC gates probes deterministically.
  WritableFileFactory file_factory;
  /// Free-bytes source for the floor check; null = statvfs. Tests
  /// inject a closure to step pressure deterministically.
  std::function<Result<uint64_t>(const std::string& dir)> free_bytes_fn;
  /// Millisecond clock for probe rate limiting; null = steady_clock.
  std::function<uint64_t()> now_ms;
  /// Optional registry for geostreams_storage_* series. Not owned.
  MetricsRegistry* metrics = nullptr;
  /// Optional flight recorder (not owned): degraded/heal transitions
  /// are recorded as structured events.
  EventLog* event_log = nullptr;
};

/// Byte/age budget for one subsystem; retention in the owning
/// subsystem enforces it (the governor only does the arithmetic).
struct SubsystemBudget {
  uint64_t max_bytes = 0;   // 0 = unlimited
  uint64_t max_age_ms = 0;  // 0 = no age cap
};

struct StorageGovernorStats {
  bool degraded = false;
  uint64_t degraded_entries = 0;   // healthy -> degraded transitions
  uint64_t healed = 0;             // degraded -> healthy transitions
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t admissions_refused = 0; // Admit() calls refused while degraded
  uint64_t write_errors = 0;       // failures fed to RecordWriteResult
  std::string last_error;          // what pushed us degraded last
};

class StorageGovernor {
 public:
  explicit StorageGovernor(StorageGovernorOptions options);
  StorageGovernor(const StorageGovernor&) = delete;
  StorageGovernor& operator=(const StorageGovernor&) = delete;

  /// Budgets are keyed by subsystem name ("journal", "store").
  void SetBudget(const std::string& subsystem, SubsystemBudget budget);
  SubsystemBudget Budget(const std::string& subsystem) const;

  /// On-disk byte accounting, maintained by the subsystems (set at
  /// recovery, adjusted on append / retention / GC).
  void SetUsage(const std::string& subsystem, uint64_t bytes);
  void AddUsage(const std::string& subsystem, int64_t delta);
  uint64_t Usage(const std::string& subsystem) const;
  /// How many bytes the subsystem must reclaim to meet its byte
  /// budget (0 = within budget or no budget set).
  uint64_t BytesOverBudget(const std::string& subsystem) const;

  /// True while the storage plane is refusing writes.
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Write admission. Healthy: OK (plus a rate-limited free-space
  /// floor check). Degraded: runs the rate-limited self-heal probe,
  /// then returns Unavailable if still degraded — the caller NACKs /
  /// sheds and the next retry re-probes.
  Status Admit(const std::string& subsystem);

  /// Classifies the outcome of a subsystem's own write: an I/O-class
  /// failure (IoError, ResourceExhausted, Unavailable) enters
  /// degraded mode; a success while degraded triggers an immediate
  /// probe (the disk evidently accepts bytes again).
  void RecordWriteResult(const std::string& subsystem, const Status& status);

  /// Forces one write probe now; returns the post-probe health.
  bool ProbeNow();

  /// Free bytes on the filesystem holding probe_dir.
  Result<uint64_t> FreeBytes() const;

  StorageGovernorStats stats() const;

 private:
  struct Subsystem {
    SubsystemBudget budget;
    uint64_t bytes = 0;
    Gauge* m_bytes = nullptr;  // geostreams_storage_bytes{subsystem=...}
  };

  uint64_t NowMs() const;
  /// One create/append/fsync/unlink cycle in probe_dir plus the
  /// free-space floor check. Returns OK when the disk takes writes.
  Status RunProbe();
  /// Applies a probe outcome to the state machine.
  void FinishProbe(const Status& probe, std::unique_lock<std::mutex>* lock);
  void EnterDegradedLocked(const std::string& why);
  void ExitDegradedLocked();

  const StorageGovernorOptions options_;

  mutable std::mutex mu_;
  std::atomic<bool> degraded_{false};
  std::map<std::string, Subsystem> subsystems_;
  uint64_t last_probe_ms_ = 0;
  bool probe_inflight_ = false;  // collapse concurrent probes to one
  StorageGovernorStats stats_;

  // geostreams_storage_* series; null without a registry.
  Gauge* m_degraded_ = nullptr;
  Gauge* m_free_bytes_ = nullptr;
  Counter* m_degraded_entries_ = nullptr;
  Counter* m_healed_ = nullptr;
  Counter* m_probes_ = nullptr;
  Counter* m_probe_failures_ = nullptr;
  Counter* m_refused_ = nullptr;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STORAGE_GOVERNOR_H_
