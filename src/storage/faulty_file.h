// Fault injection at the storage boundary — the disk half of the
// chaos-testing harness (FlakySocket covers the network half).
//
// A FaultyFileInjector builds a WritableFileFactory whose files
// misbehave on a deterministic schedule derived from a seed and a
// shared operation counter, so every failure a test provokes
// reproduces from the same seed:
//
//   * short writes — an Append persists only a prefix of the record
//     and reports an I/O error, leaving a torn record on disk exactly
//     like a power cut mid-write; recovery must truncate it;
//   * bit flips — one byte of the buffer is flipped before it reaches
//     the real file, modelling silent media corruption; the record's
//     CRC-32 must catch it at recovery;
//   * sync failures — fsync reports an error without the bytes being
//     made durable, exercising the ack gate's failure path;
//   * fail-at-byte-N — a lifetime byte budget across every file the
//     factory opens; the write that crosses it persists only the
//     bytes up to the limit (a torn prefix) and fails. Kill-point
//     schedules sweep N to place a crash inside every record of a
//     run.
//
// Probabilities are evaluated with a counter-indexed hash (no shared
// RNG state). A default-constructed options struct injects nothing —
// the factory then behaves like OpenPosixWritable.

#ifndef GEOSTREAMS_STORAGE_FAULTY_FILE_H_
#define GEOSTREAMS_STORAGE_FAULTY_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "storage/journal.h"

namespace geostreams {

struct FaultyFileOptions {
  /// Seed for the deterministic fault schedule.
  uint64_t seed = 1;
  /// Probability an Append persists a torn prefix and fails.
  double short_write_p = 0.0;
  /// Probability an Append flips one byte before persisting.
  double bit_flip_p = 0.0;
  /// Probability a Sync fails (bytes stay volatile).
  double sync_fail_p = 0.0;
  /// Lifetime byte budget across all files from this injector:
  /// 0 = unlimited; otherwise the append that crosses the budget
  /// persists only up to it and fails. Models kill -9 at byte N.
  uint64_t fail_at_byte = 0;
  /// Shared space quota across all files (0 = unlimited): an append
  /// that would push lifetime bytes_written past the quota persists
  /// only the bytes that fit (a torn record, like real ENOSPC) and
  /// fails with a ResourceExhausted "no space" error. Unlike
  /// fail_at_byte the disk stays alive — syncs keep working and
  /// raising the quota (SetSpaceQuota) models space being freed, so
  /// degraded -> healthy self-healing is testable deterministically.
  uint64_t space_quota_bytes = 0;
};

/// What the injector actually did — asserted against in chaos tests
/// so a "passing" run provably exercised the faults it configured.
struct FaultyFileStats {
  uint64_t appends = 0;
  uint64_t short_writes = 0;
  uint64_t bit_flips = 0;
  uint64_t sync_failures = 0;
  uint64_t bytes_written = 0;  // bytes actually persisted
  uint64_t enospc_failures = 0;  // appends refused by the space quota
  bool budget_exhausted = false;
};

/// Shared fault state for every file opened through Factory(). Thread
/// safe; outlive any journal using the factory.
class FaultyFileInjector {
 public:
  explicit FaultyFileInjector(FaultyFileOptions options = {});

  /// A WritableFileFactory wrapping OpenPosixWritable with this
  /// injector's fault schedule. The injector must outlive every file.
  WritableFileFactory Factory();

  FaultyFileStats stats() const;

  /// Disarms every fault (recovery phases of a chaos test run clean).
  void Disarm();

  /// Adjusts the shared space quota at runtime (0 = unlimited).
  /// Raising it past bytes_written models an operator freeing disk
  /// space: the next append — and the governor's write probe —
  /// succeeds again.
  void SetSpaceQuota(uint64_t bytes);

 private:
  friend class FaultyFile;

  mutable std::mutex mu_;
  FaultyFileOptions options_;
  FaultyFileStats stats_;
  uint64_t op_counter_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STORAGE_FAULTY_FILE_H_
