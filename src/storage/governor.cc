#include "storage/governor.h"

#include <sys/statvfs.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/event_log.h"

namespace geostreams {

namespace fs = std::filesystem;

namespace {

constexpr const char* kProbeFile = ".gs-write-probe";

uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Result<uint64_t> StatvfsFreeBytes(const std::string& dir) {
  struct statvfs vfs;
  if (statvfs(dir.c_str(), &vfs) != 0) {
    return Status::IoError(StringPrintf("statvfs(%s): %s", dir.c_str(),
                                        std::strerror(errno)));
  }
  return static_cast<uint64_t>(vfs.f_bavail) *
         static_cast<uint64_t>(vfs.f_frsize);
}

/// An append failure means "the disk refuses bytes" only for the
/// I/O-shaped codes; InvalidArgument etc. are caller bugs, not
/// pressure.
bool IsDiskPressure(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kUnavailable;
}

}  // namespace

StorageGovernor::StorageGovernor(StorageGovernorOptions options)
    : options_(std::move(options)) {
  if (MetricsRegistry* reg = options_.metrics) {
    m_degraded_ = reg->GetGauge(
        "geostreams_storage_degraded",
        "1 while the storage plane is refusing writes (disk pressure)");
    m_free_bytes_ = reg->GetGauge(
        "geostreams_storage_free_bytes",
        "free bytes on the filesystem holding the storage directories");
    m_degraded_entries_ = reg->GetCounter(
        "geostreams_storage_degraded_entries_total",
        "healthy->degraded transitions of the storage plane");
    m_healed_ = reg->GetCounter(
        "geostreams_storage_healed_total",
        "degraded->healthy transitions (write probe succeeded)");
    m_probes_ = reg->GetCounter("geostreams_storage_probes_total",
                                "write probes run by the governor");
    m_probe_failures_ = reg->GetCounter(
        "geostreams_storage_probe_failures_total",
        "write probes that failed (plane stays degraded)");
    m_refused_ = reg->GetCounter(
        "geostreams_storage_admissions_refused_total",
        "writes refused at admission while degraded");
  }
}

void StorageGovernor::SetBudget(const std::string& subsystem,
                                SubsystemBudget budget) {
  std::lock_guard<std::mutex> lock(mu_);
  Subsystem& sub = subsystems_[subsystem];
  sub.budget = budget;
  if (sub.m_bytes == nullptr && options_.metrics != nullptr) {
    sub.m_bytes = options_.metrics->GetGauge(
        "geostreams_storage_bytes",
        "on-disk bytes accounted per storage subsystem",
        {{"subsystem", subsystem}});
  }
}

SubsystemBudget StorageGovernor::Budget(const std::string& subsystem) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subsystems_.find(subsystem);
  return it == subsystems_.end() ? SubsystemBudget{} : it->second.budget;
}

void StorageGovernor::SetUsage(const std::string& subsystem, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Subsystem& sub = subsystems_[subsystem];
  if (sub.m_bytes == nullptr && options_.metrics != nullptr) {
    sub.m_bytes = options_.metrics->GetGauge(
        "geostreams_storage_bytes",
        "on-disk bytes accounted per storage subsystem",
        {{"subsystem", subsystem}});
  }
  sub.bytes = bytes;
  if (sub.m_bytes != nullptr) sub.m_bytes->Set(sub.bytes);
}

void StorageGovernor::AddUsage(const std::string& subsystem, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  Subsystem& sub = subsystems_[subsystem];
  if (delta < 0 && sub.bytes < static_cast<uint64_t>(-delta)) {
    sub.bytes = 0;  // accounting drift clamps at zero, never wraps
  } else {
    sub.bytes += delta;
  }
  if (sub.m_bytes != nullptr) sub.m_bytes->Set(sub.bytes);
}

uint64_t StorageGovernor::Usage(const std::string& subsystem) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subsystems_.find(subsystem);
  return it == subsystems_.end() ? 0 : it->second.bytes;
}

uint64_t StorageGovernor::BytesOverBudget(const std::string& subsystem) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subsystems_.find(subsystem);
  if (it == subsystems_.end()) return 0;
  const Subsystem& sub = it->second;
  if (sub.budget.max_bytes == 0 || sub.bytes <= sub.budget.max_bytes) return 0;
  return sub.bytes - sub.budget.max_bytes;
}

uint64_t StorageGovernor::NowMs() const {
  return options_.now_ms ? options_.now_ms() : SteadyNowMs();
}

Result<uint64_t> StorageGovernor::FreeBytes() const {
  if (options_.probe_dir.empty()) {
    return Status::FailedPrecondition("governor has no probe_dir");
  }
  return options_.free_bytes_fn ? options_.free_bytes_fn(options_.probe_dir)
                                : StatvfsFreeBytes(options_.probe_dir);
}

Status StorageGovernor::RunProbe() {
  // Free-space floor first: a filesystem about to fill should degrade
  // before the first hard ENOSPC tears a record.
  if (options_.min_free_bytes > 0 || m_free_bytes_ != nullptr) {
    Result<uint64_t> free = FreeBytes();
    if (free.ok()) {
      if (m_free_bytes_ != nullptr) m_free_bytes_->Set(*free);
      if (options_.min_free_bytes > 0 && *free < options_.min_free_bytes) {
        return Status::ResourceExhausted(StringPrintf(
            "free space %llu below floor %llu",
            static_cast<unsigned long long>(*free),
            static_cast<unsigned long long>(options_.min_free_bytes)));
      }
    }
    // A failed statvfs is not itself pressure; the write probe decides.
  }
  if (options_.probe_dir.empty()) return Status::OK();
  const std::string path =
      (fs::path(options_.probe_dir) / kProbeFile).string();
  auto open = options_.file_factory ? options_.file_factory(path)
                                    : OpenPosixWritable(path);
  if (!open.ok()) return open.status();
  std::unique_ptr<WritableFile> file = std::move(*open);
  static const uint8_t kProbeBytes[] = "gs-probe";
  Status st = file->Append(kProbeBytes, sizeof(kProbeBytes));
  if (st.ok()) st = file->Sync();
  const Status closed = file->Close();
  if (st.ok()) st = closed;
  std::error_code ec;
  fs::remove(path, ec);  // best effort; a stale probe file is harmless
  return st;
}

void StorageGovernor::EnterDegradedLocked(const std::string& why) {
  if (!degraded_.load(std::memory_order_relaxed)) {
    degraded_.store(true, std::memory_order_relaxed);
    ++stats_.degraded_entries;
    if (m_degraded_ != nullptr) m_degraded_->Set(1);
    if (m_degraded_entries_ != nullptr) m_degraded_entries_->Increment();
    GEOSTREAMS_LOG(kError) << "storage plane DEGRADED: " << why
                           << " (writes refused; reads keep serving; "
                              "write probe will self-heal)";
    if (options_.event_log != nullptr) {
      options_.event_log->Append(EventSeverity::kError, "governor",
                                 "degraded", why);
    }
  }
  stats_.last_error = why;
}

void StorageGovernor::ExitDegradedLocked() {
  if (degraded_.load(std::memory_order_relaxed)) {
    degraded_.store(false, std::memory_order_relaxed);
    ++stats_.healed;
    if (m_degraded_ != nullptr) m_degraded_->Set(0);
    if (m_healed_ != nullptr) m_healed_->Increment();
    GEOSTREAMS_LOG(kInfo)
        << "storage plane healthy again (write probe succeeded)";
    if (options_.event_log != nullptr) {
      options_.event_log->Append(EventSeverity::kInfo, "governor", "healed",
                                 "write probe succeeded");
    }
  }
}

void StorageGovernor::FinishProbe(const Status& probe,
                                  std::unique_lock<std::mutex>* lock) {
  ++stats_.probes;
  if (m_probes_ != nullptr) m_probes_->Increment();
  if (probe.ok()) {
    ExitDegradedLocked();
  } else {
    ++stats_.probe_failures;
    if (m_probe_failures_ != nullptr) m_probe_failures_->Increment();
    EnterDegradedLocked("probe: " + probe.message());
  }
  probe_inflight_ = false;
  (void)lock;
}

bool StorageGovernor::ProbeNow() {
  std::unique_lock<std::mutex> lock(mu_);
  if (probe_inflight_) return !degraded();
  probe_inflight_ = true;
  last_probe_ms_ = NowMs();
  lock.unlock();
  const Status probe = RunProbe();  // file I/O outside the mutex
  lock.lock();
  FinishProbe(probe, &lock);
  return !degraded();
}

Status StorageGovernor::Admit(const std::string& subsystem) {
  if (!degraded_.load(std::memory_order_relaxed)) {
    // Healthy fast path — but keep an eye on the free-space floor at
    // probe cadence so pressure is caught before the first ENOSPC.
    if (options_.min_free_bytes > 0) {
      std::unique_lock<std::mutex> lock(mu_);
      const uint64_t now = NowMs();
      if (!probe_inflight_ &&
          now - last_probe_ms_ >= options_.probe_interval_ms) {
        probe_inflight_ = true;
        last_probe_ms_ = now;
        lock.unlock();
        Result<uint64_t> free = FreeBytes();
        Status floor = Status::OK();
        if (free.ok()) {
          if (m_free_bytes_ != nullptr) m_free_bytes_->Set(*free);
          if (*free < options_.min_free_bytes) {
            floor = Status::ResourceExhausted(StringPrintf(
                "free space %llu below floor %llu",
                static_cast<unsigned long long>(*free),
                static_cast<unsigned long long>(options_.min_free_bytes)));
          }
        }
        lock.lock();
        probe_inflight_ = false;
        if (!floor.ok()) {
          EnterDegradedLocked(floor.message());
        } else {
          lock.unlock();
          return Status::OK();
        }
      } else {
        return Status::OK();
      }
    } else {
      return Status::OK();
    }
  }
  // Degraded: opportunistically self-heal. NACKed producers retry, so
  // the admission path arrives here at least as often as the probe
  // interval — this IS the periodic write probe.
  {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t now = NowMs();
    if (!probe_inflight_ &&
        now - last_probe_ms_ >= options_.probe_interval_ms) {
      probe_inflight_ = true;
      last_probe_ms_ = now;
      lock.unlock();
      const Status probe = RunProbe();
      lock.lock();
      FinishProbe(probe, &lock);
    }
    if (!degraded_.load(std::memory_order_relaxed)) return Status::OK();
    ++stats_.admissions_refused;
  }
  if (m_refused_ != nullptr) m_refused_->Increment();
  return Status::Unavailable(StringPrintf(
      "storage degraded (disk pressure), %s write refused",
      subsystem.c_str()));
}

void StorageGovernor::RecordWriteResult(const std::string& subsystem,
                                        const Status& status) {
  if (status.ok()) {
    // A real write landed; if we thought the disk was full, verify
    // with a probe right away instead of waiting out the interval.
    if (degraded_.load(std::memory_order_relaxed)) ProbeNow();
    return;
  }
  if (!IsDiskPressure(status)) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.write_errors;
  EnterDegradedLocked(subsystem + ": " + status.message());
}

StorageGovernorStats StorageGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageGovernorStats out = stats_;
  out.degraded = degraded_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace geostreams
