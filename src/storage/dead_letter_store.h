// On-disk companion of DeadLetterQueue: an append-only file of
// dead-lettered events, so quarantine evidence survives the crash
// that usually caused it.
//
// Record framing (little-endian, own magic so a stray .gsd file is
// never confused with a journal segment):
//
//   0  magic        "GSDL"
//   4  payload_len  u32
//   8  payload_crc  u32  CRC-32 of the payload
//   12 payload:
//        u64 ordinal
//        u32 error_len,  error bytes
//        u32 msg_len,    msg bytes — a complete GSF1 kIngest message
//                        (EncodeIngestMessage of {source, ordinal,
//                        event}) so the poisoned event itself is
//                        recoverable with the existing decoder
//
// Loading is torn-tail tolerant the same way the journal is: a bad
// record ends the load (the tail is ignored, not truncated — the
// store appends past it only after a successful load, which rewrites
// nothing). The store is the persistence hook behind
// DeadLetterQueue::SetPersistHook and the target recovery quarantines
// corrupt journal regions into.

#ifndef GEOSTREAMS_STORAGE_DEAD_LETTER_STORE_H_
#define GEOSTREAMS_STORAGE_DEAD_LETTER_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/journal.h"
#include "stream/supervisor.h"

namespace geostreams {

class DeadLetterStore {
 public:
  /// Opens (creating if absent) the store at `path`, loading every
  /// decodable record. Damaged tails are tolerated and counted.
  static Result<std::unique_ptr<DeadLetterStore>> Open(
      const std::string& path, WritableFileFactory factory);

  /// Appends one letter as-is (ordinal included — the in-memory queue
  /// assigns ordinals and this store mirrors them).
  Status Append(const std::string& source, const DeadLetter& letter);

  /// Appends a synthetic letter describing a quarantined journal
  /// region (no event survives, so a StreamEnd placeholder stands in,
  /// same as session quarantine). Assigns the next free ordinal.
  Status AppendQuarantine(const std::string& source,
                          const std::string& error);

  /// The letters loaded at Open, oldest first (appends after Open are
  /// not re-read).
  const std::vector<DeadLetter>& recovered() const { return recovered_; }

  /// 1 + the highest ordinal seen (recovered or appended), or 0 when
  /// the store is empty — matching DeadLetterQueue ordinals, which
  /// start at 0. Seeds the queue's counter after a restart.
  uint64_t next_ordinal() const;

  /// Records whose framing/CRC failed during Open (load stopped
  /// there; everything before replayed fine).
  uint64_t load_errors() const { return load_errors_; }

  Status Sync();

 private:
  DeadLetterStore(std::string path, std::unique_ptr<WritableFile> file);

  std::string path_;
  std::vector<DeadLetter> recovered_;
  uint64_t load_errors_ = 0;

  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  uint64_t next_ordinal_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STORAGE_DEAD_LETTER_STORE_H_
