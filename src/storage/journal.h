// Durable ingest journal: a per-source segmented write-ahead log that
// makes the ingest plane's cumulative ACK mean "safe across a crash",
// not just "delivered while the server lives".
//
// Records are the GSF1 kIngest messages of wire_protocol.h, byte for
// byte: the 16-byte header already carries the payload length and a
// CRC-32 of the payload, so journal records are self-delimiting and
// integrity-checked with zero re-encoding on the hot path — the
// session appends exactly the bytes the producer would replay.
//
// Layout under JournalOptions::dir:
//
//   <dir>/<source-dir>/name                original source name
//   <dir>/<source-dir>/seg-<start_seq>.gsj closed + active segments
//   <dir>/<source-dir>/dead_letters.gsd    persisted DeadLetterQueue
//
// The appender rotates to a new segment past `segment_max_bytes`
// (the file name carries the first sequence number it will hold, so
// recovery knows the high-water mark even from an empty active
// segment) and retires the oldest closed segments past the byte/age
// retention caps. Retirement compacts instead of dropping: records
// whose sequence number is at or above the source's retain floor
// (advanced by IngestSession to the cumulative ack — everything below
// it is settled) are rewritten into a fresh segment before the old
// file goes away, kill-point safe (write compact.tmp, fsync,
// atomically rename to seg-<first-live-seq>.gsj, then remove the
// original; a crash between the two leaves duplicates that recovery's
// seq dedup already collapses). A segment holding only settled
// records is deleted whole — the PR 7 behavior, now provably safe. Durability is a policy knob: kPerRecord fsyncs
// before every ACK (the strict ack-gated contract the kill-point
// harness audits), kGroupCommit leaves fsync to a background flusher
// thread that runs every `group_commit_interval_ms` — the append (and
// hence the ACK) never waits on the disk, and the loss window on
// power failure stays bounded by the interval (nothing is lost on a
// plain process kill either way) — and kOff leaves it to the OS.
//
// Startup recovery (IngestJournal::Open) scans every source in seq
// order and classifies damage by position:
//   * a record that fails header/length/CRC checks with no valid
//     record after it in the source's LAST segment is a torn tail —
//     the half-written record of the append the crash interrupted.
//     It was never acked (the append did not return), so the file is
//     truncated at the first bad byte and the producer re-sends it;
//   * a bad record with valid records after it (resynced by scanning
//     for the next GSF1 magic that decodes cleanly) is mid-file
//     corruption — those bytes WERE acked once, so the loss is
//     recorded loudly: a quarantine entry goes into the source's
//     persisted dead-letter store and the region is counted, while
//     every surviving record keeps replaying;
//   * duplicate sequence numbers (an append that succeeded but whose
//     delivery was NACKed and retried) replay once — the scan keeps
//     the dedup cursor the live session keeps.
// The recovered per-source `next_seq` seeds IngestSession, so a
// reconnecting producer resumes exactly where the acks left off.
//
// Thread-safety: SourceJournal serializes appends/stats with its own
// mutex (one IngestSession drives it, but ISTATS reads stats from
// other connections); IngestJournal guards its source map the same
// way. Recovery runs single-threaded inside Open.

#ifndef GEOSTREAMS_STORAGE_JOURNAL_H_
#define GEOSTREAMS_STORAGE_JOURNAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/wire_protocol.h"
#include "obs/metrics_registry.h"

namespace geostreams {

class DeadLetterStore;
class StorageGovernor;

/// When the journal fsyncs relative to the ACK it gates.
enum class FsyncPolicy : uint8_t {
  kPerRecord,    // fsync before every ack: acked == on stable storage
  kGroupCommit,  // background flusher fsyncs every interval; appends
                 // never wait on the disk
  kOff,          // never fsync; the OS page cache decides
};

const char* FsyncPolicyName(FsyncPolicy policy);

/// Minimal append-only file the journal writes through. The
/// indirection exists so tests can inject FaultyFile (short writes,
/// torn records, fail-at-byte-N) under the real journal logic.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const uint8_t* data, size_t len) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

using WritableFileFactory =
    std::function<Result<std::unique_ptr<WritableFile>>(
        const std::string& path)>;

/// Opens (create/append) a plain POSIX file. The default factory.
Result<std::unique_ptr<WritableFile>> OpenPosixWritable(
    const std::string& path);

struct JournalOptions {
  /// Root directory (created if missing). Must be non-empty.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kPerRecord;
  /// kGroupCommit: cadence of the background flusher thread, and hence
  /// the maximum durability lag of an acked record on power failure.
  uint64_t group_commit_interval_ms = 5;
  /// Rotate the active segment once it reaches this many bytes.
  uint64_t segment_max_bytes = 8u << 20;
  /// Retire oldest CLOSED segments while a source's total exceeds
  /// this (0 = keep everything). The active segment never retires.
  /// Retirement drops settled records (seq below the retain floor)
  /// with the file and compacts still-live ones into a fresh segment,
  /// so a byte cap never costs an unacked record.
  uint64_t retention_max_bytes = 0;
  /// Retire closed segments older than this (mtime; 0 = no age cap).
  uint64_t retention_max_age_ms = 0;
  /// File opener; null = OpenPosixWritable. Tests inject FaultyFile.
  WritableFileFactory file_factory;
  /// Optional registry for geostreams_journal_* counters and the
  /// fsync-latency histogram. Not owned; may be null.
  MetricsRegistry* metrics = nullptr;
  /// Optional disk-pressure governor (not owned). When set, appends
  /// pass its admission gate first — refused appends surface as NACKs
  /// to producers, never as fake durability — write outcomes feed its
  /// degraded-mode state machine, and the journal keeps the
  /// governor's "journal" byte accounting current.
  StorageGovernor* governor = nullptr;
};

/// What recovery found for one source.
struct SourceRecovery {
  uint64_t next_seq = 1;          // 1 + highest committed sequence
  uint64_t records_replayed = 0;  // committed records scanned
  uint64_t bytes_replayed = 0;
  uint64_t duplicate_records = 0;  // same seq journaled twice; kept once
  bool torn_tail = false;          // last segment ended mid-record
  uint64_t torn_bytes = 0;         // bytes truncated off the tail
  uint64_t corrupt_regions = 0;    // mid-file damage, quarantined
  uint64_t corrupt_bytes = 0;
};

struct JournalRecovery {
  std::map<std::string, SourceRecovery> sources;
  uint64_t records_replayed = 0;
  uint64_t torn_tails = 0;
  uint64_t torn_bytes = 0;
  uint64_t corrupt_regions = 0;
};

struct SourceJournalStats {
  uint64_t appends = 0;
  uint64_t append_bytes = 0;
  uint64_t append_errors = 0;
  uint64_t fsyncs = 0;
  uint64_t rotations = 0;
  uint64_t segments_retired = 0;
  uint64_t segments_compacted = 0;  // retired via live-record rewrite
  uint64_t records_compacted = 0;   // live records carried across rewrites
  uint64_t compacted_bytes = 0;     // bytes written into compacted segments
  uint64_t reclaimed_bytes = 0;     // on-disk bytes freed by retirement
  uint64_t active_segment_bytes = 0;
  uint64_t recovered_records = 0;
  uint64_t retain_floor = 1;  // seqs below this are settled (prunable)
  uint64_t next_seq = 1;
};

class IngestJournal;

/// The per-source appender. Append() is the ack gate: it returns only
/// after the encoded record is written (and fsynced, per policy) —
/// IngestSession sends the ACK on OK and NACKs Unavailable otherwise.
class SourceJournal {
 public:
  /// Appends one record. The message's bytes are framed exactly as
  /// EncodeIngestMessage produces them. Handles rotation + retention.
  Status Append(const IngestMessage& message);

  /// Forces an fsync of the active segment now (rotation and shutdown
  /// do this implicitly; kGroupCommit callers may want a final flush).
  Status Sync();

  /// 1 + the highest sequence number committed (recovered + appended).
  uint64_t next_seq() const;

  /// Advances the settled floor: every sequence number below
  /// `settled_upto` has been delivered and acked, so retention may
  /// drop those records. Records at or above it are still live (a
  /// journaled-but-NACKed delivery awaiting the producer's retry) and
  /// survive segment retirement via compaction. Monotonic; callers
  /// pass the session's next expected sequence after each ack.
  void SetRetainFloor(uint64_t settled_upto);

  SourceJournalStats stats() const;

  const std::string& source() const { return source_; }

 private:
  friend class IngestJournal;
  SourceJournal(IngestJournal* owner, std::string source,
                std::string dir, SourceRecovery recovered);

  Status EnsureOpenLocked();
  Status RotateLocked();
  Status SyncLocked();
  void ApplyRetentionLocked();
  /// Retires one closed segment: live records (seq >= retain floor,
  /// deduplicated against `*kept_cursor`) are compacted into a fresh
  /// kill-safe segment, settled ones vanish with the file. Returns
  /// the on-disk bytes reclaimed.
  uint64_t RetireSegmentLocked(const std::string& path, uint64_t file_bytes,
                               uint64_t* kept_cursor);

  IngestJournal* owner_;
  const std::string source_;
  const std::string dir_;  // <root>/<source-dir>

  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> active_;
  std::string active_path_;
  uint64_t active_bytes_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t retain_floor_ = 1;
  uint64_t last_sync_ms_ = 0;
  bool dirty_ = false;  // bytes written since the last fsync
  /// Set when an append failed with the segment open: the file may
  /// carry a torn partial record past active_bytes_ (ENOSPC persists
  /// a prefix). The next EnsureOpenLocked truncates back to the last
  /// known-good length before resuming, so a disk that heals within
  /// the same incarnation never buries garbage mid-file.
  bool resume_truncate_ = false;
  SourceJournalStats stats_;
};

/// Owns the journal directory: runs recovery at Open, hands out
/// per-source appenders and persisted dead-letter stores.
class IngestJournal {
 public:
  /// Creates `options.dir` if needed, scans every source directory
  /// (truncating torn tails, quarantining corruption into the
  /// per-source dead-letter stores), and returns the ready journal.
  static Result<std::unique_ptr<IngestJournal>> Open(JournalOptions options);

  ~IngestJournal();

  IngestJournal(const IngestJournal&) = delete;
  IngestJournal& operator=(const IngestJournal&) = delete;

  /// What Open's recovery scan found (stable after Open).
  const JournalRecovery& recovery() const { return recovery_; }
  const JournalOptions& options() const { return options_; }

  /// The appender for `source`, created (with its directory) on first
  /// use. Owned by the journal; valid for its lifetime.
  Result<SourceJournal*> SourceFor(const std::string& source);

  /// The persisted dead-letter store for `source` (loaded from disk on
  /// first use). Owned by the journal; valid for its lifetime.
  Result<DeadLetterStore*> DeadLettersFor(const std::string& source);

  /// Re-scans `source`'s segments from disk and hands every committed
  /// record (seq-deduplicated, in order) to `fn` — the audit path, and
  /// what a historical store will bulk-load from. Damage tolerated
  /// exactly like recovery, but nothing is truncated or quarantined.
  Status Replay(const std::string& source,
                const std::function<void(const IngestMessage&)>& fn) const;

  /// Aggregate append-side stats across every source.
  SourceJournalStats TotalStats() const;

  /// fsyncs every source's active segment (shutdown, tests).
  Status SyncAll();

 private:
  friend class SourceJournal;
  explicit IngestJournal(JournalOptions options);

  Status RecoverAll();
  Status RecoverSource(const std::string& source_dir_name);
  Result<std::unique_ptr<WritableFile>> OpenFile(const std::string& path);
  /// Group-commit flusher: ticks every group_commit_interval_ms and
  /// fsyncs every dirty source (SyncLocked skips clean ones).
  void FlusherLoop();
  void StopFlusher();

  /// Directory (under dir_) holding `source`'s segments.
  static std::string SourceDirName(const std::string& source);

  JournalOptions options_;
  JournalRecovery recovery_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<SourceJournal>> sources_;
  std::map<std::string, std::unique_ptr<DeadLetterStore>> dead_letters_;

  // Group-commit flusher (running only under FsyncPolicy::kGroupCommit).
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;
  std::thread flusher_;

  // geostreams_journal_* series; null without a registry.
  Counter* m_appends_ = nullptr;
  Counter* m_append_bytes_ = nullptr;
  Counter* m_append_errors_ = nullptr;
  Counter* m_fsyncs_ = nullptr;
  Counter* m_rotations_ = nullptr;
  Counter* m_retired_ = nullptr;
  Counter* m_compacted_segments_ = nullptr;
  Counter* m_compacted_records_ = nullptr;
  Counter* m_reclaimed_bytes_ = nullptr;
  Counter* m_recovered_records_ = nullptr;
  Counter* m_recovered_duplicates_ = nullptr;
  Counter* m_torn_tails_ = nullptr;
  Counter* m_torn_bytes_ = nullptr;
  Counter* m_corrupt_regions_ = nullptr;
  MetricHistogram* m_fsync_latency_us_ = nullptr;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STORAGE_JOURNAL_H_
