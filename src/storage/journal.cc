#include "storage/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/dead_letter_store.h"
#include "storage/governor.h"

namespace geostreams {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSegmentPrefix = "seg-";
constexpr const char* kSegmentSuffix = ".gsj";
constexpr const char* kNameFile = "name";
constexpr const char* kDeadLetterFile = "dead_letters.gsd";
// Compaction staging file: never a valid segment name, so a crash
// mid-compaction leaves it invisible to ListSegments; recovery and
// the next retention pass clean it up.
constexpr const char* kCompactTmpFile = "compact.tmp";

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t GetU32LE(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint16_t GetU16LE(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

/// Cheap pre-check of a possible record at `p` (header shape only —
/// full CRC validation happens in DecodeIngestMessage).
bool PlausibleRecordHeader(const uint8_t* p, size_t available) {
  if (available < kWireHeaderSize) return false;
  if (std::memcmp(p, kWireMagic, sizeof(kWireMagic)) != 0) return false;
  if (p[4] != static_cast<uint8_t>(MessageType::kIngest)) return false;
  if (GetU16LE(p + 6) != kWireVersion) return false;
  if (GetU32LE(p + 8) > kMaxWirePayload) return false;
  return true;
}

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const uint8_t* data, size_t len) override {
    size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd_, data + off, len - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(StringPrintf("write %s: %s", path_.c_str(),
                                            std::strerror(errno)));
      }
      off += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IoError(StringPrintf("fsync %s: %s", path_.c_str(),
                                          std::strerror(errno)));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) {
      return Status::IoError(StringPrintf("close %s: %s", path_.c_str(),
                                          std::strerror(errno)));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

Status ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StringPrintf("open %s: %s", path.c_str(),
                                        std::strerror(errno)));
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(size > 0 ? static_cast<size_t>(size) : 0);
  if (!out->empty() && std::fread(out->data(), 1, out->size(), f) !=
                           out->size()) {
    std::fclose(f);
    return Status::IoError("short read of " + path);
  }
  std::fclose(f);
  return Status::OK();
}

/// One segment file, ordered by the start sequence in its name.
struct SegmentRef {
  std::string path;
  uint64_t start_seq = 0;
};

/// Parses "seg-<digits>.gsj"; false for anything else in the dir.
bool ParseSegmentName(const std::string& name, uint64_t* start_seq) {
  const size_t prefix = std::strlen(kSegmentPrefix);
  const size_t suffix = std::strlen(kSegmentSuffix);
  if (name.size() <= prefix + suffix) return false;
  if (name.rfind(kSegmentPrefix, 0) != 0) return false;
  if (name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *start_seq = value;
  return true;
}

Result<std::vector<SegmentRef>> ListSegments(const std::string& dir) {
  std::vector<SegmentRef> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t start = 0;
    const std::string name = entry.path().filename().string();
    if (!ParseSegmentName(name, &start)) continue;
    segments.push_back({entry.path().string(), start});
  }
  if (ec) {
    return Status::IoError("list " + dir + ": " + ec.message());
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentRef& a, const SegmentRef& b) {
              return a.start_seq < b.start_seq;
            });
  return segments;
}

/// A mid-file region the scanner could not decode.
struct CorruptRegion {
  std::string segment;  // file name
  uint64_t offset = 0;
  uint64_t bytes = 0;
  std::string reason;
};

struct ScanOutcome {
  SourceRecovery recovery;
  std::vector<CorruptRegion> corrupt;
  /// Set when the last segment ended in an undecodable tail:
  /// truncating `torn_path` to `torn_offset` removes it.
  std::string torn_path;
  uint64_t torn_offset = 0;
};

/// Scans the segments of one source in order, delivering committed
/// records (seq-deduplicated) to `fn`. Shared by recovery (which then
/// truncates/quarantines what the outcome reports) and Replay (which
/// only reads).
Result<ScanOutcome> ScanSource(const std::vector<SegmentRef>& segments,
                               const std::string& source,
                               const std::function<void(const IngestMessage&)>&
                                   fn) {
  ScanOutcome out;
  uint64_t max_seq = 0;
  for (size_t si = 0; si < segments.size(); ++si) {
    const bool last_segment = (si + 1 == segments.size());
    std::vector<uint8_t> data;
    GEOSTREAMS_RETURN_IF_ERROR(ReadWholeFile(segments[si].path, &data));
    const std::string file_name =
        fs::path(segments[si].path).filename().string();
    size_t off = 0;
    while (off < data.size()) {
      std::string reason;
      size_t record_len = 0;
      IngestMessage message;
      bool ok = false;
      if (!PlausibleRecordHeader(data.data() + off, data.size() - off)) {
        reason = data.size() - off < kWireHeaderSize ? "truncated header"
                                                     : "bad record header";
      } else {
        const size_t len = kWireHeaderSize + GetU32LE(data.data() + off + 8);
        if (off + len > data.size()) {
          reason = "truncated payload";
        } else {
          Result<IngestMessage> decoded =
              DecodeIngestMessage(data.data() + off, len);
          if (!decoded.ok()) {
            reason = decoded.status().message();
          } else if (decoded->source != source) {
            reason = "record names source '" + decoded->source + "'";
          } else {
            ok = true;
            record_len = len;
            message = std::move(*decoded);
          }
        }
      }
      if (ok) {
        if (message.seq <= max_seq) {
          // A re-append after a NACKed delivery: the first committed
          // copy already replayed.
          ++out.recovery.duplicate_records;
        } else {
          max_seq = message.seq;
          ++out.recovery.records_replayed;
          out.recovery.bytes_replayed += record_len;
          if (fn) fn(message);
        }
        off += record_len;
        continue;
      }
      // Undecodable bytes at `off`. Resync: the next offset from
      // which a record decodes cleanly ends the damaged region.
      size_t resync = data.size();
      for (size_t probe = off + 1; probe + kWireHeaderSize <= data.size();
           ++probe) {
        const uint8_t* p =
            static_cast<const uint8_t*>(std::memchr(
                data.data() + probe, kWireMagic[0], data.size() - probe));
        if (p == nullptr) break;
        probe = static_cast<size_t>(p - data.data());
        if (PlausibleRecordHeader(p, data.size() - probe)) {
          const size_t len = kWireHeaderSize + GetU32LE(p + 8);
          if (probe + len <= data.size() &&
              DecodeIngestMessage(p, len).ok()) {
            resync = probe;
            break;
          }
        }
      }
      if (resync == data.size() && last_segment) {
        // Nothing valid follows in the whole journal: this is the
        // half-written append the crash interrupted. It was never
        // acked, so cutting it loses nothing.
        out.recovery.torn_tail = true;
        out.recovery.torn_bytes = data.size() - off;
        out.torn_path = segments[si].path;
        out.torn_offset = off;
        break;
      }
      // Valid records follow (here or in a later segment): the region
      // WAS acked once and is now unreadable — quarantine, loudly.
      ++out.recovery.corrupt_regions;
      out.recovery.corrupt_bytes += resync - off;
      out.corrupt.push_back(
          {file_name, off, resync - off,
           StringPrintf("journal %s corrupt at offset %zu (%zu bytes "
                        "quarantined): %s",
                        file_name.c_str(), off, resync - off,
                        reason.c_str())});
      off = resync;
    }
  }
  // An empty (or fully torn) journal still knows its high-water mark
  // from the newest segment's file name: rotation names segments by
  // the next sequence they will hold.
  uint64_t floor_seq = 1;
  if (!segments.empty()) floor_seq = segments.back().start_seq;
  out.recovery.next_seq = std::max(max_seq + 1, floor_seq);
  return out;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kPerRecord: return "per-record";
    case FsyncPolicy::kGroupCommit: return "group-commit";
    case FsyncPolicy::kOff: return "off";
  }
  return "unknown";
}

Result<std::unique_ptr<WritableFile>> OpenPosixWritable(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError(StringPrintf("open %s: %s", path.c_str(),
                                        std::strerror(errno)));
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<PosixWritableFile>(fd, path));
}

// ---------------------------------------------------------------------------
// SourceJournal

SourceJournal::SourceJournal(IngestJournal* owner, std::string source,
                             std::string dir, SourceRecovery recovered)
    : owner_(owner), source_(std::move(source)), dir_(std::move(dir)) {
  next_seq_ = recovered.next_seq;
  stats_.recovered_records = recovered.records_replayed;
  stats_.next_seq = next_seq_;
  last_sync_ms_ = NowMs();
}

uint64_t SourceJournal::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

SourceJournalStats SourceJournal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SourceJournalStats out = stats_;
  out.active_segment_bytes = active_bytes_;
  out.next_seq = next_seq_;
  out.retain_floor = retain_floor_;
  return out;
}

Status SourceJournal::EnsureOpenLocked() {
  if (active_ != nullptr) return Status::OK();
  // A failed append may have left a torn partial record past the last
  // committed byte (ENOSPC persists what fit, then fails). Shrinking
  // needs no disk space, so this repair works even while the disk is
  // still full — without it, a disk that heals mid-incarnation would
  // append good records after mid-file garbage, and recovery would
  // quarantine everything past the tear.
  if (resume_truncate_ && !active_path_.empty()) {
    std::error_code ec;
    const uint64_t size = fs::file_size(active_path_, ec);
    if (!ec && size > active_bytes_) {
      fs::resize_file(active_path_, active_bytes_, ec);
      if (ec) {
        return Status::IoError("truncate torn tail of " + active_path_ +
                               ": " + ec.message());
      }
    }
    resume_truncate_ = false;
  }
  // Resume the newest recovered segment when there is one (recovery
  // already truncated any torn tail off it); otherwise start a fresh
  // segment named by the next sequence number it will hold.
  GEOSTREAMS_ASSIGN_OR_RETURN(std::vector<SegmentRef> segments,
                              ListSegments(dir_));
  if (!segments.empty()) {
    std::error_code ec;
    const uint64_t size = fs::file_size(segments.back().path, ec);
    if (!ec && size < owner_->options_.segment_max_bytes) {
      active_path_ = segments.back().path;
      active_bytes_ = size;
      GEOSTREAMS_ASSIGN_OR_RETURN(active_, owner_->OpenFile(active_path_));
      return Status::OK();
    }
  }
  active_path_ = dir_ + "/" + kSegmentPrefix +
                 StringPrintf("%020llu",
                              static_cast<unsigned long long>(next_seq_)) +
                 kSegmentSuffix;
  active_bytes_ = 0;
  GEOSTREAMS_ASSIGN_OR_RETURN(active_, owner_->OpenFile(active_path_));
  return Status::OK();
}

Status SourceJournal::SyncLocked() {
  if (active_ == nullptr || !dirty_) return Status::OK();
  const auto t0 = std::chrono::steady_clock::now();
  GEOSTREAMS_RETURN_IF_ERROR(active_->Sync());
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  dirty_ = false;
  last_sync_ms_ = NowMs();
  ++stats_.fsyncs;
  if (owner_->m_fsyncs_) owner_->m_fsyncs_->Increment();
  if (owner_->m_fsync_latency_us_) owner_->m_fsync_latency_us_->Observe(us);
  return Status::OK();
}

Status SourceJournal::RotateLocked() {
  GEOSTREAMS_RETURN_IF_ERROR(SyncLocked());
  GEOSTREAMS_RETURN_IF_ERROR(active_->Close());
  active_.reset();
  active_bytes_ = 0;
  ++stats_.rotations;
  if (owner_->m_rotations_) owner_->m_rotations_->Increment();
  ApplyRetentionLocked();
  return EnsureOpenLocked();
}

void SourceJournal::SetRetainFloor(uint64_t settled_upto) {
  std::lock_guard<std::mutex> lock(mu_);
  if (settled_upto > retain_floor_) retain_floor_ = settled_upto;
}

uint64_t SourceJournal::RetireSegmentLocked(const std::string& path,
                                            uint64_t file_bytes,
                                            uint64_t* kept_cursor) {
  // Split the segment into settled records (seq < retain floor: acked
  // AND delivered — they die with the file) and live ones (journaled
  // but awaiting a producer retry — they must survive). The scan
  // stops at the first undecodable byte: bytes past damage either
  // get re-sent by the producer (live) or were already quarantined
  // loudly at recovery (settled).
  std::vector<uint8_t> data;
  std::vector<uint8_t> live;
  uint64_t live_records = 0;
  uint64_t first_live = 0;
  if (ReadWholeFile(path, &data).ok()) {
    size_t off = 0;
    while (off < data.size()) {
      if (!PlausibleRecordHeader(data.data() + off, data.size() - off)) break;
      const size_t len = kWireHeaderSize + GetU32LE(data.data() + off + 8);
      if (off + len > data.size()) break;
      Result<IngestMessage> decoded =
          DecodeIngestMessage(data.data() + off, len);
      if (!decoded.ok()) break;
      if (decoded->seq >= retain_floor_ && decoded->seq > *kept_cursor) {
        first_live = live.empty() ? decoded->seq
                                  : std::min(first_live, decoded->seq);
        live.insert(live.end(), data.begin() + off, data.begin() + off + len);
        ++live_records;
        *kept_cursor = decoded->seq;
      }
      off += len;
    }
  }
  std::error_code ec;
  if (live.empty()) {
    // Everything settled: the PR 7 fast path — drop the whole file.
    if (!fs::remove(path, ec) || ec) return 0;
    ++stats_.segments_retired;
    if (owner_->m_retired_) owner_->m_retired_->Increment();
    return file_bytes;
  }
  if (live.size() >= file_bytes) {
    // Nothing to reclaim (the whole segment is live): keep it as is
    // rather than burning IO on a byte-identical rewrite.
    return 0;
  }
  // Kill-safe rewrite: stage into compact.tmp, fsync, atomically
  // rename to seg-<first-live-seq>.gsj, then remove the original. A
  // crash before the rename leaves only the invisible tmp; a crash
  // between rename and remove leaves duplicate live records that
  // recovery's seq dedup collapses. Either way no live record is lost
  // and no settled record resurfaces.
  const std::string tmp = dir_ + "/" + kCompactTmpFile;
  fs::remove(tmp, ec);
  auto open = owner_->OpenFile(tmp);
  if (!open.ok()) return 0;
  std::unique_ptr<WritableFile> file = std::move(*open);
  Status st = file->Append(live.data(), live.size());
  if (st.ok()) st = file->Sync();
  const Status closed = file->Close();
  if (st.ok()) st = closed;
  if (!st.ok()) {
    fs::remove(tmp, ec);
    return 0;
  }
  const std::string target =
      dir_ + "/" + kSegmentPrefix +
      StringPrintf("%020llu", static_cast<unsigned long long>(first_live)) +
      kSegmentSuffix;
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return 0;
  }
  if (target != path) fs::remove(path, ec);
  ++stats_.segments_retired;
  ++stats_.segments_compacted;
  stats_.records_compacted += live_records;
  stats_.compacted_bytes += live.size();
  if (owner_->m_retired_) owner_->m_retired_->Increment();
  if (owner_->m_compacted_segments_) owner_->m_compacted_segments_->Increment();
  if (owner_->m_compacted_records_) {
    owner_->m_compacted_records_->Increment(live_records);
  }
  return file_bytes - live.size();
}

void SourceJournal::ApplyRetentionLocked() {
  uint64_t max_bytes = owner_->options_.retention_max_bytes;
  uint64_t max_age_ms = owner_->options_.retention_max_age_ms;
  StorageGovernor* gov = owner_->options_.governor;
  if (gov != nullptr) {
    // The governor's "journal" budget applies too; with several
    // sources this is conservative (each source individually capped
    // at the global budget), which errs toward keeping the volume
    // alive.
    const SubsystemBudget budget = gov->Budget("journal");
    if (budget.max_bytes > 0 &&
        (max_bytes == 0 || budget.max_bytes < max_bytes)) {
      max_bytes = budget.max_bytes;
    }
    if (budget.max_age_ms > 0 &&
        (max_age_ms == 0 || budget.max_age_ms < max_age_ms)) {
      max_age_ms = budget.max_age_ms;
    }
  }
  if (max_bytes == 0 && max_age_ms == 0) return;
  {
    std::error_code ec;
    fs::remove(dir_ + "/" + kCompactTmpFile, ec);  // stale crash leftover
  }
  Result<std::vector<SegmentRef>> segments = ListSegments(dir_);
  if (!segments.ok()) return;
  uint64_t total = 0;
  std::vector<uint64_t> sizes(segments->size(), 0);
  std::vector<int64_t> age_ms(segments->size(), 0);
  const time_t now = ::time(nullptr);
  for (size_t i = 0; i < segments->size(); ++i) {
    struct stat st{};
    if (::stat((*segments)[i].path.c_str(), &st) == 0) {
      sizes[i] = static_cast<uint64_t>(st.st_size);
      age_ms[i] = static_cast<int64_t>(now - st.st_mtime) * 1000;
    }
    total += sizes[i];
  }
  // Oldest first; the newest segment (the active one) never retires —
  // its name is what preserves the seq high-water mark.
  uint64_t kept_cursor = 0;
  uint64_t reclaimed_total = 0;
  for (size_t i = 0; i + 1 < segments->size(); ++i) {
    const bool over_bytes = max_bytes > 0 && total > max_bytes;
    const bool over_age =
        max_age_ms > 0 && age_ms[i] > static_cast<int64_t>(max_age_ms);
    if (!over_bytes && !over_age) continue;
    const uint64_t reclaimed =
        RetireSegmentLocked((*segments)[i].path, sizes[i], &kept_cursor);
    total -= std::min(total, reclaimed);
    reclaimed_total += reclaimed;
  }
  stats_.reclaimed_bytes += reclaimed_total;
  if (owner_->m_reclaimed_bytes_ && reclaimed_total > 0) {
    owner_->m_reclaimed_bytes_->Increment(reclaimed_total);
  }
  if (gov != nullptr && reclaimed_total > 0) {
    gov->AddUsage("journal", -static_cast<int64_t>(reclaimed_total));
  }
}

Status SourceJournal::Append(const IngestMessage& message) {
  std::lock_guard<std::mutex> lock(mu_);
  StorageGovernor* gov = owner_->options_.governor;
  if (gov != nullptr) {
    // Degraded-mode admission: refuse up front so the session NACKs
    // the producer instead of faking durability. The refusal itself
    // drives the governor's self-heal probe, so retries are what
    // eventually flip the plane healthy again.
    Status admit = gov->Admit("journal");
    if (!admit.ok()) {
      ++stats_.append_errors;
      if (owner_->m_append_errors_) owner_->m_append_errors_->Increment();
      return admit;
    }
  }
  Status st = EnsureOpenLocked();
  if (st.ok() && active_bytes_ >= owner_->options_.segment_max_bytes) {
    st = RotateLocked();
  }
  if (st.ok()) {
    const std::vector<uint8_t> record = EncodeIngestMessage(message);
    st = active_->Append(record.data(), record.size());
    if (st.ok()) {
      dirty_ = true;
      active_bytes_ += record.size();
      ++stats_.appends;
      stats_.append_bytes += record.size();
      if (gov != nullptr) {
        gov->AddUsage("journal", static_cast<int64_t>(record.size()));
      }
      if (owner_->m_appends_) owner_->m_appends_->Increment();
      if (owner_->m_append_bytes_) {
        owner_->m_append_bytes_->Increment(record.size());
      }
      switch (owner_->options_.fsync) {
        case FsyncPolicy::kPerRecord:
          st = SyncLocked();
          break;
        case FsyncPolicy::kGroupCommit:
          // Nothing on the append path: the record is dirty_ and the
          // owner's background flusher fsyncs it within the interval.
          // The ack that follows promises "journaled", with a loss
          // window bounded by group_commit_interval_ms on power
          // failure — exactly the policy's contract, minus the disk
          // stall every interval-th producer used to pay inline.
          break;
        case FsyncPolicy::kOff:
          break;
      }
    }
  }
  if (gov != nullptr) gov->RecordWriteResult("journal", st);
  if (!st.ok()) {
    ++stats_.append_errors;
    if (owner_->m_append_errors_) owner_->m_append_errors_->Increment();
    // The write may have landed partially. Drop the handle and mark
    // the tail suspect: the next append truncates back to the last
    // known-good byte before resuming (EnsureOpenLocked), and the
    // record is re-appended whole when the producer retries. If no
    // append ever follows, startup recovery truncates the torn tail.
    if (active_ != nullptr) {
      Status ignored = active_->Close();
      (void)ignored;
      active_.reset();
      resume_truncate_ = true;
    }
    return st;
  }
  if (message.seq >= next_seq_) next_seq_ = message.seq + 1;
  return Status::OK();
}

Status SourceJournal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

// ---------------------------------------------------------------------------
// IngestJournal

IngestJournal::IngestJournal(JournalOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    MetricsRegistry& reg = *options_.metrics;
    m_appends_ = reg.GetCounter("geostreams_journal_appends_total",
                                "Records appended to the ingest journal");
    m_append_bytes_ =
        reg.GetCounter("geostreams_journal_append_bytes_total",
                       "Bytes appended to the ingest journal");
    m_append_errors_ = reg.GetCounter(
        "geostreams_journal_append_errors_total",
        "Journal appends that failed (the batch was NACKed, not acked)");
    m_fsyncs_ = reg.GetCounter("geostreams_journal_fsyncs_total",
                               "fsync calls issued by the journal");
    m_rotations_ = reg.GetCounter("geostreams_journal_rotations_total",
                                  "Segment rotations");
    m_retired_ = reg.GetCounter(
        "geostreams_journal_segments_retired_total",
        "Closed segments deleted by byte/age retention");
    m_compacted_segments_ = reg.GetCounter(
        "geostreams_journal_segments_compacted_total",
        "Retired segments whose live records were rewritten forward");
    m_compacted_records_ = reg.GetCounter(
        "geostreams_journal_records_compacted_total",
        "Still-unacked records carried across segment retirement");
    m_reclaimed_bytes_ = reg.GetCounter(
        "geostreams_journal_reclaimed_bytes_total",
        "On-disk bytes freed by retention/compaction");
    m_recovered_records_ = reg.GetCounter(
        "geostreams_journal_recovered_records_total",
        "Committed records replayed by startup recovery");
    m_recovered_duplicates_ = reg.GetCounter(
        "geostreams_journal_recovered_duplicates_total",
        "Duplicate sequence numbers skipped by startup recovery");
    m_torn_tails_ = reg.GetCounter(
        "geostreams_journal_torn_tails_total",
        "Half-written tail records truncated by startup recovery");
    m_torn_bytes_ = reg.GetCounter(
        "geostreams_journal_torn_bytes_total",
        "Bytes truncated off torn journal tails");
    m_corrupt_regions_ = reg.GetCounter(
        "geostreams_journal_corrupt_regions_total",
        "Mid-file corrupt regions quarantined into dead-letter stores");
    m_fsync_latency_us_ = reg.GetHistogram(
        "geostreams_journal_fsync_latency_us",
        "Latency of journal fsync calls (gates acks under kPerRecord)");
  }
}

IngestJournal::~IngestJournal() {
  StopFlusher();
  Status ignored = SyncAll();
  (void)ignored;
}

void IngestJournal::FlusherLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.group_commit_interval_ms == 0
                                    ? 1
                                    : options_.group_commit_interval_ms);
  std::unique_lock<std::mutex> lock(flusher_mu_);
  while (!flusher_stop_) {
    flusher_cv_.wait_for(lock, interval,
                         [this] { return flusher_stop_; });
    if (flusher_stop_) break;
    lock.unlock();
    // SyncLocked inside skips sources with nothing dirty, so an idle
    // journal costs a map walk, not an fsync storm.
    Status st = SyncAll();
    if (!st.ok()) {
      GEOSTREAMS_LOG(kWarning)
          << "journal group-commit flush failed: " << st.ToString();
    }
    lock.lock();
  }
}

void IngestJournal::StopFlusher() {
  {
    std::lock_guard<std::mutex> lock(flusher_mu_);
    if (flusher_stop_) return;
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Result<std::unique_ptr<WritableFile>> IngestJournal::OpenFile(
    const std::string& path) {
  if (options_.file_factory) return options_.file_factory(path);
  return OpenPosixWritable(path);
}

std::string IngestJournal::SourceDirName(const std::string& source) {
  // Source names are single tokens (ParseSourceName), but the
  // filesystem is stricter still: keep the common safe set and mangle
  // the rest, suffixing a hash so distinct sources stay distinct.
  std::string safe;
  bool mangled = false;
  for (char c : source) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_';
    safe.push_back(keep ? c : '_');
    mangled = mangled || !keep;
  }
  if (safe.empty() || mangled) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (char c : source) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    safe += StringPrintf("-%08llx",
                         static_cast<unsigned long long>(h & 0xffffffffull));
  }
  return safe;
}

Result<std::unique_ptr<IngestJournal>> IngestJournal::Open(
    JournalOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("journal directory must be non-empty");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("create " + options.dir + ": " + ec.message());
  }
  std::unique_ptr<IngestJournal> journal(
      new IngestJournal(std::move(options)));
  GEOSTREAMS_RETURN_IF_ERROR(journal->RecoverAll());
  if (journal->options_.fsync == FsyncPolicy::kGroupCommit) {
    // Interval fsyncs happen here, off every append path.
    IngestJournal* raw = journal.get();
    journal->flusher_ = std::thread([raw] { raw->FlusherLoop(); });
  }
  return journal;
}

Status IngestJournal::RecoverAll() {
  std::error_code ec;
  std::vector<std::string> source_dirs;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.is_directory()) {
      source_dirs.push_back(entry.path().filename().string());
    }
  }
  if (ec) {
    return Status::IoError("list " + options_.dir + ": " + ec.message());
  }
  std::sort(source_dirs.begin(), source_dirs.end());
  for (const std::string& dir_name : source_dirs) {
    GEOSTREAMS_RETURN_IF_ERROR(RecoverSource(dir_name));
  }
  if (m_recovered_records_) {
    m_recovered_records_->Increment(recovery_.records_replayed);
  }
  if (m_torn_tails_) m_torn_tails_->Increment(recovery_.torn_tails);
  if (m_torn_bytes_) m_torn_bytes_->Increment(recovery_.torn_bytes);
  if (m_corrupt_regions_) {
    m_corrupt_regions_->Increment(recovery_.corrupt_regions);
  }
  if (options_.governor != nullptr) {
    // Seed the governor's byte accounting with what is actually on
    // disk, so budgets bind from the first post-restart append.
    uint64_t on_disk = 0;
    std::error_code walk_ec;
    for (const auto& entry :
         fs::recursive_directory_iterator(options_.dir, walk_ec)) {
      if (!entry.is_regular_file(walk_ec)) continue;
      if (entry.path().extension() == kSegmentSuffix) {
        on_disk += entry.file_size(walk_ec);
      }
    }
    options_.governor->SetUsage("journal", on_disk);
  }
  return Status::OK();
}

Status IngestJournal::RecoverSource(const std::string& source_dir_name) {
  const std::string dir = options_.dir + "/" + source_dir_name;
  {
    // A crash mid-compaction leaves the staging file; the rename
    // never happened, so the original segment is intact and the tmp
    // is garbage.
    std::error_code ec;
    fs::remove(dir + "/" + kCompactTmpFile, ec);
  }
  // The marker file holds the original source name (directory names
  // are sanitized); fall back to the directory name for journals
  // written by hand or by older layouts.
  std::string source = source_dir_name;
  {
    std::vector<uint8_t> bytes;
    if (ReadWholeFile(dir + "/" + kNameFile, &bytes).ok() && !bytes.empty()) {
      source.assign(bytes.begin(), bytes.end());
      source = std::string(StripWhitespace(source));
    }
  }
  GEOSTREAMS_ASSIGN_OR_RETURN(std::vector<SegmentRef> segments,
                              ListSegments(dir));
  GEOSTREAMS_ASSIGN_OR_RETURN(ScanOutcome outcome,
                              ScanSource(segments, source, nullptr));
  if (outcome.recovery.torn_tail) {
    std::error_code ec;
    fs::resize_file(outcome.torn_path, outcome.torn_offset, ec);
    if (ec) {
      return Status::IoError("truncate " + outcome.torn_path + ": " +
                             ec.message());
    }
    ++recovery_.torn_tails;
    GEOSTREAMS_LOG(kWarning)
        << "journal source '" << source << "': truncated torn tail of "
        << outcome.recovery.torn_bytes << " bytes at offset "
        << outcome.torn_offset << " of " << outcome.torn_path;
  }
  if (m_recovered_duplicates_) {
    m_recovered_duplicates_->Increment(outcome.recovery.duplicate_records);
  }
  for (const CorruptRegion& region : outcome.corrupt) {
    GEOSTREAMS_LOG(kError)
        << "journal source '" << source << "': " << region.reason;
    Result<DeadLetterStore*> store = DeadLettersFor(source);
    if (store.ok()) {
      Status st = (*store)->AppendQuarantine(source, region.reason);
      if (!st.ok()) {
        GEOSTREAMS_LOG(kWarning)
            << "could not persist quarantine record: " << st.ToString();
      }
    }
  }
  recovery_.records_replayed += outcome.recovery.records_replayed;
  recovery_.torn_bytes += outcome.recovery.torn_bytes;
  recovery_.corrupt_regions += outcome.recovery.corrupt_regions;
  recovery_.sources[source] = outcome.recovery;
  return Status::OK();
}

Result<SourceJournal*> IngestJournal::SourceFor(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source);
  if (it != sources_.end()) return it->second.get();
  const std::string dir = options_.dir + "/" + SourceDirName(source);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("create " + dir + ": " + ec.message());
  }
  const std::string name_path = dir + "/" + kNameFile;
  if (!fs::exists(name_path, ec)) {
    GEOSTREAMS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                                OpenPosixWritable(name_path));
    const std::string line = source + "\n";
    GEOSTREAMS_RETURN_IF_ERROR(
        f->Append(reinterpret_cast<const uint8_t*>(line.data()),
                  line.size()));
    GEOSTREAMS_RETURN_IF_ERROR(f->Close());
  }
  SourceRecovery recovered;
  auto rec_it = recovery_.sources.find(source);
  if (rec_it != recovery_.sources.end()) recovered = rec_it->second;
  std::unique_ptr<SourceJournal> journal(
      new SourceJournal(this, source, dir, recovered));
  SourceJournal* out = journal.get();
  sources_.emplace(source, std::move(journal));
  return out;
}

Result<DeadLetterStore*> IngestJournal::DeadLettersFor(
    const std::string& source) {
  // Note: called from RecoverSource (single-threaded, inside Open)
  // and from RegisterStream later; mu_ is not held on either path.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dead_letters_.find(source);
  if (it != dead_letters_.end()) return it->second.get();
  const std::string dir = options_.dir + "/" + SourceDirName(source);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("create " + dir + ": " + ec.message());
  }
  WritableFileFactory factory = options_.file_factory;
  if (!factory) factory = OpenPosixWritable;
  GEOSTREAMS_ASSIGN_OR_RETURN(
      std::unique_ptr<DeadLetterStore> store,
      DeadLetterStore::Open(dir + "/" + kDeadLetterFile, factory));
  DeadLetterStore* out = store.get();
  dead_letters_.emplace(source, std::move(store));
  return out;
}

Status IngestJournal::Replay(
    const std::string& source,
    const std::function<void(const IngestMessage&)>& fn) const {
  const std::string dir = options_.dir + "/" + SourceDirName(source);
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    return Status::NotFound("no journal for source " + source);
  }
  GEOSTREAMS_ASSIGN_OR_RETURN(std::vector<SegmentRef> segments,
                              ListSegments(dir));
  GEOSTREAMS_ASSIGN_OR_RETURN(ScanOutcome outcome,
                              ScanSource(segments, source, fn));
  (void)outcome;
  return Status::OK();
}

SourceJournalStats IngestJournal::TotalStats() const {
  std::vector<SourceJournal*> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources.reserve(sources_.size());
    for (const auto& [name, journal] : sources_) {
      sources.push_back(journal.get());
    }
  }
  SourceJournalStats total;
  total.next_seq = 0;
  for (SourceJournal* journal : sources) {
    const SourceJournalStats s = journal->stats();
    total.appends += s.appends;
    total.append_bytes += s.append_bytes;
    total.append_errors += s.append_errors;
    total.fsyncs += s.fsyncs;
    total.rotations += s.rotations;
    total.segments_retired += s.segments_retired;
    total.segments_compacted += s.segments_compacted;
    total.records_compacted += s.records_compacted;
    total.compacted_bytes += s.compacted_bytes;
    total.reclaimed_bytes += s.reclaimed_bytes;
    total.active_segment_bytes += s.active_segment_bytes;
    total.recovered_records += s.recovered_records;
  }
  return total;
}

Status IngestJournal::SyncAll() {
  std::vector<SourceJournal*> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources.reserve(sources_.size());
    for (const auto& [name, journal] : sources_) {
      sources.push_back(journal.get());
    }
  }
  Status first = Status::OK();
  for (SourceJournal* journal : sources) {
    Status st = journal->Sync();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

}  // namespace geostreams
