#include "storage/faulty_file.h"

#include <algorithm>
#include <vector>

#include "common/math_util.h"

namespace geostreams {

namespace {

bool Roll(uint64_t seed, uint64_t counter, double p) {
  if (p <= 0.0) return false;
  return HashToUnit(seed ^ (counter * 0x9e3779b97f4a7c15ULL)) < p;
}

}  // namespace

/// Wraps the real file; consults the shared injector on every op.
/// Namespace-scope (not anonymous) so the injector's friend
/// declaration reaches it.
class FaultyFile : public WritableFile {
 public:
  FaultyFile(FaultyFileInjector* injector, std::unique_ptr<WritableFile> real)
      : injector_(injector), real_(std::move(real)) {}

  Status Append(const uint8_t* data, size_t len) override;
  Status Sync() override;
  Status Close() override { return real_->Close(); }

 private:
  FaultyFileInjector* injector_;
  std::unique_ptr<WritableFile> real_;
};

Status FaultyFile::Append(const uint8_t* data, size_t len) {
  // Decide the fault under the injector lock, then write outside it.
  enum class Fault { kNone, kShort, kFlip, kBudget, kEnospc };
  Fault fault = Fault::kNone;
  size_t persist = len;
  size_t flip_at = 0;
  uint64_t op = 0;
  {
    std::lock_guard<std::mutex> lock(injector_->mu_);
    FaultyFileOptions& opts = injector_->options_;
    op = ++injector_->op_counter_;
    ++injector_->stats_.appends;
    if (opts.space_quota_bytes > 0 &&
        injector_->stats_.bytes_written + len > opts.space_quota_bytes) {
      fault = Fault::kEnospc;
      persist = opts.space_quota_bytes > injector_->stats_.bytes_written
                    ? static_cast<size_t>(opts.space_quota_bytes -
                                          injector_->stats_.bytes_written)
                    : 0;
      ++injector_->stats_.enospc_failures;
    } else if (opts.fail_at_byte > 0 &&
        injector_->stats_.bytes_written + len > opts.fail_at_byte) {
      fault = Fault::kBudget;
      persist = opts.fail_at_byte > injector_->stats_.bytes_written
                    ? static_cast<size_t>(opts.fail_at_byte -
                                          injector_->stats_.bytes_written)
                    : 0;
      injector_->stats_.budget_exhausted = true;
    } else if (Roll(opts.seed, op * 3, opts.short_write_p)) {
      fault = Fault::kShort;
      // A torn prefix: at least one byte missing, possibly all.
      persist = static_cast<size_t>(
          HashToUnit(opts.seed ^ Mix64(op * 3 + 1)) * len);
      ++injector_->stats_.short_writes;
    } else if (Roll(opts.seed, op * 3 + 2, opts.bit_flip_p)) {
      fault = Fault::kFlip;
      flip_at = static_cast<size_t>(
          HashToUnit(opts.seed ^ Mix64(op * 5 + 3)) * len);
      if (flip_at >= len) flip_at = len > 0 ? len - 1 : 0;
      ++injector_->stats_.bit_flips;
    }
    injector_->stats_.bytes_written += persist;
  }
  Status write_status = Status::OK();
  if (fault == Fault::kFlip && len > 0) {
    std::vector<uint8_t> flipped(data, data + len);
    flipped[flip_at] ^= 0x40;
    write_status = real_->Append(flipped.data(), flipped.size());
  } else if (persist > 0) {
    write_status = real_->Append(data, persist);
  }
  if (!write_status.ok()) return write_status;
  switch (fault) {
    case Fault::kNone:
    case Fault::kFlip:  // corrupted silently — the write "succeeds"
      return Status::OK();
    case Fault::kShort:
      return Status::IoError("injected short write");
    case Fault::kBudget:
      return Status::IoError("injected crash at byte budget");
    case Fault::kEnospc:
      return Status::ResourceExhausted(
          "injected ENOSPC: no space left on device");
  }
  return Status::OK();
}

Status FaultyFile::Sync() {
  uint64_t op = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(injector_->mu_);
    op = ++injector_->op_counter_;
    if (injector_->options_.fail_at_byte > 0 &&
        injector_->stats_.budget_exhausted) {
      fail = true;  // "the machine is off" — nothing syncs any more
    } else if (Roll(injector_->options_.seed, op * 7 + 5,
                    injector_->options_.sync_fail_p)) {
      fail = true;
      ++injector_->stats_.sync_failures;
    }
  }
  if (fail) return Status::IoError("injected fsync failure");
  return real_->Sync();
}

FaultyFileInjector::FaultyFileInjector(FaultyFileOptions options)
    : options_(options) {}

WritableFileFactory FaultyFileInjector::Factory() {
  return [this](const std::string& path)
             -> Result<std::unique_ptr<WritableFile>> {
    GEOSTREAMS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> real,
                                OpenPosixWritable(path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<FaultyFile>(this, std::move(real)));
  };
}

FaultyFileStats FaultyFileInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultyFileInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  options_.short_write_p = 0.0;
  options_.bit_flip_p = 0.0;
  options_.sync_fail_p = 0.0;
  options_.fail_at_byte = 0;
  options_.space_quota_bytes = 0;
  stats_.budget_exhausted = false;
}

void FaultyFileInjector::SetSpaceQuota(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.space_quota_bytes = bytes;
}

}  // namespace geostreams
