#include "storage/dead_letter_store.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "net/wire_protocol.h"

namespace geostreams {

namespace {

constexpr char kStoreMagic[4] = {'G', 'S', 'D', 'L'};
constexpr size_t kStoreHeaderSize = 12;

// CRC-32 (IEEE 802.3, reflected). wire_protocol keeps its table
// private, and the .gsd framing is independent of GSF1 anyway.
uint32_t Crc32(const uint8_t* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

std::vector<uint8_t> EncodeLetter(const std::string& source,
                                  const DeadLetter& letter) {
  IngestMessage message;
  message.source = source;
  message.seq = letter.ordinal;
  message.event = letter.event;
  const std::vector<uint8_t> msg = EncodeIngestMessage(message);
  std::vector<uint8_t> payload;
  payload.reserve(16 + letter.error.size() + 4 + msg.size());
  PutU64(&payload, letter.ordinal);
  PutU32(&payload, static_cast<uint32_t>(letter.error.size()));
  payload.insert(payload.end(), letter.error.begin(), letter.error.end());
  PutU32(&payload, static_cast<uint32_t>(msg.size()));
  payload.insert(payload.end(), msg.begin(), msg.end());

  std::vector<uint8_t> record;
  record.reserve(kStoreHeaderSize + payload.size());
  record.insert(record.end(), kStoreMagic, kStoreMagic + 4);
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Crc32(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  return record;
}

Result<DeadLetter> DecodeLetterPayload(const uint8_t* p, size_t len) {
  if (len < 16) return Status::InvalidArgument("payload too short");
  DeadLetter letter;
  letter.ordinal = GetU64(p);
  const uint32_t error_len = GetU32(p + 8);
  size_t off = 12;
  if (off + error_len + 4 > len) {
    return Status::InvalidArgument("error string overruns payload");
  }
  letter.error.assign(reinterpret_cast<const char*>(p + off), error_len);
  off += error_len;
  const uint32_t msg_len = GetU32(p + off);
  off += 4;
  if (off + msg_len != len) {
    return Status::InvalidArgument("event bytes overrun payload");
  }
  GEOSTREAMS_ASSIGN_OR_RETURN(IngestMessage msg,
                              DecodeIngestMessage(p + off, msg_len));
  letter.event = std::move(msg.event);
  return letter;
}

Status ReadAll(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out->clear();  // absent is fine: a fresh store
    return Status::OK();
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(size > 0 ? static_cast<size_t>(size) : 0);
  if (!out->empty() &&
      std::fread(out->data(), 1, out->size(), f) != out->size()) {
    std::fclose(f);
    return Status::IoError("short read of " + path);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace

DeadLetterStore::DeadLetterStore(std::string path,
                                 std::unique_ptr<WritableFile> file)
    : path_(std::move(path)), file_(std::move(file)) {}

Result<std::unique_ptr<DeadLetterStore>> DeadLetterStore::Open(
    const std::string& path, WritableFileFactory factory) {
  std::vector<uint8_t> data;
  GEOSTREAMS_RETURN_IF_ERROR(ReadAll(path, &data));

  std::vector<DeadLetter> recovered;
  uint64_t load_errors = 0;
  uint64_t max_ordinal = 0;
  size_t off = 0;
  while (off + kStoreHeaderSize <= data.size()) {
    if (std::memcmp(data.data() + off, kStoreMagic, 4) != 0) break;
    const uint32_t payload_len = GetU32(data.data() + off + 4);
    const uint32_t crc = GetU32(data.data() + off + 8);
    if (off + kStoreHeaderSize + payload_len > data.size()) break;
    const uint8_t* payload = data.data() + off + kStoreHeaderSize;
    if (Crc32(payload, payload_len) != crc) break;
    Result<DeadLetter> letter = DecodeLetterPayload(payload, payload_len);
    if (!letter.ok()) break;
    max_ordinal = std::max(max_ordinal, letter->ordinal);
    recovered.push_back(std::move(*letter));
    off += kStoreHeaderSize + payload_len;
  }
  if (off < data.size()) {
    // Whatever stopped the loop — bad magic, short header, torn
    // payload, CRC or decode failure — is one damaged tail record.
    ++load_errors;
    GEOSTREAMS_LOG(kWarning)
        << "dead-letter store " << path << ": ignoring "
        << (data.size() - off) << " undecodable trailing bytes ("
        << recovered.size() << " letters loaded)";
  }

  if (!factory) factory = OpenPosixWritable;
  GEOSTREAMS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                              factory(path));
  std::unique_ptr<DeadLetterStore> store(
      new DeadLetterStore(path, std::move(file)));
  store->load_errors_ = load_errors;
  store->next_ordinal_ = recovered.empty() ? 0 : max_ordinal + 1;
  store->recovered_ = std::move(recovered);
  return store;
}

Status DeadLetterStore::Append(const std::string& source,
                               const DeadLetter& letter) {
  const std::vector<uint8_t> record = EncodeLetter(source, letter);
  std::lock_guard<std::mutex> lock(mu_);
  GEOSTREAMS_RETURN_IF_ERROR(file_->Append(record.data(), record.size()));
  if (letter.ordinal >= next_ordinal_) next_ordinal_ = letter.ordinal + 1;
  return file_->Sync();
}

Status DeadLetterStore::AppendQuarantine(const std::string& source,
                                         const std::string& error) {
  DeadLetter letter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    letter.ordinal = next_ordinal_;
  }
  letter.error = error;
  letter.event = StreamEvent::StreamEnd();
  return Append(source, letter);
}

uint64_t DeadLetterStore::next_ordinal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ordinal_;
}

Status DeadLetterStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return file_->Sync();
}

}  // namespace geostreams
