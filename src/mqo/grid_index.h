// Uniform grid index over query rectangles: the mid-complexity
// baseline between the naive filter bank and the cascade tree (E7).
// Each grid cell lists the queries overlapping it; a stab tests only
// that cell's list.

#ifndef GEOSTREAMS_MQO_GRID_INDEX_H_
#define GEOSTREAMS_MQO_GRID_INDEX_H_

#include <utility>
#include <vector>

#include "mqo/region_index.h"

namespace geostreams {

class GridIndex : public RegionIndex {
 public:
  GridIndex(BoundingBox extent, int cols, int rows);

  Status Insert(QueryId id, const BoundingBox& box) override;
  Status Remove(QueryId id) override;
  void Stab(double x, double y, std::vector<QueryId>* out) const override;
  size_t size() const override { return boxes_.size(); }
  std::string name() const override { return "grid-index"; }

 private:
  struct CellRange {
    int c0, c1, r0, r1;
  };
  CellRange CellsOf(const BoundingBox& box) const;
  int CellIndex(int c, int r) const { return r * cols_ + c; }

  BoundingBox extent_;
  int cols_;
  int rows_;
  std::vector<std::vector<std::pair<QueryId, BoundingBox>>> cells_;
  std::vector<std::pair<QueryId, BoundingBox>> boxes_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_MQO_GRID_INDEX_H_
