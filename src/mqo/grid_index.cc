#include "mqo/grid_index.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

GridIndex::GridIndex(BoundingBox extent, int cols, int rows)
    : extent_(extent),
      cols_(cols < 1 ? 1 : cols),
      rows_(rows < 1 ? 1 : rows),
      cells_(static_cast<size_t>(cols_) * static_cast<size_t>(rows_)) {}

GridIndex::CellRange GridIndex::CellsOf(const BoundingBox& box) const {
  const double w = extent_.width() / cols_;
  const double h = extent_.height() / rows_;
  // Clamp in double space BEFORE the integer cast: query rectangles can
  // be astronomically large (e.g. the all() region), and casting an
  // out-of-range double to int is undefined behaviour.
  auto cell = [](double v, double origin, double step, int n) {
    const double t = Clamp(std::floor((v - origin) / step), 0.0,
                           static_cast<double>(n - 1));
    return static_cast<int>(t);
  };
  CellRange r;
  r.c0 = cell(box.min_x, extent_.min_x, w, cols_);
  r.c1 = cell(box.max_x, extent_.min_x, w, cols_);
  r.r0 = cell(box.min_y, extent_.min_y, h, rows_);
  r.r1 = cell(box.max_y, extent_.min_y, h, rows_);
  return r;
}

Status GridIndex::Insert(QueryId id, const BoundingBox& box) {
  for (const auto& [eid, ebox] : boxes_) {
    if (eid == id) {
      return Status::AlreadyExists(
          StringPrintf("query %lld already registered",
                       static_cast<long long>(id)));
    }
  }
  boxes_.emplace_back(id, box);
  if (box.Intersects(extent_)) {
    const CellRange r = CellsOf(box);
    for (int row = r.r0; row <= r.r1; ++row) {
      for (int col = r.c0; col <= r.c1; ++col) {
        cells_[static_cast<size_t>(CellIndex(col, row))].emplace_back(id,
                                                                      box);
      }
    }
  }
  return Status::OK();
}

Status GridIndex::Remove(QueryId id) {
  auto it = std::find_if(boxes_.begin(), boxes_.end(),
                         [id](const auto& e) { return e.first == id; });
  if (it == boxes_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  const BoundingBox box = it->second;
  boxes_.erase(it);
  if (box.Intersects(extent_)) {
    const CellRange r = CellsOf(box);
    for (int row = r.r0; row <= r.r1; ++row) {
      for (int col = r.c0; col <= r.c1; ++col) {
        auto& cell = cells_[static_cast<size_t>(CellIndex(col, row))];
        cell.erase(std::remove_if(cell.begin(), cell.end(),
                                  [id](const auto& e) {
                                    return e.first == id;
                                  }),
                   cell.end());
      }
    }
  }
  return Status::OK();
}

void GridIndex::Stab(double x, double y, std::vector<QueryId>* out) const {
  if (!extent_.Contains(x, y)) return;
  const double w = extent_.width() / cols_;
  const double h = extent_.height() / rows_;
  const int col = Clamp(
      static_cast<int>(std::floor((x - extent_.min_x) / w)), 0, cols_ - 1);
  const int row = Clamp(
      static_cast<int>(std::floor((y - extent_.min_y) / h)), 0, rows_ - 1);
  for (const auto& [id, box] :
       cells_[static_cast<size_t>(CellIndex(col, row))]) {
    if (box.Contains(x, y)) out->push_back(id);
  }
}

}  // namespace geostreams
