// Naive per-query filter list: the baseline the cascade tree is
// measured against (bench E7). Stabbing is O(n) in the number of
// registered queries.

#ifndef GEOSTREAMS_MQO_FILTER_BANK_H_
#define GEOSTREAMS_MQO_FILTER_BANK_H_

#include <utility>
#include <vector>

#include "mqo/region_index.h"

namespace geostreams {

class FilterBank : public RegionIndex {
 public:
  Status Insert(QueryId id, const BoundingBox& box) override;
  Status Remove(QueryId id) override;
  void Stab(double x, double y, std::vector<QueryId>* out) const override;
  size_t size() const override { return entries_.size(); }
  std::string name() const override { return "filter-bank"; }

 private:
  std::vector<std::pair<QueryId, BoundingBox>> entries_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_MQO_FILTER_BANK_H_
