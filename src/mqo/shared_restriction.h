// Shared spatial restriction operator (Sec. 4).
//
// One operator instance serves all continuous queries registered
// against a GeoStream: each incoming point is stabbed against a
// RegionIndex (dynamic cascade tree by default) and routed only to
// the queries whose region contains it. Frame metadata is forwarded
// to every subscriber so downstream frame-scoped operators keep
// working.

#ifndef GEOSTREAMS_MQO_SHARED_RESTRICTION_H_
#define GEOSTREAMS_MQO_SHARED_RESTRICTION_H_

#include <map>
#include <memory>

#include "geo/lattice.h"
#include "geo/region.h"
#include "mqo/region_index.h"
#include "stream/operator.h"

namespace geostreams {

class SharedRestrictionOp : public EventSink {
 public:
  /// Takes ownership of the index (cascade tree, grid, or filter
  /// bank — the E7 bench swaps them).
  explicit SharedRestrictionOp(std::unique_ptr<RegionIndex> index);

  /// Registers a continuous query: points inside `region` go to
  /// `sink` (not owned). The index prunes by bounding box; the exact
  /// region predicate is applied to the candidates.
  Status RegisterQuery(QueryId id, RegionPtr region, EventSink* sink);
  Status UnregisterQuery(QueryId id);

  size_t num_queries() const { return queries_.size(); }
  const RegionIndex& index() const { return *index_; }

  /// Stabbing tests performed (diagnostics).
  uint64_t points_routed() const { return points_routed_; }

  Status Consume(const StreamEvent& event) override;

 private:
  struct QueryState {
    RegionPtr region;
    EventSink* sink;
    /// Whether the region needs an exact test beyond its bbox.
    bool exact_needed;
    /// Batch under construction for the current input batch.
    std::shared_ptr<PointBatch> pending;
  };

  std::unique_ptr<RegionIndex> index_;
  std::map<QueryId, QueryState> queries_;
  GridLattice frame_lattice_;
  std::vector<QueryId> stab_buffer_;
  uint64_t points_routed_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_MQO_SHARED_RESTRICTION_H_
