// Dynamic cascade tree for indexing query regions on a stream
// (after Hart/Gertz/Zhang, SSTD 2005, as used in Sec. 4).
//
// A quadtree-shaped hierarchy over the instrument's spatial extent.
// Each node stores the queries whose rectangles *fully cover* the
// node's cell — a point reaching the node belongs to all of them with
// no further tests (the "cascade"). Rectangles that only partially
// overlap a cell are pushed down; at the maximum depth they land in a
// leaf's partial list and are tested individually. A stabbing query
// therefore walks one root-to-leaf path, collecting cover lists on
// the way: O(depth + answers + partials at one leaf), independent of
// the total number of registered queries.

#ifndef GEOSTREAMS_MQO_CASCADE_TREE_H_
#define GEOSTREAMS_MQO_CASCADE_TREE_H_

#include <memory>

#include "mqo/region_index.h"

namespace geostreams {

class CascadeTree : public RegionIndex {
 public:
  /// `extent`: the spatial domain of the indexed stream (points
  /// outside it stab nothing). `max_depth`: subdivision levels; each
  /// level halves both axes.
  explicit CascadeTree(BoundingBox extent, int max_depth = 10);
  ~CascadeTree() override;

  Status Insert(QueryId id, const BoundingBox& box) override;
  Status Remove(QueryId id) override;
  void Stab(double x, double y, std::vector<QueryId>* out) const override;
  size_t size() const override { return size_; }
  std::string name() const override { return "cascade-tree"; }

  /// Total allocated nodes (space diagnostics for E7).
  size_t node_count() const { return node_count_; }

 private:
  struct Node;

  void InsertRec(Node* node, const BoundingBox& cell, int depth, QueryId id,
                 const BoundingBox& box);
  void RemoveRec(Node* node, const BoundingBox& cell, int depth, QueryId id,
                 const BoundingBox& box);
  /// True when the subtree holds no entries and can be pruned.
  static bool IsEmpty(const Node& node);

  BoundingBox extent_;
  int max_depth_;
  std::unique_ptr<Node> root_;
  // Remembered boxes so Remove(id) does not need the caller to repeat
  // the rectangle.
  std::vector<std::pair<QueryId, BoundingBox>> boxes_;
  size_t size_ = 0;
  size_t node_count_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_MQO_CASCADE_TREE_H_
