#include "mqo/cascade_tree.h"

#include <algorithm>

#include "common/string_util.h"

namespace geostreams {

struct CascadeTree::Node {
  /// Queries whose rectangle fully covers this node's cell.
  std::vector<QueryId> covers;
  /// Partial overlaps parked at the maximum depth.
  std::vector<std::pair<QueryId, BoundingBox>> partial;
  std::unique_ptr<Node> children[4];
};

namespace {

/// Quadrant cells of a box: 0=SW, 1=SE, 2=NW, 3=NE.
BoundingBox Quadrant(const BoundingBox& cell, int q) {
  const double mx = (cell.min_x + cell.max_x) / 2.0;
  const double my = (cell.min_y + cell.max_y) / 2.0;
  switch (q) {
    case 0:
      return BoundingBox(cell.min_x, cell.min_y, mx, my);
    case 1:
      return BoundingBox(mx, cell.min_y, cell.max_x, my);
    case 2:
      return BoundingBox(cell.min_x, my, mx, cell.max_y);
    default:
      return BoundingBox(mx, my, cell.max_x, cell.max_y);
  }
}

}  // namespace

CascadeTree::CascadeTree(BoundingBox extent, int max_depth)
    : extent_(extent),
      max_depth_(max_depth < 1 ? 1 : max_depth),
      root_(std::make_unique<Node>()) {
  node_count_ = 1;
}

CascadeTree::~CascadeTree() = default;

Status CascadeTree::Insert(QueryId id, const BoundingBox& box) {
  for (const auto& [eid, ebox] : boxes_) {
    if (eid == id) {
      return Status::AlreadyExists(
          StringPrintf("query %lld already registered",
                       static_cast<long long>(id)));
    }
  }
  boxes_.emplace_back(id, box);
  ++size_;
  if (box.Intersects(extent_)) {
    InsertRec(root_.get(), extent_, 0, id, box);
  }
  return Status::OK();
}

void CascadeTree::InsertRec(Node* node, const BoundingBox& cell, int depth,
                            QueryId id, const BoundingBox& box) {
  if (box.ContainsBox(cell)) {
    node->covers.push_back(id);
    return;
  }
  if (depth >= max_depth_) {
    node->partial.emplace_back(id, box);
    return;
  }
  for (int q = 0; q < 4; ++q) {
    const BoundingBox quad = Quadrant(cell, q);
    if (!box.Intersects(quad)) continue;
    if (!node->children[q]) {
      node->children[q] = std::make_unique<Node>();
      ++node_count_;
    }
    InsertRec(node->children[q].get(), quad, depth + 1, id, box);
  }
}

Status CascadeTree::Remove(QueryId id) {
  auto it = std::find_if(boxes_.begin(), boxes_.end(),
                         [id](const auto& e) { return e.first == id; });
  if (it == boxes_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  const BoundingBox box = it->second;
  boxes_.erase(it);
  --size_;
  if (box.Intersects(extent_)) {
    RemoveRec(root_.get(), extent_, 0, id, box);
  }
  return Status::OK();
}

void CascadeTree::RemoveRec(Node* node, const BoundingBox& cell, int depth,
                            QueryId id, const BoundingBox& box) {
  if (box.ContainsBox(cell)) {
    node->covers.erase(
        std::remove(node->covers.begin(), node->covers.end(), id),
        node->covers.end());
    return;
  }
  if (depth >= max_depth_) {
    node->partial.erase(
        std::remove_if(node->partial.begin(), node->partial.end(),
                       [id](const auto& e) { return e.first == id; }),
        node->partial.end());
    return;
  }
  for (int q = 0; q < 4; ++q) {
    if (!node->children[q]) continue;
    const BoundingBox quad = Quadrant(cell, q);
    if (!box.Intersects(quad)) continue;
    RemoveRec(node->children[q].get(), quad, depth + 1, id, box);
    if (IsEmpty(*node->children[q])) {
      node->children[q].reset();
      --node_count_;
    }
  }
}

bool CascadeTree::IsEmpty(const Node& node) {
  if (!node.covers.empty() || !node.partial.empty()) return false;
  for (const auto& c : node.children) {
    if (c) return false;
  }
  return true;
}

void CascadeTree::Stab(double x, double y,
                       std::vector<QueryId>* out) const {
  if (!extent_.Contains(x, y)) return;
  const Node* node = root_.get();
  BoundingBox cell = extent_;
  while (node) {
    out->insert(out->end(), node->covers.begin(), node->covers.end());
    for (const auto& [id, box] : node->partial) {
      if (box.Contains(x, y)) out->push_back(id);
    }
    // Descend into the quadrant containing the point.
    const double mx = (cell.min_x + cell.max_x) / 2.0;
    const double my = (cell.min_y + cell.max_y) / 2.0;
    const int q = (x >= mx ? 1 : 0) + (y >= my ? 2 : 0);
    cell = Quadrant(cell, q);
    node = node->children[q].get();
  }
}

}  // namespace geostreams
