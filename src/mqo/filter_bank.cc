#include "mqo/filter_bank.h"

#include <algorithm>

#include "common/string_util.h"

namespace geostreams {

Status FilterBank::Insert(QueryId id, const BoundingBox& box) {
  for (const auto& [eid, ebox] : entries_) {
    if (eid == id) {
      return Status::AlreadyExists(
          StringPrintf("query %lld already registered",
                       static_cast<long long>(id)));
    }
  }
  entries_.emplace_back(id, box);
  return Status::OK();
}

Status FilterBank::Remove(QueryId id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const auto& e) { return e.first == id; });
  if (it == entries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  entries_.erase(it);
  return Status::OK();
}

void FilterBank::Stab(double x, double y,
                      std::vector<QueryId>* out) const {
  for (const auto& [id, box] : entries_) {
    if (box.Contains(x, y)) out->push_back(id);
  }
}

}  // namespace geostreams
