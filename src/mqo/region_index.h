// Indexes over many registered query regions (Sec. 4).
//
// "Multiple queries against a single GeoStream are optimized using a
// dynamic cascade tree structure, which acts as a single spatial
// restriction operator and efficiently streams only the point data of
// interest to current continuous queries." A RegionIndex answers
// stabbing queries — which registered regions contain this point? —
// and supports dynamic registration/removal as clients come and go.
//
// Indexes work on the regions' bounding boxes and may return a
// superset of the true answer; the shared restriction operator
// applies the exact region predicate to the candidates.

#ifndef GEOSTREAMS_MQO_REGION_INDEX_H_
#define GEOSTREAMS_MQO_REGION_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/bounding_box.h"

namespace geostreams {

using QueryId = int64_t;

/// Interface for dynamic rectangle stabbing structures.
class RegionIndex {
 public:
  virtual ~RegionIndex() = default;

  virtual Status Insert(QueryId id, const BoundingBox& box) = 0;
  virtual Status Remove(QueryId id) = 0;

  /// Appends ids whose boxes (conservatively) contain (x, y). The
  /// output vector is not cleared.
  virtual void Stab(double x, double y,
                    std::vector<QueryId>* out) const = 0;

  virtual size_t size() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_MQO_REGION_INDEX_H_
