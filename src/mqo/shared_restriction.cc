#include "mqo/shared_restriction.h"

#include "common/string_util.h"

namespace geostreams {

SharedRestrictionOp::SharedRestrictionOp(
    std::unique_ptr<RegionIndex> index)
    : index_(std::move(index)) {}

Status SharedRestrictionOp::RegisterQuery(QueryId id, RegionPtr region,
                                          EventSink* sink) {
  if (!region || !sink) {
    return Status::InvalidArgument("query needs a region and a sink");
  }
  GEOSTREAMS_RETURN_IF_ERROR(index_->Insert(id, region->bounds()));
  QueryState state;
  state.region = std::move(region);
  state.sink = sink;
  // A bbox region is fully decided by the index's bounding-box test.
  state.exact_needed = state.region->kind() != RegionKind::kBBox;
  queries_.emplace(id, std::move(state));
  return Status::OK();
}

Status SharedRestrictionOp::UnregisterQuery(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  GEOSTREAMS_RETURN_IF_ERROR(index_->Remove(id));
  queries_.erase(it);
  return Status::OK();
}

Status SharedRestrictionOp::Consume(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      frame_lattice_ = event.frame.lattice;
      [[fallthrough]];
    case EventKind::kFrameEnd:
    case EventKind::kStreamEnd:
      for (auto& [id, q] : queries_) {
        GEOSTREAMS_RETURN_IF_ERROR(q.sink->Consume(event));
      }
      return Status::OK();
    case EventKind::kPointBatch:
      break;
  }

  const PointBatch& batch = *event.batch;
  for (size_t i = 0; i < batch.size(); ++i) {
    const double x = frame_lattice_.CellX(batch.cols[i]);
    const double y = frame_lattice_.CellY(batch.rows[i]);
    stab_buffer_.clear();
    index_->Stab(x, y, &stab_buffer_);
    ++points_routed_;
    for (QueryId id : stab_buffer_) {
      auto it = queries_.find(id);
      if (it == queries_.end()) continue;
      QueryState& q = it->second;
      if (q.exact_needed && !q.region->Contains(x, y)) continue;
      if (!q.pending) {
        q.pending = std::make_shared<PointBatch>();
        q.pending->frame_id = batch.frame_id;
        q.pending->band_count = batch.band_count;
      }
      q.pending->Append(
          batch.cols[i], batch.rows[i], batch.timestamps[i],
          &batch.values[i * static_cast<size_t>(batch.band_count)]);
    }
  }
  for (auto& [id, q] : queries_) {
    if (!q.pending) continue;
    StreamEvent out = StreamEvent::Batch(q.pending);
    // Carry the sampled trace across the shared-restriction split so
    // per-query pipelines downstream (the scheduler fork) still see it.
    out.trace = event.trace;
    Status st = q.sink->Consume(out);
    q.pending.reset();
    GEOSTREAMS_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

}  // namespace geostreams
