#include "server/scan_schedule.h"

#include <cmath>

#include "common/string_util.h"
#include "geo/crs.h"
#include "geo/geographic_crs.h"

namespace geostreams {

ScanSchedule::ScanSchedule(std::vector<SectorSpec> sectors)
    : sectors_(std::move(sectors)) {
  if (sectors_.empty()) {
    sectors_.push_back(SectorSpec{
        "default", BoundingBox(-60.0, -45.0, 60.0, 45.0), 1, 0});
  }
}

ScanSchedule ScanSchedule::GoesRoutine() {
  // Roughly GOES-East: sub-satellite point 75W.
  std::vector<SectorSpec> sectors;
  sectors.push_back(
      SectorSpec{"full-disk", BoundingBox(-135.0, -60.0, -15.0, 60.0),
                 /*period=*/12, /*phase=*/0});
  sectors.push_back(SectorSpec{"northern-hemisphere",
                               BoundingBox(-135.0, 0.0, -15.0, 55.0),
                               /*period=*/4, /*phase=*/2});
  sectors.push_back(SectorSpec{"conus",
                               BoundingBox(-125.0, 24.0, -66.0, 50.0),
                               /*period=*/1, /*phase=*/0});
  return ScanSchedule(std::move(sectors));
}

const SectorSpec& ScanSchedule::SectorFor(int64_t scan_index) const {
  for (const SectorSpec& s : sectors_) {
    if (s.period > 0 && (scan_index % s.period) == s.phase) return s;
  }
  return sectors_.back();
}

Result<GridLattice> SectorLattice(const SectorSpec& sector,
                                  const CrsPtr& crs, int64_t target_cells) {
  if (!crs) return Status::InvalidArgument("sector lattice needs a CRS");
  if (target_cells < 1) {
    return Status::InvalidArgument("target_cells must be positive");
  }
  // Map the geographic sector into the instrument CRS.
  const BoundingBox native = TransformBoundingBox(
      sector.geo_bounds, *GeographicCrs::Instance(), *crs, 24);
  if (native.empty()) {
    return Status::OutOfRange(
        StringPrintf("sector %s not visible in CRS %s", sector.name.c_str(),
                     crs->name().c_str()));
  }
  const double aspect = native.width() / native.height();
  const double h = std::sqrt(static_cast<double>(target_cells) / aspect);
  const auto height = static_cast<int64_t>(std::llround(h));
  const auto width = static_cast<int64_t>(
      std::llround(static_cast<double>(target_cells) / h));
  const int64_t hh = height < 1 ? 1 : height;
  const int64_t ww = width < 1 ? 1 : width;
  const double dx = native.width() / static_cast<double>(ww);
  const double dy = native.height() / static_cast<double>(hh);
  // Row 0 at the top (north): negative y step.
  return GridLattice(crs, native.min_x + dx / 2.0, native.max_y - dy / 2.0,
                     dx, -dy, ww, hh);
}

}  // namespace geostreams
