#include "server/dsms_server.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "mqo/cascade_tree.h"
#include "mqo/filter_bank.h"
#include "mqo/grid_index.h"
#include "query/explain.h"
#include "query/parser.h"
#include "storage/dead_letter_store.h"

namespace geostreams {

namespace {

std::unique_ptr<RegionIndex> MakeIndex(DsmsOptions::IndexKind kind,
                                       const BoundingBox& extent) {
  switch (kind) {
    case DsmsOptions::IndexKind::kCascadeTree:
      return std::make_unique<CascadeTree>(extent);
    case DsmsOptions::IndexKind::kGrid:
      return std::make_unique<GridIndex>(extent, 64, 64);
    case DsmsOptions::IndexKind::kFilterBank:
      return std::make_unique<FilterBank>();
  }
  return std::make_unique<FilterBank>();
}

/// Operator-kind label for the shared latency histogram family: the
/// planner names operators "op<N>.<kind>" (delivery ops
/// "q<N>.delivery"), so the suffix after the first '.' is the kind —
/// labeling by kind instead of instance keeps series cardinality
/// bounded no matter how many queries register.
std::string OpKindLabel(const std::string& name) {
  const size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

constexpr char kOperatorLatencyHelp[] =
    "Exclusive microseconds spent in one operator per traced delivery";

/// Collects temporal restrictions that provably apply to each leaf of
/// a plan expression, for pushing down into StoreScan as IO-pruning
/// hints (they never change which frames replay — see StoreScan::times).
/// A TimeSet is carried down only through timestamp-preserving unary
/// operators; anything that could change frame-timestamp semantics
/// (aggregation, composition, band stacking) clears the accumulation —
/// the plan re-applies its own restrictions, so dropping a hint only
/// costs pruning, never correctness. A leaf that appears more than
/// once gets no hints (the paths may disagree and the scans would
/// intersect them).
void CollectTimeHints(const ExprPtr& expr, std::vector<TimeSet> active,
                      std::map<std::string, std::vector<TimeSet>>* hints,
                      std::map<std::string, int>* leaf_count) {
  if (!expr) return;
  switch (expr->kind) {
    case ExprKind::kStreamRef:
      ++(*leaf_count)[expr->stream_name];
      (*hints)[expr->stream_name] = std::move(active);
      return;
    case ExprKind::kTemporalRestrict:
      active.push_back(expr->times);
      CollectTimeHints(expr->child, std::move(active), hints, leaf_count);
      return;
    case ExprKind::kSpatialRestrict:
    case ExprKind::kValueRestrict:
    case ExprKind::kValueTransform:
    case ExprKind::kStretch:
    case ExprKind::kMagnify:
    case ExprKind::kReduce:
    case ExprKind::kReproject:
      CollectTimeHints(expr->child, std::move(active), hints, leaf_count);
      return;
    default:
      CollectTimeHints(expr->child, {}, hints, leaf_count);
      CollectTimeHints(expr->right, {}, hints, leaf_count);
      return;
  }
}

}  // namespace

/// Per-source ingest state: fans events out to unrestricted plan
/// inputs and to the shared restriction index.
struct DsmsServer::SourceState : public EventSink {
  GeoStreamDescriptor desc;
  std::unique_ptr<SharedRestrictionOp> shared;
  /// Historical persistence (null without a store): assembles each
  /// frame and commits it to the TileStore. Consumed FIRST, before
  /// any query fan-out — the catch-up cut-over protocol depends on a
  /// frame being durable before any later event reaches a CatchUpGate
  /// (see store/catch_up_gate.h).
  std::unique_ptr<StoreIngestSink> store_sink;
  std::vector<EventSink*> direct_targets;
  /// True for continuous views: their events arrive from a backing
  /// plan rather than from an ingest call.
  bool derived = false;
  /// Boundary guard handed out by DsmsServer::ingest() (and used as
  /// the backing plan's sink for derived streams under a worker
  /// pool): takes the server's state lock in shared mode and runs the
  /// opt-in checksum check.
  std::unique_ptr<GuardedIngestSink> guard;
  /// Corrupt batches rejected at this boundary. `boundary_mu` guards
  /// the dead-letter ring and counter: several producers may ingest
  /// concurrently, each holding the state lock only in shared mode.
  std::mutex boundary_mu;
  std::unique_ptr<DeadLetterQueue> boundary_dead_letters;
  uint64_t checksum_failures = 0;
  bool warned_corrupt = false;
  /// Point batches seen at this boundary, for trace sampling (every
  /// Nth batch per source). Atomic: several producers may ingest one
  /// source concurrently under the shared state lock.
  std::atomic<uint64_t> trace_ticks{0};
  /// Quarantine verdict (also under boundary_mu): a quarantined
  /// source's events are refused at the guard until RestartSource.
  bool quarantined = false;
  Status quarantine_error = Status::OK();
  /// Wall clock (epoch us) of the newest delivered FrameEnd (its
  /// capture anchor when stamped, else admission, else delivery).
  /// Atomic: read by the scrape-time freshness collector while
  /// producers keep ingesting.
  std::atomic<uint64_t> last_frame_fresh_wall_us{0};
  /// Scrape-time freshness gauge and the per-source total-latency
  /// histogram (shared with the ingest session and the delivery
  /// plane), resolved once at stream registration.
  Gauge* freshness_gauge = nullptr;
  MetricHistogram* e2e_total = nullptr;

  Status Consume(const StreamEvent& event) override {
    if (store_sink) {
      // Never fails (store errors are counted and logged inside) —
      // the live chain does not stall because the disk is unhappy.
      GEOSTREAMS_RETURN_IF_ERROR(store_sink->Consume(event));
    }
    for (EventSink* t : direct_targets) {
      GEOSTREAMS_RETURN_IF_ERROR(t->Consume(event));
    }
    if (shared && shared->num_queries() > 0) {
      return shared->Consume(event);
    }
    if (shared && event.kind == EventKind::kStreamEnd) {
      return shared->Consume(event);
    }
    return Status::OK();
  }
};

/// Shields ingest fan-out from a failed query: a quarantined
/// pipeline's Enqueue returns that pipeline's own error, which must
/// not abort delivery to the remaining (healthy) queries. The error
/// stays observable through QueryHealth/QueryError and the scheduler's
/// `rejected` counter.
class DsmsServer::IsolatedEntrySink : public EventSink {
 public:
  explicit IsolatedEntrySink(EventSink* entry) : entry_(entry) {}

  Status Consume(const StreamEvent& event) override {
    Status st = entry_->Consume(event);
    if (!st.ok() && !warned_) {
      warned_ = true;
      GEOSTREAMS_LOG(kWarning) << "query pipeline rejects events: "
                            << st.ToString();
    }
    return Status::OK();
  }

 private:
  EventSink* entry_;
  bool warned_ = false;
};

/// The ingest boundary (Fig. 3's arrow from the stream generator into
/// the server). Every event takes the server's state lock in shared
/// mode, so producers and the control plane (network sessions
/// registering queries) can run concurrently; with
/// verify_ingest_checksums on, a batch whose attached FNV-1a digest
/// does not match its content is dead-lettered here — it never enters
/// any query chain, and the producer keeps streaming.
class DsmsServer::GuardedIngestSink : public EventSink {
 public:
  GuardedIngestSink(DsmsServer* server, SourceState* source)
      : server_(server), source_(source) {}

  Status Consume(const StreamEvent& event) override {
    std::shared_lock<std::shared_mutex> lock(server_->state_mu_);
    {
      std::lock_guard<std::mutex> boundary(source_->boundary_mu);
      if (source_->quarantined) {
        return Status::FailedPrecondition(StringPrintf(
            "source '%s' quarantined: %s", source_->desc.name().c_str(),
            source_->quarantine_error.message().c_str()));
      }
    }
    if (server_->options_.verify_ingest_checksums &&
        event.kind == EventKind::kPointBatch && event.batch &&
        !event.batch->ChecksumValid()) {
      const Status error = Status::FailedPrecondition(StringPrintf(
          "ingest checksum mismatch on %s (frame %lld, %zu points)",
          source_->desc.name().c_str(),
          static_cast<long long>(event.batch->frame_id),
          event.batch->size()));
      std::lock_guard<std::mutex> boundary(source_->boundary_mu);
      ++source_->checksum_failures;
      source_->boundary_dead_letters->Push(event, error);
      if (!source_->warned_corrupt) {
        source_->warned_corrupt = true;
        GEOSTREAMS_LOG(kWarning) << error.ToString()
                                 << " (further corruption logged once)";
      }
      return Status::OK();  // shed at the boundary; downlink continues
    }
    const size_t sample_every = server_->options_.trace_sample_every;
    bool traced = false;
    if (sample_every > 0) {
      if (event.kind == EventKind::kPointBatch) {
        const uint64_t tick =
            source_->trace_ticks.fetch_add(1, std::memory_order_relaxed);
        traced = tick % sample_every == 0;
      } else if (event.kind == EventKind::kFrameEnd &&
                 (event.anchors.capture_wall_us != 0 ||
                  event.anchors.admit_wall_us != 0)) {
        // The latency plane is per-frame: every anchored FrameEnd
        // (one arriving through the ingest session, which stamps
        // admission) is traced so its stage segments land in the
        // `geostreams_e2e_latency_us` histograms. In-process events
        // carry no anchors and keep the pre-existing behavior.
        traced = true;
      }
    }
    const Status st =
        traced ? ConsumeTraced(event) : source_->Consume(event);
    if (st.ok() && event.kind == EventKind::kFrameEnd) {
      const uint64_t stamp =
          event.anchors.capture_wall_us != 0 ? event.anchors.capture_wall_us
          : event.anchors.admit_wall_us != 0 ? event.anchors.admit_wall_us
                                             : TraceWallNowUs();
      source_->last_frame_fresh_wall_us.store(stamp,
                                              std::memory_order_relaxed);
    }
    return st;
  }

 private:
  /// Delivers one sampled batch with a fresh TraceContext attached.
  /// With a worker pool the context just rides the event — the
  /// scheduler forks it per pipeline at enqueue and does all the
  /// timing. Synchronously the whole fan-out runs right here on the
  /// ingest thread, so activate the trace around it and push the
  /// record into the server-wide inline ring (spans of all queries
  /// appear in one record — they really did run as one chain).
  Status ConsumeTraced(const StreamEvent& event) {
    StreamEvent traced = event;
    traced.trace = std::make_shared<TraceContext>(
        server_->next_trace_id_.fetch_add(1, std::memory_order_relaxed),
        source_->desc.name());
    traced.trace->SetIngestAnchors(event.anchors.capture_wall_us,
                                   event.anchors.admit_wall_us,
                                   event.anchors.durable_wall_us);
    if (server_->scheduler_) return source_->Consume(traced);
    TraceContext* trace = traced.trace.get();
    if (server_->inline_traces_) {
      // Reserve the ring slot up front so exemplar observations made
      // during this delivery carry the ordinal TRACE answers to.
      trace->set_ring_ordinal(server_->inline_traces_->Reserve());
    }
    if (event.kind == EventKind::kFrameEnd &&
        trace->last_anchor_wall_us() != 0) {
      // Ingest-side stages come straight from the anchors; without a
      // worker pool there is no queue stage, so the chain continues
      // from the seeded anchor into the delivery callback's
      // `operators` segment.
      const uint64_t capture = trace->capture_wall_us();
      const uint64_t admit = trace->admit_wall_us();
      const uint64_t durable = trace->durable_wall_us();
      if (capture != 0 && admit > capture) {
        ObserveE2eStage(&server_->metrics_registry_, "send", "source",
                        source_->desc.name(), admit - capture, trace);
      }
      if (admit != 0 && durable > admit) {
        ObserveE2eStage(&server_->metrics_registry_, "journal", "source",
                        source_->desc.name(), durable - admit, trace);
      }
    }
    ScopedTraceActivation activate(trace);
    Status st = source_->Consume(traced);
    if (st.ok() && server_->inline_traces_) {
      server_->inline_traces_->PushReserved(trace->Finish());
    }
    return st;
  }

  DsmsServer* server_;
  SourceState* source_;
};

struct DsmsServer::QueryState {
  QueryId id = 0;
  std::string text;
  ExprPtr optimized;
  std::unique_ptr<DeliveryOp> delivery;
  NullSink null_sink;
  std::unique_ptr<ExecutablePlan> plan;
  /// Isolation wrappers around the scheduler entry sinks (empty when
  /// the server is synchronous).
  std::vector<std::unique_ptr<IsolatedEntrySink>> isolated;
  /// Scheduler pipeline id when the server runs a worker pool; all of
  /// the plan's inputs share this pipeline so one worker at a time
  /// drives the plan.
  size_t sched_pipeline = SIZE_MAX;

  bool is_derived = false;
  std::string derived_name;
  /// Set (under the exclusive lock) by the UnregisterQuery call that
  /// claimed this query; a concurrent second unregister backs off.
  bool unregistering = false;

  struct Peeled {
    std::string source;
    RegionPtr region;
    std::string input_name;
    QueryId shared_id = 0;
  };
  std::vector<Peeled> peeled;
  /// Direct wirings (source name -> plan input) for unregistration.
  std::vector<std::pair<std::string, EventSink*>> direct;

  /// Catch-up state (RegisterQuery's hybrid stream/stored path).
  /// Pending wirings recorded by RegisterInternal(defer_wiring=true):
  /// the plan input entries exist but are not attached to any source
  /// yet; the catch-up path replays history into them first and then
  /// attaches them behind CatchUpGates.
  struct PendingWire {
    std::string source;      // catalog stream feeding this input
    std::string input_name;  // the plan's input (synthetic if peeled)
    EventSink* entry = nullptr;
    RegionPtr region;        // peeled spatial restriction (may be null)
    std::vector<TimeSet> times;  // pushed-down temporal IO-pruning hints
    bool is_peeled = false;
    size_t peeled_index = 0;
  };
  std::vector<PendingWire> pending_wires;
  /// Cut-over gates, one per input (catch-up queries only). Own the
  /// seam logic; destroyed with the query.
  std::vector<std::unique_ptr<CatchUpGate>> gates;
  /// True from registration until the gates are wired; blocks
  /// UnregisterQuery racing the replay (the replay thread holds raw
  /// entry pointers with no lock).
  bool catching_up = false;
};

DsmsServer::DsmsServer(DsmsOptions options) : options_(options) {
  event_log_ = std::make_unique<EventLog>(options_.event_log_capacity);
  event_log_->Append(EventSeverity::kInfo, "server", "start", "");
  inline_traces_ = std::make_unique<TraceRing>(options_.trace_ring_capacity);
  if (!options_.journal_dir.empty() || !options_.store_dir.empty()) {
    // One governor watches the whole storage plane: both subsystems
    // admit writes through it, and either one's ENOSPC/EIO degrades
    // them together (they share the filesystem).
    StorageGovernorOptions gopts = options_.storage_governor;
    if (gopts.probe_dir.empty()) {
      gopts.probe_dir = !options_.journal_dir.empty() ? options_.journal_dir
                                                      : options_.store_dir;
    }
    if (!gopts.file_factory) {
      gopts.file_factory = options_.journal.file_factory
                               ? options_.journal.file_factory
                               : options_.store.file_factory;
    }
    gopts.metrics = &metrics_registry_;
    gopts.event_log = event_log_.get();
    governor_ = std::make_unique<StorageGovernor>(std::move(gopts));
    if (options_.journal_budget.max_bytes > 0 ||
        options_.journal_budget.max_age_ms > 0) {
      governor_->SetBudget("journal", options_.journal_budget);
    }
    if (options_.store_budget.max_bytes > 0 ||
        options_.store_budget.max_age_ms > 0) {
      governor_->SetBudget("store", options_.store_budget);
    }
  }
  if (!options_.journal_dir.empty()) {
    JournalOptions jopts = options_.journal;
    jopts.dir = options_.journal_dir;
    jopts.metrics = &metrics_registry_;
    jopts.governor = governor_.get();
    Result<std::unique_ptr<IngestJournal>> journal =
        IngestJournal::Open(std::move(jopts));
    if (!journal.ok()) {
      // A constructor cannot fail; a server without durability beats
      // no server, but say so at kError volume.
      GEOSTREAMS_LOG(kError)
          << "ingest journal disabled: could not open "
          << options_.journal_dir << ": " << journal.status().ToString();
    } else {
      journal_ = std::move(*journal);
      const JournalRecovery& rec = journal_->recovery();
      GEOSTREAMS_LOG(kInfo)
          << "ingest journal at " << options_.journal_dir << " ("
          << FsyncPolicyName(journal_->options().fsync) << " fsync): "
          << rec.sources.size() << " sources, " << rec.records_replayed
          << " records recovered, " << rec.torn_tails
          << " torn tails truncated (" << rec.torn_bytes << " bytes), "
          << rec.corrupt_regions << " corrupt regions quarantined";
    }
  }
  if (!options_.store_dir.empty()) {
    TileStoreOptions sopts = options_.store;
    sopts.dir = options_.store_dir;
    sopts.metrics = &metrics_registry_;
    sopts.governor = governor_.get();
    sopts.event_log = event_log_.get();
    const bool retention_configured =
        sopts.retention_max_bytes > 0 || sopts.retention_max_frames > 0 ||
        sopts.retention_max_age_ms > 0 ||
        options_.store_budget.max_bytes > 0 ||
        options_.store_budget.max_age_ms > 0;
    if (sopts.gc_interval_ms == 0 && retention_configured) {
      sopts.gc_interval_ms = 1000;  // keep pruning off the ingest path
    }
    Result<std::unique_ptr<TileStore>> store = TileStore::Open(std::move(sopts));
    if (!store.ok()) {
      // Same contract as the journal: a server without history beats
      // no server, but say so at kError volume.
      GEOSTREAMS_LOG(kError)
          << "tile store disabled: could not open " << options_.store_dir
          << ": " << store.status().ToString();
    } else {
      store_ = std::move(*store);
      const TileStoreRecovery& rec = store_->recovery();
      GEOSTREAMS_LOG(kInfo)
          << "tile store at " << options_.store_dir << ": "
          << rec.frames_recovered << " frames (" << rec.tile_pages_recovered
          << " tile pages) recovered, " << rec.incomplete_frames
          << " uncommitted frames dropped, " << rec.torn_tails
          << " torn tails truncated (" << rec.torn_bytes << " bytes), "
          << rec.corrupt_regions << " corrupt regions skipped";
      m_catchup_frames_ = metrics_registry_.GetCounter(
          "geostreams_store_catchup_frames_total",
          "Stored frames replayed into late-subscriber query plans");
      m_seam_frames_ = metrics_registry_.GetCounter(
          "geostreams_store_seam_frames_total",
          "Frames delivered by cut-over seam replays (stored->live)");
      m_catchup_truncated_ = metrics_registry_.GetCounter(
          "geostreams_store_catchup_truncated_total",
          "Catch-up registrations whose SINCE bound reached below "
          "retained history");
      m_catchup_lag_ = metrics_registry_.GetGauge(
          "geostreams_catchup_lag_frames",
          "Stored frames still to replay before in-flight SINCE queries "
          "cut over to the live stream (summed over registrations)");
    }
  }
  if (options_.workers > 0) {
    SchedulerOptions sched;
    sched.policy = options_.worker_policy;
    sched.queue_capacity = options_.worker_queue_capacity;
    sched.workers = options_.workers;
    sched.supervisor = options_.worker_supervisor;
    sched.dead_letter_capacity = options_.dead_letter_capacity;
    sched.dead_letter_max_bytes = options_.dead_letter_max_bytes;
    sched.memory = &memory_;
    sched.metrics = &metrics_registry_;
    sched.trace_ring_capacity = options_.trace_ring_capacity;
    sched.event_log = event_log_.get();
    scheduler_ = std::make_unique<QueryScheduler>(sched);
    Status st = scheduler_->Start();
    if (!st.ok()) {
      GEOSTREAMS_LOG(kError) << "worker pool failed to start: "
                             << st.ToString();
      scheduler_.reset();
    } else {
      GEOSTREAMS_LOG(kInfo) << "query worker pool: "
                            << scheduler_->num_workers() << " threads, "
                            << SchedulingPolicyName(sched.policy);
    }
  }
  RegisterCollectors();
}

void DsmsServer::RegisterSourceObservables(SourceState* source) {
  const std::string& name = source->desc.name();
  source->freshness_gauge = metrics_registry_.GetGauge(
      "geostreams_source_freshness_us",
      "Age of the newest delivered frame per source (now minus its "
      "capture — or, unstamped, delivery — wall clock)",
      {{"source", name}});
  source->e2e_total = metrics_registry_.GetHistogram(
      "geostreams_e2e_latency_us",
      "Frame lifecycle stage latency (wall-clock microseconds between "
      "consecutive stage anchors; stage=total is capture to delivery)",
      {{"stage", "total"}, {"source", name}},
      MetricHistogram::LatencyBucketsUs());
}

void DsmsServer::RegisterCollectors() {
  MetricsRegistry& reg = metrics_registry_;
  // Scheduler counters live behind the scheduler mutex; mirror them
  // into the registry at scrape time rather than double-counting in
  // the enqueue/claim paths.
  Counter* enqueued = reg.GetCounter("geostreams_scheduler_enqueued_total",
                                     "Events accepted into pipeline queues");
  Counter* processed = reg.GetCounter(
      "geostreams_scheduler_processed_total",
      "Events delivered through operator chains by the worker pool");
  Counter* shed = reg.GetCounter(
      "geostreams_scheduler_shed_total",
      "Point batches shed because a pipeline queue was full");
  Counter* control_overflow =
      reg.GetCounter("geostreams_scheduler_control_overflow_total",
                     "Control events admitted above queue capacity");
  Counter* rejected =
      reg.GetCounter("geostreams_scheduler_rejected_total",
                     "Enqueues refused by quarantined pipelines");
  Counter* discarded =
      reg.GetCounter("geostreams_scheduler_discarded_total",
                     "Queued events thrown away when a pipeline quarantined");
  Counter* restarts =
      reg.GetCounter("geostreams_pipeline_restarts_total",
                     "Supervised transient redelivery attempts");
  Counter* dead_letters =
      reg.GetCounter("geostreams_pipeline_dead_letters_total",
                     "Poison events dropped by the supervisor");
  Gauge* queued = reg.GetGauge("geostreams_scheduler_queued",
                               "Events currently waiting in pipeline queues");
  Gauge* queries = reg.GetGauge("geostreams_queries",
                                "Registered queries (derived views included)");
  Gauge* degraded = reg.GetGauge("geostreams_queries_degraded",
                                 "Queries currently DEGRADED");
  Gauge* quarantined = reg.GetGauge("geostreams_queries_quarantined",
                                    "Queries currently QUARANTINED");
  Gauge* mem_bytes = reg.GetGauge("geostreams_memory_tracked_bytes",
                                  "Bytes currently tracked across operators");
  Gauge* mem_peak = reg.GetGauge("geostreams_memory_high_water_bytes",
                                 "Largest tracked-byte total ever observed");
  Counter* checksum_failures =
      reg.GetCounter("geostreams_ingest_checksum_failures_total",
                     "Corrupt batches rejected at the ingest boundary");
  reg.AddCollector([=, this] {
    if (scheduler_) {
      const ScheduledQueueStats total = scheduler_->AggregateStats();
      enqueued->Set(total.enqueued);
      processed->Set(total.processed);
      shed->Set(total.dropped);
      control_overflow->Set(total.control_overflow);
      rejected->Set(total.rejected);
      discarded->Set(total.discarded);
      restarts->Set(total.restarts);
      dead_letters->Set(total.dead_letters);
      queued->Set(total.queued);
    }
    uint64_t n_queries = 0, n_degraded = 0, n_quarantined = 0;
    {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      n_queries = queries_.size();
      const uint64_t now = TraceWallNowUs();
      for (const auto& [name, source] : sources_) {
        if (source->freshness_gauge == nullptr) continue;
        const uint64_t stamp =
            source->last_frame_fresh_wall_us.load(std::memory_order_relaxed);
        source->freshness_gauge->Set(
            stamp != 0 && now > stamp ? now - stamp : 0);
      }
      if (scheduler_) {
        for (const auto& [id, query] : queries_) {
          if (query->sched_pipeline == SIZE_MAX) continue;
          switch (scheduler_->Health(query->sched_pipeline)) {
            case PipelineHealth::kDegraded: ++n_degraded; break;
            case PipelineHealth::kQuarantined: ++n_quarantined; break;
            default: break;
          }
        }
      }
    }
    queries->Set(n_queries);
    degraded->Set(n_degraded);
    quarantined->Set(n_quarantined);
    mem_bytes->Set(memory_.TotalBytes());
    mem_peak->Set(memory_.HighWaterBytes());
    checksum_failures->Set(IngestChecksumFailures());
  });
}

DsmsServer::~DsmsServer() {
  if (scheduler_) {
    Status ignored = scheduler_->Stop();
    (void)ignored;
  }
}

Status DsmsServer::RegisterStream(const GeoStreamDescriptor& desc) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  GEOSTREAMS_RETURN_IF_ERROR(catalog_.Register(desc));
  auto source = std::make_unique<SourceState>();
  source->desc = desc;
  if (options_.shared_restriction) {
    source->shared = std::make_unique<SharedRestrictionOp>(MakeIndex(
        options_.index_kind, desc.reference_lattice().Extent()));
  }
  source->guard = std::make_unique<GuardedIngestSink>(this, source.get());
  RegisterSourceObservables(source.get());
  if (store_ != nullptr) {
    source->store_sink =
        std::make_unique<StoreIngestSink>(store_.get(), desc.name());
  }
  source->boundary_dead_letters = std::make_unique<DeadLetterQueue>(
      options_.dead_letter_capacity, options_.dead_letter_max_bytes);
  source->boundary_dead_letters->BindMemoryTracker(&memory_,
                                                   "dlq." + desc.name());
  if (journal_ != nullptr) {
    // Durable dead letters: reload what past incarnations quarantined
    // (including corrupt journal regions recovery found) and mirror
    // every future push to disk.
    Result<DeadLetterStore*> store = journal_->DeadLettersFor(desc.name());
    if (!store.ok()) {
      GEOSTREAMS_LOG(kWarning)
          << "dead-letter store unavailable for " << desc.name() << ": "
          << store.status().ToString();
    } else {
      source->boundary_dead_letters->Restore((*store)->recovered());
      DeadLetterStore* dls = *store;
      const std::string name = desc.name();
      source->boundary_dead_letters->SetPersistHook(
          [dls, name](const DeadLetter& letter) {
            Status st = dls->Append(name, letter);
            if (!st.ok()) {
              GEOSTREAMS_LOG(kWarning)
                  << "dead-letter persist failed for " << name << ": "
                  << st.ToString();
            }
          });
    }
  }
  sources_.emplace(desc.name(), std::move(source));
  GEOSTREAMS_LOG(kInfo) << "registered stream " << desc.ToString();
  return Status::OK();
}

ExprPtr DsmsServer::PeelLeafRestrictions(QueryId id, ExprPtr expr,
                                         QueryState* query) {
  if (!expr) return expr;
  if (expr->kind == ExprKind::kSpatialRestrict &&
      expr->child->kind == ExprKind::kStreamRef &&
      sources_.count(expr->child->stream_name) > 0) {
    QueryState::Peeled peeled;
    peeled.source = expr->child->stream_name;
    peeled.region = expr->region;
    peeled.input_name = StringPrintf("q%lld.in%zu", static_cast<long long>(id),
                                     query->peeled.size());
    // Synthetic leaf: carries the original stream's descriptor so the
    // planner can keep building without re-analysis.
    ExprPtr leaf = MakeStreamRef(peeled.input_name);
    leaf->out_desc = expr->child->out_desc;
    leaf->analyzed = true;
    query->peeled.push_back(std::move(peeled));
    return leaf;
  }
  expr->child = PeelLeafRestrictions(id, expr->child, query);
  expr->right = PeelLeafRestrictions(id, expr->right, query);
  return expr;
}

Result<QueryId> DsmsServer::RegisterQuery(const std::string& query_text,
                                          FrameCallback callback) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return RegisterInternal(query_text, std::move(callback), "");
}

Result<QueryId> DsmsServer::RegisterQuery(const std::string& query_text,
                                          FrameCallback callback,
                                          const CatchUpOptions& catch_up) {
  if (store_ == nullptr) {
    // No history to replay; degrade to plain stream registration.
    QueryId id = 0;
    GEOSTREAMS_ASSIGN_OR_RETURN(id,
                                RegisterQuery(query_text, std::move(callback)));
    if (catch_up.on_registered) catch_up.on_registered(id);
    return id;
  }

  // Phase 0 — build the plan under the exclusive lock, but leave its
  // inputs detached from every source: no live event can reach the
  // query yet, and `catching_up` blocks a racing UnregisterQuery from
  // destroying the entries the replay below holds raw pointers to.
  QueryId id = 0;
  std::vector<QueryState::PendingWire> wires;
  {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    GEOSTREAMS_ASSIGN_OR_RETURN(
        id, RegisterInternal(query_text, std::move(callback), "",
                             /*defer_wiring=*/true));
    wires = queries_.at(id)->pending_wires;
  }
  if (catch_up.on_registered) catch_up.on_registered(id);

  // Phases 1 and 2 run in a closure so an error below can tear the
  // half-registered query back down instead of leaving it stuck
  // behind the catching_up guard forever. `catchup_pending` counts
  // this registration's outstanding contribution to the shared
  // backlog gauge; it lives outside the closure so an error exit
  // can retire it instead of freezing the gauge nonzero.
  uint64_t catchup_pending = 0;
  Status replayed = [&]() -> Status {
  // Phase 1 — bulk history replay with no lock held: ingest keeps
  // flowing (the query is invisible to it) while recorded frames run
  // through the plan on this thread, merged ascending by frame id
  // across inputs so multi-stream plans see their operands in live
  // order. Flush periodically so a deep history cannot overflow the
  // scheduler queues (shed batches would be gaps).
  struct ReplayItem {
    int64_t frame_id;
    size_t wire;
  };
  auto wire_scan = [](const QueryState::PendingWire& wire) {
    StoreScan scan;
    scan.region = wire.region;
    scan.times = wire.times;
    return scan;
  };
  std::vector<int64_t> replayed_to(wires.size(),
                                   std::numeric_limits<int64_t>::min());
  std::vector<ReplayItem> items;
  for (size_t w = 0; w < wires.size(); ++w) {
    const int64_t hi = store_->Watermark(wires[w].source);
    // Retention may have pruned history the SINCE bound asks for. The
    // replay below clamps to the oldest retained frame automatically
    // (FrameIds only returns what exists); what must not happen is the
    // truncation passing silently.
    const StoreHorizon horizon = store_->Horizon(wires[w].source);
    if (horizon.frames_pruned > 0 && catch_up.since <= horizon.pruned_upto) {
      if (m_catchup_truncated_) m_catchup_truncated_->Increment();
      GEOSTREAMS_LOG(kWarning)
          << "catch-up on '" << wires[w].source << "' truncated: SINCE "
          << catch_up.since << " reaches below retained history (oldest "
          << "retained frame "
          << (horizon.oldest_frame_id == std::numeric_limits<int64_t>::max()
                  ? horizon.pruned_upto + 1
                  : horizon.oldest_frame_id)
          << ", " << horizon.frames_pruned << " frames pruned)";
    }
    for (int64_t fid : store_->FrameIds(wires[w].source, catch_up.since, hi)) {
      items.push_back({fid, w});
    }
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const ReplayItem& a, const ReplayItem& b) {
                     return a.frame_id < b.frame_id;
                   });
  // Catch-up lag gauge: stored frames still to replay before
  // in-flight SINCE queries go live, one unlabeled series summed over
  // registrations (a per-query-id label would grow the registry
  // without bound, one frozen series per finished query). Scraped
  // mid-replay it shows the backlog draining; back to this
  // registration's starting value at cut-over.
  catchup_pending = items.size();
  catchup_backlog_.fetch_add(catchup_pending, std::memory_order_relaxed);
  if (m_catchup_lag_) {
    m_catchup_lag_->Set(catchup_backlog_.load(std::memory_order_relaxed));
  }
  size_t since_flush = 0;
  for (const ReplayItem& item : items) {
    const QueryState::PendingWire& wire = wires[item.wire];
    Status st = store_->ScanFrame(wire.source, item.frame_id,
                                  wire_scan(wire), wire.entry);
    if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    replayed_to[item.wire] = item.frame_id;
    if (m_catchup_frames_) m_catchup_frames_->Increment();
    --catchup_pending;
    catchup_backlog_.fetch_sub(1, std::memory_order_relaxed);
    if (m_catchup_lag_) {
      m_catchup_lag_->Set(catchup_backlog_.load(std::memory_order_relaxed));
    }
    if (++since_flush >= 64) {
      since_flush = 0;
      GEOSTREAMS_RETURN_IF_ERROR(Flush());
    }
  }

  // Phase 2 — go live under the exclusive lock. Ingest is paused, so
  // each source's watermark W0 is frozen: replay the small delta that
  // committed during phase 1, then attach each input behind a
  // CatchUpGate with threshold W0. After the lock drops, the gate
  // discards live frames at or below W0 (they were just replayed) and
  // cuts over on the first frame above it, seam-replaying anything
  // that commits in between — exactly once, no gap, no duplicate.
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::Internal("catch-up query vanished during replay");
  }
  QueryState* query = it->second.get();
  for (size_t w = 0; w < wires.size(); ++w) {
    const QueryState::PendingWire& wire = wires[w];
    const int64_t w0 = store_->Watermark(wire.source);
    const int64_t lo =
        replayed_to[w] == std::numeric_limits<int64_t>::min()
            ? catch_up.since
            : replayed_to[w] + 1;
    if (lo <= w0) {
      for (int64_t fid : store_->FrameIds(wire.source, lo, w0)) {
        // Inline, no Flush: the delta is bounded by one phase-1 flush
        // window, and WaitIdle here would deadlock against workers
        // taking the shared lock to feed derived streams.
        Status st = store_->ScanFrame(wire.source, fid, wire_scan(wire),
                                      wire.entry);
        if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
        if (m_catchup_frames_) m_catchup_frames_->Increment();
      }
    }
    TileStore* store = store_.get();
    Counter* seam_counter = m_seam_frames_;
    const std::string source_name = wire.source;
    StoreScan seam_scan = wire_scan(wire);
    auto replay = [store, seam_counter, source_name, seam_scan](
                      int64_t after, int64_t before, EventSink* sink) {
      StoreScan scan = seam_scan;
      scan.min_frame_id = after == std::numeric_limits<int64_t>::min()
                              ? after
                              : after + 1;
      scan.max_frame_id = before == std::numeric_limits<int64_t>::max()
                              ? before
                              : before - 1;
      if (seam_counter) {
        seam_counter->Increment(
            store->FrameIds(source_name, scan.min_frame_id, scan.max_frame_id)
                .size());
      }
      return store->Scan(source_name, scan, sink);
    };
    query->gates.push_back(
        std::make_unique<CatchUpGate>(wire.entry, w0, std::move(replay)));
    CatchUpGate* gate = query->gates.back().get();

    auto source_it = sources_.find(wire.source);
    if (source_it == sources_.end()) {
      return Status::Internal("catch-up source vanished: " + wire.source);
    }
    if (wire.is_peeled) {
      QueryState::Peeled& peeled = query->peeled[wire.peeled_index];
      peeled.shared_id =
          id * 1000 + static_cast<QueryId>(wire.peeled_index);
      GEOSTREAMS_RETURN_IF_ERROR(source_it->second->shared->RegisterQuery(
          peeled.shared_id, peeled.region, gate));
    } else {
      source_it->second->direct_targets.push_back(gate);
      query->direct.emplace_back(wire.source, gate);
    }
  }
  query->pending_wires.clear();
  query->catching_up = false;
  GEOSTREAMS_LOG(kInfo) << "query " << id << " caught up: " << items.size()
                        << " stored frames replayed, live at the watermark";
  // Cut-over wall anchor: the moment the gates went live. Later live
  // frames' e2e latencies are comparable against external logs from
  // this instant on.
  event_log_->Append(
      EventSeverity::kInfo, "server", "catchup-cutover",
      StringPrintf("query=%lld replayed=%zu wall_us=%llu",
                   static_cast<long long>(id), items.size(),
                   static_cast<unsigned long long>(TraceWallNowUs())));
  return Status::OK();
  }();
  if (catchup_pending != 0) {
    // Error exit mid-replay: retire this registration's remaining
    // backlog so the gauge drains instead of freezing nonzero.
    catchup_backlog_.fetch_sub(catchup_pending, std::memory_order_relaxed);
    if (m_catchup_lag_) {
      m_catchup_lag_->Set(catchup_backlog_.load(std::memory_order_relaxed));
    }
    catchup_pending = 0;
  }
  if (!replayed.ok()) {
    // Clear the replay guard, then reuse the normal teardown (it
    // skips inputs that never got wired).
    {
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      auto it = queries_.find(id);
      if (it != queries_.end()) it->second->catching_up = false;
    }
    Status ignored = UnregisterQuery(id);
    (void)ignored;
    return replayed;
  }
  return id;
}

Result<QueryId> DsmsServer::RegisterDerivedStream(
    const std::string& name, const std::string& query_text) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (name.empty()) {
    return Status::InvalidArgument("derived stream needs a name");
  }
  if (sources_.count(name) > 0) {
    return Status::AlreadyExists("stream already registered: " + name);
  }
  return RegisterInternal(query_text, nullptr, name);
}

Result<QueryId> DsmsServer::RegisterInternal(
    const std::string& query_text, FrameCallback callback,
    const std::string& derived_name, bool defer_wiring) {
  GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr parsed, ParseQuery(query_text));
  GEOSTREAMS_RETURN_IF_ERROR(AnalyzeQuery(catalog_, parsed));
  GEOSTREAMS_ASSIGN_OR_RETURN(
      ExprPtr optimized, OptimizeQuery(catalog_, parsed, options_.optimizer));

  const QueryId id = next_query_id_++;
  auto query = std::make_unique<QueryState>();
  query->id = id;
  query->text = query_text;
  query->optimized = optimized;

  EventSink* plan_sink = nullptr;
  if (derived_name.empty()) {
    DeliveryOptions dopts;
    dopts.encode_png = options_.encode_png;
    query->delivery = std::make_unique<DeliveryOp>(
        StringPrintf("q%lld.delivery", static_cast<long long>(id)),
        std::move(callback), dopts);
    query->delivery->BindOutput(&query->null_sink);
    query->delivery->BindMemoryTracker(&memory_);
    plan_sink = query->delivery->input(0);
  } else {
    // Continuous view: the plan output feeds a brand-new source that
    // later queries subscribe to.
    query->is_derived = true;
    query->derived_name = derived_name;
    const GeoStreamDescriptor view_desc =
        optimized->out_desc.WithName(derived_name);
    GEOSTREAMS_RETURN_IF_ERROR(catalog_.Register(view_desc));
    auto source = std::make_unique<SourceState>();
    source->desc = view_desc;
    source->derived = true;
    if (options_.shared_restriction) {
      source->shared = std::make_unique<SharedRestrictionOp>(MakeIndex(
          options_.index_kind, view_desc.reference_lattice().Extent()));
    }
    source->guard = std::make_unique<GuardedIngestSink>(this, source.get());
    RegisterSourceObservables(source.get());
    if (store_ != nullptr) {
      // Derived streams (continuous views) are history too: late
      // subscribers to e.g. a shared NDVI view catch up the same way.
      source->store_sink =
          std::make_unique<StoreIngestSink>(store_.get(), derived_name);
    }
    source->boundary_dead_letters = std::make_unique<DeadLetterQueue>(
        options_.dead_letter_capacity, options_.dead_letter_max_bytes);
    source->boundary_dead_letters->BindMemoryTracker(&memory_,
                                                     "dlq." + derived_name);
    // With a worker pool the backing plan runs on a worker thread, so
    // the view's fan-out must take the state lock itself (via the
    // guard). Synchronously (workers = 0) the plan already runs under
    // the ingest call's shared lock — re-locking here would be a
    // recursive shared_mutex acquisition (UB), so feed the source raw.
    plan_sink = scheduler_ ? static_cast<EventSink*>(source->guard.get())
                           : static_cast<EventSink*>(source.get());
    sources_.emplace(derived_name, std::move(source));
  }

  ExprPtr plan_expr = CloneExpr(optimized);
  if (options_.shared_restriction) {
    plan_expr = PeelLeafRestrictions(id, plan_expr, query.get());
  }
  // Temporal IO-pruning hints for the catch-up replay, keyed by the
  // plan's leaf names (synthetic for peeled inputs).
  std::map<std::string, std::vector<TimeSet>> time_hints;
  if (defer_wiring) {
    std::map<std::string, int> leaf_count;
    CollectTimeHints(plan_expr, {}, &time_hints, &leaf_count);
    for (const auto& [leaf, count] : leaf_count) {
      if (count > 1) time_hints[leaf].clear();
    }
  }
  GEOSTREAMS_ASSIGN_OR_RETURN(query->plan,
                              BuildPlan(plan_expr, plan_sink, &memory_));

  // Every operator on the chain feeds the kind-labeled latency
  // histogram family whenever a traced event passes through it.
  for (const auto& op : query->plan->operators()) {
    op->BindLatencyHistogram(metrics_registry_.GetHistogram(
        "geostreams_operator_latency_us", kOperatorLatencyHelp,
        {{"op", OpKindLabel(op->name())}}));
  }
  if (query->delivery) {
    query->delivery->BindLatencyHistogram(metrics_registry_.GetHistogram(
        "geostreams_operator_latency_us", kOperatorLatencyHelp,
        {{"op", "delivery"}}));
  }

  // Wire plan inputs to sources (peeled leaves via the shared
  // restriction index, the rest directly). With a worker pool, every
  // plan input is wrapped in a scheduler entry for the query's single
  // pipeline: sources enqueue cheaply, and the plan itself runs on
  // whichever worker claims the pipeline.
  for (const std::string& input_name : query->plan->input_names()) {
    EventSink* entry = query->plan->input(input_name);
    if (scheduler_) {
      if (query->sched_pipeline == SIZE_MAX) {
        query->sched_pipeline = scheduler_->AddPipelineGroup(
            StringPrintf("q%lld", static_cast<long long>(id)));
        // The delivery operator sits downstream of the plan (it is
        // the plan's sink, not one of its ops), so its assembler must
        // be reset explicitly or a restart would resume into a frame
        // left open by the fault (null for derived streams).
        ExecutablePlan* plan = query->plan.get();
        DeliveryOp* delivery = query->delivery.get();
        scheduler_->SetPipelineReset(query->sched_pipeline,
                                     [plan, delivery] {
                                       plan->Reset();
                                       if (delivery) delivery->Reset();
                                     });
      }
      entry = scheduler_->AddPipelineInput(query->sched_pipeline, entry);
      query->isolated.push_back(
          std::make_unique<IsolatedEntrySink>(entry));
      entry = query->isolated.back().get();
    }
    auto peeled_it = std::find_if(
        query->peeled.begin(), query->peeled.end(),
        [&](const QueryState::Peeled& p) {
          return p.input_name == input_name;
        });
    if (peeled_it != query->peeled.end()) {
      if (defer_wiring) {
        QueryState::PendingWire wire;
        wire.source = peeled_it->source;
        wire.input_name = input_name;
        wire.entry = entry;
        wire.region = peeled_it->region;
        wire.times = time_hints[input_name];
        wire.is_peeled = true;
        wire.peeled_index =
            static_cast<size_t>(peeled_it - query->peeled.begin());
        query->pending_wires.push_back(std::move(wire));
        continue;
      }
      SourceState* source = sources_.at(peeled_it->source).get();
      peeled_it->shared_id = id * 1000 +
          static_cast<QueryId>(peeled_it - query->peeled.begin());
      GEOSTREAMS_RETURN_IF_ERROR(source->shared->RegisterQuery(
          peeled_it->shared_id, peeled_it->region, entry));
      continue;
    }
    auto source_it = sources_.find(input_name);
    if (source_it == sources_.end()) {
      return Status::NotFound("query reads unknown stream: " + input_name);
    }
    if (defer_wiring) {
      QueryState::PendingWire wire;
      wire.source = input_name;
      wire.input_name = input_name;
      wire.entry = entry;
      wire.times = time_hints[input_name];
      query->pending_wires.push_back(std::move(wire));
      continue;
    }
    source_it->second->direct_targets.push_back(entry);
    query->direct.emplace_back(input_name, entry);
  }
  query->catching_up = defer_wiring;

  GEOSTREAMS_LOG(kInfo) << "registered "
                        << (query->is_derived ? "derived stream " : "query ")
                        << id << ": " << query_text;
  queries_.emplace(id, std::move(query));
  return id;
}

Status DsmsServer::UnregisterQuery(QueryId id) {
  size_t pipeline = SIZE_MAX;
  {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      return Status::NotFound(StringPrintf(
          "query %lld not registered", static_cast<long long>(id)));
    }
    QueryState& query = *it->second;
    if (query.is_derived) {
      return Status::FailedPrecondition(
          "derived stream '" + query.derived_name +
          "' cannot be unregistered (other queries may depend on it)");
    }
    if (query.unregistering) {
      return Status::FailedPrecondition(StringPrintf(
          "query %lld is already being unregistered",
          static_cast<long long>(id)));
    }
    if (query.catching_up) {
      // The catch-up replay holds raw pointers to this query's entry
      // sinks without any lock; tearing them down now would be a
      // use-after-free. Retryable — the replay window is short.
      return Status::FailedPrecondition(StringPrintf(
          "query %lld is still catching up from the store; retry",
          static_cast<long long>(id)));
    }
    query.unregistering = true;
    for (const auto& peeled : query.peeled) {
      // shared_id 0 = never wired (a catch-up registration that
      // failed before phase 2); nothing to detach.
      if (peeled.shared_id == 0) continue;
      auto source_it = sources_.find(peeled.source);
      if (source_it != sources_.end() && source_it->second->shared) {
        Status st = source_it->second->shared->UnregisterQuery(
            peeled.shared_id);
        if (!st.ok()) return st;
      }
    }
    for (const auto& [source_name, entry] : query.direct) {
      auto source_it = sources_.find(source_name);
      if (source_it == sources_.end()) continue;
      auto& targets = source_it->second->direct_targets;
      targets.erase(std::remove(targets.begin(), targets.end(), entry),
                    targets.end());
    }
    pipeline = query.sched_pipeline;
  }
  if (scheduler_ && pipeline != SIZE_MAX) {
    // The query is detached from every source; remove its queue and
    // entry sinks before the plan they target is destroyed. Still-
    // queued events are discarded — the client is gone. This waits
    // for any in-flight event, so it must run with the state lock
    // RELEASED: the worker mid-event may be taking the shared lock to
    // feed a derived stream (see state_mu_'s comment). The query is
    // already invisible to new producers (`unregistering` + detached
    // sources), so nothing re-wires it while we wait.
    GEOSTREAMS_RETURN_IF_ERROR(scheduler_->RemovePipeline(pipeline));
  }
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  queries_.erase(id);
  return Status::OK();
}

Status DsmsServer::RestartQuery(QueryId id) {
  size_t pipeline = SIZE_MAX;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      return Status::NotFound(StringPrintf(
          "query %lld not registered", static_cast<long long>(id)));
    }
    pipeline = it->second->sched_pipeline;
  }
  if (!scheduler_ || pipeline == SIZE_MAX) {
    // Synchronous server: no supervisor, nothing quarantines.
    return Status::OK();
  }
  // RestartPipeline waits for the pipeline's in-flight event; run it
  // with the state lock released (same reasoning as UnregisterQuery).
  return scheduler_->RestartPipeline(pipeline);
}

Result<std::vector<DeadLetter>> DsmsServer::DeadLetters(QueryId id) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  if (!scheduler_ || it->second->sched_pipeline == SIZE_MAX) {
    return std::vector<DeadLetter>{};
  }
  return scheduler_->DeadLetters(it->second->sched_pipeline);
}

Result<std::vector<DeadLetter>> DsmsServer::SourceDeadLetters(
    const std::string& stream) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = sources_.find(stream);
  if (it == sources_.end()) {
    return Status::NotFound("stream not registered: " + stream);
  }
  std::lock_guard<std::mutex> boundary(it->second->boundary_mu);
  return it->second->boundary_dead_letters->Snapshot();
}

Status DsmsServer::QuarantineSource(const std::string& stream,
                                    const Status& error) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = sources_.find(stream);
  if (it == sources_.end()) {
    return Status::NotFound("stream not registered: " + stream);
  }
  SourceState* source = it->second.get();
  if (source->derived) {
    return Status::InvalidArgument(
        "derived stream '" + stream +
        "' is fed by a query pipeline; restart the query instead");
  }
  std::lock_guard<std::mutex> boundary(source->boundary_mu);
  if (source->quarantined) return Status::OK();  // keep the first verdict
  source->quarantined = true;
  source->quarantine_error =
      error.ok() ? Status::Unavailable("source quarantined") : error;
  // Record the verdict where operators already look for boundary
  // trouble: the source's dead-letter queue (there is no poisoned
  // event for silence, so the entry carries a stream-end marker).
  source->boundary_dead_letters->Push(StreamEvent::StreamEnd(),
                                      source->quarantine_error);
  GEOSTREAMS_LOG(kWarning) << "source '" << stream << "' quarantined: "
                           << source->quarantine_error.ToString();
  return Status::OK();
}

Status DsmsServer::RestartSource(const std::string& stream) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = sources_.find(stream);
  if (it == sources_.end()) {
    return Status::NotFound("stream not registered: " + stream);
  }
  std::lock_guard<std::mutex> boundary(it->second->boundary_mu);
  it->second->quarantined = false;
  it->second->quarantine_error = Status::OK();
  return Status::OK();
}

Status DsmsServer::SourceError(const std::string& stream) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = sources_.find(stream);
  if (it == sources_.end()) {
    return Status::NotFound("stream not registered: " + stream);
  }
  std::lock_guard<std::mutex> boundary(it->second->boundary_mu);
  return it->second->quarantine_error;
}

uint64_t DsmsServer::IngestChecksumFailures() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  uint64_t total = 0;
  for (const auto& [name, source] : sources_) {
    std::lock_guard<std::mutex> boundary(source->boundary_mu);
    total += source->checksum_failures;
  }
  return total;
}

size_t DsmsServer::num_queries() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return queries_.size();
}

std::vector<QueryId> DsmsServer::QueryIds() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  std::vector<QueryId> ids;
  ids.reserve(queries_.size());
  for (const auto& [id, query] : queries_) ids.push_back(id);
  return ids;
}

Result<PipelineHealth> DsmsServer::QueryHealth(QueryId id) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  if (!scheduler_ || it->second->sched_pipeline == SIZE_MAX) {
    return PipelineHealth::kRunning;
  }
  return scheduler_->Health(it->second->sched_pipeline);
}

Status DsmsServer::QueryError(QueryId id) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  if (!scheduler_ || it->second->sched_pipeline == SIZE_MAX) {
    return Status::OK();
  }
  return scheduler_->PipelineError(it->second->sched_pipeline);
}

Status DsmsServer::Flush() {
  if (!scheduler_) return Status::OK();
  return scheduler_->WaitIdle();
}

EventSink* DsmsServer::ingest(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = sources_.find(name);
  return it == sources_.end()
             ? nullptr
             : static_cast<EventSink*>(it->second->guard.get());
}

Status DsmsServer::EndAllStreams() {
  // Snapshot the guards first: each Consume takes the state lock in
  // shared mode itself, and a recursive shared acquisition while a
  // writer waits would deadlock. Sources are never removed, so the
  // snapshot cannot dangle.
  std::vector<GuardedIngestSink*> guards;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    for (auto& [name, source] : sources_) {
      // Derived streams receive their StreamEnd through the backing
      // plan when the base streams end.
      if (source->derived) continue;
      guards.push_back(source->guard.get());
    }
  }
  for (GuardedIngestSink* guard : guards) {
    GEOSTREAMS_RETURN_IF_ERROR(guard->Consume(StreamEvent::StreamEnd()));
  }
  return Flush();
}

Result<std::string> DsmsServer::Explain(QueryId id) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  return ExplainQuery(it->second->optimized);
}

Result<std::string> DsmsServer::ExplainAnalyze(QueryId id) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  return ExplainPlanMetrics(*it->second->plan);
}

Result<TraceRing::Snapshot> DsmsServer::QueryTraces(QueryId id) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  if (!scheduler_ || it->second->sched_pipeline == SIZE_MAX) {
    // Synchronous server: every query runs on the shared ingest chain.
    return inline_traces_ ? inline_traces_->TakeSnapshot()
                          : TraceRing::Snapshot{};
  }
  // Safe lock order: workers never hold the scheduler mutex while
  // taking state_mu_ (they release it around Consume), so querying the
  // scheduler under the shared state lock cannot deadlock.
  return scheduler_->Traces(it->second->sched_pipeline);
}

std::string DsmsServer::SummaryLine() const {
  ScheduledQueueStats total;
  if (scheduler_) total = scheduler_->AggregateStats();
  size_t n_queries = 0;
  uint64_t worst_freshness_us = 0;  // max frame age across live sources
  uint64_t worst_e2e_p95_us = 0;    // max per-source total-latency p95
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    n_queries = queries_.size();
    const uint64_t now = TraceWallNowUs();
    for (const auto& [name, source] : sources_) {
      const uint64_t stamp =
          source->last_frame_fresh_wall_us.load(std::memory_order_relaxed);
      if (stamp != 0 && now > stamp) {
        worst_freshness_us = std::max(worst_freshness_us, now - stamp);
      }
      if (source->e2e_total != nullptr && source->e2e_total->Count() > 0) {
        worst_e2e_p95_us =
            std::max(worst_e2e_p95_us,
                     static_cast<uint64_t>(source->e2e_total->Percentile(95)));
      }
    }
  }
  std::string line = StringPrintf(
      "queries=%zu enqueued=%llu processed=%llu queued=%llu shed=%llu "
      "restarts=%llu dead_letters=%llu rejected=%llu mem=%lluB "
      "mem_peak=%lluB checksum_fail=%llu traces=%llu",
      n_queries, static_cast<unsigned long long>(total.enqueued),
      static_cast<unsigned long long>(total.processed),
      static_cast<unsigned long long>(total.queued),
      static_cast<unsigned long long>(total.dropped),
      static_cast<unsigned long long>(total.restarts),
      static_cast<unsigned long long>(total.dead_letters),
      static_cast<unsigned long long>(total.rejected),
      static_cast<unsigned long long>(memory_.TotalBytes()),
      static_cast<unsigned long long>(memory_.HighWaterBytes()),
      static_cast<unsigned long long>(IngestChecksumFailures()),
      static_cast<unsigned long long>(
          total.traces + (inline_traces_ ? inline_traces_->total() : 0)));
  line += StringPrintf(" freshness_us=%llu e2e_p95_us=%llu",
                       static_cast<unsigned long long>(worst_freshness_us),
                       static_cast<unsigned long long>(worst_e2e_p95_us));
  if (governor_ != nullptr) {
    line += StringPrintf(" storage=%s",
                         governor_->degraded() ? "DEGRADED" : "OK");
  }
  return line;
}

Result<uint64_t> DsmsServer::FramesDelivered(QueryId id) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld not registered", static_cast<long long>(id)));
  }
  if (!it->second->delivery) {
    return Status::FailedPrecondition(
        "derived streams have no delivery operator");
  }
  return it->second->delivery->frames_delivered();
}

}  // namespace geostreams
