#include "server/frame_archive.h"

#include <cstdio>

#include "common/string_util.h"
#include "geo/crs_registry.h"
#include "raster/pnm_io.h"

namespace geostreams {

ArchiveWriter::ArchiveWriter(std::string directory, double lo, double hi)
    : directory_(std::move(directory)), lo_(lo), hi_(hi) {}

Status ArchiveWriter::Consume(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      return assembler_.Begin(event.frame, /*band_count=*/1);
    case EventKind::kPointBatch:
      if (!assembler_.active()) {
        return Status::FailedPrecondition("archive requires framed input");
      }
      return assembler_.Add(*event.batch);
    case EventKind::kFrameEnd: {
      if (!assembler_.active()) return Status::OK();
      GEOSTREAMS_ASSIGN_OR_RETURN(AssembledFrame frame, assembler_.Finish());
      double lo = lo_, hi = hi_;
      if (lo == hi) {
        frame.raster.MinMax(0, &lo, &hi);
        if (hi <= lo) hi = lo + 1.0;
      }
      const std::string file = StringPrintf(
          "frame_%08lld.pgm", static_cast<long long>(event.frame.frame_id));
      GEOSTREAMS_RETURN_IF_ERROR(
          WriteRasterPnm(frame.raster, directory_ + "/" + file, lo, hi));
      const GridLattice& lat = frame.raster.lattice();
      manifest_lines_.push_back(StringPrintf(
          "%lld %s %s %.17g %.17g %.17g %.17g %lld %lld %.17g %.17g",
          static_cast<long long>(event.frame.frame_id), file.c_str(),
          lat.crs()->name().c_str(), lat.origin_x(), lat.origin_y(),
          lat.dx(), lat.dy(), static_cast<long long>(lat.width()),
          static_cast<long long>(lat.height()), lo, hi));
      ++frames_written_;
      return Status::OK();
    }
    case EventKind::kStreamEnd:
      return Finish();
  }
  return Status::OK();
}

Status ArchiveWriter::Finish() {
  if (finished_) return Status::OK();
  const std::string path = directory_ + "/manifest.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return Status::IoError("cannot open " + path);
  for (const std::string& line : manifest_lines_) {
    std::fprintf(f, "%s\n", line.c_str());
  }
  std::fclose(f);
  finished_ = true;
  return Status::OK();
}

ReplayGenerator::ReplayGenerator(std::string directory)
    : directory_(std::move(directory)) {}

Status ReplayGenerator::Open() {
  const std::string path = directory_ + "/manifest.txt";
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return Status::IoError("cannot open " + path);
  char line[1024];
  while (std::fgets(line, sizeof(line), f)) {
    char file[512] = {0};
    char crs[128] = {0};
    long long id = 0, w = 0, h = 0;
    double ox = 0, oy = 0, dx = 0, dy = 0, lo = 0, hi = 0;
    const int n =
        std::sscanf(line, "%lld %511s %127s %lg %lg %lg %lg %lld %lld %lg %lg",
                    &id, file, crs, &ox, &oy, &dx, &dy, &w, &h, &lo, &hi);
    if (n != 11) {
      std::fclose(f);
      return Status::ParseError("bad manifest line: " + std::string(line));
    }
    auto resolved = ResolveCrs(crs);
    if (!resolved.ok()) {
      std::fclose(f);
      return resolved.status();
    }
    ArchivedFrame frame;
    frame.frame_id = id;
    frame.file = file;
    frame.lattice = GridLattice(*resolved, ox, oy, dx, dy, w, h);
    frame.lo = lo;
    frame.hi = hi;
    Status st = frame.lattice.Validate();
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
    frames_.push_back(std::move(frame));
  }
  std::fclose(f);
  if (frames_.empty()) {
    return Status::NotFound("archive is empty: " + directory_);
  }
  open_ = true;
  return Status::OK();
}

Result<GeoStreamDescriptor> ReplayGenerator::Descriptor(
    const std::string& name) const {
  if (!open_) return Status::FailedPrecondition("archive not opened");
  return GeoStreamDescriptor(
      name, ValueSet("archived", SampleType::kFloat64, 1, -1e308, 1e308),
      frames_.front().lattice, PointOrganization::kRowByRow,
      TimestampPolicy::kScanSectorId);
}

Status ReplayGenerator::Replay(EventSink* sink, bool end_stream) const {
  if (!open_) return Status::FailedPrecondition("archive not opened");
  for (const ArchivedFrame& af : frames_) {
    GEOSTREAMS_ASSIGN_OR_RETURN(
        Raster raster, ReadRasterPnm(directory_ + "/" + af.file));
    if (raster.width() != af.lattice.width() ||
        raster.height() != af.lattice.height()) {
      return Status::Internal("archived raster does not match manifest: " +
                              af.file);
    }
    FrameInfo info;
    info.frame_id = af.frame_id;
    info.lattice = af.lattice;
    info.expected_points = af.lattice.num_cells();
    GEOSTREAMS_RETURN_IF_ERROR(sink->Consume(StreamEvent::FrameBegin(info)));
    const double scale = (af.hi - af.lo) / 255.0;
    for (int64_t row = 0; row < raster.height(); ++row) {
      auto batch = std::make_shared<PointBatch>();
      batch->frame_id = af.frame_id;
      batch->band_count = 1;
      batch->Reserve(static_cast<size_t>(raster.width()));
      for (int64_t col = 0; col < raster.width(); ++col) {
        batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row),
                       af.frame_id, af.lo + raster.At(col, row) * scale);
      }
      GEOSTREAMS_RETURN_IF_ERROR(
          sink->Consume(StreamEvent::Batch(std::move(batch))));
    }
    GEOSTREAMS_RETURN_IF_ERROR(sink->Consume(StreamEvent::FrameEnd(info)));
  }
  if (end_stream) {
    return sink->Consume(StreamEvent::StreamEnd());
  }
  return Status::OK();
}

}  // namespace geostreams
