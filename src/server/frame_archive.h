// Frame archive and replay.
//
// The paper's introduction criticizes file-based batch replication of
// satellite products — but archival itself is legitimate: receiving
// stations keep the raw sectors, and analyses are re-run over history.
// The archive closes that loop inside the stream model: an
// ArchiveWriter is a delivery target that persists every frame of a
// (possibly derived) GeoStream to disk with a small text manifest, and
// a ReplayGenerator turns an archive back into the exact event stream
// it came from, so any continuous query can run over recorded data
// unchanged.
//
// Layout of an archive directory:
//   manifest.txt   one line per frame:
//                  <frame_id> <file> <crs> <ox> <oy> <dx> <dy> <w> <h>
//                  <lo> <hi>
//   *.pgm          frame rasters, [lo, hi] linearly mapped to [0, 255]
//
// PGM quantizes to 8 bits — archives are products, not raw counts;
// the round-trip error is bounded by (hi - lo) / 255 / 2 per sample.

#ifndef GEOSTREAMS_SERVER_FRAME_ARCHIVE_H_
#define GEOSTREAMS_SERVER_FRAME_ARCHIVE_H_

#include <string>
#include <vector>

#include "core/geostream.h"
#include "raster/frame_assembler.h"
#include "stream/operator.h"

namespace geostreams {

/// Persists every frame of the consumed stream into a directory.
/// Single-band streams only (one PGM per frame).
class ArchiveWriter : public EventSink {
 public:
  /// `lo`/`hi`: quantization range; equal values mean per-frame
  /// min/max (recorded per frame in the manifest either way).
  ArchiveWriter(std::string directory, double lo = 0.0, double hi = 0.0);

  Status Consume(const StreamEvent& event) override;

  /// Flushes the manifest; call after StreamEnd (also invoked by it).
  Status Finish();

  int64_t frames_written() const { return frames_written_; }

 private:
  std::string directory_;
  double lo_, hi_;
  FrameAssembler assembler_;
  std::vector<std::string> manifest_lines_;
  int64_t frames_written_ = 0;
  bool finished_ = false;
};

/// One archived frame's metadata.
struct ArchivedFrame {
  int64_t frame_id = 0;
  std::string file;
  GridLattice lattice;
  double lo = 0.0;
  double hi = 0.0;
};

/// Replays an archive as a GeoStream (row-by-row organization,
/// scan-sector timestamps = archived frame ids).
class ReplayGenerator {
 public:
  explicit ReplayGenerator(std::string directory);

  /// Reads and parses the manifest.
  Status Open();

  /// Frames available for replay.
  const std::vector<ArchivedFrame>& frames() const { return frames_; }

  /// Descriptor of the replayed stream (from the first frame).
  Result<GeoStreamDescriptor> Descriptor(const std::string& name) const;

  /// Emits all archived frames (in manifest order) into `sink`,
  /// followed by StreamEnd when `end_stream` is set.
  Status Replay(EventSink* sink, bool end_stream = true) const;

 private:
  std::string directory_;
  std::vector<ArchivedFrame> frames_;
  bool open_ = false;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_SERVER_FRAME_ARCHIVE_H_
