// The DSMS server of Fig. 3: Stream Generator -> Parser ->
// Optimization -> Execution -> Delivery, with multi-user continuous
// queries over the registered GeoStreams.
//
// Clients register textual queries; the server parses, analyzes and
// optimizes them, lowers them to physical plans ending in a PNG-
// capable delivery operator, and routes ingested stream events to
// every interested plan. When shared-restriction mode is on (the
// default), spatial restrictions that the optimizer pushed down to a
// stream leaf are peeled off and registered with a per-stream dynamic
// cascade tree, which then acts as the single spatial restriction
// operator for all queries (Sec. 4).

#ifndef GEOSTREAMS_SERVER_DSMS_SERVER_H_
#define GEOSTREAMS_SERVER_DSMS_SERVER_H_

#include <atomic>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "mqo/shared_restriction.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "ops/delivery_op.h"
#include "query/analyzer.h"
#include "query/optimizer.h"
#include "query/planner.h"
#include "storage/governor.h"
#include "storage/journal.h"
#include "store/catch_up_gate.h"
#include "store/tile_store.h"
#include "stream/memory_tracker.h"
#include "stream/scheduler.h"

namespace geostreams {

struct DsmsOptions {
  /// Peel leaf spatial restrictions into a shared per-stream index.
  bool shared_restriction = true;
  /// Index structure for the shared restriction.
  enum class IndexKind { kCascadeTree, kGrid, kFilterBank };
  IndexKind index_kind = IndexKind::kCascadeTree;
  /// Optimizer configuration applied to every registered query.
  OptimizerOptions optimizer;
  /// Deliver PNG bytes with every frame (costs CPU).
  bool encode_png = false;
  /// Query-execution worker pool (the server's `--workers` knob).
  /// 0 = synchronous: plans run inline on the ingest thread, one core
  /// total. N > 0 = a QueryScheduler pool of N threads; every query
  /// becomes one scheduler pipeline, so distinct queries run in
  /// parallel while each query's events stay in order. Frame
  /// callbacks then fire on worker threads — possibly concurrently
  /// across queries — and must be thread-safe.
  size_t workers = 0;
  /// Per-query bounded queue when workers > 0; point batches beyond
  /// it are shed (frame/stream control events are never shed).
  size_t worker_queue_capacity = 1 << 14;
  /// Dispatch policy of the worker pool.
  SchedulingPolicy worker_policy = SchedulingPolicy::kRoundRobin;
  /// Per-query failure handling when workers > 0: restart backoff,
  /// poison dead-lettering, quarantine thresholds. A failing query is
  /// its own failure domain — ingest and the other queries continue.
  SupervisorOptions worker_supervisor;
  /// Verify FNV-1a PointBatch checksums at the ingest boundary:
  /// a batch carrying a non-zero checksum that does not match its
  /// content is dead-lettered into the source's queue (inspectable
  /// via SourceDeadLetters) instead of entering any query chain.
  /// Opt-in — instruments that do not checksum their downlink pay
  /// nothing (checksum 0 is never verified).
  bool verify_ingest_checksums = false;
  /// Dead-letter retention per pipeline / per source: most recent
  /// poisoned events kept for inspection, capped by count and bytes
  /// (bytes reported to the server's MemoryTracker as "dlq.<name>").
  size_t dead_letter_capacity = 16;
  size_t dead_letter_max_bytes = 1 << 20;
  /// Pipeline tracing: every Nth point batch per source gets a
  /// TraceContext and records queue-wait plus per-operator timings
  /// into the metrics registry and the per-query trace ring (`TRACE
  /// <id>`). 0 (default) disables sampling entirely — the hot path
  /// then pays one branch at ingest and one thread-local load per
  /// operator (see bench/bench_tracing.cc).
  size_t trace_sample_every = 0;
  /// Finished traces retained per query pipeline (and in the shared
  /// inline ring when workers == 0).
  size_t trace_ring_capacity = 32;
  /// Durable ingest journal directory. Empty = no durability (the PR 4
  /// behavior: acks mean "delivered while the server lives"). Set, the
  /// server opens an IngestJournal there at construction — recovering
  /// committed records, truncating torn tails, quarantining mid-file
  /// corruption into the persisted per-source dead-letter stores — and
  /// every ingest ack is gated on the journal append (see
  /// IngestSessionOptions::journal).
  std::string journal_dir;
  /// Journal tuning (fsync policy, segment rotation, retention). The
  /// `dir` and `metrics` fields are overwritten from `journal_dir` and
  /// the server's own registry.
  JournalOptions journal;
  /// Tiled historical store directory. Empty = no history: late
  /// subscribers see only frames arriving after they register (the
  /// pure-stream behavior). Set, every assembled source frame is
  /// persisted as a tiled + pyramided mosaic, and RegisterQuery's
  /// catch-up overload (the control plane's `QUERY ... SINCE <t>`)
  /// replays recorded history before cutting over to the live stream
  /// exactly once at a frame-id watermark.
  std::string store_dir;
  /// Store tuning (tile size, overview levels, segment rotation,
  /// retention budgets). The `dir` and `metrics` fields are
  /// overwritten from `store_dir` and the server's own registry.
  TileStoreOptions store;
  /// Disk-pressure governor tuning (free-space floor, probe cadence,
  /// subsystem budgets). The governor itself is constructed whenever
  /// journal_dir or store_dir is set; `probe_dir`, `file_factory`, and
  /// `metrics` are filled from the journal/store configuration and the
  /// server's own registry when left empty.
  StorageGovernorOptions storage_governor;
  /// Byte/age budgets handed to the governor for its "journal" and
  /// "store" subsystems (0 = unlimited). Retention in each subsystem
  /// enforces them; Admit() keeps refusing only on real disk pressure.
  SubsystemBudget journal_budget;
  SubsystemBudget store_budget;
  /// Flight-recorder ring capacity: the most recent structured
  /// operational events (degradations, quarantines, restarts, NACK
  /// bursts, retention prunes, slow-consumer disconnects) kept for
  /// the EVENTS control verb and GET /eventz.
  size_t event_log_capacity = 256;
};

/// Catch-up parameters for RegisterQuery's hybrid stream/stored path.
struct CatchUpOptions {
  /// Replay committed frames with id >= since before going live.
  /// INT64_MIN = the full recorded history.
  int64_t since = std::numeric_limits<int64_t>::min();
  /// Invoked with the query id once the query is registered but
  /// before any history replays — network sessions use this to bind
  /// the id their delivery callback stamps on catch-up frames.
  std::function<void(QueryId)> on_registered;
};

class DsmsServer {
 public:
  explicit DsmsServer(DsmsOptions options = {});
  ~DsmsServer();

  /// Registers an ingestible source stream (one spectral band).
  Status RegisterStream(const GeoStreamDescriptor& desc);

  /// Registers a continuous query. Every completed output frame is
  /// handed to `callback`. Returns the query id.
  Result<QueryId> RegisterQuery(const std::string& query_text,
                                FrameCallback callback);

  /// Registers a continuous query with historical catch-up: replays
  /// every committed store frame with id >= catch_up.since through
  /// the query's plan, then cuts over to the live stream exactly once
  /// at a frame-id watermark — no gap, no duplicate (see
  /// CatchUpGate). Requires DsmsOptions::store_dir; without a store
  /// this degrades to plain registration (there is no history to
  /// replay). The callback starts firing during this call (on the
  /// calling thread for the history replay, then from the normal
  /// delivery path) — it must be ready before registration returns.
  Result<QueryId> RegisterQuery(const std::string& query_text,
                                FrameCallback callback,
                                const CatchUpOptions& catch_up);

  /// Registers a *derived stream* (a continuous view): the query's
  /// output becomes a new catalog stream named `name` that later
  /// queries can reference like any instrument band — the algebra's
  /// closure property lifted to the system level. Common products
  /// (e.g. an NDVI stream) are thus computed once and shared.
  /// Derived streams cannot be unregistered (queries may depend on
  /// them); they live as long as the server.
  Result<QueryId> RegisterDerivedStream(const std::string& name,
                                        const std::string& query_text);

  Status UnregisterQuery(QueryId id);

  /// Entry sink for source stream `name` (the stream generator pushes
  /// events here). Null for unknown streams. The sink is safe to
  /// drive while other threads (e.g. network sessions) register and
  /// unregister queries: every event holds the server's state lock in
  /// shared mode, and opt-in checksum verification rejects corrupt
  /// batches at this boundary (see verify_ingest_checksums).
  EventSink* ingest(const std::string& name);

  /// Broadcasts StreamEnd to every query, then (when a worker pool is
  /// configured) waits until every queue has drained.
  Status EndAllStreams();

  /// Blocks until all queued work has been processed. No-op without a
  /// worker pool. Call before reading delivery counters or
  /// ExplainAnalyze when workers > 0.
  Status Flush();

  /// Diagnostics.
  size_t num_queries() const;
  /// Worker threads executing query plans (0 = synchronous).
  size_t num_workers() const {
    return scheduler_ ? scheduler_->num_workers() : 0;
  }
  /// Per-query scheduler queue statistics (empty when workers = 0).
  std::vector<ScheduledQueueStats> SchedulerStats() const {
    return scheduler_ ? scheduler_->Stats()
                      : std::vector<ScheduledQueueStats>{};
  }
  const StreamCatalog& catalog() const { return catalog_; }
  const MemoryTracker& memory() const { return memory_; }
  /// The server-wide metrics registry. Components sharing the server
  /// (net sessions, benches) register their own series here; valid for
  /// the server's lifetime.
  MetricsRegistry* metrics_registry() { return &metrics_registry_; }
  /// Text exposition of the registry (runs the mirror collectors
  /// first, so scheduler/ingest/memory figures are fresh). Prometheus
  /// 0.0.4 by default; `openmetrics` renders OpenMetrics instead —
  /// bucket exemplars plus the `# EOF` terminator — for scrapers
  /// that negotiated it.
  std::string RenderMetrics(bool openmetrics = false) {
    return openmetrics ? metrics_registry_.RenderOpenMetrics()
                       : metrics_registry_.RenderPrometheus();
  }
  /// One-line operational summary (regional_server --metrics-interval).
  std::string SummaryLine() const;

  /// The server-wide flight recorder. Subsystems (governor, scheduler,
  /// ingest sessions, tile store, net plane) append structured events
  /// here; the EVENTS verb and GET /eventz dump it. Valid for the
  /// server's lifetime.
  EventLog* event_log() { return event_log_.get(); }
  /// Snapshot of the flight-recorder ring (oldest kept first).
  EventLog::Snapshot Events() const { return event_log_->TakeSnapshot(); }

  /// The durable ingest journal; null when DsmsOptions::journal_dir is
  /// empty or the journal failed to open (logged — the server then
  /// runs without durability rather than not at all).
  IngestJournal* journal() const { return journal_.get(); }

  /// The tiled historical store; null when DsmsOptions::store_dir is
  /// empty or the store failed to open (logged — the server then runs
  /// stream-only rather than not at all).
  TileStore* store() const { return store_.get(); }

  /// The disk-pressure governor shared by the journal and the store;
  /// null when neither storage subsystem is configured. HEALTH and
  /// ISTATS surface its degraded flag.
  StorageGovernor* governor() const { return governor_.get(); }

  /// Retained trace records for a query (`TRACE <id>`): with a worker
  /// pool, the query pipeline's own ring; on a synchronous server all
  /// queries share one delivery chain, so every query id answers with
  /// the shared inline ring. NotFound for unknown ids.
  Result<TraceRing::Snapshot> QueryTraces(QueryId id) const;
  /// EXPLAIN text of a registered query's optimized plan.
  Result<std::string> Explain(QueryId id) const;
  /// EXPLAIN ANALYZE: the physical operators' actual runtime counters.
  Result<std::string> ExplainAnalyze(QueryId id) const;
  /// Points delivered to a query's callback so far.
  Result<uint64_t> FramesDelivered(QueryId id) const;

  /// Supervision health of a query's pipeline. Always kRunning when
  /// the server is synchronous (workers = 0): without a pool there is
  /// no supervisor and plan errors surface on the ingest call instead.
  Result<PipelineHealth> QueryHealth(QueryId id) const;
  /// The error that degraded or quarantined the query; OK while the
  /// query is healthy. NotFound for unknown ids.
  Status QueryError(QueryId id) const;
  /// Registered query ids, ascending (derived streams included).
  std::vector<QueryId> QueryIds() const;

  /// Un-quarantines a query (the control plane's `RESTART <id>`):
  /// clears the recorded error, resets the operator chain, and grants
  /// a fresh poison budget so events flow again without the client
  /// reconnecting or re-registering. No-op for healthy or
  /// unsupervised (workers = 0) queries; NotFound for unknown ids.
  Status RestartQuery(QueryId id);

  /// The query pipeline's retained dead-lettered events, oldest
  /// first (empty when workers = 0 — without a supervisor nothing is
  /// dead-lettered). NotFound for unknown ids.
  Result<std::vector<DeadLetter>> DeadLetters(QueryId id) const;

  /// Dead letters caught at the ingest boundary of a source stream
  /// (checksum verification and quarantine records; see
  /// verify_ingest_checksums). NotFound for unknown streams.
  Result<std::vector<DeadLetter>> SourceDeadLetters(
      const std::string& stream) const;
  /// Corrupt batches rejected at ingest across all sources.
  uint64_t IngestChecksumFailures() const;

  /// Quarantines a source stream: `error` (why — e.g. the ingest
  /// plane's liveness timeout) is recorded in the source's boundary
  /// dead-letter queue and every subsequent ingest event for the
  /// source is refused with FailedPrecondition until RestartSource.
  /// The source's queries stay registered and healthy — a silent
  /// instrument must not take its consumers down with it. NotFound
  /// for unknown streams; InvalidArgument for derived streams (their
  /// producer is a query pipeline, supervised by RestartQuery).
  Status QuarantineSource(const std::string& stream, const Status& error);
  /// Un-quarantines a source (the control plane's `RESTART <name>`):
  /// clears the recorded error so ingest flows again. No-op when the
  /// source is not quarantined; NotFound for unknown streams.
  Status RestartSource(const std::string& stream);
  /// The quarantine error of a source; OK while ingest is admitted.
  /// NotFound for unknown streams.
  Status SourceError(const std::string& stream) const;

 private:
  struct SourceState;
  struct QueryState;
  class IsolatedEntrySink;
  class GuardedIngestSink;

  /// When `defer_wiring` is set (the catch-up path), plan inputs are
  /// built and recorded as pending wirings but NOT attached to their
  /// sources — the caller attaches them later, behind CatchUpGates,
  /// after replaying history (see RegisterQuery's catch-up overload).
  Result<QueryId> RegisterInternal(const std::string& query_text,
                                   FrameCallback callback,
                                   const std::string& derived_name,
                                   bool defer_wiring = false);

  /// Peels optimizer-pushed leaf restrictions region(stream) out of
  /// the tree, recording (stream, region) pairs; the peeled leaves get
  /// unique per-query input names.
  ExprPtr PeelLeafRestrictions(QueryId id, ExprPtr expr,
                               QueryState* query);

  /// Registers the scrape-time collectors that mirror scheduler,
  /// memory, and ingest-boundary figures into the registry. Called
  /// once from the constructor.
  void RegisterCollectors();

  /// Resolves a source's freshness gauge and total-latency histogram
  /// from the registry. Called at stream registration (both real and
  /// derived streams).
  void RegisterSourceObservables(SourceState* source);

  DsmsOptions options_;
  StreamCatalog catalog_;
  MemoryTracker memory_;
  /// Declared before scheduler_ so the histograms the scheduler holds
  /// pointers into outlive the worker pool.
  MetricsRegistry metrics_registry_;
  /// Flight recorder. Declared right after the registry and before
  /// every subsystem that appends into it (governor, journal, store,
  /// scheduler, sources) so it outlives them all.
  std::unique_ptr<EventLog> event_log_;
  /// Disk-pressure governor for the storage plane. Declared before
  /// journal_ and store_ (both hold raw pointers into it, so it must
  /// outlive them) and after the registry (its gauges point there).
  std::unique_ptr<StorageGovernor> governor_;
  /// Declared after the registry (journal metrics point into it) and
  /// before the scheduler/sources (sessions append through it).
  std::unique_ptr<IngestJournal> journal_;
  /// Tiled historical store (null without store_dir). Declared after
  /// the registry (store metrics point into it) and before sources_/
  /// queries_ (StoreIngestSinks and CatchUpGates point into it, so
  /// they must be destroyed first).
  std::unique_ptr<TileStore> store_;
  /// Catch-up accounting (null without a store).
  Counter* m_catchup_frames_ = nullptr;
  Counter* m_seam_frames_ = nullptr;
  Counter* m_catchup_truncated_ = nullptr;
  /// Catch-up lag: stored frames still to replay, summed over all
  /// in-flight SINCE registrations. One unlabeled series — a
  /// per-query-id label would grow without bound over the server's
  /// lifetime. The atomic is the source of truth (replays run
  /// concurrently); the gauge mirrors it after every change.
  Gauge* m_catchup_lag_ = nullptr;
  std::atomic<uint64_t> catchup_backlog_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  /// Finished traces on a synchronous server (workers == 0), where
  /// there are no per-pipeline rings. Multi-producer safe.
  std::unique_ptr<TraceRing> inline_traces_;
  /// Control plane vs data plane: every ingest event takes this in
  /// shared mode (via the per-source GuardedIngestSink), while
  /// registration, unregistration, and restart take it exclusively —
  /// remote clients can (un)register queries over the network while
  /// the instrument keeps scanning. Blocking scheduler operations
  /// (RemovePipeline's and RestartPipeline's wait for the in-flight
  /// event) run with the lock RELEASED: a worker mid-event may itself
  /// be acquiring the shared lock to feed a derived stream, and
  /// holding the exclusive lock across the wait would deadlock.
  mutable std::shared_mutex state_mu_;
  /// Worker pool (null when options_.workers == 0). Started in the
  /// constructor; pipelines are added as queries register.
  std::unique_ptr<QueryScheduler> scheduler_;
  std::map<std::string, std::unique_ptr<SourceState>> sources_;
  std::map<QueryId, std::unique_ptr<QueryState>> queries_;
  QueryId next_query_id_ = 1;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_SERVER_DSMS_SERVER_H_
