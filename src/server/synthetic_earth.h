// Deterministic synthetic Earth radiance fields.
//
// Stands in for the live GOES downlink (DESIGN.md substitution
// table): a procedural, seeded model of surface albedo, vegetation,
// surface temperature and drifting cloud cover, sampled per
// (band, lon, lat, time). The fields are smooth (multi-octave value
// noise), spatially coherent — preserving the "consecutive points
// have close spatial proximity" property the paper builds on — and
// constructed so NDVI computed from bands 2/1 recovers the underlying
// vegetation field (which the tests assert).

#ifndef GEOSTREAMS_SERVER_SYNTHETIC_EARTH_H_
#define GEOSTREAMS_SERVER_SYNTHETIC_EARTH_H_

#include <cstdint>

namespace geostreams {

/// GOES-Imager-like spectral bands.
enum class SpectralBand : int {
  kVisible = 1,     // 0.65 um reflected
  kNearInfrared = 2,// 0.86 um reflected (vegetation-bright)
  kWaterVapor = 3,  // 6.5 um emission
  kInfrared = 4,    // 10.7 um thermal window
  kSplitWindow = 5, // 12.0 um thermal window
};

class SyntheticEarth {
 public:
  explicit SyntheticEarth(uint64_t seed = 20060331);

  /// Radiance-like sample for a band at (lon, lat) degrees and scan
  /// time t (scan-sector index). Visible/NIR in [0, 1] reflectance
  /// units; thermal bands in approximate brightness temperature K.
  double Radiance(SpectralBand band, double lon_deg, double lat_deg,
                  int64_t t) const;

  /// Underlying vegetation density in [0, 1] (the ground truth the
  /// NDVI product should recover).
  double Vegetation(double lon_deg, double lat_deg) const;

  /// Cloud optical thickness in [0, 1]; drifts eastward with t.
  double CloudCover(double lon_deg, double lat_deg, int64_t t) const;

  /// Land fraction in [0, 1] (0 = open water).
  double LandFraction(double lon_deg, double lat_deg) const;

  /// Surface temperature (K), latitude-driven with local texture.
  double SurfaceTemperatureK(double lon_deg, double lat_deg) const;

  /// Fire intensity in [0, 1] from a small set of seeded transient
  /// hotspot events (wildfires): each has a location, an active scan
  /// interval, and a Gaussian footprint. Drives thermal-band spikes
  /// for disaster-monitoring workloads.
  double FireIntensity(double lon_deg, double lat_deg, int64_t t) const;

 private:
  /// Multi-octave value noise in [0, 1], periodic in longitude.
  double Fbm(double x, double y, int octaves, uint64_t salt) const;
  double ValueNoise(double x, double y, uint64_t salt) const;

  uint64_t seed_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_SERVER_SYNTHETIC_EARTH_H_
