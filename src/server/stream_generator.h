// Stream generators simulating remote-sensing instruments (Fig. 1).
//
// The generator converts "raw instrument data" (the synthetic Earth
// model) into GeoStream events in the three point organizations the
// paper identifies:
//  * row-by-row      — GOES-like scanners; bands of one scan are
//                      interleaved line by line;
//  * image-by-image  — airborne frame cameras; each band of a scan is
//                      delivered as a complete frame, bands back to
//                      back;
//  * point-by-point  — LIDAR-like, time-ordered points without frame
//                      boundaries.
// Timestamping follows Sec. 3.3: scan-sector identifiers (default) or
// per-point measurement times.

#ifndef GEOSTREAMS_SERVER_STREAM_GENERATOR_H_
#define GEOSTREAMS_SERVER_STREAM_GENERATOR_H_

#include <string>
#include <vector>

#include "core/geostream.h"
#include "server/scan_schedule.h"
#include "server/synthetic_earth.h"
#include "stream/operator.h"

namespace geostreams {

struct InstrumentConfig {
  /// Instrument CRS ("geos:-75" for a GOES-East-like imager, "latlon"
  /// for simpler setups).
  std::string crs_name = "geos:-75";
  /// Spectral bands to produce, in emission order.
  std::vector<SpectralBand> bands = {SpectralBand::kVisible,
                                     SpectralBand::kNearInfrared};
  /// Cells per scan sector (scaled-down GOES frames).
  int64_t cells_per_sector = 64 * 48;
  PointOrganization organization = PointOrganization::kRowByRow;
  TimestampPolicy timestamp_policy = TimestampPolicy::kScanSectorId;
  /// Points per batch for image-by-image / point-by-point output
  /// (row-by-row emits one row per batch).
  int batch_points = 4096;
  /// Stream name prefix; streams are named "<prefix>.band<k>".
  std::string name_prefix = "goes";
  uint64_t seed = 20060331;
};

/// Deterministic downlink corruption, for the fault-injection harness.
/// Batch ordinals are per band, 0-based, counting batches as emitted;
/// everything except `checksum_batches` applies to `target_band` only,
/// so exactly the queries reading that band see the fault.
struct CorruptionConfig {
  int target_band = 0;
  /// Attach a ComputeChecksum() digest to every batch of every band
  /// (the clean downlink the FaultInjectorOp verifies against).
  bool checksum_batches = false;
  /// Flip a payload byte of these batches AFTER checksumming: the
  /// batch arrives with a stale digest and fails verification.
  std::vector<uint64_t> corrupt_value_batches;
  /// Swallow the FrameEnd of these scans: the next FrameBegin nests,
  /// which buffering operators reject (FailedPrecondition -> poison).
  std::vector<int64_t> drop_frame_end_scans;
  /// Emit these batches twice back to back (duplicated rows).
  std::vector<uint64_t> duplicate_batches;
  /// Hold these batches and emit them after the following batch of the
  /// same band (reordered rows; flushed before FrameEnd).
  std::vector<uint64_t> reorder_batches;
};

/// What the corruption hooks actually did, for asserting that
/// dead-letter counters downstream match the injected damage.
struct CorruptionStats {
  uint64_t batches_emitted = 0;
  uint64_t checksums_attached = 0;
  uint64_t values_corrupted = 0;
  uint64_t frame_ends_dropped = 0;
  uint64_t batches_duplicated = 0;
  uint64_t batches_reordered = 0;
};

/// Simulates one multi-band scanning instrument. One generator feeds
/// one EventSink per band (the per-band GeoStreams of Sec. 3.3).
class StreamGenerator {
 public:
  StreamGenerator(InstrumentConfig config, ScanSchedule schedule);

  Status Init();

  /// Arms the corruption hooks; call before generating. Replaces any
  /// previous config and resets the corruption statistics.
  void SetCorruption(CorruptionConfig corruption);

  const CorruptionStats& corruption_stats() const {
    return corruption_stats_;
  }

  /// Descriptor of band `index` (into config.bands).
  Result<GeoStreamDescriptor> Descriptor(size_t band_index) const;

  /// Emits scans [first, first + count) into the per-band sinks.
  /// `sinks` must have one entry per configured band. Frames of one
  /// scan are interleaved or sequential according to the organization.
  Status GenerateScans(int64_t first_scan, int64_t count,
                       const std::vector<EventSink*>& sinks);

  /// Sends StreamEnd to every sink.
  Status Finish(const std::vector<EventSink*>& sinks);

  /// Points emitted per band so far.
  int64_t points_per_band() const { return points_per_band_; }

  const InstrumentConfig& config() const { return config_; }
  const SyntheticEarth& earth() const { return earth_; }

 private:
  Status GenerateRowByRow(int64_t scan, const GridLattice& lattice,
                          const std::vector<EventSink*>& sinks);
  Status GenerateImageByImage(int64_t scan, const GridLattice& lattice,
                              const std::vector<EventSink*>& sinks);
  Status GeneratePointByPoint(int64_t scan, const GridLattice& lattice,
                              const std::vector<EventSink*>& sinks);

  /// Sample value of band b at lattice cell (col, row) of a scan.
  double Sample(size_t band_index, const GridLattice& lattice, int64_t col,
                int64_t row, int64_t scan) const;

  /// All generator output funnels through here so the corruption
  /// hooks see every event. `band` indexes config.bands.
  Status Deliver(size_t band, EventSink* sink, StreamEvent event);
  /// Emits the held (reordered) batch of `band`, if any.
  Status FlushHeld(size_t band, EventSink* sink);

  int64_t TimestampFor(int64_t scan) {
    return config_.timestamp_policy == TimestampPolicy::kScanSectorId
               ? scan
               : measurement_clock_++;
  }

  InstrumentConfig config_;
  ScanSchedule schedule_;
  SyntheticEarth earth_;
  CrsPtr crs_;
  bool initialized_ = false;
  int64_t measurement_clock_ = 0;
  int64_t points_per_band_ = 0;

  CorruptionConfig corruption_;
  CorruptionStats corruption_stats_;
  /// Per-band batch ordinals and held (reordered) batches.
  std::vector<uint64_t> batch_ordinal_;
  std::vector<PointBatchPtr> held_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_SERVER_STREAM_GENERATOR_H_
