// GOES-style scan sector schedules.
//
// A geostationary imager does not scan the full disk every time: it
// cycles through sectors (CONUS every quarter hour, full disk every
// three hours, ...). The schedule decides which sector a given scan
// index covers; the stream generator turns that into frame lattices.

#ifndef GEOSTREAMS_SERVER_SCAN_SCHEDULE_H_
#define GEOSTREAMS_SERVER_SCAN_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/bounding_box.h"
#include "geo/lattice.h"

namespace geostreams {

/// One scannable sector: a named geographic box with a repeat period.
struct SectorSpec {
  std::string name;
  /// Geographic bounds (lon/lat degrees) of the sector.
  BoundingBox geo_bounds;
  /// The sector is scanned when scan_index % period == phase.
  int64_t period = 1;
  int64_t phase = 0;
};

/// Round-robin-with-periods schedule over sectors.
class ScanSchedule {
 public:
  explicit ScanSchedule(std::vector<SectorSpec> sectors);

  /// GOES-East-like routine: CONUS most scans, Northern Hemisphere
  /// every 4th, full disk every 12th.
  static ScanSchedule GoesRoutine();

  /// The sector scanned at `scan_index` (full-period fallbacks ensure
  /// exactly one matches; the first matching spec wins).
  const SectorSpec& SectorFor(int64_t scan_index) const;

  const std::vector<SectorSpec>& sectors() const { return sectors_; }

 private:
  std::vector<SectorSpec> sectors_;
};

/// Derives a scan lattice for a geographic sector in the given CRS
/// with approximately `target_cells` cells, preserving the sector's
/// aspect ratio. Row 0 is the northern edge (satellites scan north to
/// south).
Result<GridLattice> SectorLattice(const SectorSpec& sector,
                                  const CrsPtr& crs, int64_t target_cells);

}  // namespace geostreams

#endif  // GEOSTREAMS_SERVER_SCAN_SCHEDULE_H_
