#include "server/stream_generator.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/string_util.h"
#include "geo/crs_registry.h"

namespace geostreams {

namespace {

ValueSet BandValueSet(SpectralBand band) {
  switch (band) {
    case SpectralBand::kVisible:
    case SpectralBand::kNearInfrared:
      return ValueSet::ReflectanceF32();
    case SpectralBand::kWaterVapor:
    case SpectralBand::kInfrared:
    case SpectralBand::kSplitWindow:
      return ValueSet("brightness_temp", SampleType::kFloat32, 1, 150.0,
                      340.0);
  }
  return ValueSet::RadianceF32();
}

bool ContainsOrdinal(const std::vector<uint64_t>& list, uint64_t v) {
  return std::find(list.begin(), list.end(), v) != list.end();
}

bool ContainsScan(const std::vector<int64_t>& list, int64_t v) {
  return std::find(list.begin(), list.end(), v) != list.end();
}

}  // namespace

StreamGenerator::StreamGenerator(InstrumentConfig config,
                                 ScanSchedule schedule)
    : config_(std::move(config)),
      schedule_(std::move(schedule)),
      earth_(config_.seed) {}

void StreamGenerator::SetCorruption(CorruptionConfig corruption) {
  corruption_ = std::move(corruption);
  corruption_stats_ = CorruptionStats();
  batch_ordinal_.assign(config_.bands.size(), 0);
  held_.assign(config_.bands.size(), nullptr);
}

Status StreamGenerator::FlushHeld(size_t band, EventSink* sink) {
  if (band >= held_.size() || !held_[band]) return Status::OK();
  PointBatchPtr held = std::move(held_[band]);
  held_[band] = nullptr;
  return sink->Consume(StreamEvent::Batch(std::move(held)));
}

Status StreamGenerator::Deliver(size_t band, EventSink* sink,
                                StreamEvent event) {
  const bool targeted =
      band == static_cast<size_t>(corruption_.target_band);
  switch (event.kind) {
    case EventKind::kPointBatch: {
      if (band >= batch_ordinal_.size()) {
        batch_ordinal_.resize(config_.bands.size(), 0);
        held_.resize(config_.bands.size(), nullptr);
      }
      const uint64_t ordinal = batch_ordinal_[band]++;
      ++corruption_stats_.batches_emitted;
      PointBatchPtr batch = event.batch;
      if (corruption_.checksum_batches) {
        auto stamped = std::make_shared<PointBatch>(*batch);
        stamped->checksum = stamped->ComputeChecksum();
        batch = std::move(stamped);
        ++corruption_stats_.checksums_attached;
      }
      if (targeted &&
          ContainsOrdinal(corruption_.corrupt_value_batches, ordinal) &&
          !batch->values.empty()) {
        // Damage the payload after checksumming, like a downlink bit
        // flip: the digest goes stale and verification fails.
        auto corrupt = std::make_shared<PointBatch>(*batch);
        corrupt->values[0] = corrupt->values[0] + 1.0;
        batch = std::move(corrupt);
        ++corruption_stats_.values_corrupted;
      }
      const bool reorder =
          targeted && ContainsOrdinal(corruption_.reorder_batches, ordinal);
      const bool duplicate =
          targeted &&
          ContainsOrdinal(corruption_.duplicate_batches, ordinal);
      if (reorder && !held_[band]) {
        held_[band] = std::move(batch);
        ++corruption_stats_.batches_reordered;
        return Status::OK();
      }
      GEOSTREAMS_RETURN_IF_ERROR(
          sink->Consume(StreamEvent::Batch(batch)));
      if (duplicate) {
        ++corruption_stats_.batches_duplicated;
        GEOSTREAMS_RETURN_IF_ERROR(
            sink->Consume(StreamEvent::Batch(batch)));
      }
      return FlushHeld(band, sink);
    }
    case EventKind::kFrameEnd:
      GEOSTREAMS_RETURN_IF_ERROR(FlushHeld(band, sink));
      if (targeted &&
          ContainsScan(corruption_.drop_frame_end_scans,
                       event.frame.frame_id)) {
        ++corruption_stats_.frame_ends_dropped;
        return Status::OK();
      }
      return sink->Consume(std::move(event));
    case EventKind::kFrameBegin:
    case EventKind::kStreamEnd:
      GEOSTREAMS_RETURN_IF_ERROR(FlushHeld(band, sink));
      return sink->Consume(std::move(event));
  }
  return sink->Consume(std::move(event));
}

Status StreamGenerator::Init() {
  if (initialized_) return Status::OK();
  GEOSTREAMS_ASSIGN_OR_RETURN(crs_, ResolveCrs(config_.crs_name));
  if (config_.bands.empty()) {
    return Status::InvalidArgument("instrument needs at least one band");
  }
  initialized_ = true;
  return Status::OK();
}

Result<GeoStreamDescriptor> StreamGenerator::Descriptor(
    size_t band_index) const {
  if (!initialized_) {
    return Status::FailedPrecondition("generator not initialized");
  }
  if (band_index >= config_.bands.size()) {
    return Status::OutOfRange("band index out of range");
  }
  // Reference lattice: the largest (first full-period) sector.
  const SectorSpec& ref_sector = schedule_.SectorFor(0);
  GEOSTREAMS_ASSIGN_OR_RETURN(
      GridLattice lattice,
      SectorLattice(ref_sector, crs_, config_.cells_per_sector));
  const SpectralBand band = config_.bands[band_index];
  return GeoStreamDescriptor(
      StringPrintf("%s.band%d", config_.name_prefix.c_str(),
                   static_cast<int>(band)),
      BandValueSet(band), lattice, config_.organization,
      config_.timestamp_policy);
}

double StreamGenerator::Sample(size_t band_index, const GridLattice& lattice,
                               int64_t col, int64_t row,
                               int64_t scan) const {
  const double x = lattice.CellX(col);
  const double y = lattice.CellY(row);
  double lon = 0.0, lat = 0.0;
  if (!crs_->ToGeographic(x, y, &lon, &lat).ok()) {
    return 0.0;  // off-Earth scan angles deliver space-look zeros
  }
  return earth_.Radiance(config_.bands[band_index], lon, lat, scan);
}

Status StreamGenerator::GenerateScans(int64_t first_scan, int64_t count,
                                      const std::vector<EventSink*>& sinks) {
  GEOSTREAMS_RETURN_IF_ERROR(Init());
  if (sinks.size() != config_.bands.size()) {
    return Status::InvalidArgument(StringPrintf(
        "need one sink per band: %zu sinks for %zu bands", sinks.size(),
        config_.bands.size()));
  }
  for (int64_t scan = first_scan; scan < first_scan + count; ++scan) {
    const SectorSpec& sector = schedule_.SectorFor(scan);
    GEOSTREAMS_ASSIGN_OR_RETURN(
        GridLattice lattice,
        SectorLattice(sector, crs_, config_.cells_per_sector));
    switch (config_.organization) {
      case PointOrganization::kRowByRow:
        GEOSTREAMS_RETURN_IF_ERROR(GenerateRowByRow(scan, lattice, sinks));
        break;
      case PointOrganization::kImageByImage:
        GEOSTREAMS_RETURN_IF_ERROR(
            GenerateImageByImage(scan, lattice, sinks));
        break;
      case PointOrganization::kPointByPoint:
        GEOSTREAMS_RETURN_IF_ERROR(
            GeneratePointByPoint(scan, lattice, sinks));
        break;
    }
    points_per_band_ += lattice.num_cells();
  }
  return Status::OK();
}

Status StreamGenerator::GenerateRowByRow(
    int64_t scan, const GridLattice& lattice,
    const std::vector<EventSink*>& sinks) {
  FrameInfo info;
  info.frame_id = scan;
  info.lattice = lattice;
  info.expected_points = lattice.num_cells();
  for (size_t b = 0; b < sinks.size(); ++b) {
    GEOSTREAMS_RETURN_IF_ERROR(
        Deliver(b, sinks[b], StreamEvent::FrameBegin(info)));
  }
  // The imager sweeps north to south; all bands of one line are read
  // out together, so the per-band streams interleave row by row.
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (size_t b = 0; b < sinks.size(); ++b) {
      auto batch = std::make_shared<PointBatch>();
      batch->frame_id = scan;
      batch->band_count = 1;
      batch->Reserve(static_cast<size_t>(lattice.width()));
      const int64_t t = TimestampFor(scan);
      for (int64_t col = 0; col < lattice.width(); ++col) {
        batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row),
                       config_.timestamp_policy ==
                               TimestampPolicy::kMeasurementTime
                           ? TimestampFor(scan)
                           : t,
                       Sample(b, lattice, col, row, scan));
      }
      GEOSTREAMS_RETURN_IF_ERROR(
          Deliver(b, sinks[b], StreamEvent::Batch(std::move(batch))));
    }
  }
  for (size_t b = 0; b < sinks.size(); ++b) {
    GEOSTREAMS_RETURN_IF_ERROR(
        Deliver(b, sinks[b], StreamEvent::FrameEnd(info)));
  }
  return Status::OK();
}

Status StreamGenerator::GenerateImageByImage(
    int64_t scan, const GridLattice& lattice,
    const std::vector<EventSink*>& sinks) {
  FrameInfo info;
  info.frame_id = scan;
  info.lattice = lattice;
  info.expected_points = lattice.num_cells();
  // Frame cameras deliver a full image per band, bands back to back:
  // the order that forces a composition to buffer a whole frame
  // (Sec. 3.3).
  for (size_t b = 0; b < sinks.size(); ++b) {
    GEOSTREAMS_RETURN_IF_ERROR(
        Deliver(b, sinks[b], StreamEvent::FrameBegin(info)));
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = scan;
    batch->band_count = 1;
    for (int64_t row = 0; row < lattice.height(); ++row) {
      for (int64_t col = 0; col < lattice.width(); ++col) {
        batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row),
                       TimestampFor(scan), Sample(b, lattice, col, row, scan));
        if (batch->size() >= static_cast<size_t>(config_.batch_points)) {
          GEOSTREAMS_RETURN_IF_ERROR(
              Deliver(b, sinks[b], StreamEvent::Batch(std::move(batch))));
          batch = std::make_shared<PointBatch>();
          batch->frame_id = scan;
          batch->band_count = 1;
        }
      }
    }
    if (!batch->empty()) {
      GEOSTREAMS_RETURN_IF_ERROR(
          Deliver(b, sinks[b], StreamEvent::Batch(std::move(batch))));
    }
    GEOSTREAMS_RETURN_IF_ERROR(
        Deliver(b, sinks[b], StreamEvent::FrameEnd(info)));
  }
  return Status::OK();
}

Status StreamGenerator::GeneratePointByPoint(
    int64_t scan, const GridLattice& lattice,
    const std::vector<EventSink*>& sinks) {
  // LIDAR-like: points ordered by time only, no frame boundaries, a
  // pseudo-random spatial walk over the sector (Fig. 1c).
  const int64_t n = lattice.num_cells();
  for (size_t b = 0; b < sinks.size(); ++b) {
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = scan;
    batch->band_count = 1;
    uint64_t state = config_.seed ^ static_cast<uint64_t>(scan) ^
                     (static_cast<uint64_t>(b) << 48);
    for (int64_t i = 0; i < n; ++i) {
      state = Mix64(state + 0x9E3779B97F4A7C15ULL);
      const int64_t cell = static_cast<int64_t>(state % static_cast<uint64_t>(n));
      const int64_t col = cell % lattice.width();
      const int64_t row = cell / lattice.width();
      batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row),
                     TimestampFor(scan), Sample(b, lattice, col, row, scan));
      if (batch->size() >= static_cast<size_t>(config_.batch_points)) {
        GEOSTREAMS_RETURN_IF_ERROR(
            Deliver(b, sinks[b], StreamEvent::Batch(std::move(batch))));
        batch = std::make_shared<PointBatch>();
        batch->frame_id = scan;
        batch->band_count = 1;
      }
    }
    if (!batch->empty()) {
      GEOSTREAMS_RETURN_IF_ERROR(
          Deliver(b, sinks[b], StreamEvent::Batch(std::move(batch))));
    }
  }
  return Status::OK();
}

Status StreamGenerator::Finish(const std::vector<EventSink*>& sinks) {
  for (size_t b = 0; b < sinks.size(); ++b) {
    GEOSTREAMS_RETURN_IF_ERROR(
        Deliver(b, sinks[b], StreamEvent::StreamEnd()));
  }
  return Status::OK();
}

}  // namespace geostreams
