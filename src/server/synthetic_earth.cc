#include "server/synthetic_earth.h"

#include <cmath>

#include "common/math_util.h"

namespace geostreams {

SyntheticEarth::SyntheticEarth(uint64_t seed) : seed_(seed) {}

double SyntheticEarth::ValueNoise(double x, double y, uint64_t salt) const {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto ix = static_cast<int64_t>(fx);
  const auto iy = static_cast<int64_t>(fy);
  const double tx = x - fx;
  const double ty = y - fy;
  auto corner = [&](int64_t cx, int64_t cy) {
    const uint64_t h = Mix64(seed_ ^ salt ^
                             (static_cast<uint64_t>(cx) * 0x9E3779B97F4A7C15ULL) ^
                             (static_cast<uint64_t>(cy) * 0xC2B2AE3D27D4EB4FULL));
    return HashToUnit(h);
  };
  // Smoothstep interpolation keeps the field C1-continuous.
  const double sx = tx * tx * (3.0 - 2.0 * tx);
  const double sy = ty * ty * (3.0 - 2.0 * ty);
  const double v00 = corner(ix, iy);
  const double v10 = corner(ix + 1, iy);
  const double v01 = corner(ix, iy + 1);
  const double v11 = corner(ix + 1, iy + 1);
  return Lerp(Lerp(v00, v10, sx), Lerp(v01, v11, sx), sy);
}

double SyntheticEarth::Fbm(double x, double y, int octaves,
                           uint64_t salt) const {
  double amp = 0.5;
  double sum = 0.0;
  double norm = 0.0;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * ValueNoise(x, y, salt + static_cast<uint64_t>(o) * 7919);
    norm += amp;
    x *= 2.03;
    y *= 2.03;
    amp *= 0.5;
  }
  return norm > 0.0 ? sum / norm : 0.0;
}

double SyntheticEarth::LandFraction(double lon_deg, double lat_deg) const {
  const double n =
      Fbm(lon_deg / 40.0, lat_deg / 40.0, 4, /*salt=*/0x1A5D);
  // Threshold with a soft shoreline; ~35% land like the real planet.
  return Clamp((n - 0.55) * 10.0 + 0.5, 0.0, 1.0);
}

double SyntheticEarth::Vegetation(double lon_deg, double lat_deg) const {
  const double land = LandFraction(lon_deg, lat_deg);
  if (land <= 0.0) return 0.0;
  // Vegetation favours mid latitudes and humid noise pockets.
  const double climate =
      std::exp(-std::pow((std::fabs(lat_deg) - 25.0) / 30.0, 2.0));
  const double texture =
      Fbm(lon_deg / 12.0, lat_deg / 12.0, 5, /*salt=*/0xBEEF);
  return Clamp(land * climate * (0.3 + 0.7 * texture), 0.0, 1.0);
}

double SyntheticEarth::CloudCover(double lon_deg, double lat_deg,
                                  int64_t t) const {
  // Cloud decks drift east ~0.4 degrees per scan sector.
  const double drift = 0.4 * static_cast<double>(t);
  const double n = Fbm((lon_deg - drift) / 18.0, lat_deg / 18.0, 4,
                       /*salt=*/0xC10D);
  return Clamp((n - 0.6) * 4.0, 0.0, 1.0);
}

double SyntheticEarth::SurfaceTemperatureK(double lon_deg,
                                           double lat_deg) const {
  const double base = 300.0 - 45.0 * std::pow(std::fabs(lat_deg) / 90.0, 1.5);
  const double texture =
      (Fbm(lon_deg / 25.0, lat_deg / 25.0, 3, /*salt=*/0x7E4) - 0.5) * 10.0;
  return base + texture;
}

double SyntheticEarth::FireIntensity(double lon_deg, double lat_deg,
                                     int64_t t) const {
  // Site 0 is pinned in northern California so monitoring examples
  // over CONUS always have an event to find; the rest are seeded.
  constexpr int kSites = 8;
  double intensity = 0.0;
  for (int s = 0; s < kSites; ++s) {
    double site_lon, site_lat;
    int64_t start, duration;
    if (s == 0) {
      site_lon = -121.5;
      site_lat = 39.0;
      start = 2;
      duration = 7;
    } else {
      const uint64_t base = seed_ ^ (0xF17E0000ULL + static_cast<uint64_t>(s));
      site_lon = -125.0 + HashToUnit(base + 1) * 55.0;
      site_lat = 25.0 + HashToUnit(base + 2) * 20.0;
      start = static_cast<int64_t>(HashToUnit(base + 3) * 20.0);
      duration = 3 + static_cast<int64_t>(HashToUnit(base + 4) * 9.0);
    }
    if (t < start || t > start + duration) continue;
    const double dlon = lon_deg - site_lon;
    const double dlat = lat_deg - site_lat;
    // ~0.3 degree Gaussian footprint.
    const double d2 = (dlon * dlon + dlat * dlat) / (0.3 * 0.3);
    if (d2 > 9.0) continue;
    // Ramp up and die down over the event's life.
    const double age = static_cast<double>(t - start) /
                       static_cast<double>(duration);
    const double life = 4.0 * age * (1.0 - age);
    intensity += std::exp(-d2) * life;
  }
  return Clamp(intensity, 0.0, 1.0);
}

double SyntheticEarth::Radiance(SpectralBand band, double lon_deg,
                                double lat_deg, int64_t t) const {
  const double veg = Vegetation(lon_deg, lat_deg);
  const double land = LandFraction(lon_deg, lat_deg);
  const double cloud = CloudCover(lon_deg, lat_deg, t);
  switch (band) {
    case SpectralBand::kVisible: {
      // Water dark, soil moderate, vegetation absorbs red light;
      // clouds are bright.
      const double surface = 0.06 + land * (0.22 - 0.16 * veg);
      return Clamp(Lerp(surface, 0.85, cloud), 0.0, 1.0);
    }
    case SpectralBand::kNearInfrared: {
      // Vegetation reflects strongly in NIR; water nearly black.
      const double surface = 0.04 + land * (0.18 + 0.55 * veg);
      return Clamp(Lerp(surface, 0.80, cloud), 0.0, 1.0);
    }
    case SpectralBand::kWaterVapor: {
      const double wv =
          Fbm(lon_deg / 30.0 - 0.2 * static_cast<double>(t),
              lat_deg / 30.0, 4, /*salt=*/0x3A7);
      return 235.0 + 25.0 * wv - 15.0 * cloud;
    }
    case SpectralBand::kInfrared: {
      // Cloud tops are cold in the 10.7um window; fires are hot.
      const double fire = FireIntensity(lon_deg, lat_deg, t);
      const double sfc =
          SurfaceTemperatureK(lon_deg, lat_deg) + 60.0 * fire;
      return Lerp(sfc, 215.0, cloud * (1.0 - fire));
    }
    case SpectralBand::kSplitWindow: {
      const double fire = FireIntensity(lon_deg, lat_deg, t);
      const double sfc =
          SurfaceTemperatureK(lon_deg, lat_deg) - 1.5 + 45.0 * fire;
      return Lerp(sfc, 213.0, cloud * (1.0 - fire));
    }
  }
  return 0.0;
}

}  // namespace geostreams
