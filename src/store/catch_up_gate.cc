#include "store/catch_up_gate.h"

#include <limits>

namespace geostreams {

Status CatchUpGate::Consume(const StreamEvent& event) {
  if (live_.load(std::memory_order_acquire)) {
    return downstream_->Consume(event);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (live_.load(std::memory_order_relaxed)) {
    return downstream_->Consume(event);
  }
  switch (event.kind) {
    case EventKind::kFrameBegin:
      if (event.frame.frame_id > watermark_) {
        // Cut-over: any frame committed after the wiring snapshot but
        // before this one comes from the store, exactly once.
        if (replay_) {
          GEOSTREAMS_RETURN_IF_ERROR(
              replay_(watermark_, event.frame.frame_id, downstream_));
        }
        live_.store(true, std::memory_order_release);
        return downstream_->Consume(event);
      }
      dropped_frames_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    case EventKind::kStreamEnd:
      // The stream ends before another live frame: drain the seam to
      // the end of recorded history, then let the end through.
      if (replay_) {
        GEOSTREAMS_RETURN_IF_ERROR(replay_(
            watermark_, std::numeric_limits<int64_t>::max(), downstream_));
      }
      live_.store(true, std::memory_order_release);
      return downstream_->Consume(event);
    case EventKind::kPointBatch:
    case EventKind::kFrameEnd:
      // Interior of a frame at or below the watermark (it is already
      // in the store) — or of the in-flight frame whose Begin
      // preceded wiring, which the seam replay will deliver whole.
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace geostreams
