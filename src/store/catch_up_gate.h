// Exactly-once seam between stored history and the live stream.
//
// A catch-up query replays committed frames up to a watermark W0 from
// the TileStore, then its live wiring must deliver every frame after
// W0 and nothing at or below it. The gate sits where the live fan-out
// would normally feed the query's entry sink and enforces that
// contract:
//
//   * While gated, every live event is dropped EXCEPT the first
//     FrameBegin whose id exceeds the watermark. Frames at or below
//     the watermark were (or will be, via the seam replay) served
//     from the store — forwarding them live would duplicate.
//   * On that first post-watermark FrameBegin the gate invokes the
//     seam replay — the store scan of the open interval
//     (watermark, frame_id) — to deliver any frame that committed
//     between the wiring snapshot and this moment, then forwards the
//     FrameBegin and goes transparent forever (a single relaxed
//     atomic load on the hot path).
//   * StreamEnd while still gated replays (watermark, +inf) first so
//     a stream that ends before producing another frame still yields
//     its full history, then forwards the StreamEnd.
//
// The gate is driven by the single ingest thread of its source (the
// fan-out contract), so the mutex is uncontended; it exists to make
// the live_ flip safe against concurrent readers of the flag.

#ifndef GEOSTREAMS_STORE_CATCH_UP_GATE_H_
#define GEOSTREAMS_STORE_CATCH_UP_GATE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/status.h"
#include "core/stream_event.h"
#include "stream/operator.h"

namespace geostreams {

/// Replays committed store frames with ids in the OPEN interval
/// (after, before) into the sink, ascending.
using SeamReplayFn =
    std::function<Status(int64_t after, int64_t before, EventSink* sink)>;

class CatchUpGate : public EventSink {
 public:
  CatchUpGate(EventSink* downstream, int64_t watermark, SeamReplayFn replay)
      : downstream_(downstream),
        watermark_(watermark),
        replay_(std::move(replay)) {}

  Status Consume(const StreamEvent& event) override;

  /// True once the gate has cut over to the live stream.
  bool live() const { return live_.load(std::memory_order_acquire); }

  /// Frames dropped while gated (duplicates avoided); diagnostics.
  uint64_t dropped_frames() const {
    return dropped_frames_.load(std::memory_order_relaxed);
  }

 private:
  EventSink* downstream_;
  const int64_t watermark_;
  SeamReplayFn replay_;

  std::mutex mu_;
  std::atomic<bool> live_{false};
  std::atomic<uint64_t> dropped_frames_{0};
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STORE_CATCH_UP_GATE_H_
