#include "store/tile_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/string_util.h"
#include "geo/crs_registry.h"
#include "obs/event_log.h"
#include "raster/checksum.h"
#include "storage/governor.h"

namespace geostreams {

namespace fs = std::filesystem;

namespace {

constexpr char kStoreMagic[4] = {'G', 'S', 'T', '1'};
constexpr size_t kStoreHeaderSize = 16;
constexpr uint16_t kStoreVersion = 1;
constexpr uint32_t kMaxStorePayload = 256u << 20;
constexpr char kNameFile[] = "name";
constexpr char kPagePrefix[] = "page-";
constexpr char kPageSuffix[] = ".gst";

enum class RecordType : uint8_t {
  kFrameMeta = 1,
  kTilePage = 2,
  kFrameCommit = 3,
};

// --- little-endian encode/decode (same byte discipline as GSF1) -----------

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::vector<uint8_t>& out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

int64_t GetI64(const uint8_t* p) { return static_cast<int64_t>(GetU64(p)); }

double GetF64(const uint8_t* p) {
  const uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Sequential payload reader with bounds checking.
struct PayloadReader {
  const uint8_t* p;
  size_t remaining;
  bool ok = true;

  const uint8_t* Take(size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return nullptr;
    }
    const uint8_t* out = p;
    p += n;
    remaining -= n;
    return out;
  }
  uint16_t U16() { const uint8_t* q = Take(2); return q ? GetU16(q) : 0; }
  uint32_t U32() { const uint8_t* q = Take(4); return q ? GetU32(q) : 0; }
  int64_t I64() { const uint8_t* q = Take(8); return q ? GetI64(q) : 0; }
  double F64() { const uint8_t* q = Take(8); return q ? GetF64(q) : 0.0; }
};

void AppendHeader(std::vector<uint8_t>& out, RecordType type, uint8_t level,
                  const std::vector<uint8_t>& payload) {
  for (char c : kStoreMagic) out.push_back(static_cast<uint8_t>(c));
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(level);
  PutU16(out, kStoreVersion);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

/// Validates one record at `data` (avail bytes). On success fills
/// type/level/payload span and returns the record's total length.
Result<size_t> ValidateRecord(const uint8_t* data, size_t avail,
                              RecordType* type, uint8_t* level,
                              const uint8_t** payload, size_t* payload_len) {
  if (avail < kStoreHeaderSize) {
    return Status::InvalidArgument("store record truncated in header");
  }
  if (std::memcmp(data, kStoreMagic, 4) != 0) {
    return Status::InvalidArgument("bad store record magic");
  }
  const uint8_t raw_type = data[4];
  if (raw_type < 1 || raw_type > 3) {
    return Status::InvalidArgument("unknown store record type");
  }
  if (GetU16(data + 6) != kStoreVersion) {
    return Status::InvalidArgument("unknown store record version");
  }
  const uint32_t len = GetU32(data + 8);
  if (len > kMaxStorePayload) {
    return Status::InvalidArgument("store payload length insane");
  }
  if (avail < kStoreHeaderSize + len) {
    return Status::InvalidArgument("store record truncated in payload");
  }
  const uint32_t crc = GetU32(data + 12);
  if (Crc32(data + kStoreHeaderSize, len) != crc) {
    return Status::IoError("store record payload CRC mismatch");
  }
  *type = static_cast<RecordType>(raw_type);
  *level = data[5];
  *payload = data + kStoreHeaderSize;
  *payload_len = len;
  return kStoreHeaderSize + len;
}

Status ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(StringPrintf("open %s: %s", path.c_str(),
                                        std::strerror(errno)));
  }
  out->clear();
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::IoError(StringPrintf("read %s: %s", path.c_str(),
                                          std::strerror(err)));
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return Status::OK();
}

/// Same sanitization discipline as the journal: keep the common safe
/// set, mangle the rest with an FNV-1a suffix so distinct sources
/// stay distinct.
std::string SourceDirName(const std::string& source) {
  std::string safe;
  bool mangled = false;
  for (char c : source) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_';
    safe.push_back(keep ? c : '_');
    mangled = mangled || !keep;
  }
  if (safe.empty() || mangled) {
    uint64_t h = 1469598103934665603ull;
    for (char c : source) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    safe += StringPrintf("-%08llx",
                         static_cast<unsigned long long>(h & 0xffffffffull));
  }
  return safe;
}

/// One level of the in-memory pyramid under construction.
struct LevelImage {
  Raster raster;
  std::vector<uint8_t> filled;
};

/// Factor-2 mask-aware box reduction: an output cell averages the
/// FILLED cells of its 2x2 source block and is filled iff at least
/// one contributor was — nodata never fabricates values (the
/// AssembledFrame contract, raster/frame_assembler.h).
LevelImage ReduceMasked(const LevelImage& src) {
  const int64_t sw = src.raster.width();
  const int64_t sh = src.raster.height();
  const int bands = src.raster.bands();
  const int64_t w = (sw + 1) / 2;
  const int64_t h = (sh + 1) / 2;
  LevelImage out;
  out.raster = Raster(w, h, bands);
  out.raster.set_lattice(src.raster.lattice().Reduced(2));
  out.filled.assign(static_cast<size_t>(w * h), 0);
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      int count = 0;
      for (int64_t dr = 0; dr < 2; ++dr) {
        for (int64_t dc = 0; dc < 2; ++dc) {
          const int64_t sc = 2 * c + dc;
          const int64_t sr = 2 * r + dr;
          if (sc >= sw || sr >= sh) continue;
          if (!src.filled[static_cast<size_t>(sr * sw + sc)]) continue;
          ++count;
          for (int b = 0; b < bands; ++b) {
            out.raster.Set(c, r, b,
                           out.raster.At(c, r, b) + src.raster.At(sc, sr, b));
          }
        }
      }
      if (count > 0) {
        out.filled[static_cast<size_t>(r * w + c)] = 1;
        for (int b = 0; b < bands; ++b) {
          out.raster.Set(c, r, b, out.raster.At(c, r, b) / count);
        }
      }
    }
  }
  return out;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Index structures

struct TileStore::TileRef {
  uint32_t segment = 0;   // index into SourceStore::segments
  uint64_t offset = 0;    // record start within the segment
  uint32_t length = 0;    // header + payload
  uint32_t tile_col = 0;
  uint32_t tile_row = 0;
  uint16_t tile_w = 0;
  uint16_t tile_h = 0;
};

struct TileStore::StoredLevel {
  GridLattice lattice;
  std::vector<TileRef> tiles;
};

struct TileStore::StoredFrame {
  int64_t frame_id = 0;
  int band_count = 1;
  int64_t expected_points = 0;
  /// The frame's whole record run (meta + pages + commit) is
  /// contiguous in one segment; retention prunes and GC rewrites
  /// whole runs.
  uint32_t segment = 0;
  uint64_t run_offset = 0;
  uint64_t run_bytes = 0;
  uint64_t stored_ms = 0;  // NowMs() at index time (age retention)
  std::vector<StoredLevel> levels;
};

struct TileStore::SourceStore {
  /// One page segment. Slots are tombstoned (`dead`), never erased,
  /// so TileRef::segment indices stay stable across GC.
  struct SegmentState {
    std::string path;
    uint64_t bytes = 0;       // good bytes on disk (0 once dead)
    uint64_t live_bytes = 0;  // bytes of runs still in the index
    uint64_t live_frames = 0;
    bool dead = false;        // file unlinked; slot kept for index stability
  };

  std::string name;
  std::string dir;

  mutable std::mutex mu;
  std::vector<SegmentState> segments;  // page files, oldest first
  std::unique_ptr<WritableFile> active;
  uint32_t active_index = 0;
  uint64_t active_bytes = 0;
  uint64_t next_page_no = 0;
  /// Recovery's final size of the last segment; the first write of
  /// this incarnation resumes there instead of opening a new page.
  uint64_t resume_bytes = 0;
  bool resumed = false;
  /// A write error abandoned the active segment; the next frame
  /// starts a fresh page so committed runs stay contiguous.
  bool tainted = false;
  std::map<int64_t, std::shared_ptr<const StoredFrame>> frames;
  int64_t watermark = std::numeric_limits<int64_t>::min();
  /// Highest frame id retention ever pruned (catch-up truncation
  /// reporting).
  int64_t pruned_upto = std::numeric_limits<int64_t>::min();
  TileStoreStats stats;

  /// Scans in flight that snapshotted the index before now. Cached
  /// fds of tombstoned segments are reaped only at zero: a snapshot
  /// taken after a prune can no longer reference a dead segment, so
  /// zero in-flight scans means nothing can still read those fds.
  std::atomic<uint64_t> active_scans{0};
  /// Tombstoned segment indices whose cached fds await reaping.
  std::vector<uint32_t> dead_fd_reap;

  std::mutex read_mu;
  std::map<uint32_t, int> read_fds;  // segment index -> O_RDONLY fd

  ~SourceStore() {
    for (auto& [idx, fd] : read_fds) ::close(fd);
  }
};

// ---------------------------------------------------------------------------
// Open / recovery

TileStore::TileStore(TileStoreOptions options)
    : options_(std::move(options)) {
  if (options_.tile_size < 1) options_.tile_size = 64;
  if (options_.max_levels < 0) options_.max_levels = 0;
  if (options_.metrics != nullptr) {
    MetricsRegistry& reg = *options_.metrics;
    m_frames_written_ =
        reg.GetCounter("geostreams_store_frames_written_total",
                       "Frames committed to the tile store");
    m_tiles_written_ = reg.GetCounter("geostreams_store_tiles_written_total",
                                      "Tile pages written (all levels)");
    m_bytes_written_ = reg.GetCounter("geostreams_store_bytes_written_total",
                                      "Bytes appended to tile page segments");
    m_write_errors_ = reg.GetCounter(
        "geostreams_store_write_errors_total",
        "Frame writes abandoned on I/O errors (frame not committed)");
    m_frames_read_ = reg.GetCounter("geostreams_store_frames_read_total",
                                    "Frames replayed from the store");
    m_tiles_read_ = reg.GetCounter("geostreams_store_tiles_read_total",
                                   "Tile pages read and CRC-verified");
    m_tile_read_errors_ = reg.GetCounter(
        "geostreams_store_tile_read_errors_total",
        "Tile pages skipped on read (CRC mismatch or I/O error)");
    m_frames_recovered_ =
        reg.GetCounter("geostreams_store_frames_recovered_total",
                       "Committed frames re-indexed by startup recovery");
    m_torn_tails_ = reg.GetCounter(
        "geostreams_store_torn_tails_total",
        "Half-written page tails truncated by startup recovery");
    m_corrupt_regions_ = reg.GetCounter(
        "geostreams_store_corrupt_regions_total",
        "Mid-file corrupt regions skipped by recovery");
    m_frames_rejected_ = reg.GetCounter(
        "geostreams_store_frames_rejected_total",
        "Frames refused at PutFrame admission while storage is degraded");
    m_sync_errors_ = reg.GetCounter(
        "geostreams_store_sync_errors_total",
        "Segment Sync/Close failures (previously silently discarded)");
    m_frames_pruned_ = reg.GetCounter(
        "geostreams_store_frames_pruned_total",
        "Frames evicted from the index by retention budgets");
    m_segments_deleted_ = reg.GetCounter(
        "geostreams_store_segments_deleted_total",
        "Fully-dead page segments unlinked by GC");
    m_segments_rewritten_ = reg.GetCounter(
        "geostreams_store_segments_rewritten_total",
        "Mostly-dead page segments compacted by GC");
    m_bytes_reclaimed_ = reg.GetCounter(
        "geostreams_store_bytes_reclaimed_total",
        "Net on-disk bytes freed by retention and GC");
    m_put_latency_us_ = reg.GetHistogram(
        "geostreams_store_put_latency_us",
        "Tile + pyramid encode and append latency per committed frame");
    m_scan_frame_latency_us_ = reg.GetHistogram(
        "geostreams_store_scan_frame_latency_us",
        "Latency of replaying one stored frame into an event sink");
  }
}

TileStore::~TileStore() {
  {
    std::lock_guard<std::mutex> lock(gc_wake_mu_);
    stopping_ = true;
  }
  gc_cv_.notify_all();
  if (gc_thread_.joinable()) gc_thread_.join();
  Status st = SyncAll();  // SyncAll counts its own failures
  if (!st.ok()) {
    GEOSTREAMS_LOG(kWarning) << "tile store final sync: " << st.ToString();
  }
}

Result<std::unique_ptr<TileStore>> TileStore::Open(TileStoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("tile store directory must be non-empty");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("create " + options.dir + ": " + ec.message());
  }
  std::unique_ptr<TileStore> store(new TileStore(std::move(options)));
  GEOSTREAMS_RETURN_IF_ERROR(store->RecoverAll());
  if (store->options_.gc_interval_ms > 0) {
    TileStore* raw = store.get();
    store->gc_thread_ = std::thread([raw] { raw->GcThreadMain(); });
  }
  return store;
}

uint64_t TileStore::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status TileStore::RecoverAll() {
  std::error_code ec;
  std::vector<std::string> source_dirs;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.is_directory()) {
      source_dirs.push_back(entry.path().filename().string());
    }
  }
  if (ec) {
    return Status::IoError("list " + options_.dir + ": " + ec.message());
  }
  std::sort(source_dirs.begin(), source_dirs.end());
  for (const std::string& dir_name : source_dirs) {
    GEOSTREAMS_RETURN_IF_ERROR(RecoverSource(dir_name));
  }
  if (m_frames_recovered_) {
    m_frames_recovered_->Increment(recovery_.frames_recovered);
  }
  if (m_torn_tails_) m_torn_tails_->Increment(recovery_.torn_tails);
  if (m_corrupt_regions_) {
    m_corrupt_regions_->Increment(recovery_.corrupt_regions);
  }
  if (options_.governor != nullptr) {
    uint64_t on_disk = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, src] : sources_) {
      std::lock_guard<std::mutex> src_lock(src->mu);
      for (const auto& seg : src->segments) on_disk += seg.bytes;
    }
    options_.governor->SetUsage("store", on_disk);
  }
  return Status::OK();
}

Status TileStore::RecoverSource(const std::string& source_dir_name) {
  const std::string dir = options_.dir + "/" + source_dir_name;
  std::string source = source_dir_name;
  {
    std::vector<uint8_t> bytes;
    if (ReadWholeFile(dir + "/" + kNameFile, &bytes).ok() && !bytes.empty()) {
      source.assign(bytes.begin(), bytes.end());
      source = std::string(StripWhitespace(source));
    }
  }

  auto src = std::make_unique<SourceStore>();
  src->name = source;
  src->dir = dir;

  std::error_code ec;
  std::vector<std::string> pages;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string fname = entry.path().filename().string();
    if (fname.rfind(kPagePrefix, 0) == 0 &&
        fname.size() > std::strlen(kPageSuffix) &&
        fname.compare(fname.size() - std::strlen(kPageSuffix),
                      std::strlen(kPageSuffix), kPageSuffix) == 0) {
      pages.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IoError("list " + dir + ": " + ec.message());
  }
  std::sort(pages.begin(), pages.end());
  for (const std::string& page : pages) {
    const std::string fname = fs::path(page).filename().string();
    const uint64_t no = std::strtoull(
        fname.c_str() + std::strlen(kPagePrefix), nullptr, 10);
    if (no + 1 > src->next_page_no) src->next_page_no = no + 1;
  }

  // Pending (uncommitted) frame state while scanning one segment.
  std::shared_ptr<StoredFrame> pending;
  std::vector<uint32_t> pending_counts;  // tiles seen per level
  uint64_t pending_run_start = 0;        // offset of pending's kFrameMeta
  auto drop_pending = [&] {
    if (pending != nullptr) ++recovery_.incomplete_frames;
    pending.reset();
    pending_counts.clear();
  };
  const uint64_t recovered_now_ms = NowMs();

  for (size_t si = 0; si < pages.size(); ++si) {
    const bool last_segment = (si + 1 == pages.size());
    std::vector<uint8_t> data;
    GEOSTREAMS_RETURN_IF_ERROR(ReadWholeFile(pages[si], &data));
    src->segments.push_back(SourceStore::SegmentState{});
    src->segments.back().path = pages[si];
    const uint32_t seg_index = static_cast<uint32_t>(src->segments.size() - 1);
    size_t off = 0;
    uint64_t file_good_end = data.size();
    bool truncated = false;
    drop_pending();  // a frame never spans segments

    while (off < data.size()) {
      RecordType type;
      uint8_t level;
      const uint8_t* payload;
      size_t payload_len;
      Result<size_t> len = ValidateRecord(data.data() + off, data.size() - off,
                                          &type, &level, &payload,
                                          &payload_len);
      if (!len.ok()) {
        // Damage. Resync: the next offset where a record validates.
        size_t resync = data.size();
        for (size_t probe = off + 1; probe + kStoreHeaderSize <= data.size();
             ++probe) {
          if (std::memcmp(data.data() + probe, kStoreMagic, 4) != 0) continue;
          RecordType t2;
          uint8_t l2;
          const uint8_t* p2;
          size_t pl2;
          if (ValidateRecord(data.data() + probe, data.size() - probe, &t2,
                             &l2, &p2, &pl2)
                  .ok()) {
            resync = probe;
            break;
          }
        }
        drop_pending();
        if (resync == data.size() && last_segment) {
          // Torn tail: the write a crash interrupted. Truncate.
          ++recovery_.torn_tails;
          recovery_.torn_bytes += data.size() - off;
          file_good_end = off;
          truncated = true;
          break;
        }
        ++recovery_.corrupt_regions;
        GEOSTREAMS_LOG(kError)
            << "tile store source '" << source << "': corrupt region of "
            << (resync - off) << " bytes at offset " << off << " of "
            << pages[si] << " (" << len.status().message() << ")";
        off = resync;
        continue;
      }

      PayloadReader reader{payload, payload_len};
      switch (type) {
        case RecordType::kFrameMeta: {
          drop_pending();
          const int64_t frame_id = reader.I64();
          const uint16_t bands = reader.U16();
          const uint8_t level_count = static_cast<uint8_t>(reader.U16() & 0xff);
          const int64_t expected = reader.I64();
          const uint16_t crs_len = reader.U16();
          const uint8_t* crs_bytes = reader.Take(crs_len);
          const double ox = reader.F64();
          const double oy = reader.F64();
          const double dx = reader.F64();
          const double dy = reader.F64();
          const int64_t w = reader.I64();
          const int64_t h = reader.I64();
          if (!reader.ok || bands < 1 || level_count < 1) break;
          Result<CrsPtr> crs = ResolveCrs(
              std::string(reinterpret_cast<const char*>(crs_bytes), crs_len));
          if (!crs.ok()) {
            GEOSTREAMS_LOG(kWarning)
                << "tile store source '" << source
                << "': frame " << frame_id << " has unresolvable CRS; skipped";
            break;
          }
          pending = std::make_shared<StoredFrame>();
          pending->frame_id = frame_id;
          pending->band_count = bands;
          pending->expected_points = expected;
          pending->segment = seg_index;
          pending_run_start = off;
          pending->levels.resize(level_count);
          const GridLattice base(*crs, ox, oy, dx, dy, w, h);
          for (uint8_t l = 0; l < level_count; ++l) {
            pending->levels[l].lattice = l == 0 ? base : base.Reduced(1 << l);
          }
          pending_counts.assign(level_count, 0);
          break;
        }
        case RecordType::kTilePage: {
          if (pending == nullptr || level >= pending->levels.size()) break;
          const int64_t frame_id = reader.I64();
          const uint32_t tc = reader.U32();
          const uint32_t tr = reader.U32();
          const uint16_t tw = reader.U16();
          const uint16_t th = reader.U16();
          reader.U16();  // band count (validated against meta on read)
          reader.U16();  // pad
          if (!reader.ok || frame_id != pending->frame_id) break;
          TileRef ref;
          ref.segment = seg_index;
          ref.offset = off;
          ref.length = static_cast<uint32_t>(*len);
          ref.tile_col = tc;
          ref.tile_row = tr;
          ref.tile_w = tw;
          ref.tile_h = th;
          pending->levels[level].tiles.push_back(ref);
          ++pending_counts[level];
          break;
        }
        case RecordType::kFrameCommit: {
          if (pending == nullptr) break;
          const int64_t frame_id = reader.I64();
          const uint16_t level_count = reader.U16();
          bool counts_ok = reader.ok && frame_id == pending->frame_id &&
                           level_count == pending->levels.size();
          for (uint16_t l = 0; counts_ok && l < level_count; ++l) {
            counts_ok = reader.U32() == pending_counts[l] && reader.ok;
          }
          if (!counts_ok) {
            drop_pending();
            break;
          }
          if (src->frames.count(pending->frame_id) > 0) {
            // The duplicate's run bytes stay dead in this segment (a
            // crash mid-GC-rewrite leaves one of these; GC reclaims
            // the bytes once the segment's live fraction drops).
            ++recovery_.duplicate_frames;
          } else {
            uint64_t tiles = 0;
            for (const StoredLevel& lv : pending->levels) {
              tiles += lv.tiles.size();
            }
            pending->run_offset = pending_run_start;
            pending->run_bytes = off + *len - pending_run_start;
            pending->stored_ms = recovered_now_ms;
            src->segments[seg_index].live_bytes += pending->run_bytes;
            ++src->segments[seg_index].live_frames;
            recovery_.tile_pages_recovered += tiles;
            ++recovery_.frames_recovered;
            src->watermark = std::max(src->watermark, pending->frame_id);
            src->frames.emplace(pending->frame_id, std::move(pending));
          }
          pending.reset();
          pending_counts.clear();
          break;
        }
      }
      off += *len;
    }
    drop_pending();

    if (truncated) {
      std::error_code tec;
      fs::resize_file(pages[si], file_good_end, tec);
      if (tec) {
        return Status::IoError("truncate " + pages[si] + ": " + tec.message());
      }
      GEOSTREAMS_LOG(kWarning)
          << "tile store source '" << source << "': truncated torn tail at "
          << file_good_end << " of " << pages[si];
    }
    src->segments[seg_index].bytes = file_good_end;
    if (last_segment) src->resume_bytes = file_good_end;
  }

  std::lock_guard<std::mutex> lock(mu_);
  sources_.emplace(source, std::move(src));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Source lookup / segment management

TileStore::SourceStore* TileStore::FindSource(const std::string& source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source);
  return it == sources_.end() ? nullptr : it->second.get();
}

TileStore::SourceStore* TileStore::SourceFor(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source);
  if (it != sources_.end()) return it->second.get();
  auto src = std::make_unique<SourceStore>();
  src->name = source;
  src->dir = options_.dir + "/" + SourceDirName(source);
  std::error_code ec;
  fs::create_directories(src->dir, ec);
  if (!ec) {
    const std::string name_path = src->dir + "/" + kNameFile;
    if (!fs::exists(name_path, ec)) {
      Result<std::unique_ptr<WritableFile>> f = OpenPosixWritable(name_path);
      if (f.ok()) {
        const std::string line = source + "\n";
        Status ignored = (*f)->Append(
            reinterpret_cast<const uint8_t*>(line.data()), line.size());
        ignored = (*f)->Close();
        (void)ignored;
      }
    }
  }
  SourceStore* out = src.get();
  sources_.emplace(source, std::move(src));
  return out;
}

Result<std::unique_ptr<WritableFile>> TileStore::OpenFile(
    const std::string& path) {
  if (options_.file_factory) return options_.file_factory(path);
  return OpenPosixWritable(path);
}

Status TileStore::EnsureOpenLocked(SourceStore* src) {
  if (src->active != nullptr && !src->tainted &&
      src->active_bytes < options_.segment_max_bytes) {
    return Status::OK();
  }
  if (src->active != nullptr) {
    // Sealing failures no longer vanish: a failed fsync here means
    // the sealed segment's tail may not survive power loss.
    Status sync_st = src->active->Sync();
    Status close_st = src->active->Close();
    if (!sync_st.ok() || !close_st.ok()) {
      ++src->stats.sync_errors;
      if (m_sync_errors_) m_sync_errors_->Increment();
      GEOSTREAMS_LOG(kWarning)
          << "tile store source '" << src->name << "': sealing segment: "
          << (!sync_st.ok() ? sync_st : close_st).ToString();
    }
    src->active.reset();
  }
  const bool resume = !src->tainted && !src->resumed &&
                      !src->segments.empty() &&
                      !src->segments.back().dead &&
                      src->resume_bytes < options_.segment_max_bytes;
  src->resumed = true;
  src->tainted = false;
  if (resume) {
    GEOSTREAMS_ASSIGN_OR_RETURN(src->active,
                                OpenFile(src->segments.back().path));
    src->active_index = static_cast<uint32_t>(src->segments.size() - 1);
    src->active_bytes = src->resume_bytes;
    return Status::OK();
  }
  const std::string path =
      src->dir + "/" + kPagePrefix +
      StringPrintf("%06llu",
                   static_cast<unsigned long long>(src->next_page_no++)) +
      kPageSuffix;
  GEOSTREAMS_ASSIGN_OR_RETURN(src->active, OpenFile(path));
  src->segments.push_back(SourceStore::SegmentState{});
  src->segments.back().path = path;
  src->active_index = static_cast<uint32_t>(src->segments.size() - 1);
  src->active_bytes = 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Write path

Status TileStore::PutFrame(const std::string& source, const FrameInfo& info,
                           const Raster& raster,
                           const std::vector<uint8_t>& filled) {
  const int64_t w = raster.width();
  const int64_t h = raster.height();
  if (w <= 0 || h <= 0) {
    return Status::InvalidArgument("cannot store an empty raster");
  }
  if (filled.size() != static_cast<size_t>(w * h)) {
    return Status::InvalidArgument("occupancy mask does not match raster");
  }
  const GridLattice& base =
      raster.lattice().width() == w && raster.lattice().height() == h
          ? raster.lattice()
          : info.lattice;
  if (base.crs() == nullptr) {
    return Status::InvalidArgument("stored frames need a lattice with a CRS");
  }

  SourceStore* src = SourceFor(source);
  std::lock_guard<std::mutex> lock(src->mu);
  if (src->frames.count(info.frame_id) > 0) {
    return Status::OK();  // producer replay after a crash: already durable
  }
  StorageGovernor* gov = options_.governor;
  if (gov != nullptr) {
    // Degraded-mode shed happens before any encode work; replayed
    // already-durable frames (above) still succeed while degraded.
    Status admit = gov->Admit("store");
    if (!admit.ok()) {
      ++src->stats.frames_rejected;
      if (m_frames_rejected_) m_frames_rejected_->Increment();
      return admit;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();

  // Build the pyramid in memory: level 0 is the frame itself, each
  // further level halves the resolution until one tile covers it.
  std::vector<LevelImage> levels;
  levels.push_back(LevelImage{raster, filled});
  levels.back().raster.set_lattice(base);
  const int tile = options_.tile_size;
  while (static_cast<int>(levels.size()) <= options_.max_levels &&
         (levels.back().raster.width() > tile ||
          levels.back().raster.height() > tile)) {
    levels.push_back(ReduceMasked(levels.back()));
  }

  auto frame = std::make_shared<StoredFrame>();
  frame->frame_id = info.frame_id;
  frame->band_count = raster.bands();
  frame->expected_points = info.expected_points;
  frame->levels.resize(levels.size());
  for (size_t l = 0; l < levels.size(); ++l) {
    frame->levels[l].lattice =
        l == 0 ? base : base.Reduced(1 << static_cast<int>(l));
  }

  // Encode the whole record run (meta, pages, commit) into one
  // buffer; a single append keeps the run contiguous and makes any
  // torn write an uncommitted (hence invisible) frame.
  std::vector<uint8_t> run;
  std::vector<uint8_t> payload;
  {
    payload.clear();
    PutI64(payload, info.frame_id);
    PutU16(payload, static_cast<uint16_t>(raster.bands()));
    PutU16(payload, static_cast<uint16_t>(levels.size() & 0xff));
    PutI64(payload, info.expected_points);
    const std::string& crs_name = base.crs()->name();
    PutU16(payload, static_cast<uint16_t>(crs_name.size()));
    payload.insert(payload.end(), crs_name.begin(), crs_name.end());
    PutF64(payload, base.origin_x());
    PutF64(payload, base.origin_y());
    PutF64(payload, base.dx());
    PutF64(payload, base.dy());
    PutI64(payload, base.width());
    PutI64(payload, base.height());
    AppendHeader(run, RecordType::kFrameMeta, 0, payload);
  }

  std::vector<uint32_t> level_counts(levels.size(), 0);
  uint64_t total_tiles = 0;
  for (size_t l = 0; l < levels.size(); ++l) {
    const LevelImage& img = levels[l];
    const int64_t lw = img.raster.width();
    const int64_t lh = img.raster.height();
    const int bands = img.raster.bands();
    const int64_t tiles_x = (lw + tile - 1) / tile;
    const int64_t tiles_y = (lh + tile - 1) / tile;
    for (int64_t tr = 0; tr < tiles_y; ++tr) {
      for (int64_t tc = 0; tc < tiles_x; ++tc) {
        const int64_t c0 = tc * tile;
        const int64_t r0 = tr * tile;
        const uint16_t tw = static_cast<uint16_t>(std::min<int64_t>(tile, lw - c0));
        const uint16_t th = static_cast<uint16_t>(std::min<int64_t>(tile, lh - r0));
        // Occupancy bitmap + filled samples only: a restricted stream
        // covering 5% of the sector costs 5% of the page bytes.
        std::vector<uint8_t> bitmap((static_cast<size_t>(tw) * th + 7) / 8, 0);
        std::vector<double> samples;
        uint32_t filled_cells = 0;
        for (int64_t r = 0; r < th; ++r) {
          for (int64_t c = 0; c < tw; ++c) {
            const size_t cell = static_cast<size_t>((r0 + r) * lw + (c0 + c));
            if (!img.filled[cell]) continue;
            const size_t bit = static_cast<size_t>(r * tw + c);
            bitmap[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
            ++filled_cells;
            for (int b = 0; b < bands; ++b) {
              samples.push_back(img.raster.At(c0 + c, r0 + r, b));
            }
          }
        }
        if (filled_cells == 0) continue;  // empty tiles are never written
        payload.clear();
        PutI64(payload, info.frame_id);
        PutU32(payload, static_cast<uint32_t>(tc));
        PutU32(payload, static_cast<uint32_t>(tr));
        PutU16(payload, tw);
        PutU16(payload, th);
        PutU16(payload, static_cast<uint16_t>(bands));
        PutU16(payload, 0);
        payload.insert(payload.end(), bitmap.begin(), bitmap.end());
        for (double v : samples) PutF64(payload, v);

        TileRef ref;
        ref.segment = 0;               // fixed up after the append
        ref.offset = run.size();       // relative to the run for now
        ref.tile_col = static_cast<uint32_t>(tc);
        ref.tile_row = static_cast<uint32_t>(tr);
        ref.tile_w = tw;
        ref.tile_h = th;
        const size_t before = run.size();
        AppendHeader(run, RecordType::kTilePage, static_cast<uint8_t>(l),
                     payload);
        ref.length = static_cast<uint32_t>(run.size() - before);
        frame->levels[l].tiles.push_back(ref);
        ++level_counts[l];
        ++total_tiles;
      }
    }
  }

  {
    payload.clear();
    PutI64(payload, info.frame_id);
    PutU16(payload, static_cast<uint16_t>(levels.size()));
    for (uint32_t count : level_counts) PutU32(payload, count);
    AppendHeader(run, RecordType::kFrameCommit, 0, payload);
  }

  Status st = EnsureOpenLocked(src);
  if (st.ok()) st = src->active->Append(run.data(), run.size());
  if (st.ok() && options_.fsync_frames) st = src->active->Sync();
  if (gov != nullptr) gov->RecordWriteResult("store", st);
  if (!st.ok()) {
    // Abandon the segment: the partial run has no commit record, so
    // recovery (and every reader — it is not indexed) ignores it.
    if (src->active != nullptr) {
      Status ignored = src->active->Close();
      (void)ignored;
      src->active.reset();
    }
    src->tainted = true;
    ++src->stats.write_errors;
    if (m_write_errors_) m_write_errors_->Increment();
    return st;
  }

  const uint64_t base_off = src->active_bytes;
  src->active_bytes += run.size();
  for (StoredLevel& lv : frame->levels) {
    for (TileRef& ref : lv.tiles) {
      ref.segment = src->active_index;
      ref.offset += base_off;
    }
  }
  frame->segment = src->active_index;
  frame->run_offset = base_off;
  frame->run_bytes = run.size();
  frame->stored_ms = NowMs();
  SourceStore::SegmentState& seg = src->segments[src->active_index];
  seg.bytes = src->active_bytes;
  seg.live_bytes += run.size();
  ++seg.live_frames;
  if (gov != nullptr) {
    gov->AddUsage("store", static_cast<int64_t>(run.size()));
  }
  src->watermark = std::max(src->watermark, info.frame_id);
  src->frames.emplace(info.frame_id, std::move(frame));
  ++src->stats.frames_written;
  src->stats.tiles_written += total_tiles;
  src->stats.bytes_written += run.size();
  if (m_frames_written_) m_frames_written_->Increment();
  if (m_tiles_written_) m_tiles_written_->Increment(total_tiles);
  if (m_bytes_written_) m_bytes_written_->Increment(run.size());
  if (m_put_latency_us_) m_put_latency_us_->Observe(ElapsedUs(t0));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Read path

int64_t TileStore::Watermark(const std::string& source) const {
  SourceStore* src = FindSource(source);
  if (src == nullptr) return std::numeric_limits<int64_t>::min();
  std::lock_guard<std::mutex> lock(src->mu);
  return src->watermark;
}

std::vector<int64_t> TileStore::FrameIds(const std::string& source,
                                         int64_t lo, int64_t hi) const {
  std::vector<int64_t> out;
  SourceStore* src = FindSource(source);
  if (src == nullptr) return out;
  std::lock_guard<std::mutex> lock(src->mu);
  for (auto it = src->frames.lower_bound(lo);
       it != src->frames.end() && it->first <= hi; ++it) {
    out.push_back(it->first);
  }
  return out;
}

Status TileStore::ReadTileRecord(SourceStore* src, const TileRef& ref,
                                 std::vector<uint8_t>* buf) {
  // Lock order is mu -> read_mu everywhere (GC pre-caches fds while
  // holding mu), so the cache miss path releases read_mu before
  // touching the segment table.
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(src->read_mu);
    auto it = src->read_fds.find(ref.segment);
    if (it != src->read_fds.end()) fd = it->second;
  }
  if (fd < 0) {
    std::string path;
    {
      std::lock_guard<std::mutex> seg_lock(src->mu);
      if (ref.segment >= src->segments.size()) {
        return Status::Internal("tile ref names an unknown segment");
      }
      if (src->segments[ref.segment].dead) {
        // Only reachable when GC's pre-unlink fd cache failed: the
        // tile is gone; the scan serves what survives.
        return Status::IoError("tile page segment retired under the index");
      }
      path = src->segments[ref.segment].path;
    }
    const int opened = ::open(path.c_str(), O_RDONLY);
    if (opened < 0) {
      return Status::IoError(StringPrintf("open %s: %s", path.c_str(),
                                          std::strerror(errno)));
    }
    std::lock_guard<std::mutex> lock(src->read_mu);
    auto [it, inserted] = src->read_fds.emplace(ref.segment, opened);
    if (!inserted) ::close(opened);  // lost the race; use the cached fd
    fd = it->second;
  }
  buf->resize(ref.length);
  size_t got = 0;
  while (got < ref.length) {
    const ssize_t n =
        ::pread(fd, buf->data() + got, ref.length - got,
                static_cast<off_t>(ref.offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StringPrintf("pread: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError("tile page truncated under the index");
    }
    got += static_cast<size_t>(n);
  }
  RecordType type;
  uint8_t level;
  const uint8_t* payload;
  size_t payload_len;
  GEOSTREAMS_ASSIGN_OR_RETURN(
      size_t total, ValidateRecord(buf->data(), buf->size(), &type, &level,
                                   &payload, &payload_len));
  if (total != buf->size() || type != RecordType::kTilePage) {
    return Status::IoError("tile ref does not address a tile page");
  }
  return Status::OK();
}

Status TileStore::EmitFrame(SourceStore* src,
                            const std::shared_ptr<const StoredFrame>& frame,
                            const StoreScan& scan, EventSink* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  // The deepest overview whose scale stays within the reduce hint:
  // reading a 4x-reduced view touches ~1/16th of the cells.
  size_t level = 0;
  while (level + 1 < frame->levels.size() &&
         (1 << static_cast<int>(level + 1)) <= std::max(scan.reduce, 1)) {
    ++level;
  }
  const StoredLevel& lv = frame->levels[level];
  const GridLattice& lattice = lv.lattice;

  FrameInfo info;
  info.frame_id = frame->frame_id;
  info.lattice = lattice;
  // Same convention as the stream generator's FrameBegin; nothing
  // gates frame completion on it (FrameEnd does), it is metadata.
  info.expected_points = lattice.num_cells();
  GEOSTREAMS_RETURN_IF_ERROR(sink->Consume(StreamEvent::FrameBegin(info)));

  BoundingBox region_bounds;
  if (scan.region != nullptr) region_bounds = scan.region->bounds();
  const double half_x = std::abs(lattice.dx()) / 2.0;
  const double half_y = std::abs(lattice.dy()) / 2.0;

  auto batch = std::make_shared<PointBatch>();
  auto reset_batch = [&] {
    batch = std::make_shared<PointBatch>();
    batch->frame_id = frame->frame_id;
    batch->band_count = frame->band_count;
    batch->Reserve(scan.max_batch_points);
  };
  reset_batch();
  auto flush_batch = [&]() -> Status {
    if (batch->empty()) return Status::OK();
    PointBatchPtr out = std::move(batch);
    reset_batch();
    return sink->Consume(StreamEvent::Batch(std::move(out)));
  };

  // Temporal pruning: a frame outside the pushed-down time sets emits
  // its Begin/End (the live temporal op forwards control events, and
  // replay must match that sequence exactly) but reads no tiles.
  bool times_pass = true;
  for (const TimeSet& times : scan.times) {
    if (!times.Contains(frame->frame_id)) {
      times_pass = false;
      break;
    }
  }

  uint64_t tiles_read = 0;
  uint64_t tile_errors = 0;
  std::vector<uint8_t> buf;
  bool warned = false;
  static const std::vector<TileRef> kNoTiles;
  for (const TileRef& ref : times_pass ? lv.tiles : kNoTiles) {
    if (scan.region != nullptr) {
      // Tile extent from cell centres, padded by half a cell.
      const int64_t c0 = static_cast<int64_t>(ref.tile_col) *
                         options_.tile_size;
      const int64_t r0 = static_cast<int64_t>(ref.tile_row) *
                         options_.tile_size;
      const double x0 = lattice.CellX(c0);
      const double x1 = lattice.CellX(c0 + ref.tile_w - 1);
      const double y0 = lattice.CellY(r0);
      const double y1 = lattice.CellY(r0 + ref.tile_h - 1);
      BoundingBox tile_box(std::min(x0, x1) - half_x, std::min(y0, y1) - half_y,
                           std::max(x0, x1) + half_x,
                           std::max(y0, y1) + half_y);
      if (!tile_box.Intersects(region_bounds)) continue;
    }
    Status st = ReadTileRecord(src, ref, &buf);
    if (!st.ok()) {
      // Serve what survives: a rotten page loses its tile, not the
      // frame, and the loss is counted and logged once.
      ++tile_errors;
      if (m_tile_read_errors_) m_tile_read_errors_->Increment();
      if (!warned) {
        warned = true;
        GEOSTREAMS_LOG(kWarning)
            << "tile store source '" << src->name << "': unreadable tile in "
            << "frame " << frame->frame_id << ": " << st.ToString();
      }
      continue;
    }
    ++tiles_read;
    const uint8_t* payload = buf.data() + kStoreHeaderSize;
    PayloadReader reader{payload, buf.size() - kStoreHeaderSize};
    reader.I64();  // frame id (validated by the index)
    reader.U32();  // tile col
    reader.U32();  // tile row
    const uint16_t tw = reader.U16();
    const uint16_t th = reader.U16();
    const uint16_t bands = reader.U16();
    reader.U16();
    const size_t bitmap_len = (static_cast<size_t>(tw) * th + 7) / 8;
    const uint8_t* bitmap = reader.Take(bitmap_len);
    if (!reader.ok || bands != frame->band_count || tw != ref.tile_w ||
        th != ref.tile_h) {
      ++tile_errors;
      if (m_tile_read_errors_) m_tile_read_errors_->Increment();
      continue;
    }
    const int64_t c0 = static_cast<int64_t>(ref.tile_col) * options_.tile_size;
    const int64_t r0 = static_cast<int64_t>(ref.tile_row) * options_.tile_size;
    std::vector<double> vals(static_cast<size_t>(bands));
    for (int64_t r = 0; r < th; ++r) {
      for (int64_t c = 0; c < tw; ++c) {
        const size_t bit = static_cast<size_t>(r * tw + c);
        if ((bitmap[bit >> 3] & (1u << (bit & 7))) == 0) continue;
        bool keep = true;
        const int64_t col = c0 + c;
        const int64_t row = r0 + r;
        if (scan.region != nullptr &&
            !scan.region->Contains(lattice.CellX(col), lattice.CellY(row))) {
          keep = false;
        }
        if (keep) {
          for (int b = 0; b < bands; ++b) {
            vals[static_cast<size_t>(b)] = reader.F64();
          }
          batch->Append(static_cast<int32_t>(col), static_cast<int32_t>(row),
                        frame->frame_id, vals.data());
          if (batch->size() >= scan.max_batch_points) {
            GEOSTREAMS_RETURN_IF_ERROR(flush_batch());
          }
        } else {
          reader.Take(static_cast<size_t>(bands) * 8);  // skip the samples
        }
      }
    }
  }
  GEOSTREAMS_RETURN_IF_ERROR(flush_batch());
  GEOSTREAMS_RETURN_IF_ERROR(sink->Consume(StreamEvent::FrameEnd(info)));

  {
    std::lock_guard<std::mutex> lock(src->mu);
    ++src->stats.frames_read;
    src->stats.tiles_read += tiles_read;
    src->stats.tile_read_errors += tile_errors;
  }
  if (m_frames_read_) m_frames_read_->Increment();
  if (m_tiles_read_) m_tiles_read_->Increment(tiles_read);
  if (m_scan_frame_latency_us_) m_scan_frame_latency_us_->Observe(ElapsedUs(t0));
  return Status::OK();
}

namespace {

bool FramePasses(int64_t frame_id, const StoreScan& scan) {
  // Only the id bounds select frames; scan.times prune tile IO inside
  // EmitFrame but never suppress a frame's control events.
  return frame_id >= scan.min_frame_id && frame_id <= scan.max_frame_id;
}

}  // namespace

Status TileStore::Scan(const std::string& source, const StoreScan& scan,
                       EventSink* sink) {
  SourceStore* src = FindSource(source);
  if (src == nullptr) return Status::OK();
  // active_scans is raised under the index lock, BEFORE snapshotting:
  // GC observing zero scans knows no reader can hold pre-prune frame
  // pointers, so tombstoned fds are safe to reap.
  std::vector<std::shared_ptr<const StoredFrame>> frames;
  {
    std::lock_guard<std::mutex> lock(src->mu);
    src->active_scans.fetch_add(1, std::memory_order_relaxed);
    for (auto it = src->frames.lower_bound(scan.min_frame_id);
         it != src->frames.end() && it->first <= scan.max_frame_id; ++it) {
      if (FramePasses(it->first, scan)) frames.push_back(it->second);
    }
  }
  Status st = Status::OK();
  for (const auto& frame : frames) {
    st = EmitFrame(src, frame, scan, sink);
    if (!st.ok()) break;
  }
  src->active_scans.fetch_sub(1, std::memory_order_release);
  return st;
}

Status TileStore::ScanFrame(const std::string& source, int64_t frame_id,
                            const StoreScan& scan, EventSink* sink) {
  SourceStore* src = FindSource(source);
  if (src == nullptr) {
    return Status::NotFound("no stored frames for source " + source);
  }
  std::shared_ptr<const StoredFrame> frame;
  {
    std::lock_guard<std::mutex> lock(src->mu);
    src->active_scans.fetch_add(1, std::memory_order_relaxed);
    auto it = src->frames.find(frame_id);
    if (it != src->frames.end()) frame = it->second;
  }
  Status st;
  if (frame == nullptr || !FramePasses(frame_id, scan)) {
    st = Status::NotFound(StringPrintf(
        "frame %lld is not stored for source %s",
        static_cast<long long>(frame_id), source.c_str()));
  } else {
    st = EmitFrame(src, frame, scan, sink);
  }
  src->active_scans.fetch_sub(1, std::memory_order_release);
  return st;
}

StoreHorizon TileStore::Horizon(const std::string& source) const {
  StoreHorizon out;
  SourceStore* src = FindSource(source);
  if (src == nullptr) return out;
  std::lock_guard<std::mutex> lock(src->mu);
  if (!src->frames.empty()) out.oldest_frame_id = src->frames.begin()->first;
  out.pruned_upto = src->pruned_upto;
  out.frames_pruned = src->stats.frames_pruned;
  return out;
}

TileStoreStats TileStore::TotalStats() const {
  std::vector<SourceStore*> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources.reserve(sources_.size());
    for (const auto& [name, src] : sources_) sources.push_back(src.get());
  }
  TileStoreStats total;
  for (SourceStore* src : sources) {
    std::lock_guard<std::mutex> lock(src->mu);
    total.frames_written += src->stats.frames_written;
    total.tiles_written += src->stats.tiles_written;
    total.bytes_written += src->stats.bytes_written;
    total.write_errors += src->stats.write_errors;
    total.frames_read += src->stats.frames_read;
    total.tiles_read += src->stats.tiles_read;
    total.tile_read_errors += src->stats.tile_read_errors;
    total.frames_rejected += src->stats.frames_rejected;
    total.sync_errors += src->stats.sync_errors;
    total.frames_pruned += src->stats.frames_pruned;
    total.segments_deleted += src->stats.segments_deleted;
    total.segments_rewritten += src->stats.segments_rewritten;
    total.bytes_reclaimed += src->stats.bytes_reclaimed;
  }
  return total;
}

Status TileStore::SyncAll() {
  std::vector<SourceStore*> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources.reserve(sources_.size());
    for (const auto& [name, src] : sources_) sources.push_back(src.get());
  }
  Status first = Status::OK();
  for (SourceStore* src : sources) {
    std::lock_guard<std::mutex> lock(src->mu);
    if (src->active == nullptr) continue;
    Status st = src->active->Sync();
    if (!st.ok()) {
      ++src->stats.sync_errors;
      if (m_sync_errors_) m_sync_errors_->Increment();
      if (first.ok()) first = st;
    }
  }
  return first;
}

// ---------------------------------------------------------------------------
// Retention and garbage collection

void TileStore::GcThreadMain() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(gc_wake_mu_);
      gc_cv_.wait_for(lock, std::chrono::milliseconds(options_.gc_interval_ms),
                      [this] { return stopping_; });
      if (stopping_) return;
    }
    Status st = RunRetentionNow();
    if (!st.ok()) {
      GEOSTREAMS_LOG(kWarning)
          << "tile store retention pass: " << st.ToString();
    }
  }
}

Status TileStore::RunRetentionNow() {
  std::lock_guard<std::mutex> gc_lock(gc_mu_);
  std::vector<SourceStore*> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources.reserve(sources_.size());
    for (const auto& [name, src] : sources_) sources.push_back(src.get());
  }
  Status first = Status::OK();
  for (SourceStore* src : sources) {
    Status st = ApplyRetentionSource(src);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status TileStore::ApplyRetentionSource(SourceStore* src) {
  StorageGovernor* gov = options_.governor;
  uint64_t max_bytes = options_.retention_max_bytes;
  uint64_t max_age_ms = options_.retention_max_age_ms;
  const uint64_t max_frames = options_.retention_max_frames;
  if (gov != nullptr) {
    // The governor's "store" budget tightens the static knobs
    // (applied per source, like the journal's retention caps).
    const SubsystemBudget budget = gov->Budget("store");
    if (budget.max_bytes > 0 &&
        (max_bytes == 0 || budget.max_bytes < max_bytes)) {
      max_bytes = budget.max_bytes;
    }
    if (budget.max_age_ms > 0 &&
        (max_age_ms == 0 || budget.max_age_ms < max_age_ms)) {
      max_age_ms = budget.max_age_ms;
    }
  }
  const uint64_t now = NowMs();
  Status first = Status::OK();
  uint64_t reclaimed_total = 0;
  uint64_t pruned_this_pass = 0;
  uint64_t segments_deleted_this_pass = 0;
  uint64_t segments_rewritten_this_pass = 0;

  std::lock_guard<std::mutex> lock(src->mu);

  // Phase 1 — prune the oldest frames over budget. Disk bytes only
  // actually drop when segment GC (phase 2) runs, so the byte budget
  // works on a projection that debits each pruned frame's run.
  uint64_t projected = 0;
  for (const auto& seg : src->segments) {
    if (!seg.dead) projected += seg.bytes;
  }
  while (src->frames.size() > options_.retention_min_frames) {
    auto oldest = src->frames.begin();
    bool evict = false;
    if (max_frames > 0 && src->frames.size() > max_frames) evict = true;
    if (!evict && max_bytes > 0 && projected > max_bytes) evict = true;
    if (!evict && max_age_ms > 0) {
      const uint64_t stored = oldest->second->stored_ms;
      if (now > stored && now - stored > max_age_ms) evict = true;
    }
    if (!evict) break;
    const StoredFrame& f = *oldest->second;
    if (f.segment < src->segments.size()) {
      SourceStore::SegmentState& seg = src->segments[f.segment];
      seg.live_bytes -= std::min(seg.live_bytes, f.run_bytes);
      if (seg.live_frames > 0) --seg.live_frames;
    }
    projected -= std::min(projected, f.run_bytes);
    src->pruned_upto = std::max(src->pruned_upto, f.frame_id);
    ++src->stats.frames_pruned;
    ++pruned_this_pass;
    if (m_frames_pruned_) m_frames_pruned_->Increment();
    src->frames.erase(oldest);
  }

  // Phase 2 — segment GC over sealed segments. The newest slot is
  // skipped (it is the active segment or this incarnation's resume
  // target); vector growth inside a rewrite is why access is by
  // index, never by held reference.
  const uint32_t seg_count = static_cast<uint32_t>(src->segments.size());
  for (uint32_t i = 0; i + 1 < seg_count; ++i) {
    if (src->segments[i].dead) continue;
    if (src->active != nullptr && i == src->active_index) continue;
    if (src->segments[i].live_frames == 0) {
      const uint64_t freed = RetireSegmentLocked(src, i);
      if (freed > 0) {
        reclaimed_total += freed;
        ++src->stats.segments_deleted;
        ++segments_deleted_this_pass;
        if (m_segments_deleted_) m_segments_deleted_->Increment();
      }
      continue;
    }
    const uint64_t bytes = src->segments[i].bytes;
    const uint64_t live = std::min(bytes, src->segments[i].live_bytes);
    if (options_.gc_rewrite_dead_fraction > 0 && bytes > 0) {
      const double dead_fraction =
          static_cast<double>(bytes - live) / static_cast<double>(bytes);
      if (dead_fraction >= options_.gc_rewrite_dead_fraction) {
        uint64_t reclaimed = 0;
        Status st = RewriteSegmentLocked(src, i, &reclaimed);
        reclaimed_total += reclaimed;
        if (reclaimed > 0) ++segments_rewritten_this_pass;
        if (!st.ok() && first.ok()) first = st;
      }
    }
  }

  ReapDeadFdsLocked(src);

  if (reclaimed_total > 0) {
    src->stats.bytes_reclaimed += reclaimed_total;
    if (m_bytes_reclaimed_) m_bytes_reclaimed_->Increment(reclaimed_total);
    if (gov != nullptr) {
      gov->AddUsage("store", -static_cast<int64_t>(reclaimed_total));
    }
  }
  if (options_.event_log != nullptr &&
      (pruned_this_pass > 0 || segments_deleted_this_pass > 0 ||
       segments_rewritten_this_pass > 0)) {
    // One event per source per pass, never per frame: a steady prune
    // cadence cannot evict more interesting ring entries.
    options_.event_log->Append(
        EventSeverity::kInfo, "store", "retention",
        StringPrintf("source=%s pruned=%llu segments_deleted=%llu "
                     "segments_rewritten=%llu reclaimed_bytes=%llu",
                     src->name.c_str(),
                     static_cast<unsigned long long>(pruned_this_pass),
                     static_cast<unsigned long long>(
                         segments_deleted_this_pass),
                     static_cast<unsigned long long>(
                         segments_rewritten_this_pass),
                     static_cast<unsigned long long>(reclaimed_total)));
  }
  return first;
}

uint64_t TileStore::RetireSegmentLocked(SourceStore* src, uint32_t seg_index) {
  SourceStore::SegmentState& seg = src->segments[seg_index];
  {
    // Cache a read fd BEFORE the unlink: a scan that snapshotted
    // before the prune keeps reading the unlinked file through it
    // (POSIX keeps the inode alive until the last fd closes).
    std::lock_guard<std::mutex> rlock(src->read_mu);
    if (src->read_fds.find(seg_index) == src->read_fds.end()) {
      const int fd = ::open(seg.path.c_str(), O_RDONLY);
      if (fd >= 0) src->read_fds.emplace(seg_index, fd);
    }
  }
  std::error_code ec;
  fs::remove(seg.path, ec);
  if (ec) {
    GEOSTREAMS_LOG(kWarning)
        << "tile store: remove " << seg.path << ": " << ec.message()
        << " (will retry next pass)";
    return 0;
  }
  const uint64_t freed = seg.bytes;
  seg.dead = true;
  seg.bytes = 0;
  seg.live_bytes = 0;
  seg.live_frames = 0;
  src->dead_fd_reap.push_back(seg_index);
  return freed;
}

Status TileStore::RewriteSegmentLocked(SourceStore* src, uint32_t seg_index,
                                       uint64_t* reclaimed) {
  *reclaimed = 0;
  // Surviving frames of this segment, in file order.
  std::vector<std::shared_ptr<const StoredFrame>> live;
  for (const auto& [id, frame] : src->frames) {
    if (frame->segment == seg_index) live.push_back(frame);
  }
  std::sort(live.begin(), live.end(),
            [](const std::shared_ptr<const StoredFrame>& a,
               const std::shared_ptr<const StoredFrame>& b) {
              return a->run_offset < b->run_offset;
            });
  if (live.empty()) {
    const uint64_t freed = RetireSegmentLocked(src, seg_index);
    if (freed > 0) {
      *reclaimed = freed;
      ++src->stats.segments_deleted;
      if (m_segments_deleted_) m_segments_deleted_->Increment();
    }
    return Status::OK();
  }

  const uint64_t old_bytes = src->segments[seg_index].bytes;
  std::vector<uint8_t> data;
  GEOSTREAMS_RETURN_IF_ERROR(
      ReadWholeFile(src->segments[seg_index].path, &data));

  // Pack the live runs into a fresh page, written through the
  // injectable factory so crash kill-points and injected ENOSPC gate
  // GC exactly like ingestion.
  std::vector<uint8_t> packed;
  std::vector<uint64_t> new_offsets;
  new_offsets.reserve(live.size());
  for (const auto& frame : live) {
    if (frame->run_offset + frame->run_bytes > data.size()) {
      return Status::Internal(StringPrintf(
          "frame %lld run exceeds segment bounds",
          static_cast<long long>(frame->frame_id)));
    }
    new_offsets.push_back(packed.size());
    packed.insert(packed.end(), data.begin() + frame->run_offset,
                  data.begin() + frame->run_offset + frame->run_bytes);
  }

  const std::string path =
      src->dir + "/" + kPagePrefix +
      StringPrintf("%06llu",
                   static_cast<unsigned long long>(src->next_page_no++)) +
      kPageSuffix;
  Status st;
  {
    Result<std::unique_ptr<WritableFile>> out = OpenFile(path);
    if (!out.ok()) return out.status();
    st = (*out)->Append(packed.data(), packed.size());
    // The copy is durable before the original is unlinked: a crash in
    // between leaves the frames committed twice, and recovery's
    // duplicate-frame dedup keeps exactly one.
    if (st.ok()) st = (*out)->Sync();
    Status close_st = (*out)->Close();
    if (st.ok()) st = close_st;
  }
  if (options_.governor != nullptr) {
    options_.governor->RecordWriteResult("store", st);
  }
  if (!st.ok()) {
    std::error_code ec;
    fs::remove(path, ec);  // the half-written copy is dead weight
    return st;
  }

  // Install the copy: new segment slot, fresh StoredFrame objects
  // (in-flight snapshots keep the old ones and their cached fd).
  src->segments.push_back(SourceStore::SegmentState{});
  const uint32_t new_index = static_cast<uint32_t>(src->segments.size() - 1);
  SourceStore::SegmentState& new_seg = src->segments[new_index];
  new_seg.path = path;
  new_seg.bytes = packed.size();
  new_seg.live_bytes = packed.size();
  new_seg.live_frames = live.size();
  for (size_t k = 0; k < live.size(); ++k) {
    auto copy = std::make_shared<StoredFrame>(*live[k]);
    copy->segment = new_index;
    copy->run_offset = new_offsets[k];
    for (StoredLevel& lv : copy->levels) {
      for (TileRef& ref : lv.tiles) {
        ref.segment = new_index;
        ref.offset = ref.offset - live[k]->run_offset + new_offsets[k];
      }
    }
    src->frames[copy->frame_id] = std::move(copy);
  }

  const uint64_t freed = RetireSegmentLocked(src, seg_index);
  if (freed >= packed.size()) {
    *reclaimed = freed - packed.size();
  }
  ++src->stats.segments_rewritten;
  if (m_segments_rewritten_) m_segments_rewritten_->Increment();
  if (options_.governor != nullptr && freed == 0) {
    // Unlink failed: the new copy still landed, account its bytes.
    options_.governor->AddUsage("store", static_cast<int64_t>(packed.size()));
  }
  return Status::OK();
}

void TileStore::ReapDeadFdsLocked(SourceStore* src) {
  if (src->dead_fd_reap.empty()) return;
  if (src->active_scans.load(std::memory_order_acquire) != 0) return;
  std::lock_guard<std::mutex> rlock(src->read_mu);
  for (uint32_t idx : src->dead_fd_reap) {
    auto it = src->read_fds.find(idx);
    if (it != src->read_fds.end()) {
      ::close(it->second);
      src->read_fds.erase(it);
    }
  }
  src->dead_fd_reap.clear();
}

// ---------------------------------------------------------------------------
// StoreIngestSink

namespace {

/// Minimum gap between store-failure warnings from one sink. A
/// degraded disk fails every frame; one line per frame floods the log
/// without adding information.
constexpr uint64_t kStoreWarnIntervalMs = 5000;

uint64_t SteadyMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StoreIngestSink::StoreIngestSink(TileStore* store, std::string source)
    : store_(store), source_(std::move(source)) {}

void StoreIngestSink::WarnStoreFailure(const Status& status,
                                       const char* what) {
  const uint64_t now = SteadyMs();
  if (in_error_streak_ && now - last_warn_ms_ < kStoreWarnIntervalMs) {
    ++suppressed_warnings_;
    return;
  }
  std::string suppressed;
  if (suppressed_warnings_ > 0) {
    suppressed = StringPrintf(
        ", %llu similar suppressed",
        static_cast<unsigned long long>(suppressed_warnings_));
  }
  in_error_streak_ = true;
  last_warn_ms_ = now;
  suppressed_warnings_ = 0;
  GEOSTREAMS_LOG(kWarning)
      << "tile store " << what << " on " << source_
      << " (live chain continues" << suppressed
      << "): " << status.ToString();
}

void StoreIngestSink::NoteStoreSuccess() {
  if (!in_error_streak_) return;
  std::string suppressed;
  if (suppressed_warnings_ > 0) {
    suppressed = StringPrintf(
        " (%llu warnings were suppressed)",
        static_cast<unsigned long long>(suppressed_warnings_));
  }
  in_error_streak_ = false;
  last_warn_ms_ = 0;
  suppressed_warnings_ = 0;
  GEOSTREAMS_LOG(kInfo)
      << "tile store writes recovered on " << source_ << suppressed;
}

Status StoreIngestSink::Consume(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kFrameBegin:
      // A Begin while a frame is open means its End was lost: the
      // open frame is incomplete and must not enter history (live
      // subscribers never saw it finish either).
      assembler_.Abort();
      pending_info_ = event.frame;
      frame_pending_ = true;
      return Status::OK();
    case EventKind::kPointBatch: {
      if (event.batch == nullptr) return Status::OK();
      if (frame_pending_ && !assembler_.active()) {
        Status st = assembler_.Begin(pending_info_, event.batch->band_count);
        if (!st.ok()) {
          frame_pending_ = false;
          store_errors_.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        }
      }
      if (!assembler_.active() ||
          event.batch->frame_id != assembler_.frame_id()) {
        // Point-by-point instruments (no frames) and stray batches
        // are not framed history; the store only persists frames.
        return Status::OK();
      }
      Status st = assembler_.Add(*event.batch);
      if (!st.ok()) {
        assembler_.Abort();
        frame_pending_ = false;
        store_errors_.fetch_add(1, std::memory_order_relaxed);
        WarnStoreFailure(st, "skips frame");
      }
      return Status::OK();
    }
    case EventKind::kFrameEnd: {
      if (!frame_pending_) return Status::OK();
      frame_pending_ = false;
      if (!assembler_.active()) {
        // A frame with no batches still happened: record it so a
        // catch-up replay reproduces the exact live sequence.
        Status st = assembler_.Begin(pending_info_, 1);
        if (!st.ok()) {
          store_errors_.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        }
      }
      Result<AssembledFrame> assembled = assembler_.Finish();
      if (!assembled.ok()) {
        store_errors_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
      Status st = store_->PutFrame(source_, pending_info_, assembled->raster,
                                   assembled->filled);
      if (st.ok()) {
        frames_stored_.fetch_add(1, std::memory_order_relaxed);
        NoteStoreSuccess();
      } else {
        store_errors_.fetch_add(1, std::memory_order_relaxed);
        WarnStoreFailure(st, "write failed");
      }
      return Status::OK();
    }
    case EventKind::kStreamEnd:
      assembler_.Abort();
      frame_pending_ = false;
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace geostreams
