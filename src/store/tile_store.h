// Tiled historical store: the durable, queryable past of every
// source stream (the TerraServer-style tile pyramid adapted to the
// paper's stream model).
//
// The live chain only serves frames that arrive after a query
// registers. The TileStore persists each assembled frame as a mosaic
// of fixed-grid tiles plus a pyramid of overview levels (factor-2,
// mask-aware box reduction), so that
//   * late subscribers replay recorded history and cut over to the
//     live stream at a frame-id watermark (see the server's catch-up
//     path and CatchUpGate),
//   * temporal restrictions G|T reach into the past, and
//   * reduce/magnify at coarse zoom reads a small overview level
//     instead of every full-resolution tile.
//
// Layout under TileStoreOptions::dir (one directory per source, same
// sanitization discipline as the ingest journal):
//
//   <dir>/<source-dir>/name            original source name
//   <dir>/<source-dir>/page-<n>.gst    append-only tile-page segments
//
// Record framing reuses the GSF1/journal discipline — a 16-byte
// header with magic "GST1", record type, pyramid level, version, the
// payload length, and a CRC-32 of the payload — so records are
// self-delimiting and integrity-checked:
//
//   kFrameMeta    frame id, band count, level count, expected points,
//                 and the base lattice (CRS name + geometry)
//   kTilePage     one tile of one level: tile indices, tile extents,
//                 an occupancy bitmap, then the filled cells' samples
//                 (band-interleaved doubles, filled cells only —
//                 lossless and sparse-friendly for restricted
//                 coverage)
//   kFrameCommit  per-level tile counts; a frame exists only once its
//                 commit record is durable (torn mid-frame writes are
//                 invisible after recovery)
//
// All records of one frame are contiguous in one segment (rotation
// happens only between frames), so startup recovery classifies damage
// exactly like the journal: a bad record with nothing valid after it
// in the source's last segment is a torn tail (truncated — the frame
// was never committed); a bad record with valid records after it is
// mid-file corruption (the region is skipped and counted, every
// committed frame around it keeps serving). Tile payload CRCs are
// re-verified on every read, so bit rot in a cold page is detected
// and skipped rather than served.
//
// Retention and garbage collection (disk-pressure resilience): when
// byte/frame/age budgets are configured — directly or through a
// StorageGovernor's "store" subsystem budget — a background pass (or
// RunRetentionNow()) prunes the oldest committed frames from the
// index, deletes sealed segments whose frames are all pruned, and
// rewrites mostly-dead sealed segments by copying the surviving frame
// runs into a fresh page. A crash mid-rewrite leaves the same frame
// committed in two segments; recovery's duplicate-frame dedup keeps
// one, so no acked frame is ever lost to GC. Catch-up callers use
// Horizon() to detect that a SINCE bound reaches below retained
// history and report the truncation instead of silently serving less.
//
// Thread-safety: PutFrame serializes per source; Scan snapshots the
// frame index under the source mutex and then reads pages via pread
// with no lock held. Retention never moves bytes underneath a reader:
// segment slots are tombstoned, never erased (TileRef segment indices
// stay stable), a read fd is cached BEFORE a segment file is unlinked
// (POSIX keeps the data readable through the open fd), and tombstoned
// fds are reaped only when no scan that started before the prune is
// still in flight. StoredFrames are immutable once indexed — a
// rewrite installs fresh StoredFrame objects while in-flight
// snapshots keep reading the old ones through their cached fds.

#ifndef GEOSTREAMS_STORE_TILE_STORE_H_
#define GEOSTREAMS_STORE_TILE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/stream_event.h"
#include "geo/region.h"
#include "obs/metrics_registry.h"
#include "ops/time_set.h"
#include "raster/frame_assembler.h"
#include "storage/journal.h"
#include "stream/operator.h"

namespace geostreams {

class EventLog;
class StorageGovernor;

struct TileStoreOptions {
  /// Root directory (created if missing). Must be non-empty.
  std::string dir;
  /// Tile extent in cells (tiles are tile_size x tile_size; edge
  /// tiles are clipped).
  int tile_size = 64;
  /// Overview levels generated above the base level, each halving the
  /// resolution, until the whole frame fits one tile (capped here).
  int max_levels = 10;
  /// Rotate the active page segment once it reaches this many bytes
  /// (only between frames — one frame's records never span segments).
  uint64_t segment_max_bytes = 32u << 20;
  /// fsync the active segment after every committed frame. Off by
  /// default: a torn frame is invisible after recovery either way
  /// (no commit record, no frame), fsync only narrows the loss
  /// window on power failure.
  bool fsync_frames = false;
  /// File opener; null = OpenPosixWritable. Tests inject FaultyFile.
  WritableFileFactory file_factory;
  /// Optional registry for geostreams_store_* series. Not owned.
  MetricsRegistry* metrics = nullptr;
  /// Optional flight recorder (not owned): retention passes that
  /// pruned frames or reclaimed segments are recorded as structured
  /// events (one per source per pass, never per frame).
  EventLog* event_log = nullptr;
  /// Retention budgets, applied per source by the background pass (or
  /// RunRetentionNow()); 0 = unlimited. The oldest committed frames
  /// are pruned while the source holds more than `retention_max_bytes`
  /// on disk, indexes more than `retention_max_frames` frames, or
  /// holds frames stored longer than `retention_max_age_ms` ago.
  uint64_t retention_max_bytes = 0;
  uint64_t retention_max_frames = 0;
  uint64_t retention_max_age_ms = 0;
  /// The newest frames are never pruned (the catch-up seam needs at
  /// least the watermark frame to exist).
  uint64_t retention_min_frames = 1;
  /// Rewrite a sealed segment once at least this fraction of its
  /// bytes belongs to pruned frames: live runs are copied to a fresh
  /// page, the old file is deleted. <= 0 disables rewrites (dead
  /// bytes then linger until the whole segment dies); fully-dead
  /// segments are always deleted outright.
  double gc_rewrite_dead_fraction = 0.5;
  /// Background retention cadence; 0 = no thread (retention then runs
  /// only via RunRetentionNow()).
  uint64_t gc_interval_ms = 0;
  /// Optional disk-pressure governor (not owned, must outlive the
  /// store): PutFrame admission is gated on it, write results feed
  /// its degraded-mode probe, its "store" subsystem byte/age budget
  /// tightens the retention budgets above, and on-disk usage is
  /// reported back to it.
  StorageGovernor* governor = nullptr;
  /// Injectable millisecond clock for age-based retention (tests pin
  /// time); null = steady_clock.
  std::function<uint64_t()> now_ms;
};

/// What recovery found across all sources (stable after Open).
struct TileStoreRecovery {
  uint64_t frames_recovered = 0;
  uint64_t tile_pages_recovered = 0;
  uint64_t duplicate_frames = 0;    // frame id committed twice; kept once
  uint64_t incomplete_frames = 0;   // meta/pages without a commit record
  uint64_t torn_tails = 0;          // truncated half-written tails
  uint64_t torn_bytes = 0;
  uint64_t corrupt_regions = 0;     // mid-file damage, skipped
};

/// One region x time x resolution subset read. Defaults read
/// everything at full resolution.
struct StoreScan {
  /// Frame-id (= scan-sector timestamp) bounds, inclusive.
  int64_t min_frame_id = std::numeric_limits<int64_t>::min();
  int64_t max_frame_id = std::numeric_limits<int64_t>::max();
  /// Temporal restrictions pushed down from the query plan: when some
  /// set does not contain a frame's id, its tiles are never read —
  /// but its FrameBegin/FrameEnd are still emitted, because the live
  /// TemporalRestrictionOp forwards frame control events and filters
  /// only points, and a catch-up replay must reproduce the exact live
  /// sequence. Purely an IO-pruning hint; the plan re-applies its own
  /// restrictions.
  std::vector<TimeSet> times;
  /// Spatial subset: tiles whose extent misses region->bounds() are
  /// never read, and points are filtered exactly with Contains().
  RegionPtr region;
  /// Resolution hint: reads the deepest overview level whose scale
  /// 2^level does not exceed this (1 = the full-resolution base).
  /// Coarse-zoom reads thus touch a fraction of the tiles and cells.
  int reduce = 1;
  /// Points per emitted batch.
  size_t max_batch_points = 4096;
};

/// Per-source write-side counters (tests/diagnostics).
struct TileStoreStats {
  uint64_t frames_written = 0;
  uint64_t tiles_written = 0;
  uint64_t bytes_written = 0;
  uint64_t write_errors = 0;
  uint64_t frames_read = 0;
  uint64_t tiles_read = 0;
  uint64_t tile_read_errors = 0;
  uint64_t frames_rejected = 0;     // PutFrame refused while degraded
  uint64_t sync_errors = 0;         // segment Sync/Close failures
  uint64_t frames_pruned = 0;       // retention evictions
  uint64_t segments_deleted = 0;    // fully-dead segments unlinked
  uint64_t segments_rewritten = 0;  // partially-live segments compacted
  uint64_t bytes_reclaimed = 0;     // on-disk bytes freed by GC
};

/// Where retained history starts for one source (catch-up truncation
/// reporting: a SINCE bound at or below `pruned_upto` cannot be
/// served in full any more).
struct StoreHorizon {
  /// Oldest retained frame id; INT64_MAX when nothing is stored.
  int64_t oldest_frame_id = std::numeric_limits<int64_t>::max();
  /// Highest frame id retention ever pruned; INT64_MIN when none.
  int64_t pruned_upto = std::numeric_limits<int64_t>::min();
  uint64_t frames_pruned = 0;
};

class TileStore {
 public:
  /// Creates `options.dir` if needed and recovers every source
  /// directory found there (truncating torn tails, skipping corrupt
  /// regions, dropping uncommitted frames).
  static Result<std::unique_ptr<TileStore>> Open(TileStoreOptions options);

  ~TileStore();

  TileStore(const TileStore&) = delete;
  TileStore& operator=(const TileStore&) = delete;

  const TileStoreRecovery& recovery() const { return recovery_; }
  const TileStoreOptions& options() const { return options_; }

  /// Persists one assembled frame for `source`: tiles the base
  /// raster, builds the overview pyramid (mask-aware factor-2 box
  /// reduction — nodata cells never fabricate values), and appends
  /// meta + pages + commit as one contiguous record run. Idempotent
  /// on frame id: a frame already committed (e.g. a producer replay
  /// after a crash) is a no-op. On a write error the active segment
  /// is abandoned (recovery sees an uncommitted run) and the frame is
  /// not indexed.
  Status PutFrame(const std::string& source, const FrameInfo& info,
                  const Raster& raster, const std::vector<uint8_t>& filled);

  /// Highest committed frame id for `source`; INT64_MIN when the
  /// source has no committed frames. This is the catch-up watermark:
  /// every frame at or below it is served from the store, everything
  /// after it from the live stream.
  int64_t Watermark(const std::string& source) const;

  /// Committed frame ids in [lo, hi], ascending.
  std::vector<int64_t> FrameIds(const std::string& source, int64_t lo,
                                int64_t hi) const;

  /// Retention horizon for `source` (zero-valued for unknown sources).
  StoreHorizon Horizon(const std::string& source) const;

  /// One synchronous retention + GC pass over every source — what the
  /// background thread runs every `gc_interval_ms`. Exposed for
  /// tests, benchmarks, and deterministic admin sweeps; safe to call
  /// concurrently with writes and scans.
  Status RunRetentionNow();

  /// Replays every committed frame matching `scan` (ascending frame
  /// id) into `sink` as the live chain would have delivered it:
  /// FrameBegin (with the level's lattice), point batches of the
  /// filled cells, FrameEnd. Never emits StreamEnd — the caller owns
  /// stream lifecycle. Unknown sources scan zero frames.
  Status Scan(const std::string& source, const StoreScan& scan,
              EventSink* sink);

  /// Scan() for a single frame id. NotFound when the frame is not
  /// committed (or is filtered by the scan bounds).
  Status ScanFrame(const std::string& source, int64_t frame_id,
                   const StoreScan& scan, EventSink* sink);

  /// Aggregate counters across sources.
  TileStoreStats TotalStats() const;

  /// fsyncs every source's active segment (shutdown, tests).
  Status SyncAll();

 private:
  struct TileRef;
  struct StoredLevel;
  struct StoredFrame;
  struct SourceStore;

  explicit TileStore(TileStoreOptions options);

  Status RecoverAll();
  Status RecoverSource(const std::string& source_dir_name);
  SourceStore* SourceFor(const std::string& source);
  SourceStore* FindSource(const std::string& source) const;
  Result<std::unique_ptr<WritableFile>> OpenFile(const std::string& path);
  Status EnsureOpenLocked(SourceStore* src);
  uint64_t NowMs() const;
  void GcThreadMain();
  /// Retention + GC for one source; takes src->mu internally. Returns
  /// the first error but keeps sweeping (retention is best-effort).
  Status ApplyRetentionSource(SourceStore* src);
  /// Unlinks a fully-dead sealed segment: caches a read fd first so
  /// in-flight scans keep reading, then tombstones the slot.
  uint64_t RetireSegmentLocked(SourceStore* src, uint32_t seg_index);
  /// Copies the surviving frame runs of a mostly-dead sealed segment
  /// into a fresh page, reindexes them, then retires the old file.
  Status RewriteSegmentLocked(SourceStore* src, uint32_t seg_index,
                              uint64_t* reclaimed);
  /// Closes cached fds of tombstoned segments once no scan that could
  /// still reference them is in flight.
  void ReapDeadFdsLocked(SourceStore* src);
  Status EmitFrame(SourceStore* src,
                   const std::shared_ptr<const StoredFrame>& frame,
                   const StoreScan& scan, EventSink* sink);
  /// pread of one tile record, CRC-verified. `buf` is reused.
  Status ReadTileRecord(SourceStore* src, const TileRef& ref,
                        std::vector<uint8_t>* buf);

  TileStoreOptions options_;
  TileStoreRecovery recovery_;

  mutable std::mutex mu_;  // guards sources_ (map itself)
  std::map<std::string, std::unique_ptr<SourceStore>> sources_;

  /// Serializes retention passes (background thread vs
  /// RunRetentionNow) so segment GC never races with itself.
  std::mutex gc_mu_;
  std::thread gc_thread_;
  std::mutex gc_wake_mu_;
  std::condition_variable gc_cv_;
  bool stopping_ = false;

  // geostreams_store_* series; null without a registry.
  Counter* m_frames_written_ = nullptr;
  Counter* m_tiles_written_ = nullptr;
  Counter* m_bytes_written_ = nullptr;
  Counter* m_write_errors_ = nullptr;
  Counter* m_frames_read_ = nullptr;
  Counter* m_tiles_read_ = nullptr;
  Counter* m_tile_read_errors_ = nullptr;
  Counter* m_frames_recovered_ = nullptr;
  Counter* m_torn_tails_ = nullptr;
  Counter* m_corrupt_regions_ = nullptr;
  Counter* m_frames_rejected_ = nullptr;
  Counter* m_sync_errors_ = nullptr;
  Counter* m_frames_pruned_ = nullptr;
  Counter* m_segments_deleted_ = nullptr;
  Counter* m_segments_rewritten_ = nullptr;
  Counter* m_bytes_reclaimed_ = nullptr;
  MetricHistogram* m_put_latency_us_ = nullptr;
  MetricHistogram* m_scan_frame_latency_us_ = nullptr;
};

/// EventSink that assembles each frame of one source and persists it
/// into the store. Sits at the server's ingest fan-out, ahead of the
/// query chains, so a frame's commit record is durable before any
/// later event reaches a CatchUpGate (the ordering the cut-over seam
/// replay depends on). Store failures are counted and logged once —
/// the live chain never stalls because the disk is unhappy.
class StoreIngestSink : public EventSink {
 public:
  StoreIngestSink(TileStore* store, std::string source);

  Status Consume(const StreamEvent& event) override;

  uint64_t frames_stored() const {
    return frames_stored_.load(std::memory_order_relaxed);
  }
  uint64_t store_errors() const {
    return store_errors_.load(std::memory_order_relaxed);
  }

 private:
  TileStore* store_;
  const std::string source_;
  FrameAssembler assembler_;
  /// FrameBegin metadata buffered until the first batch reveals the
  /// band count (frames with no batches assemble with one band).
  bool frame_pending_ = false;
  FrameInfo pending_info_;
  std::atomic<uint64_t> frames_stored_{0};
  std::atomic<uint64_t> store_errors_{0};
  /// Store failures warn at most once per interval (a degraded disk
  /// sheds every frame — one warning per frame would flood the log);
  /// the first success after a failing streak logs recovery and
  /// re-arms the limiter so the next incident warns immediately.
  void WarnStoreFailure(const Status& status, const char* what);
  void NoteStoreSuccess();
  uint64_t last_warn_ms_ = 0;
  uint64_t suppressed_warnings_ = 0;
  bool in_error_streak_ = false;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STORE_TILE_STORE_H_
