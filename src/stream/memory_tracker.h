// Tracks intermediate-state memory across the operators of a plan.

#ifndef GEOSTREAMS_STREAM_MEMORY_TRACKER_H_
#define GEOSTREAMS_STREAM_MEMORY_TRACKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace geostreams {

/// Aggregates the buffered-bytes reports of all operators in one
/// running plan. Thread-safe: a threaded pipeline updates it from
/// several stages.
class MemoryTracker {
 public:
  /// Replaces the current figure for `owner` and updates totals.
  void Update(const std::string& owner, uint64_t bytes);

  /// Current total across owners.
  uint64_t TotalBytes() const;
  /// Largest total ever observed.
  uint64_t HighWaterBytes() const;
  /// High-water for a single owner (0 when unknown).
  uint64_t OwnerHighWater(const std::string& owner) const;
  /// Consistent copy of every owner's current figure (one lock
  /// acquisition, so the per-owner numbers are mutually coherent even
  /// while worker threads keep reporting).
  std::map<std::string, uint64_t> Snapshot() const;

  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, uint64_t> current_;
  std::map<std::string, uint64_t> owner_high_water_;
  uint64_t total_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_MEMORY_TRACKER_H_
