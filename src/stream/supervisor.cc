#include "stream/supervisor.h"

#include <algorithm>

#include "common/math_util.h"

namespace geostreams {

const char* PipelineHealthName(PipelineHealth health) {
  switch (health) {
    case PipelineHealth::kRunning:
      return "RUNNING";
    case PipelineHealth::kDegraded:
      return "DEGRADED";
    case PipelineHealth::kQuarantined:
      return "QUARANTINED";
  }
  return "?";
}

const char* FaultClassName(FaultClass fault_class) {
  switch (fault_class) {
    case FaultClass::kTransient:
      return "transient";
    case FaultClass::kPoison:
      return "poison";
    case FaultClass::kPermanent:
      return "permanent";
  }
  return "?";
}

FaultClass ClassifyFault(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return FaultClass::kTransient;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInvalidArgument:
      return FaultClass::kPoison;
    default:
      return FaultClass::kPermanent;
  }
}

uint64_t ApproxEventBytes(const StreamEvent& event) {
  // Control events (frame boundaries, stream end) retain only the
  // fixed-size FrameInfo; batches retain their point arrays.
  uint64_t bytes = sizeof(StreamEvent);
  if (event.kind == EventKind::kPointBatch && event.batch) {
    bytes += event.batch->ApproxBytes();
  }
  return bytes;
}

void DeadLetterQueue::BindMemoryTracker(MemoryTracker* tracker,
                                        std::string owner) {
  tracker_ = tracker;
  owner_ = std::move(owner);
}

void DeadLetterQueue::Push(const StreamEvent& event, const Status& status) {
  DeadLetter entry;
  entry.ordinal = total_++;
  entry.error = status.ToString();
  entry.event = event;
  const uint64_t entry_bytes = ApproxEventBytes(event);
  if (persist_hook_) persist_hook_(entry);
  ring_.push_back(std::move(entry));
  bytes_ += entry_bytes;
  while (!ring_.empty() &&
         (ring_.size() > max_events_ || bytes_ > max_bytes_)) {
    bytes_ -= ApproxEventBytes(ring_.front().event);
    ring_.pop_front();
  }
  ReportBytes();
}

std::vector<DeadLetter> DeadLetterQueue::Snapshot() const {
  return std::vector<DeadLetter>(ring_.begin(), ring_.end());
}

void DeadLetterQueue::SetPersistHook(
    std::function<void(const DeadLetter&)> hook) {
  persist_hook_ = std::move(hook);
}

void DeadLetterQueue::Restore(const std::vector<DeadLetter>& letters) {
  for (const DeadLetter& letter : letters) {
    ring_.push_back(letter);
    bytes_ += ApproxEventBytes(letter.event);
    if (letter.ordinal >= total_) total_ = letter.ordinal + 1;
    while (!ring_.empty() &&
           (ring_.size() > max_events_ || bytes_ > max_bytes_)) {
      bytes_ -= ApproxEventBytes(ring_.front().event);
      ring_.pop_front();
    }
  }
  ReportBytes();
}

void DeadLetterQueue::Clear() {
  ring_.clear();
  bytes_ = 0;
  ReportBytes();
}

void DeadLetterQueue::ReportBytes() {
  if (tracker_) tracker_->Update(owner_, bytes_);
}

SupervisorDecision PipelineSupervisor::Decide(
    const Status& status, int prior_attempts,
    uint64_t prior_dead_letters) const {
  SupervisorDecision decision;
  switch (ClassifyFault(status)) {
    case FaultClass::kTransient:
      if (prior_attempts >= options_.max_restart_attempts) {
        decision.action = SupervisorDecision::Action::kQuarantine;
      } else {
        decision.action = SupervisorDecision::Action::kRetry;
        decision.backoff_ms = 0;  // scheduler fills in BackoffMs
      }
      return decision;
    case FaultClass::kPoison:
      decision.action = prior_dead_letters + 1 >= options_.poison_limit
                            ? SupervisorDecision::Action::kQuarantine
                            : SupervisorDecision::Action::kDeadLetter;
      return decision;
    case FaultClass::kPermanent:
      decision.action = SupervisorDecision::Action::kQuarantine;
      return decision;
  }
  return decision;
}

uint32_t BackoffDelayMs(uint32_t initial_ms, uint32_t max_ms,
                        uint32_t jitter_ms, uint64_t token, int attempt) {
  const int shift = std::min(attempt, 20);
  uint64_t base = static_cast<uint64_t>(initial_ms) << shift;
  base = std::min<uint64_t>(base, max_ms);
  uint64_t jitter = 0;
  if (jitter_ms > 0) {
    jitter = Mix64(token * 0x9E3779B97F4A7C15ULL +
                   static_cast<uint64_t>(attempt)) %
             (static_cast<uint64_t>(jitter_ms) + 1);
  }
  return static_cast<uint32_t>(std::min<uint64_t>(base + jitter, max_ms));
}

uint32_t PipelineSupervisor::BackoffMs(uint64_t pipeline_token,
                                       int attempt) const {
  return BackoffDelayMs(options_.backoff_initial_ms,
                        options_.backoff_max_ms,
                        options_.backoff_jitter_ms, pipeline_token,
                        attempt);
}

}  // namespace geostreams
