#include "stream/metrics.h"

#include "common/string_util.h"

namespace geostreams {

std::string OperatorMetrics::ToString() const {
  return StringPrintf(
      "events_in=%llu points_in=%llu points_out=%llu frames_in=%llu "
      "frames_out=%llu buffered=%llu high_water=%llu high_water_max=%llu",
      static_cast<unsigned long long>(events_in),
      static_cast<unsigned long long>(points_in),
      static_cast<unsigned long long>(points_out),
      static_cast<unsigned long long>(frames_in),
      static_cast<unsigned long long>(frames_out),
      static_cast<unsigned long long>(buffered_bytes),
      static_cast<unsigned long long>(buffered_bytes_high_water),
      static_cast<unsigned long long>(buffered_bytes_high_water_max));
}

}  // namespace geostreams
