#include "stream/pipeline.h"

#include <algorithm>

namespace geostreams {

void Pipeline::Add(std::unique_ptr<UnaryOperator> op) {
  ops_.push_back(std::move(op));
}

Status Pipeline::Finish(EventSink* sink, MemoryTracker* tracker) {
  if (finished_) return Status::FailedPrecondition("pipeline already wired");
  if (!sink) return Status::InvalidArgument("pipeline needs a sink");
  EventSink* downstream = sink;
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    (*it)->BindOutput(downstream);
    if (tracker) (*it)->BindMemoryTracker(tracker);
    downstream = (*it)->input(0);
  }
  entry_ = downstream;
  finished_ = true;
  return Status::OK();
}

Status Pipeline::Consume(const StreamEvent& event) {
  if (!finished_) return Status::FailedPrecondition("pipeline not wired");
  return entry_->Consume(event);
}

void Pipeline::Reset() {
  for (auto& op : ops_) op->Reset();
}

uint64_t Pipeline::BufferedBytes() const {
  uint64_t n = 0;
  for (const auto& op : ops_) n += op->metrics().buffered_bytes;
  return n;
}

uint64_t Pipeline::MaxOperatorHighWater() const {
  uint64_t n = 0;
  for (const auto& op : ops_) {
    n = std::max(n, op->metrics().buffered_bytes_high_water);
  }
  return n;
}

}  // namespace geostreams
