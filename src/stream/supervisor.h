// Pipeline supervision policy (failure domains & recovery).
//
// Continuous queries run over unbounded, noisy sensor streams where
// malformed scan rows, dropped frames, and transient operator hiccups
// are the norm. The supervisor decides, per pipeline, what a non-OK
// status from the operator chain means:
//
//  * transient   (ResourceExhausted, Unavailable) — the event is
//    eligible for redelivery after an exponential backoff with
//    deterministic jitter; the operator chain's frame-buffer state is
//    reset first (Operator::Reset). A cap on consecutive attempts
//    turns a persistently-transient pipeline into a quarantined one.
//  * poison      (FailedPrecondition, InvalidArgument) — the event
//    itself is bad (corrupt batch, protocol violation). It is dropped
//    into a per-pipeline dead-letter count; once the count reaches
//    `poison_limit` the pipeline is quarantined.
//  * permanent   (everything else) — the pipeline is quarantined
//    immediately: its error is recorded, its queue discarded, and
//    later enqueues are rejected with that error. Other pipelines are
//    unaffected.
//
// The supervisor itself is a stateless policy engine: the scheduler
// owns the per-pipeline counters and asks for a decision per failure.
// Backoff jitter is derived from a hash of (pipeline, attempt), so
// recovery schedules are deterministic and testable.

#ifndef GEOSTREAMS_STREAM_SUPERVISOR_H_
#define GEOSTREAMS_STREAM_SUPERVISOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/stream_event.h"
#include "stream/memory_tracker.h"

namespace geostreams {

/// Health of one scheduled pipeline, worst-first ordering so merged
/// (aggregate) stats can take the max.
enum class PipelineHealth : uint8_t {
  kRunning = 0,     // processing normally
  kDegraded = 1,    // in backoff/retry, or has dead-lettered events
  kQuarantined = 2, // permanently failed; enqueues rejected
};

const char* PipelineHealthName(PipelineHealth health);

/// What kind of failure a non-OK operator status represents.
enum class FaultClass : uint8_t {
  kTransient, // retry may succeed (ResourceExhausted, Unavailable)
  kPoison,    // the event is bad; drop it (FailedPrecondition,
              // InvalidArgument)
  kPermanent, // the pipeline is broken (everything else)
};

const char* FaultClassName(FaultClass fault_class);

/// Maps a non-OK status to its fault class. Must not be called with
/// an OK status.
FaultClass ClassifyFault(const Status& status);

/// One dead-lettered (poison) event, kept for inspection: what was
/// dropped, why, and its ordinal in the pipeline's dead-letter
/// history (ordinals keep counting even after older entries are
/// evicted from the bounded ring).
struct DeadLetter {
  uint64_t ordinal = 0;
  std::string error;
  StreamEvent event;
};

/// Approximate heap footprint of one event, for dead-letter byte
/// accounting (batches dominate; control events count a flat minimum).
uint64_t ApproxEventBytes(const StreamEvent& event);

/// Bounded ring of the most recent dead-lettered events of one
/// pipeline. Capped by entry count and by approximate bytes; the
/// oldest entries are evicted first. NOT internally synchronized —
/// the owner (scheduler queue, server source state) serializes
/// access. Byte usage is optionally reported to a MemoryTracker
/// under `owner` so poisoned-event retention shows up in the
/// server's memory accounting.
class DeadLetterQueue {
 public:
  DeadLetterQueue(size_t max_events, size_t max_bytes)
      : max_events_(max_events), max_bytes_(max_bytes) {}

  /// Binds the byte-usage report target (not owned; may be null).
  void BindMemoryTracker(MemoryTracker* tracker, std::string owner);

  /// Records one poisoned event; evicts oldest entries beyond the
  /// caps. An event larger than the byte cap by itself is recorded
  /// with an empty ring (the count still advances).
  void Push(const StreamEvent& event, const Status& status);

  /// Copies the retained entries, oldest first.
  std::vector<DeadLetter> Snapshot() const;

  /// Mirrors every Push (with its assigned ordinal) to `hook` — the
  /// durable-store bridge. Called synchronously under the caller's
  /// locking discipline; a null hook disables mirroring.
  void SetPersistHook(std::function<void(const DeadLetter&)> hook);

  /// Re-seeds the queue from letters recovered off disk: refills the
  /// ring (oldest first, caps applied) and advances the ordinal
  /// counter past the highest restored ordinal so post-restart pushes
  /// keep the sequence. The persist hook is NOT invoked for restored
  /// entries (they are already on disk).
  void Restore(const std::vector<DeadLetter>& letters);

  /// Entries currently retained / ever pushed / retained bytes.
  size_t size() const { return ring_.size(); }
  uint64_t total_pushed() const { return total_; }
  size_t bytes() const { return bytes_; }

  void Clear();

 private:
  void ReportBytes();

  size_t max_events_;
  size_t max_bytes_;
  std::function<void(const DeadLetter&)> persist_hook_;
  MemoryTracker* tracker_ = nullptr;
  std::string owner_;
  std::deque<DeadLetter> ring_;
  size_t bytes_ = 0;
  uint64_t total_ = 0;
};

struct SupervisorOptions {
  /// Consecutive transient failures tolerated on one event before the
  /// pipeline is quarantined. A successful delivery resets the count.
  int max_restart_attempts = 3;
  /// Backoff before redelivery attempt k is
  ///   min(backoff_max_ms, backoff_initial_ms << k) + jitter,
  /// jitter in [0, backoff_jitter_ms] from a (pipeline, attempt) hash.
  uint32_t backoff_initial_ms = 1;
  uint32_t backoff_max_ms = 100;
  uint32_t backoff_jitter_ms = 1;
  /// Dead-lettered (poison) events tolerated before the pipeline is
  /// quarantined. The default quarantines on the first poison event;
  /// raise it to keep a pipeline limping along past bad input.
  uint64_t poison_limit = 1;
};

/// The action the scheduler should take for one failed delivery.
struct SupervisorDecision {
  enum class Action : uint8_t {
    kRetry,      // redeliver the event after `backoff_ms`
    kDeadLetter, // drop the event, count it, keep the pipeline
    kQuarantine, // fail the pipeline permanently
  };
  Action action = Action::kQuarantine;
  uint32_t backoff_ms = 0; // meaningful for kRetry only
};

/// Deterministic exponential backoff with bounded jitter — the shape
/// every retry loop in the system shares (scheduler redelivery,
/// ProducerClient reconnects):
///   min(max_ms, initial_ms << attempt) + jitter,  capped at max_ms,
/// jitter in [0, jitter_ms] hashed from (token, attempt) so distinct
/// actors spread out without any shared RNG state.
uint32_t BackoffDelayMs(uint32_t initial_ms, uint32_t max_ms,
                        uint32_t jitter_ms, uint64_t token, int attempt);

class PipelineSupervisor {
 public:
  explicit PipelineSupervisor(SupervisorOptions options)
      : options_(options) {}

  /// Decides the disposition of a failed delivery. `prior_attempts` is
  /// the number of transient redeliveries already performed for the
  /// event at the head of the queue; `prior_dead_letters` the
  /// pipeline's dead-letter count before this failure.
  SupervisorDecision Decide(const Status& status, int prior_attempts,
                            uint64_t prior_dead_letters) const;

  /// Deterministic backoff (with jitter) before redelivery attempt
  /// `attempt` (0-based) on pipeline `pipeline_token`.
  uint32_t BackoffMs(uint64_t pipeline_token, int attempt) const;

  const SupervisorOptions& options() const { return options_; }

 private:
  SupervisorOptions options_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_SUPERVISOR_H_
