// Linear pipelines of unary operators.
//
// Complex continuous queries over image streams "tend to be less
// complex; in fact, they are often sequential" (Sec. 3.4). A Pipeline
// owns a chain of unary operators wired back-to-front into a final
// sink; events pushed into it traverse the full chain synchronously.

#ifndef GEOSTREAMS_STREAM_PIPELINE_H_
#define GEOSTREAMS_STREAM_PIPELINE_H_

#include <memory>
#include <vector>

#include "stream/operator.h"

namespace geostreams {

class Pipeline : public EventSink {
 public:
  Pipeline() = default;

  /// Appends an operator to the downstream end of the chain.
  /// Must not be called after Finish().
  void Add(std::unique_ptr<UnaryOperator> op);

  /// Wires the chain into `sink` (not owned). Must be called exactly
  /// once before events are pushed.
  Status Finish(EventSink* sink, MemoryTracker* tracker = nullptr);

  /// Pushes one event through the whole chain.
  Status Consume(const StreamEvent& event) override;

  /// Drops buffered frame state in every operator (fault recovery).
  void Reset();

  size_t size() const { return ops_.size(); }
  const UnaryOperator& op(size_t i) const { return *ops_[i]; }
  UnaryOperator& op(size_t i) { return *ops_[i]; }

  /// Sum of current buffered bytes across the chain.
  uint64_t BufferedBytes() const;
  /// Largest per-operator high-water mark in the chain.
  uint64_t MaxOperatorHighWater() const;

 private:
  std::vector<std::unique_ptr<UnaryOperator>> ops_;
  EventSink* entry_ = nullptr;
  bool finished_ = false;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_PIPELINE_H_
