// Threaded execution of pipelines with bounded queues.
//
// The DSMS server decouples ingest from query processing: the stream
// generator produces events into a bounded queue; a worker thread
// drains it through the registered pipelines. Backpressure is by
// blocking (the receiving station buffers at most `capacity` events).

#ifndef GEOSTREAMS_STREAM_EXECUTOR_H_
#define GEOSTREAMS_STREAM_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "stream/operator.h"

namespace geostreams {

/// Bounded multi-producer single-consumer event queue.
class BoundedEventQueue {
 public:
  explicit BoundedEventQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks while full; fails after Close().
  Status Push(StreamEvent event);

  /// Blocks while empty; returns false when closed and drained.
  bool Pop(StreamEvent* event);

  /// Marks the queue closed; pending events remain poppable.
  void Close();

  size_t size() const;

 private:
  size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<StreamEvent> queue_;
  bool closed_ = false;
};

/// Runs a sink on its own thread, fed through a bounded queue. The
/// upstream side is itself an EventSink, so a StageRunner can be
/// spliced anywhere an EventSink is expected.
class StageRunner : public EventSink {
 public:
  /// `downstream` is not owned and must outlive the runner.
  StageRunner(EventSink* downstream, size_t queue_capacity);
  ~StageRunner() override;

  /// Enqueues an event for the worker thread.
  Status Consume(const StreamEvent& event) override;

  /// Closes the queue and joins the worker. Returns the first error
  /// the downstream sink produced, if any. Idempotent and safe to
  /// call from several threads concurrently (including the implicit
  /// call from the destructor): exactly one caller performs the
  /// close+join, the rest wait for it and return the same status.
  Status Drain();

 private:
  void Run();

  EventSink* downstream_;
  BoundedEventQueue queue_;
  std::thread worker_;
  /// Serializes Drain callers and guards drained_. Distinct from
  /// status_mutex_ so no caller holds the status lock across join()
  /// while the worker may be recording an error under it.
  std::mutex drain_mutex_;
  bool drained_ = false;
  std::mutex status_mutex_;
  Status worker_status_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_EXECUTOR_H_
