#include "stream/scheduler.h"

#include <algorithm>

namespace geostreams {

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kRoundRobin:
      return "round-robin";
    case SchedulingPolicy::kLongestQueueFirst:
      return "longest-queue-first";
  }
  return "?";
}

struct QueryScheduler::Queue {
  std::string name;
  std::deque<Item> events;
  ScheduledQueueStats stats;
  /// True while a worker is delivering an event from this queue; the
  /// queue is then invisible to SelectQueueLocked, which is what keeps
  /// per-pipeline order under a multi-worker pool.
  bool busy = false;
};

QueryScheduler::QueryScheduler(SchedulerOptions options)
    : options_(options) {
  resolved_workers_ = options_.workers;
  if (resolved_workers_ == 0) {
    resolved_workers_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

QueryScheduler::QueryScheduler(SchedulingPolicy policy, size_t queue_capacity)
    : QueryScheduler(SchedulerOptions{policy, queue_capacity,
                                      /*workers=*/1,
                                      /*report_drops=*/false}) {}

QueryScheduler::~QueryScheduler() {
  Status ignored = Stop();
  (void)ignored;
}

EventSink* QueryScheduler::AddPipeline(std::string name,
                                       EventSink* downstream) {
  const size_t pipeline = AddPipelineGroup(std::move(name));
  return AddPipelineInput(pipeline, downstream);
}

size_t QueryScheduler::AddPipelineGroup(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto queue = std::make_unique<Queue>();
  queue->name = std::move(name);
  queue->stats.name = queue->name;
  queues_.push_back(std::move(queue));
  return queues_.size() - 1;
}

EventSink* QueryScheduler::AddPipelineInput(size_t pipeline,
                                            EventSink* downstream) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(
      std::make_unique<EntrySink>(this, pipeline, downstream));
  return entries_.back().get();
}

Status QueryScheduler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::FailedPrecondition("scheduler running");
  started_ = true;
  stopping_ = false;
  aborted_ = false;
  workers_.reserve(resolved_workers_);
  for (size_t i = 0; i < resolved_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

Status QueryScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return worker_status_;
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  workers_.clear();
  started_ = false;
  idle_.notify_all();
  return worker_status_;
}

Status QueryScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] {
    return aborted_ || !started_ ||
           (busy_count_ == 0 && AllQueuesEmptyLocked());
  });
  return worker_status_;
}

Status QueryScheduler::Enqueue(size_t index, EventSink* downstream,
                               const StreamEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      return Status::FailedPrecondition("scheduler not started");
    }
    if (aborted_) return worker_status_;
    Queue& queue = *queues_[index];
    // Frame metadata and stream control are never shed: downstream
    // buffering operators depend on well-formed frame sequences. They
    // are admitted above capacity, but the overshoot is counted.
    const bool control = event.kind != EventKind::kPointBatch;
    const bool over = queue.events.size() >= options_.queue_capacity;
    if (over) {
      if (!control) {
        ++queue.stats.dropped;
        if (options_.report_drops) {
          return Status::ResourceExhausted("queue full, batch shed: " +
                                           queue.name);
        }
        return Status::OK();
      }
      ++queue.stats.control_overflow;
    }
    ++queue.stats.enqueued;
    queue.events.push_back(Item{downstream, event});
    queue.stats.queue_high_water = std::max(
        queue.stats.queue_high_water,
        static_cast<uint64_t>(queue.events.size()));
  }
  work_available_.notify_one();
  return Status::OK();
}

int QueryScheduler::SelectQueueLocked() const {
  const size_t n = queues_.size();
  if (n == 0) return -1;
  if (options_.policy == SchedulingPolicy::kLongestQueueFirst) {
    int best = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < n; ++i) {
      const Queue& queue = *queues_[i];
      if (!queue.busy && queue.events.size() > best_size) {
        best_size = queue.events.size();
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  // Round robin: next claimable queue at or after the cursor. The
  // cursor is NOT advanced here — selection must stay side-effect
  // free so it can serve as a wait predicate.
  for (size_t step = 0; step < n; ++step) {
    const size_t i = (rr_cursor_ + step) % n;
    const Queue& queue = *queues_[i];
    if (!queue.busy && !queue.events.empty()) return static_cast<int>(i);
  }
  return -1;
}

void QueryScheduler::AdvanceCursorLocked(size_t claimed) {
  rr_cursor_ = (claimed + 1) % queues_.size();
}

bool QueryScheduler::AllQueuesEmptyLocked() const {
  for (const auto& queue : queues_) {
    if (!queue->events.empty()) return false;
  }
  return true;
}

void QueryScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] {
      return aborted_ || stopping_ || SelectQueueLocked() >= 0;
    });
    if (aborted_) return;
    const int index = SelectQueueLocked();
    if (index < 0) {
      // Nothing claimable. Busy queues still holding events are
      // finished by the workers that claimed them, so on stop this
      // worker can leave without abandoning work.
      if (stopping_) return;
      continue;
    }
    Queue& queue = *queues_[static_cast<size_t>(index)];
    AdvanceCursorLocked(static_cast<size_t>(index));
    queue.busy = true;
    ++busy_count_;
    Item item = std::move(queue.events.front());
    queue.events.pop_front();
    ++queue.stats.processed;
    lock.unlock();
    // The claim invariant makes this call single-threaded per
    // pipeline; the mutex acquire/release around claim and release
    // orders operator state (incl. OperatorMetrics) across workers.
    Status st = item.downstream->Consume(item.event);
    lock.lock();
    queue.busy = false;
    --busy_count_;
    if (!st.ok()) {
      if (worker_status_.ok()) worker_status_ = st;
      aborted_ = true;
      work_available_.notify_all();
      idle_.notify_all();
      return;
    }
    if (!queue.events.empty()) work_available_.notify_one();
    if (busy_count_ == 0 && AllQueuesEmptyLocked()) idle_.notify_all();
  }
}

std::vector<ScheduledQueueStats> QueryScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ScheduledQueueStats> out;
  out.reserve(queues_.size());
  for (const auto& queue : queues_) out.push_back(queue->stats);
  return out;
}

ScheduledQueueStats QueryScheduler::AggregateStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ScheduledQueueStats total;
  total.name = "total";
  for (const auto& queue : queues_) total.MergeFrom(queue->stats);
  return total;
}

}  // namespace geostreams
