#include "stream/scheduler.h"

#include <algorithm>

namespace geostreams {

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kRoundRobin:
      return "round-robin";
    case SchedulingPolicy::kLongestQueueFirst:
      return "longest-queue-first";
  }
  return "?";
}

struct QueryScheduler::Queue {
  std::string name;
  EventSink* downstream = nullptr;
  std::deque<StreamEvent> events;
  ScheduledQueueStats stats;
};

QueryScheduler::QueryScheduler(SchedulingPolicy policy,
                               size_t queue_capacity)
    : policy_(policy), capacity_(queue_capacity) {}

QueryScheduler::~QueryScheduler() {
  Status ignored = Stop();
  (void)ignored;
}

EventSink* QueryScheduler::AddPipeline(std::string name,
                                       EventSink* downstream) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto queue = std::make_unique<Queue>();
  queue->name = std::move(name);
  queue->downstream = downstream;
  queue->stats.name = queue->name;
  queues_.push_back(std::move(queue));
  entries_.push_back(std::make_unique<EntrySink>(this, queues_.size() - 1));
  return entries_.back().get();
}

Status QueryScheduler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::FailedPrecondition("scheduler running");
  started_ = true;
  stopping_ = false;
  worker_ = std::thread([this] { Run(); });
  return Status::OK();
}

Status QueryScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return worker_status_;
    stopping_ = true;
  }
  work_available_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
  return worker_status_;
}

Status QueryScheduler::Enqueue(size_t index, const StreamEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      return Status::FailedPrecondition("scheduler not started");
    }
    Queue& queue = *queues_[index];
    ++queue.stats.enqueued;
    // Frame metadata and stream control are never shed: downstream
    // buffering operators depend on well-formed frame sequences.
    const bool control = event.kind != EventKind::kPointBatch;
    if (!control && queue.events.size() >= capacity_) {
      ++queue.stats.dropped;
      return Status::OK();
    }
    queue.events.push_back(event);
    queue.stats.queue_high_water = std::max(
        queue.stats.queue_high_water,
        static_cast<uint64_t>(queue.events.size()));
  }
  work_available_.notify_one();
  return Status::OK();
}

int QueryScheduler::PickQueueLocked() {
  const size_t n = queues_.size();
  if (n == 0) return -1;
  if (policy_ == SchedulingPolicy::kLongestQueueFirst) {
    int best = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < n; ++i) {
      if (queues_[i]->events.size() > best_size) {
        best_size = queues_[i]->events.size();
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  // Round robin: next non-empty queue after the cursor.
  for (size_t step = 0; step < n; ++step) {
    const size_t i = (rr_cursor_ + step) % n;
    if (!queues_[i]->events.empty()) {
      rr_cursor_ = (i + 1) % n;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void QueryScheduler::Run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    int index = PickQueueLocked();
    if (index < 0) {
      if (stopping_) return;  // drained and asked to stop
      work_available_.wait(lock, [this] {
        return stopping_ || PickQueueLocked() >= 0;
      });
      continue;
    }
    Queue& queue = *queues_[static_cast<size_t>(index)];
    StreamEvent event = std::move(queue.events.front());
    queue.events.pop_front();
    ++queue.stats.processed;
    EventSink* downstream = queue.downstream;
    lock.unlock();
    Status st = downstream->Consume(event);
    lock.lock();
    if (!st.ok() && worker_status_.ok()) {
      worker_status_ = st;
      return;
    }
  }
}

std::vector<ScheduledQueueStats> QueryScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ScheduledQueueStats> out;
  out.reserve(queues_.size());
  for (const auto& queue : queues_) out.push_back(queue->stats);
  return out;
}

}  // namespace geostreams
