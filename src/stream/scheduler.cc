#include "stream/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"

namespace geostreams {

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kRoundRobin:
      return "round-robin";
    case SchedulingPolicy::kLongestQueueFirst:
      return "longest-queue-first";
  }
  return "?";
}

struct QueryScheduler::Queue {
  std::string name;
  size_t index = 0;
  std::deque<Item> events;
  ScheduledQueueStats stats;
  /// True while a worker is delivering an event from this queue; the
  /// queue is then invisible to SelectQueueLocked, which is what keeps
  /// per-pipeline order under a multi-worker pool.
  bool busy = false;
  // --- supervision state (per failure domain) ---
  bool quarantined = false;
  /// The status that quarantined the pipeline; returned by later
  /// Enqueue calls on it.
  Status error;
  /// Consecutive transient redeliveries of the head event; a
  /// successful delivery resets it.
  int attempts = 0;
  /// Head event is waiting out a retry backoff until `retry_at`.
  bool retry_pending = false;
  Clock::time_point retry_at{};
  /// Operator-chain reset hook, run before redelivery (claim held).
  std::function<void()> reset;
  /// Retained poisoned events (bounded ring; see SchedulerOptions).
  std::unique_ptr<DeadLetterQueue> dead_letters;
  /// stats.dead_letters at the last RestartPipeline: poison events
  /// before the restart neither count toward `poison_limit` nor mark
  /// the pipeline DEGRADED.
  uint64_t dead_letters_baseline = 0;
  /// Finished traces for sampled events delivered through this
  /// pipeline (bounded ring; see SchedulerOptions::trace_ring_capacity).
  std::unique_ptr<TraceRing> traces;
};

QueryScheduler::QueryScheduler(SchedulerOptions options)
    : options_(options), supervisor_(options.supervisor) {
  resolved_workers_ = options_.workers;
  if (resolved_workers_ == 0) {
    resolved_workers_ = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.metrics != nullptr) {
    queue_wait_hist_ = options_.metrics->GetHistogram(
        "geostreams_scheduler_queue_wait_us",
        "Microseconds a traced event waited in its pipeline queue");
    queue_depth_hist_ = options_.metrics->GetHistogram(
        "geostreams_scheduler_queue_depth",
        "Pipeline queue depth observed after each accepted enqueue", {},
        MetricHistogram::DepthBuckets());
  }
}

QueryScheduler::QueryScheduler(SchedulingPolicy policy, size_t queue_capacity)
    : QueryScheduler(SchedulerOptions{policy, queue_capacity,
                                      /*workers=*/1,
                                      /*report_drops=*/false,
                                      SupervisorOptions{}}) {}

QueryScheduler::~QueryScheduler() {
  Status ignored = Stop();
  (void)ignored;
}

EventSink* QueryScheduler::AddPipeline(std::string name,
                                       EventSink* downstream) {
  const size_t pipeline = AddPipelineGroup(std::move(name));
  return AddPipelineInput(pipeline, downstream);
}

size_t QueryScheduler::AddPipelineGroup(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto queue = std::make_unique<Queue>();
  queue->name = std::move(name);
  queue->stats.name = queue->name;
  queue->dead_letters = std::make_unique<DeadLetterQueue>(
      options_.dead_letter_capacity, options_.dead_letter_max_bytes);
  queue->dead_letters->BindMemoryTracker(options_.memory,
                                         "dlq." + queue->name);
  queue->traces = std::make_unique<TraceRing>(options_.trace_ring_capacity);
  if (!free_slots_.empty()) {
    const size_t index = free_slots_.back();
    free_slots_.pop_back();
    queue->index = index;
    queues_[index] = std::move(queue);
    return index;
  }
  queue->index = queues_.size();
  queues_.push_back(std::move(queue));
  return queues_.size() - 1;
}

EventSink* QueryScheduler::AddPipelineInput(size_t pipeline,
                                            EventSink* downstream) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(
      std::make_unique<EntrySink>(this, pipeline, downstream));
  return entries_.back().get();
}

void QueryScheduler::SetPipelineReset(size_t pipeline,
                                      std::function<void()> reset) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pipeline < queues_.size() && queues_[pipeline]) {
    queues_[pipeline]->reset = std::move(reset);
  }
}

Status QueryScheduler::RemovePipeline(size_t pipeline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (pipeline >= queues_.size() || !queues_[pipeline]) {
    return Status::NotFound("pipeline not registered");
  }
  // Wait out an in-flight delivery so the downstream plan can be
  // destroyed safely after this returns.
  ++removals_waiting_;
  idle_.wait(lock, [&] { return !queues_[pipeline]->busy; });
  --removals_waiting_;
  // Drop the ring's MemoryTracker figure before the owner vanishes.
  queues_[pipeline]->dead_letters->Clear();
  entries_.erase(
      std::remove_if(entries_.begin(), entries_.end(),
                     [pipeline](const std::unique_ptr<EntrySink>& e) {
                       return e->index() == pipeline;
                     }),
      entries_.end());
  queues_[pipeline].reset();
  free_slots_.push_back(pipeline);
  if (busy_count_ == 0 && AllQueuesEmptyLocked()) idle_.notify_all();
  return Status::OK();
}

Status QueryScheduler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::FailedPrecondition("scheduler running");
  started_ = true;
  stopping_ = false;
  workers_.reserve(resolved_workers_);
  for (size_t i = 0; i < resolved_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

Status QueryScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return Status::OK();
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  workers_.clear();
  started_ = false;
  idle_.notify_all();
  return Status::OK();
}

Status QueryScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] {
    return !started_ || (busy_count_ == 0 && AllQueuesEmptyLocked());
  });
  return Status::OK();
}

Status QueryScheduler::Enqueue(size_t index, EventSink* downstream,
                               const StreamEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      return Status::FailedPrecondition("scheduler not started");
    }
    if (index >= queues_.size() || !queues_[index]) {
      return Status::NotFound("pipeline removed");
    }
    Queue& queue = *queues_[index];
    if (queue.quarantined) {
      ++queue.stats.rejected;
      return queue.error;
    }
    // Frame metadata and stream control are never shed: downstream
    // buffering operators depend on well-formed frame sequences. They
    // are admitted above capacity, but the overshoot is counted.
    const bool control = event.kind != EventKind::kPointBatch;
    const bool over = queue.events.size() >= options_.queue_capacity;
    if (over) {
      if (!control) {
        ++queue.stats.dropped;
        if (options_.report_drops) {
          return Status::ResourceExhausted("queue full, batch shed: " +
                                           queue.name);
        }
        return Status::OK();
      }
      ++queue.stats.control_overflow;
    }
    ++queue.stats.enqueued;
    Item item{downstream, event};
    if (event.trace) {
      // One traced batch fans out to many pipelines on different
      // workers; fork a private context per pipeline so no two
      // threads ever share mutable trace state.
      item.event.trace = event.trace->Fork(queue.name);
      item.event.trace->MarkEnqueued();
    }
    queue.events.push_back(std::move(item));
    queue.stats.queue_high_water = std::max(
        queue.stats.queue_high_water,
        static_cast<uint64_t>(queue.events.size()));
    if (queue_depth_hist_ != nullptr) {
      queue_depth_hist_->Observe(queue.events.size());
    }
  }
  work_available_.notify_one();
  return Status::OK();
}

bool QueryScheduler::ClaimableLocked(const Queue& queue,
                                     Clock::time_point now) const {
  if (queue.busy || queue.quarantined || queue.events.empty()) return false;
  if (queue.retry_pending && now < queue.retry_at) return false;
  return true;
}

int QueryScheduler::SelectQueueLocked(Clock::time_point now) const {
  const size_t n = queues_.size();
  if (n == 0) return -1;
  if (options_.policy == SchedulingPolicy::kLongestQueueFirst) {
    int best = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!queues_[i]) continue;
      const Queue& queue = *queues_[i];
      if (ClaimableLocked(queue, now) && queue.events.size() > best_size) {
        best_size = queue.events.size();
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  // Round robin: next claimable queue at or after the cursor. The
  // cursor is NOT advanced here — selection must stay side-effect
  // free so it can serve as a wait predicate.
  for (size_t step = 0; step < n; ++step) {
    const size_t i = (rr_cursor_ + step) % n;
    if (!queues_[i]) continue;
    if (ClaimableLocked(*queues_[i], now)) return static_cast<int>(i);
  }
  return -1;
}

void QueryScheduler::AdvanceCursorLocked(size_t claimed) {
  rr_cursor_ = (claimed + 1) % queues_.size();
}

bool QueryScheduler::AllQueuesEmptyLocked() const {
  for (const auto& queue : queues_) {
    if (queue && !queue->events.empty()) return false;
  }
  return true;
}

std::optional<QueryScheduler::Clock::time_point>
QueryScheduler::EarliestRetryLocked() const {
  std::optional<Clock::time_point> earliest;
  for (const auto& queue : queues_) {
    if (!queue || queue->busy || queue->quarantined) continue;
    if (!queue->retry_pending || queue->events.empty()) continue;
    if (!earliest || queue->retry_at < *earliest) earliest = queue->retry_at;
  }
  return earliest;
}

void QueryScheduler::QuarantineLocked(Queue& queue, const Status& status) {
  queue.quarantined = true;
  queue.error = status;
  if (first_error_.ok()) first_error_ = status;
  queue.stats.discarded += queue.events.size();
  queue.events.clear();
  queue.retry_pending = false;
  GEOSTREAMS_LOG(kError) << "pipeline '" << queue.name
                         << "' quarantined: " << status.ToString();
  if (options_.event_log != nullptr) {
    options_.event_log->Append(
        EventSeverity::kError, "scheduler", "quarantine",
        StringPrintf("pipeline=%s %s", queue.name.c_str(),
                     status.ToString().c_str()));
  }
}

void QueryScheduler::HandleFailureLocked(std::unique_lock<std::mutex>& lock,
                                         Queue& queue, Item item,
                                         const Status& status) {
  const SupervisorDecision decision = supervisor_.Decide(
      status, queue.attempts,
      queue.stats.dead_letters - queue.dead_letters_baseline);
  bool run_reset = false;
  switch (decision.action) {
    case SupervisorDecision::Action::kRetry: {
      const uint32_t backoff =
          supervisor_.BackoffMs(queue.index, queue.attempts);
      ++queue.attempts;
      ++queue.stats.restarts;
      queue.events.push_front(std::move(item));
      queue.retry_pending = true;
      queue.retry_at =
          Clock::now() + std::chrono::milliseconds(backoff);
      run_reset = true;
      break;
    }
    case SupervisorDecision::Action::kDeadLetter:
      // The event is poison: drop it, count it, keep it inspectable,
      // keep the pipeline. The chain may hold trashed mid-frame
      // state, so reset it too.
      ++queue.stats.dead_letters;
      queue.dead_letters->Push(item.event, status);
      queue.attempts = 0;
      run_reset = true;
      break;
    case SupervisorDecision::Action::kQuarantine:
      // The triggering event is discarded along with the queue, which
      // keeps `processed + dead_letters + discarded == enqueued`. A
      // poison event that trips the limit is still retained in the
      // ring — with the default poison_limit of 1 it would otherwise
      // never be inspectable.
      if (ClassifyFault(status) == FaultClass::kPoison) {
        queue.dead_letters->Push(item.event, status);
      }
      ++queue.stats.discarded;
      QuarantineLocked(queue, status);
      break;
  }
  if (run_reset && queue.reset) {
    // The claim is still held, so the reset cannot race a delivery;
    // run it outside the lock like any downstream call.
    auto reset = queue.reset;
    lock.unlock();
    reset();
    lock.lock();
  }
}

void QueryScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    const int index = SelectQueueLocked(Clock::now());
    if (index < 0) {
      // Nothing claimable. Pipelines in backoff need a timed wake; on
      // stop, busy queues still holding events are finished by the
      // workers that claimed them, so this worker can leave once no
      // retry is pending either.
      const auto deadline = EarliestRetryLocked();
      if (deadline.has_value()) {
        work_available_.wait_until(lock, *deadline);
      } else if (stopping_) {
        return;
      } else {
        work_available_.wait(lock);
      }
      continue;
    }
    Queue& queue = *queues_[static_cast<size_t>(index)];
    AdvanceCursorLocked(static_cast<size_t>(index));
    queue.busy = true;
    queue.retry_pending = false;
    ++busy_count_;
    Item item = std::move(queue.events.front());
    queue.events.pop_front();
    lock.unlock();
    // The claim invariant makes this call single-threaded per
    // pipeline; the mutex acquire/release around claim and release
    // orders operator state (incl. OperatorMetrics) across workers.
    Status st;
    TraceContext* trace = item.event.trace.get();
    if (trace == nullptr) {
      st = item.downstream->Consume(item.event);
    } else {
      uint64_t wait_us = trace->MarkDequeued();
      if (queue_wait_hist_ != nullptr) queue_wait_hist_->Observe(wait_us);
      // Reserve the ring slot before the chain runs so exemplar
      // observations made during delivery (operator spans, e2e
      // stages) can carry the ordinal `TRACE` will answer to. The
      // claim invariant keeps per-pipeline reservations ordered.
      if (queue.traces && trace->ring_ordinal() == TraceContext::kNoRingOrdinal) {
        trace->set_ring_ordinal(queue.traces->Reserve());
      }
      // Frame-lifecycle stages up to the claim: `send` and `journal`
      // come straight from the ingest anchors, observed once per
      // frame — only the fork that owns the per-source stages (the
      // first of a fan-out) reports them, and only while its chain
      // still sits at the seeded anchor (a retried event has advanced
      // past it). `queue` closes at the claim itself and is
      // per-pipeline. Only FrameEnd events are staged so per-stage
      // sums partition the frame's end-to-end latency.
      if (item.event.kind == EventKind::kFrameEnd &&
          trace->last_anchor_wall_us() != 0 && options_.metrics != nullptr) {
        const uint64_t capture = trace->capture_wall_us();
        const uint64_t admit = trace->admit_wall_us();
        const uint64_t durable = trace->durable_wall_us();
        const uint64_t seeded = durable ? durable : (admit ? admit : capture);
        if (trace->observes_source_stages() &&
            trace->last_anchor_wall_us() == seeded) {
          if (capture != 0 && admit > capture) {
            ObserveE2eStage(options_.metrics, "send", "source",
                            trace->origin(), admit - capture, trace);
          }
          if (admit != 0 && durable > admit) {
            ObserveE2eStage(options_.metrics, "journal", "source",
                            trace->origin(), durable - admit, trace);
          }
        }
        ObserveE2eStage(options_.metrics, "queue", "query", queue.name,
                        trace->AdvanceStage(TraceWallNowUs()), trace);
      }
      // Activate for the chain: operators emit fresh events, so they
      // read the trace from the thread-local, not the event.
      ScopedTraceActivation activate(trace);
      st = item.downstream->Consume(item.event);
    }
    if (st.ok() && trace != nullptr && queue.traces) {
      // Claim still held, so `queue` cannot be removed under us; the
      // ring is internally synchronized. Failed deliveries are not
      // recorded — a retry would append a second set of spans (the
      // reserved ordinal then stays a gap in the ring).
      if (trace->ring_ordinal() != TraceContext::kNoRingOrdinal) {
        queue.traces->PushReserved(trace->Finish());
      } else {
        queue.traces->Push(trace->Finish());
      }
    }
    lock.lock();
    if (st.ok()) {
      ++queue.stats.processed;
      queue.attempts = 0;
    } else {
      HandleFailureLocked(lock, queue, std::move(item), st);
    }
    queue.busy = false;
    --busy_count_;
    if (removals_waiting_ > 0) idle_.notify_all();
    if (!queue.events.empty()) work_available_.notify_one();
    if (busy_count_ == 0 && AllQueuesEmptyLocked()) idle_.notify_all();
  }
}

PipelineHealth QueryScheduler::HealthLocked(const Queue& queue) const {
  if (queue.quarantined) return PipelineHealth::kQuarantined;
  if (queue.retry_pending || queue.attempts > 0 ||
      queue.stats.dead_letters > queue.dead_letters_baseline) {
    return PipelineHealth::kDegraded;
  }
  return PipelineHealth::kRunning;
}

Status QueryScheduler::RestartPipeline(size_t pipeline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (pipeline >= queues_.size() || !queues_[pipeline]) {
    return Status::NotFound("pipeline not registered");
  }
  if (HealthLocked(*queues_[pipeline]) == PipelineHealth::kRunning) {
    return Status::OK();  // already healthy
  }
  // Take the pipeline's claim so the reset cannot race an in-flight
  // delivery (quarantine can land while a worker is mid-event).
  ++removals_waiting_;
  idle_.wait(lock, [&] {
    return !queues_[pipeline] || !queues_[pipeline]->busy;
  });
  --removals_waiting_;
  if (!queues_[pipeline]) {
    return Status::NotFound("pipeline removed during restart");
  }
  Queue& queue = *queues_[pipeline];
  queue.quarantined = false;
  queue.error = Status::OK();
  queue.attempts = 0;
  queue.retry_pending = false;
  queue.dead_letters_baseline = queue.stats.dead_letters;
  if (queue.reset) {
    queue.busy = true;
    ++busy_count_;
    auto reset = queue.reset;
    lock.unlock();
    reset();
    lock.lock();
    queue.busy = false;
    --busy_count_;
    if (removals_waiting_ > 0) idle_.notify_all();
    if (busy_count_ == 0 && AllQueuesEmptyLocked()) idle_.notify_all();
  }
  GEOSTREAMS_LOG(kInfo) << "pipeline '" << queue.name
                        << "' restarted (un-quarantined)";
  if (options_.event_log != nullptr) {
    options_.event_log->Append(EventSeverity::kInfo, "scheduler", "restart",
                               StringPrintf("pipeline=%s", queue.name.c_str()));
  }
  if (!queue.events.empty()) work_available_.notify_one();
  return Status::OK();
}

std::vector<DeadLetter> QueryScheduler::DeadLetters(size_t pipeline) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pipeline >= queues_.size() || !queues_[pipeline]) return {};
  return queues_[pipeline]->dead_letters->Snapshot();
}

TraceRing::Snapshot QueryScheduler::Traces(size_t pipeline) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pipeline >= queues_.size() || !queues_[pipeline]) return {};
  return queues_[pipeline]->traces->TakeSnapshot();
}

PipelineHealth QueryScheduler::Health(size_t pipeline) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pipeline >= queues_.size() || !queues_[pipeline]) {
    // Removed pipelines are no longer serviceable.
    return PipelineHealth::kQuarantined;
  }
  return HealthLocked(*queues_[pipeline]);
}

Status QueryScheduler::PipelineError(size_t pipeline) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pipeline >= queues_.size() || !queues_[pipeline]) {
    return Status::NotFound("pipeline not registered");
  }
  return queues_[pipeline]->error;
}

Status QueryScheduler::FirstPipelineError() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_error_;
}

size_t QueryScheduler::num_pipelines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& queue : queues_) {
    if (queue) ++n;
  }
  return n;
}

std::vector<ScheduledQueueStats> QueryScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ScheduledQueueStats> out;
  out.reserve(queues_.size());
  for (const auto& queue : queues_) {
    if (!queue) continue;
    ScheduledQueueStats stats = queue->stats;
    stats.queued = queue->events.size();
    stats.traces = queue->traces->total();
    stats.health = HealthLocked(*queue);
    stats.error = queue->error.ok() ? "" : queue->error.ToString();
    out.push_back(std::move(stats));
  }
  return out;
}

ScheduledQueueStats QueryScheduler::AggregateStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ScheduledQueueStats total;
  total.name = "total";
  for (const auto& queue : queues_) {
    if (!queue) continue;
    ScheduledQueueStats stats = queue->stats;
    stats.queued = queue->events.size();
    stats.traces = queue->traces->total();
    stats.health = HealthLocked(*queue);
    stats.error = queue->error.ok() ? "" : queue->error.ToString();
    total.MergeFrom(stats);
  }
  return total;
}

}  // namespace geostreams
