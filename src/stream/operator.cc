#include "stream/operator.h"

namespace geostreams {

uint64_t CollectingSink::TotalPoints() const {
  uint64_t n = 0;
  for (const StreamEvent& e : events_) {
    if (e.kind == EventKind::kPointBatch && e.batch) n += e.batch->size();
  }
  return n;
}

uint64_t CollectingSink::NumFrames() const {
  uint64_t n = 0;
  for (const StreamEvent& e : events_) {
    if (e.kind == EventKind::kFrameBegin) ++n;
  }
  return n;
}

}  // namespace geostreams
