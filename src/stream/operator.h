// Push-based stream operator interfaces.
//
// GeoStream operators are event consumers/producers: events flow in
// through input ports and out through one bound output sink. Unary
// operators (restrictions, transforms) have one port; the composition
// operator (Definition 10) has two.

#ifndef GEOSTREAMS_STREAM_OPERATOR_H_
#define GEOSTREAMS_STREAM_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/geostream.h"
#include "core/stream_event.h"
#include "obs/trace.h"
#include "stream/memory_tracker.h"
#include "stream/metrics.h"

namespace geostreams {

/// Anything that can consume stream events.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual Status Consume(const StreamEvent& event) = 0;
};

/// Sink that stores everything (tests, frame capture).
class CollectingSink : public EventSink {
 public:
  Status Consume(const StreamEvent& event) override {
    events_.push_back(event);
    return Status::OK();
  }

  const std::vector<StreamEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Total points across all batches.
  uint64_t TotalPoints() const;
  /// Frames seen (FrameBegin events).
  uint64_t NumFrames() const;

 private:
  std::vector<StreamEvent> events_;
};

/// Sink that counts and discards (benchmark endpoints).
class NullSink : public EventSink {
 public:
  Status Consume(const StreamEvent& event) override {
    ++events_;
    if (event.kind == EventKind::kPointBatch && event.batch) {
      points_ += event.batch->size();
    }
    return Status::OK();
  }

  uint64_t events() const { return events_; }
  uint64_t points() const { return points_; }

 private:
  uint64_t events_ = 0;
  uint64_t points_ = 0;
};

/// Base class for all stream operators. An operator is bound to an
/// output sink, exposes one EventSink per input port, and describes
/// the stream it produces (closure: the output is again a GeoStream).
class Operator {
 public:
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& name() const { return name_; }

  virtual int num_inputs() const = 0;
  /// Sink for input port `port` in [0, num_inputs()).
  virtual EventSink* input(int port) = 0;

  /// Drops buffered per-frame state so the operator can accept a
  /// fresh, well-formed event sequence after a fault (the supervisor
  /// calls this before redelivering an event and after dead-lettering
  /// a poison event). Metrics and learned stream properties survive;
  /// only in-flight frame buffers are discarded. Default: no-op, for
  /// stateless operators.
  virtual void Reset() {}

  /// Binds the output; must be called before events arrive.
  void BindOutput(EventSink* out) { out_ = out; }
  /// Optional memory tracker for buffering reports.
  void BindMemoryTracker(MemoryTracker* tracker) { tracker_ = tracker; }
  /// Optional latency histogram (labeled by operator kind in the
  /// registry): receives this operator's exclusive microseconds for
  /// every *traced* delivery. Untraced events never observe.
  void BindLatencyHistogram(MetricHistogram* histogram) {
    latency_histogram_ = histogram;
  }

  const OperatorMetrics& metrics() const { return metrics_; }
  OperatorMetrics& mutable_metrics() { return metrics_; }

 protected:
  Status Emit(const StreamEvent& event) {
    if (event.kind == EventKind::kPointBatch && event.batch) {
      metrics_.points_out += event.batch->size();
    } else if (event.kind == EventKind::kFrameBegin) {
      ++metrics_.frames_out;
    }
    return out_ ? out_->Consume(event)
                : Status::FailedPrecondition("operator output not bound: " +
                                             name_);
  }

  void NoteInput(const StreamEvent& event) {
    ++metrics_.events_in;
    if (event.kind == EventKind::kPointBatch && event.batch) {
      metrics_.points_in += event.batch->size();
    } else if (event.kind == EventKind::kFrameBegin) {
      ++metrics_.frames_in;
    }
  }

  void ReportBuffered(uint64_t bytes) {
    metrics_.SetBuffered(bytes);
    if (tracker_) tracker_->Update(name_, bytes);
  }

  /// Span wrapper used by the Consume shims below: times `Process`
  /// when a trace is active on this thread, otherwise calls straight
  /// through (one thread-local load + branch — the disabled-path cost
  /// benched in bench/bench_tracing.cc).
  template <typename ProcessFn>
  Status TracedProcess(ProcessFn&& process) {
    TraceContext* trace = ActiveTrace();
    if (trace == nullptr) return process();
    SpanTimer timer(trace, name_, latency_histogram_);
    return process();
  }

 private:
  std::string name_;
  EventSink* out_ = nullptr;
  MemoryTracker* tracker_ = nullptr;
  MetricHistogram* latency_histogram_ = nullptr;
  OperatorMetrics metrics_;
};

/// Operator with a single input port; it is its own input sink.
class UnaryOperator : public Operator, public EventSink {
 public:
  using Operator::Operator;

  int num_inputs() const override { return 1; }
  EventSink* input(int port) override { return port == 0 ? this : nullptr; }

  Status Consume(const StreamEvent& event) final {
    NoteInput(event);
    return TracedProcess([&] { return Process(event); });
  }

 protected:
  /// Handles one event; implementations forward (possibly rewritten)
  /// events with Emit(). StreamEnd must be forwarded after flushing.
  virtual Status Process(const StreamEvent& event) = 0;
};

/// Operator with two input ports (left = 0, right = 1).
class BinaryOperator : public Operator {
 public:
  explicit BinaryOperator(std::string name)
      : Operator(std::move(name)), left_(this, 0), right_(this, 1) {}

  int num_inputs() const override { return 2; }
  EventSink* input(int port) override {
    if (port == 0) return &left_;
    if (port == 1) return &right_;
    return nullptr;
  }

 protected:
  /// Handles one event arriving on `port`.
  virtual Status Process(int port, const StreamEvent& event) = 0;

 private:
  class PortSink : public EventSink {
   public:
    PortSink(BinaryOperator* op, int port) : op_(op), port_(port) {}
    Status Consume(const StreamEvent& event) override {
      op_->NoteInput(event);
      return op_->TracedProcess([&] { return op_->Process(port_, event); });
    }

   private:
    BinaryOperator* op_;
    int port_;
  };

  PortSink left_;
  PortSink right_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_OPERATOR_H_
