#include "stream/adaptive_shedding.h"

#include <algorithm>

#include "common/math_util.h"

namespace geostreams {

AdaptiveShedController::AdaptiveShedController(
    std::function<size_t()> backlog_fn, AdaptiveSheddingOptions options)
    : backlog_fn_(std::move(backlog_fn)), options_(options) {}

void AdaptiveShedController::Control(LoadSheddingOp* op) {
  ops_.push_back(op);
  op->set_keep_fraction(keep_);
}

double AdaptiveShedController::Observe() {
  const size_t backlog = backlog_fn_ ? backlog_fn_() : 0;
  double next = keep_;
  if (backlog > options_.high_watermark) {
    next = std::max(options_.min_keep, keep_ * options_.decrease_factor);
    if (next < keep_) ++decreases_;
  } else if (backlog < options_.low_watermark && keep_ < 1.0) {
    next = std::min(1.0, keep_ + options_.increase_step);
    ++increases_;
  }
  if (next != keep_) {
    keep_ = next;
    for (LoadSheddingOp* op : ops_) op->set_keep_fraction(keep_);
  }
  return keep_;
}

}  // namespace geostreams
