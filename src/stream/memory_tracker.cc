#include "stream/memory_tracker.h"

namespace geostreams {

void MemoryTracker::Update(const std::string& owner, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t& cur = current_[owner];
  total_ = total_ - cur + bytes;
  cur = bytes;
  uint64_t& ohw = owner_high_water_[owner];
  if (bytes > ohw) ohw = bytes;
  if (total_ > high_water_) high_water_ = total_;
}

uint64_t MemoryTracker::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

uint64_t MemoryTracker::HighWaterBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

uint64_t MemoryTracker::OwnerHighWater(const std::string& owner) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = owner_high_water_.find(owner);
  return it == owner_high_water_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> MemoryTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

void MemoryTracker::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  current_.clear();
  owner_high_water_.clear();
  total_ = 0;
  high_water_ = 0;
}

}  // namespace geostreams
