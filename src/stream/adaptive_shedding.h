// Adaptive load-shedding controller.
//
// "Adaptive query processing" is the first relational-DSMS technique
// the paper's introduction lists. For image streams the natural
// adaptation knob is the shedding rate: when the ingest queue backs
// up, trade product fidelity for liveness by lowering a LoadSheddingOp
// keep fraction; recover it when the backlog drains. The controller
// implements the classic AIMD scheme (multiplicative decrease on
// pressure, additive increase on slack) against an observed queue
// depth — the observation source is a callback, so it composes with
// BoundedEventQueue, QueryScheduler stats, or anything else.

#ifndef GEOSTREAMS_STREAM_ADAPTIVE_SHEDDING_H_
#define GEOSTREAMS_STREAM_ADAPTIVE_SHEDDING_H_

#include <functional>
#include <vector>

#include "ops/shedding_op.h"

namespace geostreams {

struct AdaptiveSheddingOptions {
  /// Queue depth above which shedding increases.
  size_t high_watermark = 512;
  /// Queue depth below which shedding relaxes.
  size_t low_watermark = 64;
  /// Multiplicative decrease applied to keep when over the high mark.
  double decrease_factor = 0.5;
  /// Additive increase applied to keep when under the low mark.
  double increase_step = 0.05;
  /// Keep never drops below this floor (total blackout helps no one).
  double min_keep = 0.05;
};

/// Drives one or more shedding operators from a backlog observation.
/// Call Observe() periodically (e.g. once per scan line or from a
/// scheduler tick); the controller is not a thread of its own.
class AdaptiveShedController {
 public:
  AdaptiveShedController(std::function<size_t()> backlog_fn,
                         AdaptiveSheddingOptions options = {});

  /// Registers a shedding operator to control (not owned).
  void Control(LoadSheddingOp* op);

  /// Takes one observation and adjusts the registered operators.
  /// Returns the keep fraction now in force.
  double Observe();

  double current_keep() const { return keep_; }
  uint64_t decreases() const { return decreases_; }
  uint64_t increases() const { return increases_; }

 private:
  std::function<size_t()> backlog_fn_;
  AdaptiveSheddingOptions options_;
  std::vector<LoadSheddingOp*> ops_;
  double keep_ = 1.0;
  uint64_t decreases_ = 0;
  uint64_t increases_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_ADAPTIVE_SHEDDING_H_
