// Operator scheduling across continuous queries.
//
// The paper's introduction lists "operator scheduling" among the
// relational-DSMS techniques to adapt. When one receiving thread
// serves many registered pipelines, the dispatch order decides
// latency and memory: round-robin treats queries fairly,
// longest-queue-first bounds the worst backlog (a Chain-style
// heuristic at the pipeline granularity). The scheduler owns one
// bounded queue per pipeline, a single worker thread, and per-queue
// statistics; enqueue never blocks (overflow is counted and dropped —
// the shedding decision surfaced, not hidden).

#ifndef GEOSTREAMS_STREAM_SCHEDULER_H_
#define GEOSTREAMS_STREAM_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stream/operator.h"

namespace geostreams {

enum class SchedulingPolicy : uint8_t {
  kRoundRobin,        // fair rotation over non-empty queues
  kLongestQueueFirst, // drain the biggest backlog first
};

const char* SchedulingPolicyName(SchedulingPolicy policy);

/// Statistics for one scheduled pipeline.
struct ScheduledQueueStats {
  std::string name;
  uint64_t enqueued = 0;
  uint64_t processed = 0;
  uint64_t dropped = 0;       // overflow shedding
  uint64_t queue_high_water = 0;
};

class QueryScheduler {
 public:
  /// `queue_capacity`: per-pipeline bound; events beyond it are
  /// dropped (and counted) rather than blocking the ingest thread.
  explicit QueryScheduler(SchedulingPolicy policy,
                          size_t queue_capacity = 1024);
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Adds a pipeline; returns the sink to feed it through. Must be
  /// called before Start(). `downstream` is not owned.
  EventSink* AddPipeline(std::string name, EventSink* downstream);

  /// Starts the worker thread.
  Status Start();

  /// Drains all queues and joins the worker. Returns the first error
  /// any downstream produced.
  Status Stop();

  std::vector<ScheduledQueueStats> Stats() const;

 private:
  struct Queue;

  /// Entry sinks enqueue into their pipeline's queue.
  class EntrySink : public EventSink {
   public:
    EntrySink(QueryScheduler* scheduler, size_t index)
        : scheduler_(scheduler), index_(index) {}
    Status Consume(const StreamEvent& event) override {
      return scheduler_->Enqueue(index_, event);
    }

   private:
    QueryScheduler* scheduler_;
    size_t index_;
  };

  Status Enqueue(size_t index, const StreamEvent& event);
  void Run();
  /// Picks the next queue to service; -1 when all are empty.
  int PickQueueLocked();

  SchedulingPolicy policy_;
  size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<EntrySink>> entries_;
  std::thread worker_;
  bool started_ = false;
  bool stopping_ = false;
  size_t rr_cursor_ = 0;
  Status worker_status_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_SCHEDULER_H_
