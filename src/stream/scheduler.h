// Operator scheduling across continuous queries.
//
// The paper's introduction lists "operator scheduling" among the
// relational-DSMS techniques to adapt. The scheduler owns one bounded
// queue per registered pipeline and a pool of worker threads that
// claim queues and drain them. The central invariant: **at most one
// worker drains a given pipeline's queue at any moment** (a per-queue
// busy flag taken under the scheduler mutex), so per-pipeline event
// order — which `ComposeOp`/`StretchTransformOp` frame buffering
// depends on — is preserved while distinct pipelines run in parallel.
//
// Dispatch order between pipelines decides latency and memory:
// round-robin treats queries fairly, longest-queue-first bounds the
// worst backlog (a Chain-style heuristic at the pipeline granularity).
// Enqueue never blocks: point batches beyond capacity are shed (the
// shedding decision is surfaced through stats and, optionally, a
// ResourceExhausted status); frame/stream control events are always
// admitted so downstream buffering operators see well-formed frame
// sequences, with overshoot counted in `control_overflow`.
//
// Error handling: the first non-OK status any downstream returns
// aborts the whole pool — every worker exits, later Enqueue calls
// return that status to the producers, and Stop()/WaitIdle() report
// it. Graceful shutdown (Stop without error) drains every queue
// before joining the workers.

#ifndef GEOSTREAMS_STREAM_SCHEDULER_H_
#define GEOSTREAMS_STREAM_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stream/operator.h"

namespace geostreams {

enum class SchedulingPolicy : uint8_t {
  kRoundRobin,        // fair rotation over non-empty queues
  kLongestQueueFirst, // drain the biggest backlog first
};

const char* SchedulingPolicyName(SchedulingPolicy policy);

struct SchedulerOptions {
  SchedulingPolicy policy = SchedulingPolicy::kRoundRobin;
  /// Per-pipeline bound; point batches beyond it are shed (and
  /// counted) rather than blocking the ingest thread.
  size_t queue_capacity = 1024;
  /// Worker threads draining the queues. 0 resolves to
  /// std::thread::hardware_concurrency().
  size_t workers = 1;
  /// When true, Enqueue returns ResourceExhausted for a shed batch so
  /// producers can react; when false (default) shedding is silent and
  /// only visible in Stats().
  bool report_drops = false;
};

/// Statistics for one scheduled pipeline. `enqueued` counts events
/// accepted into the queue; shed events are counted in `dropped`
/// only, so `enqueued + dropped` is the total offered and — after a
/// full drain — `processed == enqueued`.
struct ScheduledQueueStats {
  std::string name;
  uint64_t enqueued = 0;
  uint64_t processed = 0;
  uint64_t dropped = 0;           // overflow shedding (batches only)
  uint64_t control_overflow = 0;  // control events admitted above capacity
  uint64_t queue_high_water = 0;

  /// Accumulates `other` into this entry (used for pool-wide totals).
  void MergeFrom(const ScheduledQueueStats& other) {
    enqueued += other.enqueued;
    processed += other.processed;
    dropped += other.dropped;
    control_overflow += other.control_overflow;
    if (other.queue_high_water > queue_high_water) {
      queue_high_water = other.queue_high_water;
    }
  }
};

class QueryScheduler {
 public:
  explicit QueryScheduler(SchedulerOptions options);
  /// Legacy single-worker form: callers that route several queues into
  /// one shared plan (e.g. per-band queues feeding a cross-band
  /// operator) rely on one worker serializing all queues.
  explicit QueryScheduler(SchedulingPolicy policy,
                          size_t queue_capacity = 1024);
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Adds a pipeline with a single input; returns the sink to feed it
  /// through. `downstream` is not owned. May be called before Start()
  /// or while the pool is running (pipelines are never removed).
  EventSink* AddPipeline(std::string name, EventSink* downstream);

  /// Multi-input form for plans that read several sources: all inputs
  /// added to one pipeline share its queue, so one worker at a time
  /// drives the whole plan and cross-input operators stay effectively
  /// single-threaded. Returns the pipeline's id.
  size_t AddPipelineGroup(std::string name);
  /// Adds an input to pipeline `pipeline`; events pushed into the
  /// returned sink are delivered, in enqueue order, to `downstream`.
  EventSink* AddPipelineInput(size_t pipeline, EventSink* downstream);

  /// Starts the worker pool.
  Status Start();

  /// Drains all queues and joins the workers. Returns the first error
  /// any downstream produced (in which case remaining queued events
  /// were discarded, not drained).
  Status Stop();

  /// Blocks until every queue is empty and no worker is mid-event, or
  /// the pool aborted on error. Returns the first error, if any.
  Status WaitIdle();

  std::vector<ScheduledQueueStats> Stats() const;
  /// Pool-wide totals across all pipelines (thread-safe snapshot).
  ScheduledQueueStats AggregateStats() const;

  size_t num_workers() const { return resolved_workers_; }

 private:
  struct Queue;
  /// One queued unit of work: the event plus the plan input it is
  /// destined for (pipelines can have several inputs).
  struct Item {
    EventSink* downstream;
    StreamEvent event;
  };

  /// Entry sinks enqueue into their pipeline's queue.
  class EntrySink : public EventSink {
   public:
    EntrySink(QueryScheduler* scheduler, size_t index, EventSink* downstream)
        : scheduler_(scheduler), index_(index), downstream_(downstream) {}
    Status Consume(const StreamEvent& event) override {
      return scheduler_->Enqueue(index_, downstream_, event);
    }

   private:
    QueryScheduler* scheduler_;
    size_t index_;
    EventSink* downstream_;
  };

  Status Enqueue(size_t index, EventSink* downstream,
                 const StreamEvent& event);
  void WorkerLoop();
  /// Picks the next claimable queue (non-empty and not busy); -1 when
  /// none. Const: safe as a condvar wait predicate — it must never
  /// mutate scheduler state (a previous version advanced the
  /// round-robin cursor here, so every spurious wakeup skewed the
  /// rotation; see SchedulerTest.RoundRobinRotationIsExact).
  int SelectQueueLocked() const;
  /// Advances the round-robin cursor past a queue that was actually
  /// claimed. Called only when an event is taken.
  void AdvanceCursorLocked(size_t claimed);
  bool AllQueuesEmptyLocked() const;

  SchedulerOptions options_;
  size_t resolved_workers_ = 1;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<EntrySink>> entries_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;
  /// Set by the first worker that sees a downstream error; stops the
  /// whole pool and is surfaced to producers via Enqueue.
  bool aborted_ = false;
  size_t busy_count_ = 0;
  size_t rr_cursor_ = 0;
  Status worker_status_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_SCHEDULER_H_
