// Operator scheduling across continuous queries.
//
// The paper's introduction lists "operator scheduling" among the
// relational-DSMS techniques to adapt. The scheduler owns one bounded
// queue per registered pipeline and a pool of worker threads that
// claim queues and drain them. The central invariant: **at most one
// worker drains a given pipeline's queue at any moment** (a per-queue
// busy flag taken under the scheduler mutex), so per-pipeline event
// order — which `ComposeOp`/`StretchTransformOp` frame buffering
// depends on — is preserved while distinct pipelines run in parallel.
//
// Dispatch order between pipelines decides latency and memory:
// round-robin treats queries fairly, longest-queue-first bounds the
// worst backlog (a Chain-style heuristic at the pipeline granularity).
// Enqueue never blocks: point batches beyond capacity are shed (the
// shedding decision is surfaced through stats and, optionally, a
// ResourceExhausted status); frame/stream control events are always
// admitted so downstream buffering operators see well-formed frame
// sequences, with overshoot counted in `control_overflow`.
//
// Failure domains: each pipeline is its own failure domain. A non-OK
// status from a pipeline's operator chain is handed to the
// PipelineSupervisor, which classifies it (see stream/supervisor.h):
// transient failures are retried after a backoff (with the chain's
// frame-buffer state reset first), poison events are dead-lettered,
// and permanent failures quarantine *that pipeline only* — its error
// is recorded, its queued events discarded, and later Enqueue calls
// on it return its own error. All other pipelines keep running;
// Stop()/WaitIdle() drain the healthy pipelines and return OK.

#ifndef GEOSTREAMS_STREAM_SCHEDULER_H_
#define GEOSTREAMS_STREAM_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "stream/operator.h"
#include "stream/supervisor.h"

namespace geostreams {

class EventLog;
class MetricsRegistry;

enum class SchedulingPolicy : uint8_t {
  kRoundRobin,        // fair rotation over non-empty queues
  kLongestQueueFirst, // drain the biggest backlog first
};

const char* SchedulingPolicyName(SchedulingPolicy policy);

struct SchedulerOptions {
  SchedulingPolicy policy = SchedulingPolicy::kRoundRobin;
  /// Per-pipeline bound; point batches beyond it are shed (and
  /// counted) rather than blocking the ingest thread.
  size_t queue_capacity = 1024;
  /// Worker threads draining the queues. 0 resolves to
  /// std::thread::hardware_concurrency().
  size_t workers = 1;
  /// When true, Enqueue returns ResourceExhausted for a shed batch so
  /// producers can react; when false (default) shedding is silent and
  /// only visible in Stats().
  bool report_drops = false;
  /// Per-pipeline failure handling (restart/backoff/poison policy).
  SupervisorOptions supervisor;
  /// Dead-letter retention: each pipeline keeps its most recent
  /// poisoned events (including the one that tripped quarantine) in a
  /// bounded ring for inspection via DeadLetters(), capped by entry
  /// count and approximate bytes.
  size_t dead_letter_capacity = 16;
  size_t dead_letter_max_bytes = 1 << 20;
  /// Optional tracker the dead-letter rings report their byte usage
  /// to (owner "dlq.<pipeline name>"). Not owned; may be null.
  MemoryTracker* memory = nullptr;
  /// Optional metrics registry. When set, the scheduler owns two
  /// histograms: `geostreams_scheduler_queue_wait_us` (queue-entry to
  /// claim, observed per *traced* event) and
  /// `geostreams_scheduler_queue_depth` (post-enqueue depth, observed
  /// per accepted event). Not owned; may be null.
  MetricsRegistry* metrics = nullptr;
  /// Finished traces retained per pipeline (TRACE admin command).
  size_t trace_ring_capacity = 32;
  /// Optional flight recorder (not owned): quarantines and admin
  /// restarts are recorded as structured events.
  EventLog* event_log = nullptr;
};

/// Statistics for one scheduled pipeline. `enqueued` counts events
/// accepted into the queue; shed events are counted in `dropped`
/// only, so `enqueued + dropped` is the total offered. After a full
/// drain of a healthy pipeline `processed == enqueued`; in general
/// `processed + dead_letters + discarded == enqueued` once the queue
/// is empty (dead-lettered events were dropped as poison; discarded
/// ones were thrown away when the pipeline quarantined).
struct ScheduledQueueStats {
  std::string name;
  uint64_t enqueued = 0;
  uint64_t processed = 0;
  uint64_t dropped = 0;           // overflow shedding (batches only)
  uint64_t control_overflow = 0;  // control events admitted above capacity
  uint64_t queue_high_water = 0;
  uint64_t queued = 0;            // depth at snapshot time
  uint64_t traces = 0;            // finished trace records (ever)
  // --- supervision ---
  PipelineHealth health = PipelineHealth::kRunning;
  /// ToString() of the pipeline's recorded error; empty while healthy.
  std::string error;
  uint64_t dead_letters = 0; // poison events dropped
  uint64_t restarts = 0;     // transient redelivery attempts
  uint64_t rejected = 0;     // enqueues refused after quarantine
  uint64_t discarded = 0;    // queued events thrown away at quarantine

  /// Accumulates `other` into this entry (used for pool-wide totals).
  void MergeFrom(const ScheduledQueueStats& other) {
    enqueued += other.enqueued;
    processed += other.processed;
    dropped += other.dropped;
    control_overflow += other.control_overflow;
    queued += other.queued;
    traces += other.traces;
    if (other.queue_high_water > queue_high_water) {
      queue_high_water = other.queue_high_water;
    }
    if (other.health > health) health = other.health;
    if (error.empty()) error = other.error;
    dead_letters += other.dead_letters;
    restarts += other.restarts;
    rejected += other.rejected;
    discarded += other.discarded;
  }
};

class QueryScheduler {
 public:
  explicit QueryScheduler(SchedulerOptions options);
  /// Legacy single-worker form: callers that route several queues into
  /// one shared plan (e.g. per-band queues feeding a cross-band
  /// operator) rely on one worker serializing all queues.
  explicit QueryScheduler(SchedulingPolicy policy,
                          size_t queue_capacity = 1024);
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Adds a pipeline with a single input; returns the sink to feed it
  /// through. `downstream` is not owned. May be called before Start()
  /// or while the pool is running.
  EventSink* AddPipeline(std::string name, EventSink* downstream);

  /// Multi-input form for plans that read several sources: all inputs
  /// added to one pipeline share its queue, so one worker at a time
  /// drives the whole plan and cross-input operators stay effectively
  /// single-threaded. Returns the pipeline's id (ids of removed
  /// pipelines are reused).
  size_t AddPipelineGroup(std::string name);
  /// Adds an input to pipeline `pipeline`; events pushed into the
  /// returned sink are delivered, in enqueue order, to `downstream`.
  EventSink* AddPipelineInput(size_t pipeline, EventSink* downstream);

  /// Registers the hook the supervisor runs before redelivering an
  /// event after a transient failure (and after dead-lettering a
  /// poison event mid-frame): typically {Pipeline,ExecutablePlan}::
  /// Reset, dropping buffered frame state so the chain accepts a
  /// fresh sequence. Runs on a worker thread while the pipeline's
  /// claim is held, so it never races event delivery.
  void SetPipelineReset(size_t pipeline, std::function<void()> reset);

  /// Removes a pipeline: waits for any in-flight event to finish,
  /// discards whatever is still queued, frees the queue and its entry
  /// sinks, and recycles the id. The caller must have detached all
  /// producers first (entry sinks become dangling).
  Status RemovePipeline(size_t pipeline);

  /// Starts the worker pool.
  Status Start();

  /// Drains every healthy queue and joins the workers. Per-pipeline
  /// failures do not fail Stop(); they are visible in Stats() and
  /// FirstPipelineError().
  Status Stop();

  /// Blocks until every healthy queue is empty and no worker is
  /// mid-event. Pipelines waiting out a retry backoff count as
  /// non-idle until the redelivery resolves.
  Status WaitIdle();

  /// Health / recorded error of one pipeline.
  PipelineHealth Health(size_t pipeline) const;
  Status PipelineError(size_t pipeline) const;
  /// First error that quarantined any pipeline (OK when none has).
  Status FirstPipelineError() const;

  /// Un-quarantines a pipeline (the admin `RESTART` path): clears the
  /// recorded error, runs the reset hook under the pipeline's claim so
  /// the chain starts from clean frame state, and grants a fresh
  /// poison budget (prior dead-letters no longer count toward
  /// `poison_limit`, and no longer mark the pipeline DEGRADED).
  /// Retained dead letters stay inspectable. Idempotent: restarting a
  /// healthy pipeline is a no-op. NotFound for removed pipelines.
  Status RestartPipeline(size_t pipeline);

  /// The pipeline's retained dead-lettered events, oldest first
  /// (empty for unknown/removed pipelines).
  std::vector<DeadLetter> DeadLetters(size_t pipeline) const;

  /// Finished trace records retained for one pipeline (bounded ring,
  /// oldest kept first; Snapshot::total counts all traces ever
  /// finished there). Empty snapshot for unknown/removed pipelines.
  TraceRing::Snapshot Traces(size_t pipeline) const;

  std::vector<ScheduledQueueStats> Stats() const;
  /// Pool-wide totals across all pipelines (thread-safe snapshot).
  ScheduledQueueStats AggregateStats() const;

  size_t num_workers() const { return resolved_workers_; }
  /// Currently registered (not removed) pipelines.
  size_t num_pipelines() const;

 private:
  struct Queue;
  using Clock = std::chrono::steady_clock;
  /// One queued unit of work: the event plus the plan input it is
  /// destined for (pipelines can have several inputs).
  struct Item {
    EventSink* downstream;
    StreamEvent event;
  };

  /// Entry sinks enqueue into their pipeline's queue.
  class EntrySink : public EventSink {
   public:
    EntrySink(QueryScheduler* scheduler, size_t index, EventSink* downstream)
        : scheduler_(scheduler), index_(index), downstream_(downstream) {}
    Status Consume(const StreamEvent& event) override {
      return scheduler_->Enqueue(index_, downstream_, event);
    }
    size_t index() const { return index_; }

   private:
    QueryScheduler* scheduler_;
    size_t index_;
    EventSink* downstream_;
  };

  Status Enqueue(size_t index, EventSink* downstream,
                 const StreamEvent& event);
  void WorkerLoop();
  /// Handles a non-OK delivery status for the claimed queue. Called
  /// with the lock held and the claim still taken; may drop the lock
  /// to run the pipeline's reset hook. `item` is the failed delivery.
  void HandleFailureLocked(std::unique_lock<std::mutex>& lock, Queue& queue,
                           Item item, const Status& status);
  /// Quarantines `queue` with `status`: records the error, discards
  /// queued events, and wakes idle waiters. Lock held.
  void QuarantineLocked(Queue& queue, const Status& status);
  /// True when a worker may deliver from `queue` right now.
  bool ClaimableLocked(const Queue& queue, Clock::time_point now) const;
  /// Picks the next claimable queue (non-empty, not busy, not in
  /// backoff, not quarantined); -1 when none. Const: safe as a
  /// condvar wait predicate — it must never mutate scheduler state (a
  /// previous version advanced the round-robin cursor here, so every
  /// spurious wakeup skewed the rotation; see
  /// SchedulerTest.RoundRobinRotationIsExact).
  int SelectQueueLocked(Clock::time_point now) const;
  /// Advances the round-robin cursor past a queue that was actually
  /// claimed. Called only when an event is taken.
  void AdvanceCursorLocked(size_t claimed);
  bool AllQueuesEmptyLocked() const;
  /// Earliest pending retry deadline, if any pipeline is in backoff.
  std::optional<Clock::time_point> EarliestRetryLocked() const;
  PipelineHealth HealthLocked(const Queue& queue) const;

  SchedulerOptions options_;
  PipelineSupervisor supervisor_;
  size_t resolved_workers_ = 1;
  /// Resolved once at construction from options_.metrics (null when
  /// no registry was supplied).
  MetricHistogram* queue_wait_hist_ = nullptr;
  MetricHistogram* queue_depth_hist_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  /// Removed pipelines leave a null slot, recycled by free_slots_.
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<size_t> free_slots_;
  std::vector<std::unique_ptr<EntrySink>> entries_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;
  size_t busy_count_ = 0;
  size_t removals_waiting_ = 0;
  size_t rr_cursor_ = 0;
  /// First status that quarantined a pipeline (diagnostics only; the
  /// pool itself never aborts).
  Status first_error_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_SCHEDULER_H_
