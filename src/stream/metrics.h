// Per-operator runtime counters.
//
// The paper's cost discussion (Secs. 3.1-3.3) is about per-point cost
// and buffered state; these metrics make both observable so the bench
// harness can report them.

#ifndef GEOSTREAMS_STREAM_METRICS_H_
#define GEOSTREAMS_STREAM_METRICS_H_

#include <cstdint>
#include <string>

namespace geostreams {

/// Counters updated by an operator while processing. The counters are
/// plain integers, not atomics: an operator instance is driven by at
/// most one thread *at a time*. Under the QueryScheduler worker pool
/// this is the per-pipeline claim invariant — successive events of a
/// pipeline may run on different workers, but the scheduler's queue
/// mutex at claim/release orders those accesses, so updates made on
/// one worker are visible to the next. Aggregating metrics across
/// operators (which may be running on other workers) must happen at a
/// quiescent point — after Stop()/WaitIdle() — via MergeFrom.
struct OperatorMetrics {
  uint64_t events_in = 0;
  uint64_t points_in = 0;
  uint64_t points_out = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  /// Bytes of intermediate point data currently held.
  uint64_t buffered_bytes = 0;
  /// Largest value buffered_bytes ever took (the paper's space cost).
  uint64_t buffered_bytes_high_water = 0;
  /// After MergeFrom: the largest single contribution to
  /// buffered_bytes_high_water — the worst individual operator, as
  /// opposed to the summed upper bound. For an unmerged instance the
  /// two are equal.
  uint64_t buffered_bytes_high_water_max = 0;

  /// Sets buffered_bytes and maintains the high-water mark.
  void SetBuffered(uint64_t bytes) {
    buffered_bytes = bytes;
    if (bytes > buffered_bytes_high_water) buffered_bytes_high_water = bytes;
    if (bytes > buffered_bytes_high_water_max) {
      buffered_bytes_high_water_max = bytes;
    }
  }

  /// Accumulates `other` into this struct. Counters add; the
  /// buffered-bytes high water becomes a *sum* of per-operator peaks —
  /// an upper bound, since the peaks need not coincide in time — while
  /// `buffered_bytes_high_water_max` keeps the true worst single
  /// peak, so aggregated stats can show both.
  void MergeFrom(const OperatorMetrics& other) {
    events_in += other.events_in;
    points_in += other.points_in;
    points_out += other.points_out;
    frames_in += other.frames_in;
    frames_out += other.frames_out;
    buffered_bytes += other.buffered_bytes;
    buffered_bytes_high_water += other.buffered_bytes_high_water;
    uint64_t other_max = other.buffered_bytes_high_water_max
                             ? other.buffered_bytes_high_water_max
                             : other.buffered_bytes_high_water;
    if (other_max > buffered_bytes_high_water_max) {
      buffered_bytes_high_water_max = other_max;
    }
  }

  void Reset() { *this = OperatorMetrics(); }

  std::string ToString() const;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_METRICS_H_
