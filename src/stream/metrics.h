// Per-operator runtime counters.
//
// The paper's cost discussion (Secs. 3.1-3.3) is about per-point cost
// and buffered state; these metrics make both observable so the bench
// harness can report them.

#ifndef GEOSTREAMS_STREAM_METRICS_H_
#define GEOSTREAMS_STREAM_METRICS_H_

#include <cstdint>
#include <string>

namespace geostreams {

/// Counters updated by an operator while processing. Not thread-safe;
/// each operator instance is driven by one thread.
struct OperatorMetrics {
  uint64_t events_in = 0;
  uint64_t points_in = 0;
  uint64_t points_out = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  /// Bytes of intermediate point data currently held.
  uint64_t buffered_bytes = 0;
  /// Largest value buffered_bytes ever took (the paper's space cost).
  uint64_t buffered_bytes_high_water = 0;

  /// Sets buffered_bytes and maintains the high-water mark.
  void SetBuffered(uint64_t bytes) {
    buffered_bytes = bytes;
    if (bytes > buffered_bytes_high_water) buffered_bytes_high_water = bytes;
  }

  void Reset() { *this = OperatorMetrics(); }

  std::string ToString() const;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_STREAM_METRICS_H_
