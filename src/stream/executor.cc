#include "stream/executor.h"

namespace geostreams {

Status BoundedEventQueue::Push(StreamEvent event) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock,
                 [this] { return queue_.size() < capacity_ || closed_; });
  if (closed_) return Status::FailedPrecondition("queue closed");
  queue_.push_back(std::move(event));
  not_empty_.notify_one();
  return Status::OK();
}

bool BoundedEventQueue::Pop(StreamEvent* event) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;
  *event = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return true;
}

void BoundedEventQueue::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t BoundedEventQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

StageRunner::StageRunner(EventSink* downstream, size_t queue_capacity)
    : downstream_(downstream),
      queue_(queue_capacity),
      worker_([this] { Run(); }) {}

StageRunner::~StageRunner() {
  Status ignored = Drain();
  (void)ignored;
}

Status StageRunner::Consume(const StreamEvent& event) {
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (!worker_status_.ok()) return worker_status_;
  }
  return queue_.Push(event);
}

Status StageRunner::Drain() {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (!drained_) {
      queue_.Close();
      if (worker_.joinable()) worker_.join();
      drained_ = true;
    }
  }
  std::lock_guard<std::mutex> lock(status_mutex_);
  return worker_status_;
}

void StageRunner::Run() {
  StreamEvent event;
  while (queue_.Pop(&event)) {
    Status st = downstream_->Consume(event);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(status_mutex_);
      worker_status_ = st;
      queue_.Close();
      return;
    }
  }
}

}  // namespace geostreams
