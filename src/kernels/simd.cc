#include "kernels/simd.h"

#include <atomic>

namespace geostreams {

namespace {

std::atomic<int> g_override{-1};

SimdLevel Detect() {
#if defined(GEOSTREAMS_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = Detect();
  return level;
}

SimdLevel ActiveSimdLevel() {
  const int forced = g_override.load(std::memory_order_relaxed);
  const SimdLevel detected = DetectedSimdLevel();
  if (forced < 0) return detected;
  const auto level = static_cast<SimdLevel>(forced);
  return static_cast<uint8_t>(level) <= static_cast<uint8_t>(detected)
             ? level
             : detected;
}

void SetSimdLevelForTesting(SimdLevel level) {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ClearSimdLevelForTesting() {
  g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace geostreams
