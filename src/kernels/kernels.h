// Vectorized operator kernels over the columnar PointBatch layout.
//
// PointBatch is already structure-of-arrays (cols / rows / timestamps
// / band-interleaved values); these kernels are the canonical
// data-parallel recast of the hot operator loops — containment masks
// over precomputed cell coordinates, value-predicate masks over
// strided samples, pointwise f∘G column transforms, composition
// arithmetic G1 γ G2 over matched pairs, and mask compaction that
// bulk-copies selected ranges instead of appending point by point.
// Following the GPU-friendly-algebra recast (PAPERS.md), every
// operator pass is a kernel over columns plus a compaction, which is
// also the shape a future GPU offload needs.
//
// Each kernel dispatches at runtime (cpuid) between an AVX2 build and
// a portable scalar build of the same template; the two are
// bit-identical by construction (see kernel_impls.h and the parity
// suite in tests/kernels_test.cc). DESIGN.md §12 documents the layer.

#ifndef GEOSTREAMS_KERNELS_KERNELS_H_
#define GEOSTREAMS_KERNELS_KERNELS_H_

#include <cstdint>
#include <vector>

#include "core/stream_event.h"
#include "core/value.h"
#include "geo/bounding_box.h"
#include "geo/lattice.h"
#include "geo/region.h"
#include "kernels/kernel_impls.h"
#include "kernels/simd.h"
#include "ops/time_set.h"

namespace geostreams {
namespace kernels {

// ---------------------------------------------------------------------------
// Geometry

/// Fills xs/ys with the cell-centre coordinates of (cols[i], rows[i])
/// under `lattice` — the precomputed coordinate columns every spatial
/// containment kernel runs over. Matches GridLattice::CellX/CellY
/// exactly.
void CellCoords(const GridLattice& lattice, const int32_t* cols,
                const int32_t* rows, size_t n, double* xs, double* ys);

/// Compiled containment test for one Region. Construction analyzes
/// the region once (bbox corners, disk centre/radius, polygon edges
/// with horizontals dropped, composite children); Mask() then runs
/// the branch-light kernel for that shape. Regions without a
/// vectorizable form (enumerations, general constraint systems) fall
/// back to per-point Region::Contains over the precomputed columns —
/// same results, scalar speed.
class RegionMatcher {
 public:
  explicit RegionMatcher(RegionPtr region);

  /// Writes keep[i] = region contains (xs[i], ys[i]); returns the
  /// number of kept points. Identical selections to calling
  /// Region::Contains per point.
  size_t Mask(const double* xs, const double* ys, size_t n,
              uint8_t* keep) const;

  /// True when Mask() runs a vectorized kernel (not the generic
  /// per-point fallback) at every level of the region tree.
  bool fully_vectorized() const;

 private:
  enum class Shape : uint8_t {
    kAll,
    kBBox,
    kDisk,
    kPolygon,
    kUnion,
    kIntersection,
    kGeneric,
  };

  Shape shape_ = Shape::kGeneric;
  RegionPtr region_;  // generic fallback + keeps vertices alive
  BoundingBox box_;
  double cx_ = 0.0, cy_ = 0.0, r2_ = 0.0;
  std::vector<PolyEdge> edges_;
  std::vector<RegionMatcher> children_;
};

// ---------------------------------------------------------------------------
// Predicate masks

/// ANDs `keep` with "band sample within [lo, hi]" over the strided
/// values column (stride = band_count, values pre-offset to the
/// band). NaN samples are kept, mirroring the historical `v < lo ||
/// v > hi -> drop` predicate. Returns the kept count.
size_t ValueRangeMaskAnd(const double* values, size_t n, size_t stride,
                         double lo, double hi, uint8_t* keep);

/// Writes keep[i] = times.Contains(ts[i]); returns the kept count.
/// Interval and recurring members run as column kernels; instants
/// fall back to per-point binary search.
size_t TimeSetMask(const TimeSet& times, const int64_t* ts, size_t n,
                   uint8_t* keep);

/// True when all n timestamps are equal (n == 0 counts as true) —
/// the scan-sector fast path: one Contains() decides a whole batch.
bool TimestampsAllEqual(const int64_t* ts, size_t n);

// ---------------------------------------------------------------------------
// Pointwise transforms (flat sample columns, length n = points*bands
// unless noted)

void AffineRescale(const double* in, size_t n, double scale, double offset,
                   double* out);
void ClampValues(const double* in, size_t n, double lo, double hi,
                 double* out);
void AbsValues(const double* in, size_t n, double* out);
/// 3-band interleaved RGB -> 1-band luma; `points` points.
void ColorToGray(const double* in, size_t points, double* out);
/// Gathers one band out of `in_bands`-interleaved samples.
void BandSelect(const double* in, size_t points, int in_bands, int band,
                double* out);

// ---------------------------------------------------------------------------
// Composition arithmetic

/// Applies gamma elementwise over matched value columns (flat, length
/// n = matches*bands). Matches ApplyComposeFn sample for sample,
/// including the kDivide saturation cases.
void ComposeArith(ComposeFn gamma, const double* a, const double* b, size_t n,
                  double* out);

// ---------------------------------------------------------------------------
// Compaction

/// Copies the points of `src` selected by `keep` into a fresh batch,
/// bulk-copying contiguous selected ranges (memcpy per run) instead
/// of appending point by point. `kept` must equal the number of 1s in
/// keep[0..src.size()). Returns nullptr when kept == 0. Preserves
/// frame_id, band_count and interleaved multi-band values; the copy
/// carries no checksum (it is a different point set).
PointBatchPtr FilterBatch(const PointBatch& src, const uint8_t* keep,
                          size_t kept);

}  // namespace kernels
}  // namespace geostreams

#endif  // GEOSTREAMS_KERNELS_KERNELS_H_
