#include "kernels/kernels.h"

#include <algorithm>
#include <cstring>

namespace geostreams {
namespace kernels {

// Every kernel call resolves its level once per column pass, so the
// dispatch cost (one relaxed atomic load) is amortized over the whole
// batch. With GEOSTREAMS_SIMD off the macro collapses to the scalar
// call and the avx2 namespace is never referenced.
#ifdef GEOSTREAMS_SIMD_AVX2
#define GEOSTREAMS_KERNEL(fn, ...)                                  \
  (ActiveSimdLevel() == SimdLevel::kAvx2 ? avx2::fn(__VA_ARGS__)    \
                                         : scalar::fn(__VA_ARGS__))
#else
#define GEOSTREAMS_KERNEL(fn, ...) scalar::fn(__VA_ARGS__)
#endif

void CellCoords(const GridLattice& lattice, const int32_t* cols,
                const int32_t* rows, size_t n, double* xs, double* ys) {
  GEOSTREAMS_KERNEL(CellCoords, lattice.origin_x(), lattice.dx(),
                    lattice.origin_y(), lattice.dy(), cols, rows, n, xs, ys);
}

// ---------------------------------------------------------------------------
// RegionMatcher

RegionMatcher::RegionMatcher(RegionPtr region) : region_(std::move(region)) {
  switch (region_->kind()) {
    case RegionKind::kAll:
      shape_ = Shape::kAll;
      break;
    case RegionKind::kBBox:
      shape_ = Shape::kBBox;
      box_ = region_->bounds();
      break;
    case RegionKind::kConstraint: {
      const auto* c = static_cast<const ConstraintRegion*>(region_.get());
      if (c->AsDisk(&cx_, &cy_, &r2_)) {
        shape_ = Shape::kDisk;
        box_ = c->bounds();
      } else {
        shape_ = Shape::kGeneric;
      }
      break;
    }
    case RegionKind::kPolygon: {
      const auto* p = static_cast<const PolygonRegion*>(region_.get());
      shape_ = Shape::kPolygon;
      box_ = p->bounds();
      const auto& v = p->vertices();
      const size_t n = v.size();
      // Edge (i, j=prev) with vertex i as the anchor, exactly as
      // PolygonRegion::Contains iterates; horizontal edges never
      // toggle parity and are dropped here.
      for (size_t i = 0, j = n - 1; i < n; j = i++) {
        if (v[i].second == v[j].second) continue;
        edges_.push_back(
            PolyEdge{v[i].first, v[i].second, v[j].first, v[j].second});
      }
      break;
    }
    case RegionKind::kUnion:
    case RegionKind::kIntersection: {
      const auto* comp = static_cast<const CompositeRegion*>(region_.get());
      shape_ = region_->kind() == RegionKind::kUnion ? Shape::kUnion
                                                     : Shape::kIntersection;
      children_.reserve(comp->children().size());
      for (const RegionPtr& child : comp->children()) {
        children_.emplace_back(child);
      }
      break;
    }
    case RegionKind::kEnumerated:
      shape_ = Shape::kGeneric;
      break;
  }
}

size_t RegionMatcher::Mask(const double* xs, const double* ys, size_t n,
                           uint8_t* keep) const {
  switch (shape_) {
    case Shape::kAll:
      std::memset(keep, 1, n);
      return n;
    case Shape::kBBox:
      return GEOSTREAMS_KERNEL(BBoxMask, xs, ys, n, box_.min_x, box_.min_y,
                               box_.max_x, box_.max_y, keep);
    case Shape::kDisk:
      return GEOSTREAMS_KERNEL(DiskMask, xs, ys, n, cx_, cy_, r2_, box_.min_x,
                               box_.min_y, box_.max_x, box_.max_y, keep);
    case Shape::kPolygon:
      return GEOSTREAMS_KERNEL(PolygonMask, xs, ys, n, edges_.data(),
                               edges_.size(), box_.min_x, box_.min_y,
                               box_.max_x, box_.max_y, keep);
    case Shape::kUnion:
    case Shape::kIntersection: {
      if (children_.empty()) {
        std::memset(keep, 0, n);
        return 0;
      }
      size_t kept = children_[0].Mask(xs, ys, n, keep);
      if (children_.size() > 1) {
        std::vector<uint8_t> child_mask(n);
        for (size_t c = 1; c < children_.size(); ++c) {
          children_[c].Mask(xs, ys, n, child_mask.data());
          kept = shape_ == Shape::kUnion
                     ? GEOSTREAMS_KERNEL(MaskOr, keep, child_mask.data(), n)
                     : GEOSTREAMS_KERNEL(MaskAnd, keep, child_mask.data(), n);
        }
      }
      return kept;
    }
    case Shape::kGeneric: {
      size_t kept = 0;
      for (size_t i = 0; i < n; ++i) {
        keep[i] = region_->Contains(xs[i], ys[i]) ? 1 : 0;
        kept += keep[i];
      }
      return kept;
    }
  }
  return 0;
}

bool RegionMatcher::fully_vectorized() const {
  if (shape_ == Shape::kGeneric) return false;
  for (const RegionMatcher& child : children_) {
    if (!child.fully_vectorized()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Predicate masks

size_t ValueRangeMaskAnd(const double* values, size_t n, size_t stride,
                         double lo, double hi, uint8_t* keep) {
  return GEOSTREAMS_KERNEL(ValueRangeMaskAnd, values, n, stride, lo, hi,
                           keep);
}

size_t TimeSetMask(const TimeSet& times, const int64_t* ts, size_t n,
                   uint8_t* keep) {
  if (times.IsAll()) {
    std::memset(keep, 1, n);
    return n;
  }
  std::memset(keep, 0, n);
  for (const TimeSet::Interval& iv : times.intervals()) {
    GEOSTREAMS_KERNEL(Int64RangeMaskOr, ts, n, iv.lo, iv.hi, keep);
  }
  for (const TimeSet::Recurring& r : times.recurring()) {
    if (r.period <= 0) continue;  // Recurring::Contains is false
    GEOSTREAMS_KERNEL(RecurringMaskOr, ts, n, r.period, r.phase_lo,
                      r.phase_hi, keep);
  }
  const std::vector<int64_t>& instants = times.instants();
  if (!instants.empty()) {
    for (size_t i = 0; i < n; ++i) {
      if (keep[i]) continue;
      keep[i] = std::binary_search(instants.begin(), instants.end(), ts[i])
                    ? 1
                    : 0;
    }
  }
  return GEOSTREAMS_KERNEL(MaskCount, keep, n);
}

bool TimestampsAllEqual(const int64_t* ts, size_t n) {
  return GEOSTREAMS_KERNEL(Int64AllEqual, ts, n);
}

// ---------------------------------------------------------------------------
// Pointwise transforms

void AffineRescale(const double* in, size_t n, double scale, double offset,
                   double* out) {
  GEOSTREAMS_KERNEL(AffineRescale, in, n, scale, offset, out);
}

void ClampValues(const double* in, size_t n, double lo, double hi,
                 double* out) {
  GEOSTREAMS_KERNEL(ClampValues, in, n, lo, hi, out);
}

void AbsValues(const double* in, size_t n, double* out) {
  GEOSTREAMS_KERNEL(AbsValues, in, n, out);
}

void ColorToGray(const double* in, size_t points, double* out) {
  GEOSTREAMS_KERNEL(ColorToGray, in, points, out);
}

void BandSelect(const double* in, size_t points, int in_bands, int band,
                double* out) {
  GEOSTREAMS_KERNEL(BandSelect, in, points, static_cast<size_t>(in_bands),
                    static_cast<size_t>(band), out);
}

// ---------------------------------------------------------------------------
// Composition arithmetic

void ComposeArith(ComposeFn gamma, const double* a, const double* b, size_t n,
                  double* out) {
  switch (gamma) {
    case ComposeFn::kAdd:
      GEOSTREAMS_KERNEL(ComposeAdd, a, b, n, out);
      return;
    case ComposeFn::kSubtract:
      GEOSTREAMS_KERNEL(ComposeSubtract, a, b, n, out);
      return;
    case ComposeFn::kMultiply:
      GEOSTREAMS_KERNEL(ComposeMultiply, a, b, n, out);
      return;
    case ComposeFn::kDivide:
      GEOSTREAMS_KERNEL(ComposeDivide, a, b, n, out);
      return;
    case ComposeFn::kSupremum:
      GEOSTREAMS_KERNEL(ComposeSupremum, a, b, n, out);
      return;
    case ComposeFn::kInfimum:
      GEOSTREAMS_KERNEL(ComposeInfimum, a, b, n, out);
      return;
  }
}

// ---------------------------------------------------------------------------
// Compaction

PointBatchPtr FilterBatch(const PointBatch& src, const uint8_t* keep,
                          size_t kept) {
  if (kept == 0) return nullptr;
  const size_t n = src.size();
  const size_t bands = static_cast<size_t>(src.band_count);
  auto out = std::make_shared<PointBatch>();
  out->frame_id = src.frame_id;
  out->band_count = src.band_count;
  out->cols.resize(kept);
  out->rows.resize(kept);
  out->timestamps.resize(kept);
  out->values.resize(kept * bands);
  size_t w = 0;  // write cursor, in points
  size_t i = 0;
  while (i < n) {
    if (!keep[i]) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n && keep[j]) ++j;
    const size_t run = j - i;
    std::memcpy(&out->cols[w], &src.cols[i], run * sizeof(int32_t));
    std::memcpy(&out->rows[w], &src.rows[i], run * sizeof(int32_t));
    std::memcpy(&out->timestamps[w], &src.timestamps[i],
                run * sizeof(int64_t));
    std::memcpy(&out->values[w * bands], &src.values[i * bands],
                run * bands * sizeof(double));
    w += run;
    i = j;
  }
  return out;
}

#undef GEOSTREAMS_KERNEL

}  // namespace kernels
}  // namespace geostreams
