// Portable scalar instantiation of the kernel template. Always built;
// the runtime fallback when AVX2 is compiled out or unsupported, and
// the reference half of the scalar/SIMD parity suite.

#include "kernels/kernel_impls.h"

namespace geostreams {
namespace kernels {
namespace scalar {

#include "kernels/kernels_impl.inc"

}  // namespace scalar
}  // namespace kernels
}  // namespace geostreams
