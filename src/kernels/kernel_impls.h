// Internal: per-level kernel entry points.
//
// Every kernel body lives once, in kernels_impl.inc, and is compiled
// into two translation units: kernels_scalar.cc (baseline codegen)
// and kernels_avx2.cc (built with -mavx2 when GEOSTREAMS_SIMD is on).
// This header declares both namespaces so kernels.cc can dispatch;
// the AVX2 definitions exist only when the option is enabled, and the
// dispatcher never references them otherwise.
//
// The bodies are branch-light loops over columns with no
// floating-point contraction (-ffp-contract=off on both TUs), so the
// two compilations of the same IEEE expression are bit-identical —
// the contract the parity suite in tests/kernels_test.cc enforces.

#ifndef GEOSTREAMS_KERNELS_KERNEL_IMPLS_H_
#define GEOSTREAMS_KERNELS_KERNEL_IMPLS_H_

#include <cstddef>
#include <cstdint>

namespace geostreams {
namespace kernels {

/// One non-horizontal polygon edge, as precomputed by RegionMatcher.
/// Horizontal edges never toggle the even-odd parity and are dropped
/// before the kernel runs (this also keeps the edge-crossing division
/// away from a zero denominator).
struct PolyEdge {
  double x1, y1, x2, y2;
};

// The per-level kernel surface. Masks are dense uint8_t columns with
// one 0/1 entry per point; functions returning size_t report how many
// entries are 1 afterwards.
#define GEOSTREAMS_DECLARE_KERNELS()                                          \
  void CellCoords(double origin_x, double dx, double origin_y, double dy,     \
                  const int32_t* cols, const int32_t* rows, size_t n,         \
                  double* xs, double* ys);                                    \
  size_t BBoxMask(const double* xs, const double* ys, size_t n,               \
                  double min_x, double min_y, double max_x, double max_y,     \
                  uint8_t* keep);                                             \
  size_t DiskMask(const double* xs, const double* ys, size_t n, double cx,    \
                  double cy, double r2, double min_x, double min_y,           \
                  double max_x, double max_y, uint8_t* keep);                 \
  size_t PolygonMask(const double* xs, const double* ys, size_t n,            \
                     const PolyEdge* edges, size_t num_edges, double min_x,   \
                     double min_y, double max_x, double max_y,                \
                     uint8_t* keep);                                          \
  size_t ValueRangeMaskAnd(const double* values, size_t n, size_t stride,     \
                           double lo, double hi, uint8_t* keep);              \
  void Int64RangeMaskOr(const int64_t* ts, size_t n, int64_t lo, int64_t hi,  \
                        uint8_t* keep);                                       \
  void RecurringMaskOr(const int64_t* ts, size_t n, int64_t period,           \
                       int64_t phase_lo, int64_t phase_hi, uint8_t* keep);    \
  bool Int64AllEqual(const int64_t* ts, size_t n);                            \
  size_t MaskCount(const uint8_t* keep, size_t n);                            \
  size_t MaskAnd(uint8_t* dst, const uint8_t* src, size_t n);                 \
  size_t MaskOr(uint8_t* dst, const uint8_t* src, size_t n);                  \
  void AffineRescale(const double* in, size_t n, double scale, double offset, \
                     double* out);                                            \
  void ClampValues(const double* in, size_t n, double lo, double hi,          \
                   double* out);                                              \
  void AbsValues(const double* in, size_t n, double* out);                    \
  void ColorToGray(const double* in, size_t points, double* out);             \
  void BandSelect(const double* in, size_t points, size_t in_bands,           \
                  size_t band, double* out);                                  \
  void ComposeAdd(const double* a, const double* b, size_t n, double* out);   \
  void ComposeSubtract(const double* a, const double* b, size_t n,            \
                       double* out);                                          \
  void ComposeMultiply(const double* a, const double* b, size_t n,            \
                       double* out);                                          \
  void ComposeDivide(const double* a, const double* b, size_t n,              \
                     double* out);                                            \
  void ComposeSupremum(const double* a, const double* b, size_t n,            \
                       double* out);                                          \
  void ComposeInfimum(const double* a, const double* b, size_t n,             \
                      double* out);

namespace scalar {
GEOSTREAMS_DECLARE_KERNELS()
}  // namespace scalar

namespace avx2 {
GEOSTREAMS_DECLARE_KERNELS()
}  // namespace avx2

#undef GEOSTREAMS_DECLARE_KERNELS

}  // namespace kernels
}  // namespace geostreams

#endif  // GEOSTREAMS_KERNELS_KERNEL_IMPLS_H_
