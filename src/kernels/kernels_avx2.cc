// AVX2 instantiation of the kernel template: the same source as
// kernels_scalar.cc, built with -mavx2 (and -ffp-contract=off, so no
// FMA contraction can change rounding) when the GEOSTREAMS_SIMD CMake
// option is on. The dispatcher only calls into this namespace after a
// cpuid check, so the binary stays runnable on non-AVX2 machines.

#include "kernels/kernel_impls.h"

#ifdef GEOSTREAMS_SIMD_AVX2

namespace geostreams {
namespace kernels {
namespace avx2 {

#include "kernels/kernels_impl.inc"

}  // namespace avx2
}  // namespace kernels
}  // namespace geostreams

#endif  // GEOSTREAMS_SIMD_AVX2
