// Runtime SIMD dispatch level for the operator kernels.
//
// The kernels in this directory are compiled twice from one shared
// template: a portable scalar translation unit and (when the
// GEOSTREAMS_SIMD CMake option is on) an AVX2 translation unit. At
// process start the best level the CPU supports is detected via
// cpuid; every kernel call dispatches through that level. Both paths
// are required to produce bit-identical outputs (enforced by the
// parity suite in tests/kernels_test.cc), so dispatch is purely a
// throughput decision.

#ifndef GEOSTREAMS_KERNELS_SIMD_H_
#define GEOSTREAMS_KERNELS_SIMD_H_

#include <cstdint>

namespace geostreams {

enum class SimdLevel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

const char* SimdLevelName(SimdLevel level);

/// Best level both compiled in and supported by this CPU. Constant
/// for the process lifetime.
SimdLevel DetectedSimdLevel();

/// Level the kernels actually dispatch to: the detected level unless
/// a test override is active.
SimdLevel ActiveSimdLevel();

/// Forces dispatch to `level` (clamped to the detected level — a
/// machine without AVX2 cannot be forced onto the AVX2 path). The
/// parity suite uses this to run both code paths on the same inputs.
void SetSimdLevelForTesting(SimdLevel level);

/// Restores cpuid-detected dispatch.
void ClearSimdLevelForTesting();

}  // namespace geostreams

#endif  // GEOSTREAMS_KERNELS_SIMD_H_
