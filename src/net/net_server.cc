#include "net/net_server.h"

#include <cerrno>
#include <cstring>
#include <poll.h>

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/socket_util.h"
#include "net/wire_protocol.h"
#include "obs/trace.h"
#include "server/dsms_server.h"
#include "storage/journal.h"

namespace geostreams {

/// One connected client: the reader thread (command lines in), the
/// ClientSession (responses and frames out), and the queries this
/// connection registered. Implements the dispatch hooks.
class NetServer::Connection : public SessionHooks {
 public:
  Connection(NetServer* server, int fd, uint64_t id)
      : server_(server),
        session_(std::make_shared<ClientSession>(fd, id,
                                                 server->options_.session)) {}

  ~Connection() override { Shutdown(); }

  void Start() {
    reader_ = std::thread([this] { ReaderLoop(); });
  }

  /// Wakes the reader (socket shutdown) and joins it. The reader
  /// unregisters this connection's queries on the way out.
  void Shutdown() {
    session_->Close();
    if (reader_.joinable()) reader_.join();
  }

  bool done() const { return done_.load(); }
  const std::shared_ptr<ClientSession>& session() const { return session_; }

  Result<QueryId> RegisterClientQuery(const std::string& text) override {
    // Subscribe-then-register: the delivery callback sees this
    // session from its very first frame.
    auto sub = std::make_shared<Subscription>();
    sub->sessions.push_back(session_);
    DsmsServer* dsms = server_->dsms_;
    auto callback = [sub, dsms](int64_t frame_id, const Raster& raster,
                                const std::vector<uint8_t>& png) {
      // Encode once; every subscriber shares the buffer. Enqueue is
      // non-blocking by construction — a slow or closed session sheds
      // and its status is ignored here (visible in its STATS).
      FanOutFrame(dsms, sub.get(), frame_id, raster, png);
    };
    Result<QueryId> id = dsms->RegisterQuery(text, std::move(callback));
    if (!id.ok()) return id;
    sub->query_id.store(*id);
    {
      std::lock_guard<std::mutex> lock(server_->net_mu_);
      server_->subscriptions_.emplace(*id, std::move(sub));
    }
    owned_.push_back(*id);
    return id;
  }

  Result<QueryId> RegisterClientQuerySince(const std::string& text,
                                           int64_t since) override {
    auto sub = std::make_shared<Subscription>();
    sub->sessions.push_back(session_);
    DsmsServer* dsms = server_->dsms_;
    auto callback = [sub, dsms](int64_t frame_id, const Raster& raster,
                                const std::vector<uint8_t>& png) {
      FanOutFrame(dsms, sub.get(), frame_id, raster, png);
    };
    CatchUpOptions catch_up;
    catch_up.since = since;
    // Unlike the live path, replayed frames start flowing before
    // RegisterQuery returns, so the id must be bound (and the fan-out
    // published) the moment the engine assigns it.
    auto announced = std::make_shared<std::atomic<int64_t>>(-1);
    NetServer* server = server_;
    catch_up.on_registered = [sub, server, announced](QueryId id) {
      announced->store(id);
      sub->query_id.store(id);
      std::lock_guard<std::mutex> lock(server->net_mu_);
      server->subscriptions_.emplace(id, sub);
    };
    Result<QueryId> id =
        dsms->RegisterQuery(text, std::move(callback), catch_up);
    if (!id.ok()) {
      // The engine already tore the query down; drop the fan-out it
      // announced mid-flight, if any.
      const int64_t stale = announced->load();
      if (stale >= 0) {
        std::lock_guard<std::mutex> lock(server_->net_mu_);
        server_->subscriptions_.erase(static_cast<QueryId>(stale));
      }
      return id;
    }
    owned_.push_back(*id);
    return id;
  }

  Status UnregisterClientQuery(QueryId id) override {
    auto it = std::find(owned_.begin(), owned_.end(), id);
    if (it == owned_.end()) {
      return Status::NotFound(StringPrintf(
          "query %lld was not registered by this connection",
          static_cast<long long>(id)));
    }
    GEOSTREAMS_RETURN_IF_ERROR(server_->DetachQuery(id, session_));
    owned_.erase(it);
    return Status::OK();
  }

  Result<QueryId> AttachClientQuery(QueryId id) override {
    if (std::find(owned_.begin(), owned_.end(), id) != owned_.end()) {
      return Status::AlreadyExists(StringPrintf(
          "query %lld already streams to this connection",
          static_cast<long long>(id)));
    }
    GEOSTREAMS_RETURN_IF_ERROR(server_->AttachQuery(id, session_));
    owned_.push_back(id);
    return id;
  }

  Result<uint64_t> AttachIngestSource(const std::string& source,
                                      const std::string& token) override {
    const std::string& required = server_->options_.ingest_auth_token;
    if (!required.empty() && token != required) {
      return Status::FailedPrecondition(
          token.empty() ? "producer token required"
                        : "producer token rejected");
    }
    GEOSTREAMS_ASSIGN_OR_RETURN(std::shared_ptr<IngestSession> session,
                                server_->IngestSessionFor(source));
    const uint64_t next = session->Attach();
    attached_[source] = std::move(session);
    return next;
  }

  Status RestartIngestSource(const std::string& name) override {
    return server_->RestartIngestSource(name);
  }

  Status ControlAuth(const std::string& token) override {
    const std::string& required = server_->options_.control_auth_token;
    if (!required.empty() && token != required) {
      return Status::FailedPrecondition("control token rejected");
    }
    control_authorized_ = true;
    return Status::OK();
  }

  Status AuthorizeControl() override {
    if (server_->options_.control_auth_token.empty()) return Status::OK();
    if (control_authorized_) return Status::OK();
    return Status::FailedPrecondition(
        "control token required (AUTH <token>)");
  }

  Result<std::string> IngestStatsLine(const std::string& source) override {
    auto it = attached_.find(source);
    if (it != attached_.end()) return it->second->StatsLine();
    GEOSTREAMS_ASSIGN_OR_RETURN(std::shared_ptr<IngestSession> session,
                                server_->IngestSessionFor(source));
    return session->StatsLine();
  }

  std::string SessionStatsLine() override { return session_->StatsLine(); }

 private:
  void ReaderLoop() {
    const int fd = session_->fd();
    FrameDecoder decoder;
    uint8_t buf[4096];
    bool protocol_error = false;
    while (!protocol_error && !server_->stopping_.load() &&
           !session_->closed()) {
      Result<bool> readable =
          PollReadable(fd, server_->options_.poll_interval_ms);
      if (!readable.ok()) break;
      if (!*readable) continue;
      Result<size_t> n = ReadSome(fd, buf, sizeof(buf));
      if (!n.ok() || *n == 0) break;  // error or orderly EOF
      decoder.Feed(buf, *n);
      // Any inbound traffic proves the producer behind this
      // connection is alive.
      for (const auto& [source, ingest] : attached_) ingest->Touch();
      for (;;) {
        Result<std::optional<FrameDecoder::Unit>> unit = decoder.Next();
        if (!unit.ok()) {
          // Malformed binary input: framing is lost for good (the
          // decoder stays poisoned). Tell the peer why and hang up;
          // a resilient producer reconnects and replays.
          Status ignored = session_->EnqueueControl(
              StringPrintf("ERR %s %s",
                           StatusCodeName(unit.status().code()),
                           unit.status().message().c_str()));
          (void)ignored;
          protocol_error = true;
          break;
        }
        if (!unit->has_value()) break;
        if (!HandleUnit(**unit)) {
          protocol_error = true;
          break;
        }
      }
    }
    // The client is gone (or the server is stopping): its queries go
    // with it — continuous delivery to nobody is pure waste. Ingest
    // sessions stay behind in the server so the producer can resume.
    session_->Close();
    for (QueryId id : owned_) {
      Status st = server_->DetachQuery(id, session_);
      if (!st.ok()) {
        GEOSTREAMS_LOG(kWarning)
            << "session " << session_->id() << ": dropping query " << id
            << " on disconnect failed: " << st.ToString();
      }
    }
    owned_.clear();
    done_.store(true);
  }

  /// Dispatches one demultiplexed unit. False ends the connection.
  bool HandleUnit(const FrameDecoder::Unit& unit) {
    if (unit.line) {
      const std::string& line = *unit.line;
      // HTTP pull endpoint: the request line plus headers arrive as
      // ordinary text lines; the blank line that ends the header block
      // triggers the response. The response carries its own framing
      // (Content-Length + Connection: close), so it goes out as a raw
      // byte buffer and the peer hangs up when it has read the body.
      if (http_request_.empty() && IsHttpRequestLine(line)) {
        if (line.find(" HTTP/") == std::string::npos) {
          // HTTP/0.9-style simple request: no headers follow.
          return EnqueueHttpResponse(line, /*openmetrics=*/false);
        }
        http_request_ = line;
        http_openmetrics_ = false;
        return true;
      }
      if (!http_request_.empty()) {
        const std::string_view header = StripWhitespace(line);
        if (!header.empty()) {
          // Content negotiation: an Accept header naming the
          // OpenMetrics media type switches /metrics to the
          // exemplar-bearing exposition.
          const std::string lower = ToLower(std::string(header));
          if (lower.compare(0, 7, "accept:") == 0 &&
              lower.find("application/openmetrics-text") !=
                  std::string::npos) {
            http_openmetrics_ = true;
          }
          return true;  // header line
        }
        const std::string request = std::move(http_request_);
        http_request_.clear();
        return EnqueueHttpResponse(request, http_openmetrics_);
      }
      const std::string response =
          ExecuteCommand(server_->dsms_, this, line);
      return session_->EnqueueControl(response).ok();
    }
    if (unit.ingest) {
      auto it = attached_.find(unit.ingest->source);
      std::string response;
      if (it == attached_.end()) {
        // The handshake is mandatory: it is what tells the producer
        // where to resume, and it pins the session before data races
        // the liveness sweep.
        response = StringPrintf(
            "NACK %s %llu FailedPrecondition ATTACH before INGEST",
            unit.ingest->source.c_str(),
            static_cast<unsigned long long>(unit.ingest->seq));
      } else {
        response = it->second->Handle(*unit.ingest);
      }
      return session_->EnqueueControl(response).ok();
    }
    // A result frame from a client is backwards.
    Status ignored = session_->EnqueueControl(
        "ERR InvalidArgument result frames flow server to client");
    (void)ignored;
    return false;
  }

  bool EnqueueHttpResponse(const std::string& request_line,
                           bool openmetrics) {
    const std::string response =
        HandleHttpRequest(server_->dsms_, request_line, openmetrics);
    auto buffer = std::make_shared<const std::vector<uint8_t>>(
        response.begin(), response.end());
    return session_->EnqueueFrame(std::move(buffer)).ok();
  }

  NetServer* server_;
  std::shared_ptr<ClientSession> session_;
  /// Queries streaming to this connection. Reader-thread-only.
  std::vector<QueryId> owned_;
  /// Buffered HTTP request line while its headers drain, and whether
  /// those headers negotiated the OpenMetrics exposition.
  /// Reader-thread-only.
  std::string http_request_;
  bool http_openmetrics_ = false;
  /// AUTH succeeded on this session (control-plane credential).
  /// Reader-thread-only.
  bool control_authorized_ = false;
  /// Ingest sessions this connection attached to. Reader-thread-only.
  std::map<std::string, std::shared_ptr<IngestSession>> attached_;
  std::thread reader_;
  std::atomic<bool> done_{false};
};

NetServer::NetServer(DsmsServer* dsms, NetServerOptions options)
    : dsms_(dsms), options_(options) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  // Sessions report into the engine's registry unless the caller
  // supplied their own.
  if (options_.session.metrics == nullptr) {
    options_.session.metrics = dsms_->metrics_registry();
  }
  if (options_.session.event_log == nullptr) {
    options_.session.event_log = dsms_->event_log();
  }
  GEOSTREAMS_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.port));
  GEOSTREAMS_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_));
  if (options_.ingest_port >= 0) {
    Result<int> ingest_fd =
        ListenTcp(static_cast<uint16_t>(options_.ingest_port));
    if (!ingest_fd.ok()) {
      CloseFd(listen_fd_);
      listen_fd_ = -1;
      return ingest_fd.status();
    }
    ingest_listen_fd_ = *ingest_fd;
    Result<uint16_t> bound = LocalPort(ingest_listen_fd_);
    if (!bound.ok()) {
      CloseFd(listen_fd_);
      CloseFd(ingest_listen_fd_);
      listen_fd_ = ingest_listen_fd_ = -1;
      return bound.status();
    }
    ingest_port_ = *bound;
  }
  started_ = true;
  stopping_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  GEOSTREAMS_LOG(kInfo) << "network server listening on 127.0.0.1:"
                        << port_;
  if (ingest_listen_fd_ >= 0) {
    GEOSTREAMS_LOG(kInfo) << "ingest listener on 127.0.0.1:"
                          << ingest_port_;
  }
  return Status::OK();
}

void NetServer::Stop() {
  if (!started_) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  CloseFd(listen_fd_);
  CloseFd(ingest_listen_fd_);
  listen_fd_ = ingest_listen_fd_ = -1;
  // Connections shut down one at a time outside net_mu_ (their reader
  // threads call DropQuery, which takes it).
  for (;;) {
    std::unique_ptr<Connection> victim;
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      if (connections_.empty()) break;
      victim = std::move(connections_.back());
      connections_.pop_back();
    }
    victim->Shutdown();
  }
  started_ = false;
}

size_t NetServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(net_mu_);
  size_t live = 0;
  for (const auto& connection : connections_) {
    if (!connection->done()) ++live;
  }
  return live;
}

Result<IngestSessionStats> NetServer::IngestStats(
    const std::string& source) const {
  std::lock_guard<std::mutex> lock(net_mu_);
  auto it = ingest_sessions_.find(source);
  if (it == ingest_sessions_.end()) {
    return Status::NotFound("no producer has attached to " + source);
  }
  return it->second->Stats();
}

Status NetServer::AttachQuery(QueryId id,
                              const std::shared_ptr<ClientSession>& session) {
  std::lock_guard<std::mutex> lock(net_mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return Status::NotFound(StringPrintf(
        "query %lld has no active subscription",
        static_cast<long long>(id)));
  }
  std::lock_guard<std::mutex> sub_lock(it->second->mu);
  it->second->sessions.push_back(session);
  return Status::OK();
}

void NetServer::FanOutFrame(DsmsServer* dsms, Subscription* sub,
                            int64_t frame_id, const Raster& raster,
                            const std::vector<uint8_t>& png) {
  // The delivery callback runs inside the operator chain, so the
  // frame's trace (when sampled) is active on this thread. Entry here
  // closes the `operators` stage (scheduler claim — or the ingest
  // anchor on the synchronous path — to chain exit); encode + enqueue
  // is the `deliver` stage. `total` spans capture (else admission) to
  // fan-out done, into the per-source series the ingest session's
  // ISTATS p95 reads — observed once per frame (ClaimTotalStage), not
  // once per subscribed query.
  TraceContext* trace = ActiveTrace();
  const bool staged = trace != nullptr && trace->last_anchor_wall_us() != 0;
  const std::string query_label =
      StringPrintf("%lld", static_cast<long long>(sub->query_id.load()));
  if (staged) {
    ObserveE2eStage(dsms->metrics_registry(), "operators", "query",
                    query_label, trace->AdvanceStage(TraceWallNowUs()), trace);
  }
  auto buffer = std::make_shared<const std::vector<uint8_t>>(
      EncodeResultFrame(sub->query_id.load(), frame_id, raster, png));
  FrameStamp stamp;
  if (staged) {
    // The `write` stage rides the frame into each session's writer
    // thread; its anchor is the moment the shared buffer is ready.
    stamp.delivered_wall_us = TraceWallNowUs();
    stamp.trace_ordinal = trace->ring_ordinal();
    stamp.pipeline = trace->pipeline();
    stamp.query = query_label;
  }
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    for (const auto& session : sub->sessions) {
      Status ignored = session->EnqueueFrame(buffer, stamp);
      (void)ignored;
    }
  }
  if (staged) {
    const uint64_t now = TraceWallNowUs();
    ObserveE2eStage(dsms->metrics_registry(), "deliver", "query", query_label,
                    trace->AdvanceStage(now), trace);
    const uint64_t birth = trace->capture_wall_us() != 0
                               ? trace->capture_wall_us()
                               : trace->admit_wall_us();
    if (birth != 0 && now > birth && trace->ClaimTotalStage()) {
      ObserveE2eStage(dsms->metrics_registry(), "total", "source",
                      trace->origin(), now - birth, trace);
    }
  }
}

Status NetServer::DetachQuery(QueryId id,
                              const std::shared_ptr<ClientSession>& session) {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) {
      return Status::NotFound(StringPrintf(
          "query %lld has no active subscription",
          static_cast<long long>(id)));
    }
    // net_mu_ serializes the last-subscriber decision against
    // concurrent attaches, so exactly one detacher unregisters.
    std::lock_guard<std::mutex> sub_lock(it->second->mu);
    auto& sessions = it->second->sessions;
    sessions.erase(std::remove(sessions.begin(), sessions.end(), session),
                   sessions.end());
    last = sessions.empty();
    if (last) subscriptions_.erase(it);
  }
  if (!last) return Status::OK();
  // The engine call runs with no lock held: unregistration waits out
  // in-flight delivery callbacks, which take Subscription::mu.
  return dsms_->UnregisterQuery(id);
}

Result<std::shared_ptr<IngestSession>> NetServer::IngestSessionFor(
    const std::string& source) {
  std::lock_guard<std::mutex> lock(net_mu_);
  auto it = ingest_sessions_.find(source);
  if (it != ingest_sessions_.end()) return it->second;
  EventSink* sink = options_.ingest_resolver ? options_.ingest_resolver(source)
                                             : dsms_->ingest(source);
  if (sink == nullptr) {
    return Status::NotFound("stream not registered: " + source);
  }
  IngestSessionOptions opts = options_.ingest;
  if (opts.memory == nullptr) opts.memory = &dsms_->memory();
  if (opts.metrics == nullptr) opts.metrics = dsms_->metrics_registry();
  if (opts.journal == nullptr && dsms_->journal() != nullptr) {
    // No journal appender, no durable acks: refuse the attach rather
    // than silently run this source without the contract.
    GEOSTREAMS_ASSIGN_OR_RETURN(opts.journal,
                                dsms_->journal()->SourceFor(source));
  }
  if (opts.governor == nullptr) opts.governor = dsms_->governor();
  if (opts.event_log == nullptr) opts.event_log = dsms_->event_log();
  auto session = std::make_shared<IngestSession>(source, sink, opts);
  ingest_sessions_.emplace(source, session);
  return session;
}

Status NetServer::RestartIngestSource(const std::string& name) {
  std::shared_ptr<IngestSession> session;
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    auto it = ingest_sessions_.find(name);
    if (it != ingest_sessions_.end()) session = it->second;
  }
  if (session == nullptr) {
    return Status::NotFound("no producer has attached to " + name);
  }
  // Engine first (its guard must admit events again), then the
  // session (so its very next ACK is honest about delivery).
  GEOSTREAMS_RETURN_IF_ERROR(dsms_->RestartSource(name));
  session->Unquarantine();
  return Status::OK();
}

void NetServer::SweepIngestLiveness() {
  std::vector<std::shared_ptr<IngestSession>> sessions;
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    sessions.reserve(ingest_sessions_.size());
    for (const auto& [source, session] : ingest_sessions_) {
      sessions.push_back(session);
    }
  }
  for (const auto& session : sessions) {
    const Status verdict = session->CheckLiveness();
    if (verdict.ok()) continue;  // alive (or already quarantined)
    Status st = dsms_->QuarantineSource(session->source(), verdict);
    if (!st.ok()) {
      GEOSTREAMS_LOG(kWarning)
          << "quarantining source '" << session->source()
          << "' failed: " << st.ToString();
    }
  }
}

void NetServer::AcceptOne(int listen_fd) {
  Result<int> client = AcceptClient(listen_fd);
  if (!client.ok()) {
    if (!stopping_.load()) {
      GEOSTREAMS_LOG(kWarning) << "accept failed: "
                               << client.status().ToString();
    }
    return;
  }
  std::lock_guard<std::mutex> lock(net_mu_);
  if (connections_.size() >= options_.max_clients) {
    GEOSTREAMS_LOG(kWarning) << "rejecting client: at max_clients="
                             << options_.max_clients;
    CloseFd(*client);
    return;
  }
  auto connection =
      std::make_unique<Connection>(this, *client, next_session_id_++);
  connection->Start();
  connections_.push_back(std::move(connection));
}

void NetServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfds[2];
    nfds_t nfds = 0;
    pfds[nfds].fd = listen_fd_;
    pfds[nfds].events = POLLIN;
    pfds[nfds].revents = 0;
    ++nfds;
    if (ingest_listen_fd_ >= 0) {
      pfds[nfds].fd = ingest_listen_fd_;
      pfds[nfds].events = POLLIN;
      pfds[nfds].revents = 0;
      ++nfds;
    }
    const int rc = ::poll(pfds, nfds, options_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) {
      GEOSTREAMS_LOG(kError) << "accept poll failed: "
                             << std::strerror(errno);
      return;
    }
    // Reap finished connections (their readers already unregistered
    // their queries) so long-lived servers do not accumulate stubs.
    // `finished` outlives the lock scope: destruction joins the
    // reader thread, which must not happen under net_mu_.
    std::vector<std::unique_ptr<Connection>> finished;
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      for (auto& connection : connections_) {
        if (connection->done()) finished.push_back(std::move(connection));
      }
      connections_.erase(
          std::remove(connections_.begin(), connections_.end(), nullptr),
          connections_.end());
    }
    finished.clear();
    // Sources whose producers died (connection or process) never see
    // another Touch; the sweep is what turns that silence into a
    // quarantine + dead letter.
    SweepIngestLiveness();
    if (rc <= 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if (pfds[i].revents != 0) AcceptOne(pfds[i].fd);
    }
  }
}

}  // namespace geostreams
