#include "net/net_server.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/socket_util.h"
#include "net/wire_protocol.h"
#include "server/dsms_server.h"

namespace geostreams {

/// One connected client: the reader thread (command lines in), the
/// ClientSession (responses and frames out), and the queries this
/// connection registered. Implements the dispatch hooks.
class NetServer::Connection : public SessionHooks {
 public:
  Connection(NetServer* server, int fd, uint64_t id)
      : server_(server),
        session_(std::make_shared<ClientSession>(fd, id,
                                                 server->options_.session)) {}

  ~Connection() override { Shutdown(); }

  void Start() {
    reader_ = std::thread([this] { ReaderLoop(); });
  }

  /// Wakes the reader (socket shutdown) and joins it. The reader
  /// unregisters this connection's queries on the way out.
  void Shutdown() {
    session_->Close();
    if (reader_.joinable()) reader_.join();
  }

  bool done() const { return done_.load(); }
  const std::shared_ptr<ClientSession>& session() const { return session_; }

  Result<QueryId> RegisterClientQuery(const std::string& text) override {
    // Subscribe-then-register: the delivery callback sees this
    // session from its very first frame.
    auto sub = std::make_shared<Subscription>();
    sub->sessions.push_back(session_);
    DsmsServer* dsms = server_->dsms_;
    auto callback = [sub](int64_t frame_id, const Raster& raster,
                          const std::vector<uint8_t>& png) {
      // Encode once; every subscriber shares the buffer. Enqueue is
      // non-blocking by construction — a slow or closed session sheds
      // and its status is ignored here (visible in its STATS).
      auto buffer = std::make_shared<const std::vector<uint8_t>>(
          EncodeResultFrame(sub->query_id.load(), frame_id, raster, png));
      std::lock_guard<std::mutex> lock(sub->mu);
      for (const auto& session : sub->sessions) {
        Status ignored = session->EnqueueFrame(buffer);
        (void)ignored;
      }
    };
    Result<QueryId> id = dsms->RegisterQuery(text, std::move(callback));
    if (!id.ok()) return id;
    sub->query_id.store(*id);
    {
      std::lock_guard<std::mutex> lock(server_->net_mu_);
      server_->subscriptions_.emplace(*id, std::move(sub));
    }
    owned_.push_back(*id);
    return id;
  }

  Status UnregisterClientQuery(QueryId id) override {
    auto it = std::find(owned_.begin(), owned_.end(), id);
    if (it == owned_.end()) {
      return Status::NotFound(StringPrintf(
          "query %lld was not registered by this connection",
          static_cast<long long>(id)));
    }
    GEOSTREAMS_RETURN_IF_ERROR(server_->DropQuery(id));
    owned_.erase(it);
    return Status::OK();
  }

  std::string SessionStatsLine() override { return session_->StatsLine(); }

 private:
  void ReaderLoop() {
    const int fd = session_->fd();
    std::string pending;
    uint8_t buf[4096];
    while (!server_->stopping_.load() && !session_->closed()) {
      Result<bool> readable =
          PollReadable(fd, server_->options_.poll_interval_ms);
      if (!readable.ok()) break;
      if (!*readable) continue;
      Result<size_t> n = ReadSome(fd, buf, sizeof(buf));
      if (!n.ok() || *n == 0) break;  // error or orderly EOF
      pending.append(reinterpret_cast<const char*>(buf), *n);
      size_t eol;
      while ((eol = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, eol);
        pending.erase(0, eol + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        const std::string response =
            ExecuteCommand(server_->dsms_, this, line);
        if (!session_->EnqueueControl(response).ok()) break;
      }
    }
    // The client is gone (or the server is stopping): its queries go
    // with it — continuous delivery to nobody is pure waste.
    session_->Close();
    for (QueryId id : owned_) {
      Status st = server_->DropQuery(id);
      if (!st.ok()) {
        GEOSTREAMS_LOG(kWarning)
            << "session " << session_->id() << ": dropping query " << id
            << " on disconnect failed: " << st.ToString();
      }
    }
    owned_.clear();
    done_.store(true);
  }

  NetServer* server_;
  std::shared_ptr<ClientSession> session_;
  /// Queries registered over this connection. Reader-thread-only.
  std::vector<QueryId> owned_;
  std::thread reader_;
  std::atomic<bool> done_{false};
};

NetServer::NetServer(DsmsServer* dsms, NetServerOptions options)
    : dsms_(dsms), options_(options) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  GEOSTREAMS_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.port));
  GEOSTREAMS_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_));
  started_ = true;
  stopping_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  GEOSTREAMS_LOG(kInfo) << "network server listening on 127.0.0.1:"
                        << port_;
  return Status::OK();
}

void NetServer::Stop() {
  if (!started_) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  // Connections shut down one at a time outside net_mu_ (their reader
  // threads call DropQuery, which takes it).
  for (;;) {
    std::unique_ptr<Connection> victim;
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      if (connections_.empty()) break;
      victim = std::move(connections_.back());
      connections_.pop_back();
    }
    victim->Shutdown();
  }
  started_ = false;
}

size_t NetServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(net_mu_);
  size_t live = 0;
  for (const auto& connection : connections_) {
    if (!connection->done()) ++live;
  }
  return live;
}

Status NetServer::DropQuery(QueryId id) {
  std::shared_ptr<Subscription> sub;
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    auto it = subscriptions_.find(id);
    if (it != subscriptions_.end()) {
      sub = std::move(it->second);
      subscriptions_.erase(it);
    }
  }
  if (sub) {
    // Detach the fan-out before unregistering: a callback already
    // in flight holds its own shared_ptr and finishes harmlessly
    // against the emptied list.
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->sessions.clear();
  }
  return dsms_->UnregisterQuery(id);
}

void NetServer::AcceptLoop() {
  while (!stopping_.load()) {
    Result<bool> readable =
        PollReadable(listen_fd_, options_.poll_interval_ms);
    if (!readable.ok()) {
      GEOSTREAMS_LOG(kError) << "accept poll failed: "
                             << readable.status().ToString();
      return;
    }
    // Reap finished connections (their readers already unregistered
    // their queries) so long-lived servers do not accumulate stubs.
    // `finished` outlives the lock scope: destruction joins the
    // reader thread, which must not happen under net_mu_.
    std::vector<std::unique_ptr<Connection>> finished;
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      for (auto& connection : connections_) {
        if (connection->done()) finished.push_back(std::move(connection));
      }
      connections_.erase(
          std::remove(connections_.begin(), connections_.end(), nullptr),
          connections_.end());
    }
    finished.clear();
    if (!*readable) continue;
    Result<int> client = AcceptClient(listen_fd_);
    if (!client.ok()) {
      if (stopping_.load()) return;
      GEOSTREAMS_LOG(kWarning) << "accept failed: "
                               << client.status().ToString();
      continue;
    }
    std::lock_guard<std::mutex> lock(net_mu_);
    if (connections_.size() >= options_.max_clients) {
      GEOSTREAMS_LOG(kWarning) << "rejecting client: at max_clients="
                               << options_.max_clients;
      CloseFd(*client);
      continue;
    }
    auto connection =
        std::make_unique<Connection>(this, *client, next_session_id_++);
    connection->Start();
    connections_.push_back(std::move(connection));
  }
}

}  // namespace geostreams
