#include "net/wire_protocol.h"

#include <cstring>

#include "common/string_util.h"
#include "geo/crs_registry.h"
#include "raster/checksum.h"

namespace geostreams {

namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void PutF64(std::vector<uint8_t>& out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked sequential reader over a payload. Every Get fails
/// closed: once `ok` is false the cursor stops moving and the caller
/// reports one truncation error at the end.
struct PayloadReader {
  const uint8_t* p;
  size_t remaining;
  bool ok = true;

  bool Need(size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t GetU8() {
    if (!Need(1)) return 0;
    const uint8_t v = *p;
    p += 1;
    remaining -= 1;
    return v;
  }
  uint16_t Get16() {
    if (!Need(2)) return 0;
    const uint16_t v = GetU16(p);
    p += 2;
    remaining -= 2;
    return v;
  }
  uint32_t Get32() {
    if (!Need(4)) return 0;
    const uint32_t v = GetU32(p);
    p += 4;
    remaining -= 4;
    return v;
  }
  uint64_t Get64() {
    if (!Need(8)) return 0;
    const uint64_t v = GetU64(p);
    p += 8;
    remaining -= 8;
    return v;
  }
  int64_t GetI64() { return static_cast<int64_t>(Get64()); }
  double GetF64() {
    const uint64_t bits = Get64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string GetString(size_t n) {
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    remaining -= n;
    return s;
  }
};

/// Shared header validation: magic, type, version, length, CRC.
/// On success `*payload`/`*payload_len`/`*flags` describe the body.
Status ValidateHeader(const uint8_t* data, size_t len, MessageType expected,
                      const uint8_t** payload, uint32_t* payload_len,
                      uint8_t* flags) {
  if (len < kWireHeaderSize) {
    return Status::InvalidArgument(StringPrintf(
        "wire message truncated: %zu bytes, header needs %zu", len,
        kWireHeaderSize));
  }
  if (std::memcmp(data, kWireMagic, 4) != 0) {
    return Status::InvalidArgument("wire message lacks GSF1 magic");
  }
  const uint8_t type = data[4];
  *flags = data[5];
  const uint16_t version = GetU16(data + 6);
  const uint32_t promised = GetU32(data + 8);
  const uint32_t payload_crc = GetU32(data + 12);
  if (type != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument(
        StringPrintf("unexpected wire message type %u", type));
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument(StringPrintf(
        "wire version %u not supported (speak %u)", version, kWireVersion));
  }
  if (promised > kMaxWirePayload) {
    return Status::InvalidArgument(StringPrintf(
        "wire payload length %u exceeds limit %u (desynchronized?)",
        promised, kMaxWirePayload));
  }
  if (len != kWireHeaderSize + promised) {
    return Status::InvalidArgument(StringPrintf(
        "wire payload truncated: header promises %u bytes, %zu present",
        promised, len - kWireHeaderSize));
  }
  *payload = data + kWireHeaderSize;
  *payload_len = promised;
  const uint32_t crc = Crc32(*payload, promised);
  if (crc != payload_crc) {
    return Status::InvalidArgument(StringPrintf(
        "wire payload checksum mismatch: header %08x, computed %08x",
        payload_crc, crc));
  }
  return Status::OK();
}

/// Wraps `payload` in a ready-to-send message (header prepended).
std::vector<uint8_t> FinishMessage(MessageType type, uint8_t flags,
                                   const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + payload.size());
  for (size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(kWireMagic[i]));
  }
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(flags);
  PutU16(out, kWireVersion);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void PutLattice(std::vector<uint8_t>& out, const GridLattice& lattice) {
  PutString(out, lattice.crs() ? lattice.crs()->name() : std::string());
  PutF64(out, lattice.origin_x());
  PutF64(out, lattice.origin_y());
  PutF64(out, lattice.dx());
  PutF64(out, lattice.dy());
  PutU64(out, static_cast<uint64_t>(lattice.width()));
  PutU64(out, static_cast<uint64_t>(lattice.height()));
}

Result<GridLattice> GetLattice(PayloadReader& reader) {
  const uint16_t crs_len = reader.Get16();
  const std::string crs_name = reader.GetString(crs_len);
  const double origin_x = reader.GetF64();
  const double origin_y = reader.GetF64();
  const double dx = reader.GetF64();
  const double dy = reader.GetF64();
  const int64_t width = reader.GetI64();
  const int64_t height = reader.GetI64();
  if (!reader.ok) {
    return Status::InvalidArgument("ingest lattice truncated");
  }
  CrsPtr crs;
  if (!crs_name.empty()) {
    GEOSTREAMS_ASSIGN_OR_RETURN(crs, ResolveCrs(crs_name));
  }
  return GridLattice(crs, origin_x, origin_y, dx, dy, width, height);
}

}  // namespace

std::vector<uint8_t> EncodeFrameMessage(const FrameMessage& message) {
  std::vector<uint8_t> payload;
  payload.reserve(kFramePreambleSize +
                  (message.png ? message.png_bytes.size()
                               : message.samples.size() * sizeof(double)));
  PutU64(payload, static_cast<uint64_t>(message.query_id));
  PutU64(payload, static_cast<uint64_t>(message.frame_id));
  PutU32(payload, message.width);
  PutU32(payload, message.height);
  PutU16(payload, message.bands);
  PutU16(payload, 0);  // reserved
  if (message.png) {
    payload.insert(payload.end(), message.png_bytes.begin(),
                   message.png_bytes.end());
  } else {
    for (double sample : message.samples) {
      uint64_t bits = 0;
      std::memcpy(&bits, &sample, sizeof(bits));
      PutU64(payload, bits);
    }
  }

  return FinishMessage(MessageType::kResultFrame,
                       message.png ? kFlagPng : 0, payload);
}

std::vector<uint8_t> EncodeResultFrame(int64_t query_id, int64_t frame_id,
                                       const Raster& raster,
                                       const std::vector<uint8_t>& png) {
  FrameMessage message;
  message.query_id = query_id;
  message.frame_id = frame_id;
  message.width = static_cast<uint32_t>(raster.width());
  message.height = static_cast<uint32_t>(raster.height());
  message.bands = static_cast<uint16_t>(raster.bands());
  if (!png.empty()) {
    message.png = true;
    message.png_bytes = png;
  } else {
    message.samples = raster.data();
  }
  return EncodeFrameMessage(message);
}

Result<FrameMessage> DecodeFrameMessage(const uint8_t* data, size_t len) {
  const uint8_t* payload = nullptr;
  uint32_t payload_len = 0;
  uint8_t flags = 0;
  GEOSTREAMS_RETURN_IF_ERROR(ValidateHeader(
      data, len, MessageType::kResultFrame, &payload, &payload_len, &flags));
  if (payload_len < kFramePreambleSize) {
    return Status::InvalidArgument(StringPrintf(
        "frame payload too short for preamble: %u bytes", payload_len));
  }

  FrameMessage message;
  message.query_id = static_cast<int64_t>(GetU64(payload));
  message.frame_id = static_cast<int64_t>(GetU64(payload + 8));
  message.width = GetU32(payload + 16);
  message.height = GetU32(payload + 20);
  message.bands = GetU16(payload + 24);
  message.png = (flags & kFlagPng) != 0;
  const uint8_t* body = payload + kFramePreambleSize;
  const size_t body_len = payload_len - kFramePreambleSize;
  if (message.png) {
    message.png_bytes.assign(body, body + body_len);
    return message;
  }
  const uint64_t expected =
      static_cast<uint64_t>(message.width) * message.height * message.bands;
  if (body_len != expected * sizeof(double)) {
    return Status::InvalidArgument(StringPrintf(
        "frame body holds %zu bytes, %llu samples of %ux%ux%u need %llu",
        body_len, static_cast<unsigned long long>(expected), message.width,
        message.height, message.bands,
        static_cast<unsigned long long>(expected * sizeof(double))));
  }
  message.samples.resize(expected);
  for (uint64_t i = 0; i < expected; ++i) {
    const uint64_t bits = GetU64(body + i * sizeof(double));
    std::memcpy(&message.samples[i], &bits, sizeof(double));
  }
  return message;
}

std::vector<uint8_t> EncodeIngestMessage(const IngestMessage& message) {
  std::vector<uint8_t> payload;
  const StreamEvent& event = message.event;
  size_t body_hint = 64;
  if (event.kind == EventKind::kPointBatch && event.batch) {
    body_hint += event.batch->size() *
                 (sizeof(int32_t) * 2 + sizeof(int64_t) +
                  sizeof(double) * static_cast<size_t>(
                                       event.batch->band_count));
  }
  payload.reserve(message.source.size() + body_hint);
  PutString(payload, message.source);
  PutU64(payload, message.seq);
  uint8_t flags = 0;
  if (message.capture_wall_us != 0) {
    flags |= kFlagCaptureTs;
    PutU64(payload, message.capture_wall_us);
  }
  payload.push_back(static_cast<uint8_t>(event.kind));
  switch (event.kind) {
    case EventKind::kFrameBegin:
    case EventKind::kFrameEnd:
      PutU64(payload, static_cast<uint64_t>(event.frame.frame_id));
      PutU64(payload, static_cast<uint64_t>(event.frame.expected_points));
      PutLattice(payload, event.frame.lattice);
      break;
    case EventKind::kPointBatch: {
      static const PointBatch kEmpty;
      const PointBatch& batch = event.batch ? *event.batch : kEmpty;
      PutU64(payload, static_cast<uint64_t>(batch.frame_id));
      PutU32(payload, static_cast<uint32_t>(batch.band_count));
      PutU64(payload, batch.checksum);
      PutU32(payload, static_cast<uint32_t>(batch.size()));
      for (int32_t col : batch.cols) {
        PutU32(payload, static_cast<uint32_t>(col));
      }
      for (int32_t row : batch.rows) {
        PutU32(payload, static_cast<uint32_t>(row));
      }
      for (int64_t t : batch.timestamps) {
        PutU64(payload, static_cast<uint64_t>(t));
      }
      for (double v : batch.values) PutF64(payload, v);
      break;
    }
    case EventKind::kStreamEnd:
      break;
  }
  return FinishMessage(MessageType::kIngest, flags, payload);
}

Result<IngestMessage> DecodeIngestMessage(const uint8_t* data, size_t len) {
  const uint8_t* payload = nullptr;
  uint32_t payload_len = 0;
  uint8_t flags = 0;
  GEOSTREAMS_RETURN_IF_ERROR(ValidateHeader(
      data, len, MessageType::kIngest, &payload, &payload_len, &flags));
  PayloadReader reader{payload, payload_len};

  IngestMessage message;
  const uint16_t source_len = reader.Get16();
  if (source_len > kMaxIngestSourceLen) {
    return Status::InvalidArgument(StringPrintf(
        "ingest source name length %u exceeds %zu", source_len,
        kMaxIngestSourceLen));
  }
  message.source = reader.GetString(source_len);
  message.seq = reader.Get64();
  if ((flags & kFlagCaptureTs) != 0) {
    message.capture_wall_us = reader.Get64();
  }
  const uint8_t kind = reader.GetU8();
  if (!reader.ok) {
    return Status::InvalidArgument("ingest preamble truncated");
  }
  if (message.source.empty()) {
    return Status::InvalidArgument("ingest message lacks a source name");
  }
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kFrameBegin:
    case EventKind::kFrameEnd: {
      FrameInfo info;
      info.frame_id = reader.GetI64();
      info.expected_points = reader.GetI64();
      GEOSTREAMS_ASSIGN_OR_RETURN(info.lattice, GetLattice(reader));
      message.event = static_cast<EventKind>(kind) == EventKind::kFrameBegin
                          ? StreamEvent::FrameBegin(std::move(info))
                          : StreamEvent::FrameEnd(std::move(info));
      break;
    }
    case EventKind::kPointBatch: {
      auto batch = std::make_shared<PointBatch>();
      batch->frame_id = reader.GetI64();
      const uint32_t band_count = reader.Get32();
      batch->checksum = reader.Get64();
      const uint32_t n = reader.Get32();
      if (!reader.ok) {
        return Status::InvalidArgument("ingest batch preamble truncated");
      }
      if (band_count == 0 || band_count > 4096) {
        return Status::InvalidArgument(
            StringPrintf("ingest batch band_count %u out of range",
                         band_count));
      }
      // Sized up front so a lying count cannot drive allocation past
      // the (already CRC-validated) payload length.
      const uint64_t need =
          static_cast<uint64_t>(n) * (4 + 4 + 8) +
          static_cast<uint64_t>(n) * band_count * 8;
      if (need != reader.remaining) {
        return Status::InvalidArgument(StringPrintf(
            "ingest batch body holds %zu bytes, %u points x %u bands "
            "need %llu",
            reader.remaining, n, band_count,
            static_cast<unsigned long long>(need)));
      }
      batch->band_count = static_cast<int>(band_count);
      batch->Reserve(n);
      batch->cols.resize(n);
      batch->rows.resize(n);
      batch->timestamps.resize(n);
      batch->values.resize(static_cast<size_t>(n) * band_count);
      for (uint32_t i = 0; i < n; ++i) {
        batch->cols[i] = static_cast<int32_t>(reader.Get32());
      }
      for (uint32_t i = 0; i < n; ++i) {
        batch->rows[i] = static_cast<int32_t>(reader.Get32());
      }
      for (uint32_t i = 0; i < n; ++i) {
        batch->timestamps[i] = reader.GetI64();
      }
      for (auto& v : batch->values) v = reader.GetF64();
      message.event = StreamEvent::Batch(std::move(batch));
      break;
    }
    case EventKind::kStreamEnd:
      message.event = StreamEvent::StreamEnd();
      break;
    default:
      return Status::InvalidArgument(
          StringPrintf("ingest message carries unknown event kind %u",
                       kind));
  }
  if (!reader.ok) {
    return Status::InvalidArgument("ingest event body truncated");
  }
  if (reader.remaining != 0) {
    return Status::InvalidArgument(StringPrintf(
        "ingest event body has %zu trailing bytes", reader.remaining));
  }
  return message;
}

void FrameDecoder::Feed(const uint8_t* data, size_t len) {
  buffer_.insert(buffer_.end(), data, data + len);
}

void FrameDecoder::Compact() {
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
  consumed_ = 0;
}

Result<std::optional<FrameDecoder::Unit>> FrameDecoder::Next() {
  if (!poisoned_.ok()) return poisoned_;
  const uint8_t* data = buffer_.data() + consumed_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail == 0) {
    Compact();
    return std::optional<Unit>{};
  }
  // A unit is binary only when it opens with the full GSF1 magic.
  // Comparing just the bytes on hand keeps 'G'-leading text lines
  // ("GET /metrics", a future verb) on the line path instead of
  // poisoning the stream; a true binary header always completes.
  bool binary = false;
  if (data[0] == static_cast<uint8_t>(kWireMagic[0])) {
    const size_t prefix = avail < 4 ? avail : 4;
    if (std::memcmp(data, kWireMagic, prefix) == 0) {
      if (avail < 4) return std::optional<Unit>{};  // magic undecided
      binary = true;
    }
  }
  if (binary) {
    // Binary message. Wait for the header, validate its length field,
    // then wait for the payload.
    if (avail < kWireHeaderSize) return std::optional<Unit>{};
    const uint32_t payload_len = GetU32(data + 8);
    if (payload_len > kMaxWirePayload) {
      poisoned_ = Status::InvalidArgument(StringPrintf(
          "wire payload length %u exceeds limit %u (desynchronized?)",
          payload_len, kMaxWirePayload));
      return poisoned_;
    }
    const size_t total = kWireHeaderSize + payload_len;
    if (avail < total) return std::optional<Unit>{};
    Unit unit;
    if (data[4] == static_cast<uint8_t>(MessageType::kIngest)) {
      Result<IngestMessage> decoded = DecodeIngestMessage(data, total);
      if (!decoded.ok()) {
        poisoned_ = decoded.status();
        return poisoned_;
      }
      unit.ingest = std::move(decoded).value();
    } else {
      Result<FrameMessage> decoded = DecodeFrameMessage(data, total);
      if (!decoded.ok()) {
        poisoned_ = decoded.status();
        return poisoned_;
      }
      unit.frame = std::move(decoded).value();
    }
    consumed_ += total;
    Compact();
    return std::optional<Unit>(std::move(unit));
  }
  // Text line.
  for (size_t i = 0; i < avail; ++i) {
    if (data[i] == '\n') {
      size_t end = i;
      while (end > 0 && data[end - 1] == '\r') --end;
      Unit unit;
      unit.line = std::string(reinterpret_cast<const char*>(data), end);
      consumed_ += i + 1;
      Compact();
      return std::optional<Unit>(std::move(unit));
    }
  }
  return std::optional<Unit>{};
}

}  // namespace geostreams
