#include "net/wire_protocol.h"

#include <cstring>

#include "common/string_util.h"
#include "raster/checksum.h"

namespace geostreams {

namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::vector<uint8_t> EncodeFrameMessage(const FrameMessage& message) {
  std::vector<uint8_t> payload;
  payload.reserve(kFramePreambleSize +
                  (message.png ? message.png_bytes.size()
                               : message.samples.size() * sizeof(double)));
  PutU64(payload, static_cast<uint64_t>(message.query_id));
  PutU64(payload, static_cast<uint64_t>(message.frame_id));
  PutU32(payload, message.width);
  PutU32(payload, message.height);
  PutU16(payload, message.bands);
  PutU16(payload, 0);  // reserved
  if (message.png) {
    payload.insert(payload.end(), message.png_bytes.begin(),
                   message.png_bytes.end());
  } else {
    for (double sample : message.samples) {
      uint64_t bits = 0;
      std::memcpy(&bits, &sample, sizeof(bits));
      PutU64(payload, bits);
    }
  }

  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + payload.size());
  out.insert(out.end(), kWireMagic, kWireMagic + 4);
  out.push_back(static_cast<uint8_t>(MessageType::kResultFrame));
  out.push_back(message.png ? kFlagPng : 0);
  PutU16(out, kWireVersion);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> EncodeResultFrame(int64_t query_id, int64_t frame_id,
                                       const Raster& raster,
                                       const std::vector<uint8_t>& png) {
  FrameMessage message;
  message.query_id = query_id;
  message.frame_id = frame_id;
  message.width = static_cast<uint32_t>(raster.width());
  message.height = static_cast<uint32_t>(raster.height());
  message.bands = static_cast<uint16_t>(raster.bands());
  if (!png.empty()) {
    message.png = true;
    message.png_bytes = png;
  } else {
    message.samples = raster.data();
  }
  return EncodeFrameMessage(message);
}

Result<FrameMessage> DecodeFrameMessage(const uint8_t* data, size_t len) {
  if (len < kWireHeaderSize) {
    return Status::InvalidArgument(StringPrintf(
        "wire message truncated: %zu bytes, header needs %zu", len,
        kWireHeaderSize));
  }
  if (std::memcmp(data, kWireMagic, 4) != 0) {
    return Status::InvalidArgument("wire message lacks GSF1 magic");
  }
  const uint8_t type = data[4];
  const uint8_t flags = data[5];
  const uint16_t version = GetU16(data + 6);
  const uint32_t payload_len = GetU32(data + 8);
  const uint32_t payload_crc = GetU32(data + 12);
  if (type != static_cast<uint8_t>(MessageType::kResultFrame)) {
    return Status::InvalidArgument(
        StringPrintf("unknown wire message type %u", type));
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument(StringPrintf(
        "wire version %u not supported (speak %u)", version, kWireVersion));
  }
  if (payload_len > kMaxWirePayload) {
    return Status::InvalidArgument(StringPrintf(
        "wire payload length %u exceeds limit %u (desynchronized?)",
        payload_len, kMaxWirePayload));
  }
  if (len != kWireHeaderSize + payload_len) {
    return Status::InvalidArgument(StringPrintf(
        "wire payload truncated: header promises %u bytes, %zu present",
        payload_len, len - kWireHeaderSize));
  }
  const uint8_t* payload = data + kWireHeaderSize;
  const uint32_t crc = Crc32(payload, payload_len);
  if (crc != payload_crc) {
    return Status::InvalidArgument(StringPrintf(
        "wire payload checksum mismatch: header %08x, computed %08x",
        payload_crc, crc));
  }
  if (payload_len < kFramePreambleSize) {
    return Status::InvalidArgument(StringPrintf(
        "frame payload too short for preamble: %u bytes", payload_len));
  }

  FrameMessage message;
  message.query_id = static_cast<int64_t>(GetU64(payload));
  message.frame_id = static_cast<int64_t>(GetU64(payload + 8));
  message.width = GetU32(payload + 16);
  message.height = GetU32(payload + 20);
  message.bands = GetU16(payload + 24);
  message.png = (flags & kFlagPng) != 0;
  const uint8_t* body = payload + kFramePreambleSize;
  const size_t body_len = payload_len - kFramePreambleSize;
  if (message.png) {
    message.png_bytes.assign(body, body + body_len);
    return message;
  }
  const uint64_t expected =
      static_cast<uint64_t>(message.width) * message.height * message.bands;
  if (body_len != expected * sizeof(double)) {
    return Status::InvalidArgument(StringPrintf(
        "frame body holds %zu bytes, %llu samples of %ux%ux%u need %llu",
        body_len, static_cast<unsigned long long>(expected), message.width,
        message.height, message.bands,
        static_cast<unsigned long long>(expected * sizeof(double))));
  }
  message.samples.resize(expected);
  for (uint64_t i = 0; i < expected; ++i) {
    const uint64_t bits = GetU64(body + i * sizeof(double));
    std::memcpy(&message.samples[i], &bits, sizeof(double));
  }
  return message;
}

void FrameDecoder::Feed(const uint8_t* data, size_t len) {
  buffer_.insert(buffer_.end(), data, data + len);
}

void FrameDecoder::Compact() {
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
  consumed_ = 0;
}

Result<std::optional<FrameDecoder::Unit>> FrameDecoder::Next() {
  if (!poisoned_.ok()) return poisoned_;
  const uint8_t* data = buffer_.data() + consumed_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail == 0) {
    Compact();
    return std::optional<Unit>{};
  }
  if (data[0] == static_cast<uint8_t>(kWireMagic[0])) {
    // Binary message. Wait for the header, validate its length field,
    // then wait for the payload.
    if (avail < kWireHeaderSize) return std::optional<Unit>{};
    if (std::memcmp(data, kWireMagic, 4) != 0) {
      poisoned_ = Status::InvalidArgument(
          "stream desynchronized: 'G' not followed by GSF1 magic");
      return poisoned_;
    }
    const uint32_t payload_len = GetU32(data + 8);
    if (payload_len > kMaxWirePayload) {
      poisoned_ = Status::InvalidArgument(StringPrintf(
          "wire payload length %u exceeds limit %u (desynchronized?)",
          payload_len, kMaxWirePayload));
      return poisoned_;
    }
    const size_t total = kWireHeaderSize + payload_len;
    if (avail < total) return std::optional<Unit>{};
    Result<FrameMessage> decoded = DecodeFrameMessage(data, total);
    if (!decoded.ok()) {
      poisoned_ = decoded.status();
      return poisoned_;
    }
    consumed_ += total;
    Compact();
    Unit unit;
    unit.frame = std::move(decoded).value();
    return std::optional<Unit>(std::move(unit));
  }
  // Text line.
  for (size_t i = 0; i < avail; ++i) {
    if (data[i] == '\n') {
      size_t end = i;
      while (end > 0 && data[end - 1] == '\r') --end;
      Unit unit;
      unit.line = std::string(reinterpret_cast<const char*>(data), end);
      consumed_ += i + 1;
      Compact();
      return std::optional<Unit>(std::move(unit));
    }
  }
  return std::optional<Unit>{};
}

}  // namespace geostreams
