// Minimal synchronous client for the network protocol — the test
// harness's and example tooling's view of a NetServer. One thread,
// one socket: Send() writes command lines, ReadNext() demultiplexes
// whatever arrives (text response or binary result frame) via
// FrameDecoder, and Command() pairs the two while parking any frames
// that stream in between.

#ifndef GEOSTREAMS_NET_GEOSTREAMS_CLIENT_H_
#define GEOSTREAMS_NET_GEOSTREAMS_CLIENT_H_

#include <chrono>
#include <deque>
#include <string>

#include "net/wire_protocol.h"

namespace geostreams {

class GeoStreamsClient {
 public:
  GeoStreamsClient() = default;
  ~GeoStreamsClient();

  GeoStreamsClient(const GeoStreamsClient&) = delete;
  GeoStreamsClient& operator=(const GeoStreamsClient&) = delete;

  /// `host` may be a hostname or a numeric IPv4/IPv6 address
  /// (socket_util's ConnectTcp). `timeout_ms` bounds the connect so a
  /// black-holed server cannot hang the caller; <= 0 blocks.
  Status Connect(const std::string& host, uint16_t port,
                 int timeout_ms = -1);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Writes one command line (newline appended).
  Status Send(const std::string& line);

  /// Next unit from the connection, in arrival order. Frames parked
  /// by Command() are returned first. `line` empty + `frame` empty
  /// means EOF. Unavailable on timeout.
  struct Incoming {
    std::optional<std::string> line;
    std::optional<FrameMessage> frame;
    bool eof = false;
  };
  Result<Incoming> ReadNext(int timeout_ms = 5000);

  /// Sends `line` and returns the first response line, parking result
  /// frames that arrive in between (drain them with ReadFrame).
  /// `timeout_ms` is one overall deadline — frames trickling in do
  /// not extend it.
  Result<std::string> Command(const std::string& line,
                              int timeout_ms = 5000);

  /// Reads until a frame arrives (parked or fresh). One overall
  /// deadline: skipped text lines do not extend it.
  Result<FrameMessage> ReadFrame(int timeout_ms = 5000);

  size_t pending_frames() const { return parked_frames_.size(); }

 private:
  using Deadline = std::chrono::steady_clock::time_point;
  static Deadline After(int timeout_ms) {
    return std::chrono::steady_clock::now() +
           std::chrono::milliseconds(timeout_ms);
  }

  /// Blocks until `deadline` for one decoded unit straight off the
  /// wire (ignores the parked queue). Every multi-read loop in this
  /// client shares one deadline through here, so a peer trickling
  /// bytes (or interleaving other units) cannot stretch a 5-second
  /// timeout into forever.
  Result<FrameDecoder::Unit> ReadUnitUntil(Deadline deadline, bool* eof);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::deque<FrameMessage> parked_frames_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_GEOSTREAMS_CLIENT_H_
