#include "net/geostreams_client.h"

#include <algorithm>
#include <chrono>

#include "net/socket_util.h"

namespace geostreams {

GeoStreamsClient::~GeoStreamsClient() { Close(); }

Status GeoStreamsClient::Connect(const std::string& host, uint16_t port,
                                 int timeout_ms) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  GEOSTREAMS_ASSIGN_OR_RETURN(fd_, ConnectTcp(host, port, timeout_ms));
  return Status::OK();
}

void GeoStreamsClient::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

Status GeoStreamsClient::Send(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string wire = line;
  wire.push_back('\n');
  return WriteAll(fd_, reinterpret_cast<const uint8_t*>(wire.data()),
                  wire.size());
}

Result<FrameDecoder::Unit> GeoStreamsClient::ReadUnitUntil(Deadline deadline,
                                                           bool* eof) {
  *eof = false;
  for (;;) {
    GEOSTREAMS_ASSIGN_OR_RETURN(std::optional<FrameDecoder::Unit> unit,
                                decoder_.Next());
    if (unit) return std::move(*unit);
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::Unavailable("timed out waiting for server data");
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    GEOSTREAMS_ASSIGN_OR_RETURN(bool readable,
                                PollReadable(fd_, std::max(wait_ms, 1)));
    if (!readable) continue;
    uint8_t buf[8192];
    GEOSTREAMS_ASSIGN_OR_RETURN(size_t n, ReadSome(fd_, buf, sizeof(buf)));
    if (n == 0) {
      *eof = true;
      return FrameDecoder::Unit{};
    }
    decoder_.Feed(buf, n);
  }
}

Result<GeoStreamsClient::Incoming> GeoStreamsClient::ReadNext(
    int timeout_ms) {
  Incoming incoming;
  if (!parked_frames_.empty()) {
    incoming.frame = std::move(parked_frames_.front());
    parked_frames_.pop_front();
    return incoming;
  }
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  bool eof = false;
  GEOSTREAMS_ASSIGN_OR_RETURN(FrameDecoder::Unit unit,
                              ReadUnitUntil(After(timeout_ms), &eof));
  incoming.eof = eof;
  incoming.line = std::move(unit.line);
  incoming.frame = std::move(unit.frame);
  return incoming;
}

Result<std::string> GeoStreamsClient::Command(const std::string& line,
                                              int timeout_ms) {
  GEOSTREAMS_RETURN_IF_ERROR(Send(line));
  const Deadline deadline = After(timeout_ms);
  for (;;) {
    bool eof = false;
    GEOSTREAMS_ASSIGN_OR_RETURN(FrameDecoder::Unit unit,
                                ReadUnitUntil(deadline, &eof));
    if (eof) {
      return Status::Unavailable("connection closed awaiting response");
    }
    if (unit.line) return std::move(*unit.line);
    if (unit.frame) parked_frames_.push_back(std::move(*unit.frame));
    // `unit.ingest` cannot arrive here (servers do not send it), and
    // either way the shared deadline still bounds the wait.
  }
}

Result<FrameMessage> GeoStreamsClient::ReadFrame(int timeout_ms) {
  if (!parked_frames_.empty()) {
    FrameMessage frame = std::move(parked_frames_.front());
    parked_frames_.pop_front();
    return frame;
  }
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const Deadline deadline = After(timeout_ms);
  for (;;) {
    bool eof = false;
    GEOSTREAMS_ASSIGN_OR_RETURN(FrameDecoder::Unit unit,
                                ReadUnitUntil(deadline, &eof));
    if (eof) {
      return Status::Unavailable("connection closed awaiting frame");
    }
    if (unit.frame) return std::move(*unit.frame);
    // A stray text line (e.g. a late response) is skipped — against
    // the same deadline, so a line trickle cannot stall us forever.
  }
}

}  // namespace geostreams
