// TCP front door for a DsmsServer: the control plane of
// command_dispatch.h plus streaming result delivery over the same
// connection, one ClientSession (bounded queue + writer thread) per
// client.
//
// Threading model, per connection:
//   reader thread (owned here)  — reads command lines, dispatches,
//                                 queues responses;
//   writer thread (ClientSession) — drains the outbound queue;
//   delivery callbacks          — run on the engine's scheduler
//                                 workers (or the ingest thread when
//                                 the engine is synchronous), encode
//                                 each frame ONCE, and fan the shared
//                                 buffer out to every subscribed
//                                 session with a non-blocking
//                                 enqueue. A slow client sheds frames
//                                 (its problem); it never stalls a
//                                 worker (everyone's problem).
//
// The subscriber list is in place before the query registers with the
// engine, so no frame can slip out unobserved between registration
// and subscription. One query may have several subscribers (`QUERY
// <id>` attaches to an existing fan-out); the engine unregisters the
// query when the last one detaches.
//
// The same connections also form the INGEST plane (ingest_session.h):
// after an `ATTACH <source>` handshake a producer streams sequenced
// binary events that the reader demultiplexes from command lines,
// answering each with an ACK/NACK control line. Ingest sessions are
// keyed by source and outlive connections, so a reconnecting producer
// resumes exactly where the server's acks left off; a liveness sweep
// on the accept loop quarantines sources that go silent. A dedicated
// `ingest_port` listener can separate producer traffic from client
// traffic; both speak the full protocol.

#ifndef GEOSTREAMS_NET_NET_SERVER_H_
#define GEOSTREAMS_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client_session.h"
#include "net/command_dispatch.h"
#include "net/ingest_session.h"

namespace geostreams {

class Raster;

struct NetServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Outbound queue / shedding policy applied to every session.
  ClientSessionOptions session;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_clients = 64;
  /// Poll granularity of the accept/reader loops (bounds Stop latency
  /// and the ingest liveness sweep cadence).
  int poll_interval_ms = 50;
  /// Per-source ingest behavior (liveness, admission control). The
  /// `memory` field may stay null: the server's own MemoryTracker is
  /// filled in when sessions are created, as is the `journal` hook
  /// when the engine runs with a durable journal.
  IngestSessionOptions ingest;
  /// Shared producer credential: when non-empty, `ATTACH <source>
  /// <token>` must present exactly this token (FailedPrecondition
  /// otherwise — non-transient, so a misconfigured producer stops
  /// instead of retrying forever). Client-plane verbs are unaffected.
  std::string ingest_auth_token;
  /// Control-plane credential: when non-empty, the mutating verbs
  /// (QUERY, UNREGISTER, RESTART, DLQ) require the session to have
  /// presented exactly this token via `AUTH <token>` first. Read-only
  /// verbs (HEALTH, STATS, METRICS, TRACE, PING) stay open, as does
  /// the HTTP /metrics pull endpoint.
  std::string control_auth_token;
  /// Second listener dedicated to producers (-1 = none; 0 = ephemeral,
  /// see ingest_port()). Connections accepted there speak the same
  /// protocol — the split only separates producer traffic from client
  /// traffic operationally.
  int ingest_port = -1;
  /// Where ingested events go: source name -> sink. Null uses the
  /// engine's own ingest boundary (DsmsServer::ingest); tests
  /// interpose audit sinks here. Must return sinks that outlive the
  /// server and are safe to drive from reader threads.
  std::function<EventSink*(const std::string&)> ingest_resolver;
};

class NetServer {
 public:
  /// `dsms` is not owned and must outlive this object.
  NetServer(DsmsServer* dsms, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the accept loop.
  Status Start();
  /// Disconnects every client (unregistering their queries) and joins
  /// all threads. Idempotent.
  void Stop();

  /// The bound port (the ephemeral choice when options.port was 0).
  uint16_t port() const { return port_; }
  /// The bound producer port (0 when options.ingest_port was -1).
  uint16_t ingest_port() const { return ingest_port_; }
  /// Currently connected clients.
  size_t num_sessions() const;
  /// Counters of the source's ingest session. NotFound before any
  /// producer has attached to the source.
  Result<IngestSessionStats> IngestStats(const std::string& source) const;

 private:
  /// One query's fan-out target set. The delivery callback holds a
  /// shared_ptr to this (never to the NetServer), so an in-flight
  /// callback stays safe across disconnects and even server teardown.
  struct Subscription {
    std::mutex mu;
    std::vector<std::shared_ptr<ClientSession>> sessions;
    /// Set right after RegisterQuery returns; frames racing that
    /// window would carry -1 (cannot happen for queries registered
    /// before their source streams, the protocol's normal order).
    std::atomic<int64_t> query_id{-1};
  };

  class Connection;

  /// Shared body of the delivery callbacks: encode once, fan the
  /// buffer out to every subscriber session, and — when the frame is
  /// traced — observe the `operators`, `deliver` and `total` stages of
  /// the end-to-end latency plane (the `write` stage rides the frame
  /// into each session's writer thread via a FrameStamp).
  static void FanOutFrame(DsmsServer* dsms, Subscription* sub,
                          int64_t frame_id, const Raster& raster,
                          const std::vector<uint8_t>& png);

  void AcceptLoop();
  /// Accepts (or rejects at max_clients) one pending connection.
  void AcceptOne(int listen_fd);
  /// Adds `session` to an existing query's fan-out. NotFound when the
  /// query has no active subscription.
  Status AttachQuery(QueryId id, const std::shared_ptr<ClientSession>& session);
  /// Removes `session` from the query's fan-out; when it was the last
  /// subscriber the subscription is dropped and the query unregisters
  /// with the engine. The engine call runs with no lock held:
  /// unregistration waits out in-flight delivery callbacks, which
  /// take Subscription::mu themselves.
  Status DetachQuery(QueryId id, const std::shared_ptr<ClientSession>& session);
  /// The per-source ingest session, created on first attach. Sessions
  /// are never dropped: their sequence state is exactly what lets a
  /// producer resume after reconnecting.
  Result<std::shared_ptr<IngestSession>> IngestSessionFor(
      const std::string& source);
  /// `RESTART <name>`: un-quarantines the engine source and the
  /// ingest session.
  Status RestartIngestSource(const std::string& name);
  /// Quarantines sources whose producers have gone silent (runs on
  /// the accept loop every poll tick).
  void SweepIngestLiveness();

  DsmsServer* dsms_;
  NetServerOptions options_;
  int listen_fd_ = -1;
  int ingest_listen_fd_ = -1;
  uint16_t port_ = 0;
  uint16_t ingest_port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread acceptor_;
  uint64_t next_session_id_ = 1;

  mutable std::mutex net_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<QueryId, std::shared_ptr<Subscription>> subscriptions_;
  std::map<std::string, std::shared_ptr<IngestSession>> ingest_sessions_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_NET_SERVER_H_
