// TCP front door for a DsmsServer: the control plane of
// command_dispatch.h plus streaming result delivery over the same
// connection, one ClientSession (bounded queue + writer thread) per
// client.
//
// Threading model, per connection:
//   reader thread (owned here)  — reads command lines, dispatches,
//                                 queues responses;
//   writer thread (ClientSession) — drains the outbound queue;
//   delivery callbacks          — run on the engine's scheduler
//                                 workers (or the ingest thread when
//                                 the engine is synchronous), encode
//                                 each frame ONCE, and fan the shared
//                                 buffer out to every subscribed
//                                 session with a non-blocking
//                                 enqueue. A slow client sheds frames
//                                 (its problem); it never stalls a
//                                 worker (everyone's problem).
//
// The subscriber list is in place before the query registers with the
// engine, so no frame can slip out unobserved between registration
// and subscription.

#ifndef GEOSTREAMS_NET_NET_SERVER_H_
#define GEOSTREAMS_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/client_session.h"
#include "net/command_dispatch.h"

namespace geostreams {

struct NetServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Outbound queue / shedding policy applied to every session.
  ClientSessionOptions session;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_clients = 64;
  /// Poll granularity of the accept/reader loops (bounds Stop latency).
  int poll_interval_ms = 50;
};

class NetServer {
 public:
  /// `dsms` is not owned and must outlive this object.
  NetServer(DsmsServer* dsms, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the accept loop.
  Status Start();
  /// Disconnects every client (unregistering their queries) and joins
  /// all threads. Idempotent.
  void Stop();

  /// The bound port (the ephemeral choice when options.port was 0).
  uint16_t port() const { return port_; }
  /// Currently connected clients.
  size_t num_sessions() const;

 private:
  /// One query's fan-out target set. The delivery callback holds a
  /// shared_ptr to this (never to the NetServer), so an in-flight
  /// callback stays safe across disconnects and even server teardown.
  struct Subscription {
    std::mutex mu;
    std::vector<std::shared_ptr<ClientSession>> sessions;
    /// Set right after RegisterQuery returns; frames racing that
    /// window would carry -1 (cannot happen for queries registered
    /// before their source streams, the protocol's normal order).
    std::atomic<int64_t> query_id{-1};
  };

  class Connection;

  void AcceptLoop();
  /// Removes the subscription and unregisters the query with the
  /// engine. Never called with net_mu_ or a Subscription::mu held:
  /// unregistration waits out in-flight delivery callbacks, which
  /// take Subscription::mu themselves.
  Status DropQuery(QueryId id);

  DsmsServer* dsms_;
  NetServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread acceptor_;
  uint64_t next_session_id_ = 1;

  mutable std::mutex net_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<QueryId, std::shared_ptr<Subscription>> subscriptions_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_NET_SERVER_H_
