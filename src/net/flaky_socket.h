// Fault injection at the socket boundary — the network half of the
// chaos-testing harness (the PR 2 FaultInjectorOp / StreamGenerator
// corruption hooks cover the in-process half).
//
// A FlakySocket wraps a connected fd and misbehaves on a
// deterministic schedule derived from a seed and per-direction
// operation counters, so every failure a test provokes reproduces
// from the same seed:
//
//   * partial writes — a Write is split and only a prefix is sent
//     before the call returns short success; the caller's resume
//     logic (and the peer's incremental decoder) get exercised;
//   * byte corruption — one byte of the outgoing buffer is flipped;
//     the peer's CRC-32 rejects the message and poisons its decoder,
//     which a resilient producer must treat as connection loss;
//   * mid-frame resets — the socket is shut down partway through a
//     Write (Unavailable), leaving the peer with a truncated frame;
//   * dropped reads — an incoming chunk (e.g. a batch of acks) is
//     swallowed entirely, forcing sender-side replay;
//   * delayed reads — an incoming chunk is stashed and delivered in
//     front of the NEXT read, reordering ack arrival against the
//     producer's send schedule.
//
// All probabilities are evaluated with a counter-indexed hash (no
// shared RNG state), so concurrent sockets with different seeds stay
// independently deterministic. A default-constructed options struct
// injects nothing — the wrapper is then a plain blocking socket.

#ifndef GEOSTREAMS_NET_FLAKY_SOCKET_H_
#define GEOSTREAMS_NET_FLAKY_SOCKET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace geostreams {

struct FlakySocketOptions {
  /// Seed for the deterministic fault schedule. Two sockets with the
  /// same seed and the same call sequence fault identically.
  uint64_t seed = 1;
  /// Probability a Write sends only a prefix (resumed by the caller).
  double partial_write_p = 0.0;
  /// Probability a Write flips one payload byte before sending.
  double corrupt_write_p = 0.0;
  /// Probability a Write aborts mid-buffer with a connection reset.
  double reset_write_p = 0.0;
  /// Probability a received chunk is dropped outright.
  double drop_read_p = 0.0;
  /// Probability a received chunk is delayed behind the next one.
  double delay_read_p = 0.0;
};

/// What the wrapper actually did — asserted against in chaos tests so
/// a "passing" run provably exercised the faults it configured.
struct FlakySocketStats {
  uint64_t writes = 0;
  uint64_t partial_writes = 0;
  uint64_t corrupted_writes = 0;
  uint64_t resets = 0;
  uint64_t reads = 0;
  uint64_t dropped_reads = 0;
  uint64_t delayed_reads = 0;
};

/// Owns `fd`. Single-threaded like the clients that use it: one
/// thread drives Write/Read/Close.
class FlakySocket {
 public:
  FlakySocket(int fd, FlakySocketOptions options = {});
  ~FlakySocket();

  FlakySocket(const FlakySocket&) = delete;
  FlakySocket& operator=(const FlakySocket&) = delete;

  /// Writes the buffer, subject to injected faults. Unavailable after
  /// an injected (or real) reset.
  Status Write(const uint8_t* data, size_t len);

  /// Reads up to `len` bytes (0 = orderly EOF), subject to injected
  /// drops/delays. A drop returns as a 0-progress success would be
  /// indistinguishable from EOF, so drops retry the underlying read
  /// once more and time out through the caller's poll loop instead.
  Result<size_t> Read(uint8_t* buf, size_t len);

  /// Blocks up to `timeout_ms` for readable data. True early when a
  /// delayed chunk is pending delivery.
  Result<bool> PollReadable(int timeout_ms);

  void Close();
  bool broken() const { return broken_; }
  int fd() const { return fd_; }
  const FlakySocketStats& stats() const { return stats_; }

 private:
  /// Deterministic Bernoulli roll: hash(seed, stream, counter) < p.
  bool Roll(uint64_t stream, uint64_t counter, double p) const;

  int fd_;
  FlakySocketOptions options_;
  FlakySocketStats stats_;
  bool broken_ = false;
  /// Chunk held back by a delayed read, delivered before the next.
  std::vector<uint8_t> delayed_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_FLAKY_SOCKET_H_
