#include "net/producer_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/math_util.h"
#include "common/string_util.h"
#include "net/socket_util.h"
#include "obs/trace.h"
#include "stream/supervisor.h"

namespace geostreams {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

/// Parses the trailing integer of a `key=value` token ("next=17").
bool ParseKeyedU64(const std::string& token, const char* key,
                   uint64_t* out) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  const std::string digits = token.substr(prefix.size());
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Maps the code name of an "ERR <Code> ..." / "NACK ... <Code> ..."
/// line back to a Status (the codes the ingest plane actually emits).
Status StatusFromWire(const std::string& code, std::string detail) {
  if (code == "NotFound") return Status::NotFound(std::move(detail));
  if (code == "InvalidArgument") {
    return Status::InvalidArgument(std::move(detail));
  }
  if (code == "FailedPrecondition") {
    return Status::FailedPrecondition(std::move(detail));
  }
  if (code == "ResourceExhausted") {
    return Status::ResourceExhausted(std::move(detail));
  }
  if (code == "OutOfRange") return Status::OutOfRange(std::move(detail));
  return Status::Unavailable(std::move(detail));
}

}  // namespace

ProducerClient::ProducerClient(ProducerClientOptions options)
    : options_(std::move(options)),
      backoff_token_(Mix64(std::hash<std::string>{}(options_.source) ^
                           (static_cast<uint64_t>(options_.port) << 32) ^
                           std::hash<std::string>{}(options_.host))) {}

ProducerClient::~ProducerClient() { Close(); }

namespace {

void AccumulateStats(const FlakySocketStats& from, FlakySocketStats* into) {
  into->writes += from.writes;
  into->partial_writes += from.partial_writes;
  into->corrupted_writes += from.corrupted_writes;
  into->resets += from.resets;
  into->reads += from.reads;
  into->dropped_reads += from.dropped_reads;
  into->delayed_reads += from.delayed_reads;
}

}  // namespace

void ProducerClient::Close() {
  if (socket_) {
    AccumulateStats(socket_->stats(), &closed_socket_stats_);
    socket_->Close();
  }
  socket_.reset();
  decoder_ = FrameDecoder();
}

FlakySocketStats ProducerClient::TotalSocketStats() const {
  FlakySocketStats total = closed_socket_stats_;
  if (socket_) AccumulateStats(socket_->stats(), &total);
  return total;
}

Status ProducerClient::SendLine(const std::string& line) {
  const std::string framed = line + "\n";
  return socket_->Write(reinterpret_cast<const uint8_t*>(framed.data()),
                        framed.size());
}

Result<std::string> ProducerClient::ReadLine(int timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  uint8_t buf[4096];
  for (;;) {
    for (;;) {
      Result<std::optional<FrameDecoder::Unit>> unit = decoder_.Next();
      if (!unit.ok()) return unit.status();
      if (!unit->has_value()) break;
      if ((*unit)->line) return *(*unit)->line;
      // Binary units (a result frame, if this connection also
      // subscribed) are not what a handshake waits for.
    }
    const int remaining = RemainingMs(deadline);
    if (remaining <= 0) {
      return Status::Unavailable(StringPrintf(
          "no server response within %d ms", timeout_ms));
    }
    GEOSTREAMS_ASSIGN_OR_RETURN(bool readable,
                                socket_->PollReadable(remaining));
    if (!readable) {
      return Status::Unavailable(StringPrintf(
          "no server response within %d ms", timeout_ms));
    }
    GEOSTREAMS_ASSIGN_OR_RETURN(size_t n, socket_->Read(buf, sizeof(buf)));
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    decoder_.Feed(buf, n);
  }
}

Status ProducerClient::ConnectOnce() {
  Close();
  GEOSTREAMS_ASSIGN_OR_RETURN(
      int fd,
      ConnectTcp(options_.host, options_.port, options_.connect_timeout_ms));
  // Each connection gets its own fault schedule. Reusing the seed
  // verbatim would fault every connection at the same operation
  // offsets — e.g. a dropped read #0 would swallow the ATTACH reply
  // on every reconnect, a deterministic livelock no backoff escapes.
  FlakySocketOptions flaky = options_.flaky;
  flaky.seed = options_.flaky.seed + connection_seq_++;
  socket_ = std::make_unique<FlakySocket>(fd, flaky);
  decoder_ = FrameDecoder();
  std::string attach = "ATTACH " + options_.source;
  if (!options_.auth_token.empty()) attach += " " + options_.auth_token;
  GEOSTREAMS_RETURN_IF_ERROR(SendLine(attach));
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         std::max(options_.connect_timeout_ms, 1));
  uint64_t next = 0;
  for (;;) {
    GEOSTREAMS_ASSIGN_OR_RETURN(std::string line,
                                ReadLine(RemainingMs(deadline)));
    std::vector<std::string> tokens = Tokens(line);
    if (tokens.size() >= 4 && tokens[0] == "OK" && tokens[1] == "ATTACH" &&
        tokens[2] == options_.source &&
        ParseKeyedU64(tokens[3], "next", &next)) {
      break;
    }
    if (!tokens.empty() && tokens[0] == "ERR") {
      const std::string code = tokens.size() > 1 ? tokens[1] : "";
      return StatusFromWire(code, "ATTACH refused: " + line);
    }
    // Anything else (stray acks from a shared connection) is skipped.
  }
  if (next == 0) {
    return Status::Internal("ATTACH handshake returned next=0");
  }
  // The server's expectation is authoritative. Everything below it is
  // delivered — trim it so replay stays idempotent; everything at or
  // above it that we still hold goes out again.
  if (!replay_.empty() && next < replay_.front().seq) {
    return Status::FailedPrecondition(StringPrintf(
        "server expects seq %llu but replay starts at %llu "
        "(server-side ingest state was lost)",
        static_cast<unsigned long long>(next),
        static_cast<unsigned long long>(replay_.front().seq)));
  }
  if (replay_.empty() && next < next_seq_) {
    return Status::FailedPrecondition(StringPrintf(
        "server expects seq %llu but %llu were already acked "
        "(server-side ingest state was lost)",
        static_cast<unsigned long long>(next),
        static_cast<unsigned long long>(next_seq_ - 1)));
  }
  if (next > next_seq_) next_seq_ = next;  // adopt an older incarnation
  TrimReplay(next - 1);
  resend_from_ = 0;
  return ResendUnacked();
}

Status ProducerClient::Reconnect() {
  const bool was_connected = ever_connected_;
  Status last = Status::Unavailable("not connected");
  const int attempts = std::max(options_.max_reconnect_attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const uint32_t delay = BackoffDelayMs(
        options_.backoff_initial_ms, options_.backoff_max_ms,
        options_.backoff_jitter_ms, backoff_token_, attempt);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    last = ConnectOnce();
    if (last.ok()) {
      if (was_connected) ++stats_.reconnects;
      ever_connected_ = true;
      return Status::OK();
    }
    if (last.code() == StatusCode::kInvalidArgument ||
        last.code() == StatusCode::kNotFound ||
        last.code() == StatusCode::kFailedPrecondition) {
      break;  // not transient: retrying cannot help
    }
  }
  Close();
  return last;
}

void ProducerClient::TrimReplay(uint64_t acked_seq) {
  while (!replay_.empty() && replay_.front().seq <= acked_seq) {
    replay_bytes_ -= replay_.front().bytes.size();
    replay_.pop_front();
  }
  if (acked_seq > acked_) {
    acked_ = acked_seq;
    stats_.acked = acked_;
  }
}

Status ProducerClient::ApplyLine(const std::string& line) {
  std::vector<std::string> tokens = Tokens(line);
  if (tokens.size() >= 3 && tokens[0] == "ACK" &&
      tokens[1] == options_.source) {
    uint64_t upto = 0;
    for (char c : tokens[2]) {
      if (c < '0' || c > '9') return Status::OK();  // malformed; skip
      upto = upto * 10 + static_cast<uint64_t>(c - '0');
    }
    TrimReplay(upto);
    return Status::OK();
  }
  if (tokens.size() >= 4 && tokens[0] == "NACK" &&
      tokens[1] == options_.source) {
    ++stats_.nacks;
    const std::string& code = tokens[3];
    std::string detail;
    for (size_t i = 4; i < tokens.size(); ++i) {
      if (!detail.empty()) detail += ' ';
      detail += tokens[i];
    }
    if (code == "OutOfRange") {
      // Sequence gap: the server tells us where to rewind.
      uint64_t expected = 0;
      for (size_t i = 4; i < tokens.size(); ++i) {
        if (ParseKeyedU64(tokens[i], "expected", &expected)) break;
      }
      if (expected > 0) {
        TrimReplay(expected - 1);  // it has everything below
        resend_from_ = expected;
      }
      return Status::OK();
    }
    if (code == "ResourceExhausted") ++stats_.overload_nacks;
    last_nack_ = StatusFromWire(code, std::move(detail));
    return Status::OK();
  }
  // "OK PONG", "OK ATTACH ...", "ERR ..." for commands we did not
  // send on this plane: nothing to do.
  return Status::OK();
}

Status ProducerClient::PumpAcks(int timeout_ms) {
  if (!connected()) return Status::Unavailable("not connected");
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(std::max(timeout_ms, 0));
  uint8_t buf[4096];
  for (;;) {
    for (;;) {
      Result<std::optional<FrameDecoder::Unit>> unit = decoder_.Next();
      if (!unit.ok()) return unit.status();  // framing lost: reconnect
      if (!unit->has_value()) break;
      if ((*unit)->line) {
        GEOSTREAMS_RETURN_IF_ERROR(ApplyLine(*(*unit)->line));
      }
    }
    const int remaining = timeout_ms <= 0 ? 0 : RemainingMs(deadline);
    GEOSTREAMS_ASSIGN_OR_RETURN(bool readable,
                                socket_->PollReadable(remaining));
    if (!readable) return Status::OK();
    GEOSTREAMS_ASSIGN_OR_RETURN(size_t n, socket_->Read(buf, sizeof(buf)));
    if (n == 0) return Status::Unavailable("server closed the connection");
    decoder_.Feed(buf, n);
  }
}

Status ProducerClient::ResendUnacked() {
  const uint64_t from = std::max(resend_from_, acked_ + 1);
  resend_from_ = 0;
  for (Pending& pending : replay_) {
    if (pending.seq < from) continue;
    if (pending.sent) ++stats_.retransmits;
    GEOSTREAMS_RETURN_IF_ERROR(
        socket_->Write(pending.bytes.data(), pending.bytes.size()));
    pending.sent = true;
  }
  return Status::OK();
}

Status ProducerClient::AwaitWindow() {
  if (options_.window_messages == 0 ||
      replay_.size() < options_.window_messages) {
    return Status::OK();
  }
  ++stats_.window_stalls;
  uint64_t progress_mark = acked_;
  int stalls = 0;
  while (replay_.size() >= options_.window_messages) {
    if (!connected()) GEOSTREAMS_RETURN_IF_ERROR(Reconnect());
    Status pumped = PumpAcks(options_.resend_timeout_ms);
    if (!pumped.ok()) {
      Close();
      continue;
    }
    if (acked_ > progress_mark) {
      progress_mark = acked_;
      stalls = 0;
      continue;
    }
    if (last_nack_.code() == StatusCode::kFailedPrecondition) {
      Status verdict = last_nack_;
      last_nack_ = Status::OK();
      return verdict;
    }
    if (stalls >= std::max(options_.max_reconnect_attempts, 1)) {
      return Status::ResourceExhausted(StringPrintf(
          "ack window full: %zu in flight (cap %zu), no ack progress",
          replay_.size(), options_.window_messages));
    }
    // A full resend window with no progress: the acks (or batches)
    // were lost. Back off and re-send — duplicates are re-acked.
    const uint32_t delay = BackoffDelayMs(
        options_.backoff_initial_ms, options_.backoff_max_ms,
        options_.backoff_jitter_ms, backoff_token_, stalls);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    ++stalls;
    Status resent = ResendUnacked();
    if (!resent.ok()) Close();
  }
  return Status::OK();
}

Status ProducerClient::SendWithRecovery(const std::vector<uint8_t>& bytes) {
  if (connected()) {
    Status sent = socket_->Write(bytes.data(), bytes.size());
    if (sent.ok()) return sent;
  }
  // The connection is gone mid-stream. The message is already in the
  // replay buffer, so reconnecting replays it (and everything else
  // unacked) — the caller never sees transient loss.
  return Reconnect();
}

Status ProducerClient::Connect() { return Reconnect(); }

Status ProducerClient::Publish(const StreamEvent& event) {
  if (!connected()) GEOSTREAMS_RETURN_IF_ERROR(Reconnect());
  IngestMessage message;
  message.source = options_.source;
  message.seq = next_seq_;
  if (options_.stamp_capture_time) {
    message.capture_wall_us = TraceWallNowUs();
  }
  message.event = event;
  Pending pending;
  pending.seq = next_seq_;
  pending.bytes = EncodeIngestMessage(message);
  if (pending.bytes.size() > options_.replay_max_bytes) {
    return Status::InvalidArgument(StringPrintf(
        "event encodes to %zu bytes, beyond the whole replay budget %zu",
        pending.bytes.size(), options_.replay_max_bytes));
  }
  if (replay_bytes_ + pending.bytes.size() > options_.replay_max_bytes) {
    // Backpressure: wait once for acks to free room, then push the
    // problem to the caller rather than grow without bound.
    Status pumped = PumpAcks(options_.resend_timeout_ms);
    if (!pumped.ok()) {
      GEOSTREAMS_RETURN_IF_ERROR(Reconnect());
      Status retried = PumpAcks(options_.resend_timeout_ms);
      (void)retried;
    }
    if (replay_bytes_ + pending.bytes.size() > options_.replay_max_bytes) {
      return Status::ResourceExhausted(StringPrintf(
          "replay buffer full: %zu bytes unacked (cap %zu), server is "
          "not acking",
          replay_bytes_, options_.replay_max_bytes));
    }
  }
  // The in-flight window: block for acks only when it is full, so a
  // healthy link pipelines window_messages batches deep.
  GEOSTREAMS_RETURN_IF_ERROR(AwaitWindow());
  // The sequence number is consumed only now: a publish that failed
  // above burned nothing, so the stream stays gapless.
  ++next_seq_;
  ++stats_.published;
  replay_bytes_ += pending.bytes.size();
  replay_.push_back(std::move(pending));
  GEOSTREAMS_RETURN_IF_ERROR(SendWithRecovery(replay_.back().bytes));
  replay_.back().sent = true;
  Status pumped = PumpAcks(0);
  if (!pumped.ok()) {
    // Framing or transport trouble while draining acks: drop the
    // connection; the next publish (or Flush) reconnects and replays.
    Close();
  }
  if (last_nack_.code() == StatusCode::kFailedPrecondition) {
    // Quarantined: buffered but going nowhere until an admin RESTART.
    // Do not republish this event — Flush resumes delivery.
    Status verdict = last_nack_;
    last_nack_ = Status::OK();
    return verdict;
  }
  return Status::OK();
}

Status ProducerClient::Heartbeat() {
  if (!connected()) GEOSTREAMS_RETURN_IF_ERROR(Reconnect());
  Status sent = SendLine("PING");
  if (!sent.ok()) GEOSTREAMS_RETURN_IF_ERROR(Reconnect());
  Status pumped = PumpAcks(0);
  if (!pumped.ok()) Close();
  return Status::OK();
}

Status ProducerClient::Flush(int timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(std::max(timeout_ms, 0));
  uint64_t progress_mark = acked_;
  int stalls = 0;
  while (!replay_.empty()) {
    if (RemainingMs(deadline) == 0) {
      if (!last_nack_.ok()) {
        Status verdict = last_nack_;
        last_nack_ = Status::OK();
        return verdict;
      }
      return Status::Unavailable(StringPrintf(
          "flush timed out with %zu messages unacked", replay_.size()));
    }
    if (!connected()) {
      Status reconnected = Reconnect();
      if (!reconnected.ok()) {
        if (reconnected.code() == StatusCode::kFailedPrecondition ||
            reconnected.code() == StatusCode::kNotFound ||
            reconnected.code() == StatusCode::kInvalidArgument) {
          return reconnected;  // retrying cannot help
        }
        continue;  // transient; the deadline bounds us
      }
    }
    const int wait =
        std::min(std::max(options_.resend_timeout_ms, 1),
                 std::max(RemainingMs(deadline), 1));
    Status pumped = PumpAcks(wait);
    if (!pumped.ok()) {
      Close();
      continue;
    }
    if (acked_ > progress_mark) {
      progress_mark = acked_;
      stalls = 0;
      last_nack_ = Status::OK();
      continue;
    }
    if (last_nack_.code() == StatusCode::kFailedPrecondition) {
      // Quarantine needs an admin, not a retry loop.
      Status verdict = last_nack_;
      last_nack_ = Status::OK();
      return verdict;
    }
    // No ack progress inside a full resend window: the acks (or the
    // batches) were lost, or the server is shedding under overload.
    // Back off, then re-send the window — the server re-acks
    // duplicates, so this converges either way.
    const uint32_t delay = BackoffDelayMs(
        options_.backoff_initial_ms, options_.backoff_max_ms,
        options_.backoff_jitter_ms, backoff_token_, stalls);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    ++stalls;
    Status resent = ResendUnacked();
    if (!resent.ok()) Close();
  }
  return Status::OK();
}

}  // namespace geostreams
