// Thin POSIX socket helpers for the network boundary. Standard
// Berkeley sockets only — the subsystem stays dependency-free, and
// everything returns Status instead of errno so callers compose with
// the rest of the library.

#ifndef GEOSTREAMS_NET_SOCKET_UTIL_H_
#define GEOSTREAMS_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace geostreams {

/// Opens a TCP listener on 127.0.0.1:`port` (port 0 = kernel-chosen
/// ephemeral port — tests run in parallel without colliding). Returns
/// the listening fd. With `ipv6` the listener binds [::1] instead
/// (fails where the kernel has IPv6 disabled — callers should treat
/// that as "not supported here", not as a bug).
Result<int> ListenTcp(uint16_t port, int backlog = 16, bool ipv6 = false);

/// The locally bound port of a socket (resolves ephemeral binds).
Result<uint16_t> LocalPort(int fd);

/// Blocks up to `timeout_ms` for `fd` to become readable. Returns
/// true when readable, false on timeout. Interrupted polls retry.
Result<bool> PollReadable(int fd, int timeout_ms);

/// Accepts one pending connection (call after PollReadable says so).
Result<int> AcceptClient(int listen_fd);

/// Connects to `host`:`port`. `host` may be a numeric IPv4 address
/// ("127.0.0.1"), a numeric IPv6 address ("::1"), or a hostname
/// ("localhost") — resolution goes through getaddrinfo and every
/// returned address is tried in order. `timeout_ms` bounds each
/// address's connect attempt (a black-holed server cannot hang the
/// caller); <= 0 means the OS default (blocking connect).
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms = -1);

/// Writes the whole buffer, resuming across partial writes and EINTR.
/// SIGPIPE is suppressed (MSG_NOSIGNAL); a closed peer surfaces as an
/// Unavailable status instead of killing the process.
Status WriteAll(int fd, const uint8_t* data, size_t len);

/// Reads up to `len` bytes; 0 means orderly EOF. EINTR retries.
Result<size_t> ReadSome(int fd, uint8_t* buf, size_t len);

/// Caps the socket's kernel send buffer (SO_SNDBUF). Best effort.
void SetSendBuffer(int fd, int bytes);

/// Half-closes the write side (peer sees EOF) without racing reads.
void ShutdownFd(int fd);

/// Closes the descriptor (no-op for fd < 0).
void CloseFd(int fd);

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_SOCKET_UTIL_H_
