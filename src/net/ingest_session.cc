#include "net/ingest_session.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "storage/governor.h"
#include "storage/journal.h"

namespace geostreams {

IngestSession::IngestSession(std::string source, EventSink* target,
                             IngestSessionOptions options)
    : source_(std::move(source)), target_(target), options_(options) {
  if (options_.journal != nullptr) {
    // Resume where the last incarnation's acks left off: a
    // reconnecting producer's ATTACH sees the recovered high-water
    // mark instead of 1, so it replays only what was never committed.
    expected_ = options_.journal->next_seq();
    stats_.durable = true;
    // Everything below the recovered high-water mark was acked, so
    // the journal's retention may settle (and compact away) those
    // records instead of carrying them forever.
    options_.journal->SetRetainFloor(expected_);
  }
  budget_tokens_ = options_.source_burst_bytes > 0
                       ? options_.source_burst_bytes
                       : options_.source_rate_bytes_per_sec;
  budget_refilled_ms_ = NowMsLocked();
  if (options_.metrics != nullptr) {
    MetricsRegistry& reg = *options_.metrics;
    const MetricLabels labels{{"source", source_}};
    m_acks_ = reg.GetCounter("geostreams_ingest_acks_total",
                             "Ingest messages acknowledged", labels);
    m_nacks_ = reg.GetCounter("geostreams_ingest_nacks_total",
                              "Ingest messages refused", labels);
    m_replays_ = reg.GetCounter(
        "geostreams_ingest_replays_total",
        "Duplicate sequence numbers re-acked after producer replay",
        labels);
    m_gaps_ = reg.GetCounter("geostreams_ingest_gaps_total",
                             "Sequence gaps NACKed with a rewind point",
                             labels);
    m_delivered_ = reg.GetCounter("geostreams_ingest_delivered_total",
                                  "Events delivered into the query chain",
                                  labels);
    m_shed_events_ = reg.GetCounter(
        "geostreams_ingest_shed_events_total",
        "Batches acked-but-dropped by kShed admission control", labels);
    m_shed_points_ = reg.GetCounter("geostreams_ingest_shed_points_total",
                                    "Points inside kShed-dropped batches",
                                    labels);
    m_shed_bytes_ = reg.GetCounter(
        "geostreams_ingest_shed_bytes_total",
        "Approximate bytes inside kShed-dropped batches", labels);
    m_e2e_total_ = reg.GetHistogram(
        "geostreams_e2e_latency_us",
        "Frame lifecycle stage latency (wall-clock microseconds between "
        "consecutive stage anchors; stage=total is capture to delivery)",
        {{"stage", "total"}, {"source", source_}},
        MetricHistogram::LatencyBucketsUs());
  }
}

uint64_t IngestSession::Attach() {
  std::lock_guard<std::mutex> lock(mu_);
  attached_ever_ = true;
  last_activity_ = Clock::now();
  return expected_;
}

std::string IngestSession::Ack(uint64_t upto) const {
  return StringPrintf("ACK %s %llu", source_.c_str(),
                      static_cast<unsigned long long>(upto));
}

std::string IngestSession::Nack(uint64_t seq, const Status& status) const {
  return StringPrintf("NACK %s %llu %s %s", source_.c_str(),
                      static_cast<unsigned long long>(seq),
                      StatusCodeName(status.code()),
                      status.message().c_str());
}

std::string IngestSession::NackTrackedLocked(uint64_t seq,
                                             const Status& status) {
  ++consecutive_nacks_;
  if (options_.event_log != nullptr && options_.nack_burst_events > 0 &&
      consecutive_nacks_ == options_.nack_burst_events) {
    // Exactly-at-threshold: one event per burst, re-armed by the next
    // ACK, so a producer stuck in a refusal loop cannot flood the ring.
    options_.event_log->Append(
        EventSeverity::kWarn, "ingest", "nack-burst",
        StringPrintf("source=%s consecutive=%llu last=%s %s", source_.c_str(),
                     static_cast<unsigned long long>(consecutive_nacks_),
                     StatusCodeName(status.code()),
                     status.message().c_str()));
  }
  return Nack(seq, status);
}

uint64_t IngestSession::NowMsLocked() const {
  if (options_.now_ms) return options_.now_ms();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

bool IngestSession::ConsumeBudgetLocked(uint64_t bytes) {
  const uint64_t capacity = options_.source_burst_bytes > 0
                                ? options_.source_burst_bytes
                                : options_.source_rate_bytes_per_sec;
  const uint64_t now = NowMsLocked();
  if (now > budget_refilled_ms_) {
    const uint64_t refill =
        (now - budget_refilled_ms_) * options_.source_rate_bytes_per_sec /
        1000;
    if (refill > 0) {
      budget_tokens_ = std::min(capacity, budget_tokens_ + refill);
      budget_refilled_ms_ = now;
    }
  }
  // A batch larger than the whole bucket would starve forever: admit
  // it when the bucket is full and let it run the balance negative to
  // zero instead.
  if (budget_tokens_ >= bytes ||
      (budget_tokens_ == capacity && bytes > capacity)) {
    budget_tokens_ -= std::min(budget_tokens_, bytes);
    return true;
  }
  return false;
}

Status IngestSession::JournalLocked(const IngestMessage& message) {
  if (options_.journal == nullptr) return Status::OK();
  const Status appended = options_.journal->Append(message);
  if (!appended.ok()) {
    ++stats_.journal_errors;
    // Unavailable = transient to the producer: it backs off and
    // replays the same sequence number, and nothing was acked that
    // the journal does not hold.
    return Status::Unavailable(
        StringPrintf("journal append failed: %s",
                     appended.message().c_str()));
  }
  ++stats_.journaled;
  return Status::OK();
}

std::string IngestSession::Handle(const IngestMessage& message) {
  std::lock_guard<std::mutex> lock(mu_);
  last_activity_ = Clock::now();
  attached_ever_ = true;
  ++stats_.received;

  if (message.seq < expected_) {
    // Already delivered (the producer replayed after losing our ack).
    // Re-ack cumulatively, do not re-deliver: this is where
    // at-least-once transport becomes exactly-once delivery.
    ++stats_.duplicates;
    consecutive_nacks_ = 0;
    if (m_replays_) m_replays_->Increment();
    if (m_acks_) m_acks_->Increment();
    return Ack(expected_ - 1);
  }
  if (message.seq > expected_) {
    // A gap: something between was lost (or the producer restarted
    // with fresh state). Tell it where to rewind to.
    ++stats_.gaps;
    if (m_gaps_) m_gaps_->Increment();
    if (m_nacks_) m_nacks_->Increment();
    return NackTrackedLocked(
        message.seq, Status::OutOfRange(StringPrintf(
                         "sequence gap: expected=%llu",
                         static_cast<unsigned long long>(expected_))));
  }
  if (quarantined_) {
    if (m_nacks_) m_nacks_->Increment();
    return NackTrackedLocked(
        message.seq, Status::FailedPrecondition(StringPrintf(
                         "source quarantined: %s",
                         quarantine_error_.message().c_str())));
  }

  const bool is_batch = message.event.kind == EventKind::kPointBatch;
  const uint64_t batch_points =
      is_batch && message.event.batch ? message.event.batch->size() : 0;
  const uint64_t batch_bytes =
      is_batch && message.event.batch ? message.event.batch->ApproxBytes()
                                      : 0;
  if (is_batch && options_.source_rate_bytes_per_sec > 0 &&
      !ConsumeBudgetLocked(batch_bytes)) {
    if (options_.overload_policy ==
        IngestSessionOptions::OverloadPolicy::kNack) {
      ++stats_.budget_nacks;
      if (m_nacks_) m_nacks_->Increment();
      return NackTrackedLocked(
          message.seq,
          Status::ResourceExhausted(StringPrintf(
              "per-source budget: %llu bytes exceed rate %llu B/s",
              static_cast<unsigned long long>(batch_bytes),
              static_cast<unsigned long long>(
                  options_.source_rate_bytes_per_sec))));
    }
    // kShed under a durable journal still journals: the ack promises
    // the sequence number is settled forever, so a crash after it
    // must not regress the recovered high-water mark.
    const Status journaled = JournalLocked(message);
    if (!journaled.ok()) {
      if (m_nacks_) m_nacks_->Increment();
      return NackTrackedLocked(message.seq, journaled);
    }
    ++stats_.budget_shed;
    stats_.overload_shed_points += batch_points;
    stats_.overload_shed_bytes += batch_bytes;
    if (m_shed_events_) m_shed_events_->Increment();
    if (m_shed_points_) m_shed_points_->Increment(batch_points);
    if (m_shed_bytes_) m_shed_bytes_->Increment(batch_bytes);
    if (m_acks_) m_acks_->Increment();
    consecutive_nacks_ = 0;
    expected_ = message.seq + 1;
    if (options_.journal != nullptr) {
      options_.journal->SetRetainFloor(expected_);
    }
    return Ack(message.seq);
  }
  if (is_batch && options_.memory != nullptr &&
      options_.admission_max_bytes > 0) {
    const uint64_t total = options_.memory->TotalBytes();
    if (total > options_.admission_max_bytes) {
      if (options_.overload_policy ==
          IngestSessionOptions::OverloadPolicy::kNack) {
        ++stats_.overload_nacks;
        if (m_nacks_) m_nacks_->Increment();
        return NackTrackedLocked(
            message.seq,
            Status::ResourceExhausted(StringPrintf(
                "ingest admission: %llu tracked bytes exceed "
                "budget %llu",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(
                    options_.admission_max_bytes))));
      }
      // kShed: accept responsibility for the batch and drop it, the
      // boundary equivalent of the scheduler's load shedding. The ack
      // keeps the producer's replay buffer (and the network) from
      // amplifying the overload. Journaled first: the ack is a
      // durable promise even for a shed batch.
      const Status journaled = JournalLocked(message);
      if (!journaled.ok()) {
        if (m_nacks_) m_nacks_->Increment();
        return NackTrackedLocked(message.seq, journaled);
      }
      ++stats_.overload_shed;
      stats_.overload_shed_points += batch_points;
      stats_.overload_shed_bytes += batch_bytes;
      if (m_shed_events_) m_shed_events_->Increment();
      if (m_shed_points_) m_shed_points_->Increment(batch_points);
      if (m_shed_bytes_) m_shed_bytes_->Increment(batch_bytes);
      if (m_acks_) m_acks_->Increment();
      consecutive_nacks_ = 0;
      expected_ = message.seq + 1;
      return Ack(message.seq);
    }
  }

  // Journal-before-deliver: a crash between the two replays the
  // record at recovery (delivery is redone, never lost); delivering
  // first could ack an event no restart can reconstruct. A NACKed
  // delivery below leaves a duplicate sequence in the journal when
  // the producer retries — recovery's dedup cursor drops it.
  // Frame-lifecycle anchors: admission is stamped before the journal
  // write, durable after it succeeds, so the `journal` stage of the
  // e2e latency plane measures exactly the time the ack spent gated
  // on durability.
  StreamEvent event = message.event;
  event.anchors.capture_wall_us = message.capture_wall_us;
  event.anchors.admit_wall_us = TraceWallNowUs();
  const Status journaled = JournalLocked(message);
  if (!journaled.ok()) {
    if (m_nacks_) m_nacks_->Increment();
    return NackTrackedLocked(message.seq, journaled);
  }
  if (options_.journal != nullptr) {
    event.anchors.durable_wall_us = TraceWallNowUs();
  }
  const Status delivered = target_->Consume(event);
  if (!delivered.ok()) {
    // Leave `expected_` where it is: the producer may retry the same
    // sequence number once the chain recovers (transient errors) or
    // after an admin RESTART (quarantine/poison).
    ++stats_.delivery_errors;
    if (m_nacks_) m_nacks_->Increment();
    return NackTrackedLocked(message.seq, delivered);
  }
  ++stats_.delivered;
  if (event.kind == EventKind::kFrameEnd) {
    last_frame_wall_us_ = event.anchors.capture_wall_us != 0
                              ? event.anchors.capture_wall_us
                              : event.anchors.admit_wall_us;
  }
  if (m_delivered_) m_delivered_->Increment();
  if (m_acks_) m_acks_->Increment();
  consecutive_nacks_ = 0;
  expected_ = message.seq + 1;
  if (options_.journal != nullptr) {
    options_.journal->SetRetainFloor(expected_);
  }
  if (message.event.kind == EventKind::kStreamEnd) ended_ = true;
  return Ack(message.seq);
}

void IngestSession::Touch() {
  std::lock_guard<std::mutex> lock(mu_);
  last_activity_ = Clock::now();
}

Status IngestSession::CheckLiveness() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.idle_timeout_ms == 0 || quarantined_ || ended_ ||
      !attached_ever_) {
    return Status::OK();
  }
  const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Clock::now() - last_activity_)
                        .count();
  if (idle < static_cast<int64_t>(options_.idle_timeout_ms)) {
    return Status::OK();
  }
  quarantined_ = true;
  quarantine_error_ = Status::Unavailable(StringPrintf(
      "source '%s' silent for %lld ms (idle timeout %llu ms)",
      source_.c_str(), static_cast<long long>(idle),
      static_cast<unsigned long long>(options_.idle_timeout_ms)));
  if (options_.event_log != nullptr) {
    options_.event_log->Append(
        EventSeverity::kWarn, "ingest", "liveness-quarantine",
        StringPrintf("source=%s idle_ms=%lld timeout_ms=%llu",
                     source_.c_str(), static_cast<long long>(idle),
                     static_cast<unsigned long long>(
                         options_.idle_timeout_ms)));
  }
  return quarantine_error_;
}

void IngestSession::Unquarantine() {
  std::lock_guard<std::mutex> lock(mu_);
  quarantined_ = false;
  quarantine_error_ = Status::OK();
  last_activity_ = Clock::now();
}

IngestSessionStats IngestSession::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestSessionStats out = stats_;
  out.next_expected = expected_;
  out.durable = options_.journal != nullptr;
  out.quarantined = quarantined_;
  out.ended = ended_;
  out.storage_degraded =
      options_.governor != nullptr && options_.governor->degraded();
  if (last_frame_wall_us_ != 0) {
    const uint64_t now = TraceWallNowUs();
    out.freshness_us = now > last_frame_wall_us_
                           ? now - last_frame_wall_us_
                           : 0;
  }
  if (m_e2e_total_ != nullptr) {
    out.e2e_p95_us = static_cast<uint64_t>(m_e2e_total_->Percentile(95));
  }
  return out;
}

std::string IngestSession::StatsLine() const {
  const IngestSessionStats s = Stats();
  return StringPrintf(
      "source=%s next=%llu received=%llu delivered=%llu duplicates=%llu "
      "gaps=%llu overload_nacks=%llu overload_shed=%llu "
      "shed_points=%llu shed_bytes=%llu "
      "delivery_errors=%llu budget_nacks=%llu budget_shed=%llu "
      "durable=%d journaled=%llu journal_errors=%llu "
      "quarantined=%d ended=%d storage_degraded=%d "
      "freshness_us=%llu e2e_p95_us=%llu",
      source_.c_str(), static_cast<unsigned long long>(s.next_expected),
      static_cast<unsigned long long>(s.received),
      static_cast<unsigned long long>(s.delivered),
      static_cast<unsigned long long>(s.duplicates),
      static_cast<unsigned long long>(s.gaps),
      static_cast<unsigned long long>(s.overload_nacks),
      static_cast<unsigned long long>(s.overload_shed),
      static_cast<unsigned long long>(s.overload_shed_points),
      static_cast<unsigned long long>(s.overload_shed_bytes),
      static_cast<unsigned long long>(s.delivery_errors),
      static_cast<unsigned long long>(s.budget_nacks),
      static_cast<unsigned long long>(s.budget_shed),
      s.durable ? 1 : 0, static_cast<unsigned long long>(s.journaled),
      static_cast<unsigned long long>(s.journal_errors),
      s.quarantined ? 1 : 0, s.ended ? 1 : 0, s.storage_degraded ? 1 : 0,
      static_cast<unsigned long long>(s.freshness_us),
      static_cast<unsigned long long>(s.e2e_p95_us));
}

}  // namespace geostreams
