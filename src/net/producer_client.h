// The producer half of the ingest plane: a remote stream generator
// that survives a lossy link (ingest_session.h is the server half).
//
// A ProducerClient is an EventSink, so anything that drives an
// in-process ingest boundary — StreamGenerator, a replayed capture —
// can publish over TCP instead by swapping the sink. Every event is
// wrapped in a GSF1 kIngest message under a per-source monotonic
// sequence number and kept in a bounded, byte-metered replay buffer
// until the server's cumulative ACK covers it:
//
//   * connection loss (including resets injected mid-frame, or a
//     server that poisons its decoder on a corrupted byte) triggers
//     reconnect with exponential backoff + deterministic jitter
//     (the PipelineSupervisor's backoff shape), an `ATTACH` handshake
//     that reveals the server's next expected sequence number, and
//     idempotent replay from exactly there — batches the server
//     already delivered are trimmed, never re-sent into the chain;
//   * acks lost in transit heal without reconnecting: when Flush sees
//     no ack progress it re-sends the unacked window and the server
//     re-acks duplicates cumulatively;
//   * a full replay buffer is backpressure — Publish pumps acks and,
//     failing that, surfaces ResourceExhausted to the caller instead
//     of buffering unboundedly (at-least-once, bounded memory);
//   * server NACKs are policy: a sequence gap rewinds the send
//     cursor; admission-control NACKs (ResourceExhausted) back off
//     and retry; quarantine NACKs (FailedPrecondition) surface to
//     the caller, who must arrange an admin `RESTART <source>`.
//
// At-least-once transport + server-side dedup = exactly-once delivery
// into the query chain, which the chaos tests audit by sequence.
//
// Synchronous and single-threaded by design (no writer/reader
// threads): determinism under fault injection matters more here than
// pipelining, and the send window still overlaps acks because acks
// are pumped opportunistically after every publish.

#ifndef GEOSTREAMS_NET_PRODUCER_CLIENT_H_
#define GEOSTREAMS_NET_PRODUCER_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/flaky_socket.h"
#include "net/wire_protocol.h"
#include "stream/operator.h"

namespace geostreams {

struct ProducerClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// The source stream this producer feeds (must be registered with
  /// the server).
  std::string source;
  /// Replay buffer cap: encoded bytes of unacked messages held for
  /// retransmission. A publish that cannot make room (the server is
  /// not acking) fails with ResourceExhausted — bounded memory wins.
  size_t replay_max_bytes = 8u << 20;
  /// Bounds connect() and the ATTACH handshake per attempt.
  int connect_timeout_ms = 2000;
  /// Reconnect attempts per operation before giving up.
  int max_reconnect_attempts = 8;
  /// Backoff shape between reconnect attempts (supervisor.h).
  uint32_t backoff_initial_ms = 1;
  uint32_t backoff_max_ms = 200;
  uint32_t backoff_jitter_ms = 16;
  /// Flush re-sends the unacked window after this long without ack
  /// progress (heals dropped acks without a reconnect).
  int resend_timeout_ms = 250;
  /// Sliding ack window: maximum in-flight (sent but unacked)
  /// messages. Publish keeps streaming while the window has room and
  /// blocks — pumping acks, resending on stall, reconnecting on loss —
  /// only when it fills, so a healthy link pipelines `window_messages`
  /// batches deep instead of degrading to stop-and-wait. 0 = no
  /// message-count bound (the byte-metered replay buffer still
  /// bounds memory).
  size_t window_messages = 64;
  /// Shared producer credential appended to the ATTACH line
  /// (`ATTACH <source> <token>`); empty sends a bare ATTACH. Servers
  /// configured with a token reject mismatches with
  /// FailedPrecondition (surfaced from Connect — not retried).
  std::string auth_token;
  /// Fault injection applied to every connection this client opens
  /// (chaos tests). Default: no faults. The seed is varied per
  /// connection (seed + connection ordinal): identical schedules on
  /// every reconnect could deterministically re-kill each new
  /// connection at the same spot, which no amount of retrying escapes.
  FlakySocketOptions flaky;
  /// Stamp each published message with the producer's wall clock
  /// (kFlagCaptureTs) — the first anchor of the server's end-to-end
  /// latency plane. Costs 8 bytes per message; disable when talking
  /// to pre-flag servers that reject unknown payload layouts.
  bool stamp_capture_time = true;
};

struct ProducerClientStats {
  uint64_t published = 0;     // events accepted by Publish
  uint64_t acked = 0;         // highest cumulative ack seen
  uint64_t retransmits = 0;   // messages sent more than once
  uint64_t reconnects = 0;    // successful re-connections
  uint64_t nacks = 0;         // NACK lines processed
  uint64_t overload_nacks = 0;  // of those, admission refusals
  uint64_t window_stalls = 0;   // publishes that blocked on the window
};

class ProducerClient : public EventSink {
 public:
  explicit ProducerClient(ProducerClientOptions options);
  ~ProducerClient() override;

  ProducerClient(const ProducerClient&) = delete;
  ProducerClient& operator=(const ProducerClient&) = delete;

  /// Connects and performs the ATTACH handshake. Also called lazily
  /// by Publish; explicit use surfaces configuration errors early.
  Status Connect();

  /// Closes the connection. Unacked messages stay in the replay
  /// buffer and go out after the next Connect.
  void Close();

  /// EventSink: Publish.
  Status Consume(const StreamEvent& event) override {
    return Publish(event);
  }

  /// Assigns the next sequence number, sends the event, and
  /// opportunistically pumps acks. Transparent about transport
  /// trouble only when it becomes the caller's problem: transient
  /// loss is healed by reconnect + replay internally.
  Status Publish(const StreamEvent& event);

  /// Sends a liveness heartbeat (PING) so an idle but healthy
  /// producer is not quarantined by the server's idle timeout.
  Status Heartbeat();

  /// Blocks until every published message is acked (replay buffer
  /// empty) or `timeout_ms` passes (Unavailable). Re-sends the
  /// unacked window when acks stall; reconnects when the connection
  /// drops.
  Status Flush(int timeout_ms);

  /// Unacked messages currently held for replay.
  size_t unacked() const { return replay_.size(); }
  const ProducerClientStats& stats() const { return stats_; }
  /// Stats of the current connection's fault-injecting socket (null
  /// when disconnected). Chaos tests assert faults actually fired.
  const FlakySocketStats* socket_stats() const {
    return socket_ ? &socket_->stats() : nullptr;
  }
  /// Fault/IO counters summed over every connection this client has
  /// opened. Per-connection stats die with their socket on reconnect,
  /// so this aggregate is what chaos tests assert against.
  FlakySocketStats TotalSocketStats() const;

 private:
  struct Pending {
    uint64_t seq = 0;
    std::vector<uint8_t> bytes;  // encoded kIngest message
    bool sent = false;           // sent at least once (retransmit stat)
  };

  bool connected() const { return socket_ != nullptr && !socket_->broken(); }
  /// Connect + ATTACH once (no retries). On success trims the replay
  /// buffer to the server's expectation and re-sends the remainder.
  Status ConnectOnce();
  /// Backoff/retry wrapper around ConnectOnce.
  Status Reconnect();
  /// Sends one encoded message; on transport failure reconnects (the
  /// message is already in the replay buffer, so replay covers it).
  Status SendWithRecovery(const std::vector<uint8_t>& bytes);
  /// Re-sends every unacked message in order.
  Status ResendUnacked();
  /// Blocks until the in-flight window has room (acks arrive) or the
  /// stall budget runs out. No-op when window_messages is 0.
  Status AwaitWindow();
  /// Reads whatever response lines are available within `timeout_ms`
  /// and applies them. Transport errors propagate (callers decide
  /// whether to reconnect).
  Status PumpAcks(int timeout_ms);
  /// Applies one ACK/NACK/OK/ERR line from the server.
  Status ApplyLine(const std::string& line);
  /// Drops acked messages from the replay buffer.
  void TrimReplay(uint64_t acked_seq);
  /// Sends a text line (faults apply).
  Status SendLine(const std::string& line);
  /// Waits for a full text line (the ATTACH response) with deadline.
  Result<std::string> ReadLine(int timeout_ms);

  const ProducerClientOptions options_;
  /// Jitter token: distinct producers (host, port, source) jitter
  /// differently even with identical options.
  const uint64_t backoff_token_;

  std::unique_ptr<FlakySocket> socket_;
  /// Connections opened so far; varies the fault seed per connection.
  uint64_t connection_seq_ = 0;
  /// A successful connect after this is set counts as a reconnect —
  /// including losses noticed only after the socket was torn down.
  bool ever_connected_ = false;
  FrameDecoder decoder_;
  std::deque<Pending> replay_;
  size_t replay_bytes_ = 0;
  uint64_t next_seq_ = 1;  // next sequence number to assign
  uint64_t acked_ = 0;     // cumulative server ack
  /// Set by a gap NACK: ResendUnacked starts from here.
  uint64_t resend_from_ = 0;
  /// Last NACK that signals a caller-visible condition (quarantine,
  /// admission refusal); OK otherwise.
  Status last_nack_ = Status::OK();
  ProducerClientStats stats_;
  /// Socket counters accumulated from connections already closed.
  FlakySocketStats closed_socket_stats_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_PRODUCER_CLIENT_H_
