// One connected client's outbound half: a bounded queue drained by a
// dedicated writer thread, with per-client load shedding.
//
// The delivery fan-out (DeliveryOp callbacks running on scheduler
// workers or the ingest thread) must NEVER block on a slow socket, or
// one stalled client would stall every query sharing the worker pool.
// Enqueue is therefore non-blocking: control responses are always
// admitted (the protocol dies without them), while result frames are
// subject to two pressure valves:
//
//  1. adaptive shedding — an AIMD controller (stream/adaptive_shedding)
//     observes this client's queue depth and lowers the keep fraction
//     as the backlog grows; frames are dropped probabilistically (a
//     deterministic keep-carry accumulator, no RNG) long before the
//     queue is full, trading frame rate for liveness per client;
//  2. a hard bound — at the queue's entry or byte cap the frame is
//     dropped outright.
//
// A client that keeps not reading eventually accumulates
// `max_consecutive_drops` back-to-back dropped frames and is
// disconnected: it is cheaper for the client to reconnect than for
// the server to buffer an unbounded past. Every decision is visible
// in Stats() (the STATS command's numbers).

#ifndef GEOSTREAMS_NET_CLIENT_SESSION_H_
#define GEOSTREAMS_NET_CLIENT_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "stream/adaptive_shedding.h"

namespace geostreams {

class EventLog;

struct ClientSessionOptions {
  /// Hard caps on the outbound queue.
  size_t max_queue_events = 256;
  size_t max_queue_bytes = 64u << 20;
  /// Back-to-back dropped frames before the client is disconnected.
  size_t max_consecutive_drops = 64;
  /// AIMD shedding watermarks in queue entries; 0 = derive from
  /// max_queue_events (high at 1/2, low at 1/8 of the cap).
  size_t shed_high_watermark = 0;
  size_t shed_low_watermark = 0;
  /// SO_SNDBUF for the connection (0 = kernel default). Backpressure
  /// is only as honest as the kernel buffer is small: a huge send
  /// buffer hides a stalled reader from the shedding controller.
  int send_buffer_bytes = 0;
  /// Optional registry: sessions share the unlabeled
  /// `geostreams_client_{frames_enqueued,frames_shed,bytes_written}_total`
  /// counters (aggregated — per-session figures stay in STATS, where
  /// cardinality is naturally bounded). Not owned; may be null.
  MetricsRegistry* metrics = nullptr;
  /// Optional flight recorder (not owned): slow-consumer disconnects
  /// (max_consecutive_drops exceeded) are recorded as structured
  /// events.
  EventLog* event_log = nullptr;
};

/// Latency-plane stamp riding one outbound frame: when
/// `delivered_wall_us` is nonzero the writer thread observes the
/// `write` stage (fan-out to socket-written) of
/// `geostreams_e2e_latency_us{stage="write",query=<query>}` after
/// WriteAll, exemplar-linked when `trace_ordinal` carries a reserved
/// trace-ring slot.
struct FrameStamp {
  uint64_t delivered_wall_us = 0;   // 0 = no write-stage observation
  uint64_t trace_ordinal = ~0ull;   // ~0 = no exemplar
  std::string pipeline;             // exemplar pipeline label
  std::string query;                // stage label value
};

class ClientSession {
 public:
  /// Takes ownership of `fd`. The writer thread starts immediately.
  ClientSession(int fd, uint64_t id, ClientSessionOptions options = {});
  /// Closes and joins the writer.
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  uint64_t id() const { return id_; }
  /// The connection's descriptor, for the read side (the session
  /// owns its lifetime: shut down on Close, closed at destruction).
  int fd() const { return fd_; }

  /// Queues a control-plane response line ('\n' appended on the
  /// wire). Never shed; fails only once the session is closed.
  Status EnqueueControl(std::string line);

  /// Queues one encoded result frame (a shared buffer — the same
  /// encode is fanned out to every subscriber). Non-blocking: under
  /// pressure the frame is dropped and counted; ResourceExhausted
  /// reports the drop, FailedPrecondition a closed session.
  Status EnqueueFrame(std::shared_ptr<const std::vector<uint8_t>> frame,
                      FrameStamp stamp = FrameStamp());

  /// Shuts the socket down and wakes the writer; safe to call from
  /// any thread, including the writer itself (hence: no join here —
  /// the destructor joins).
  void Close();

  bool closed() const;

  struct StatsSnapshot {
    uint64_t frames_enqueued = 0;
    uint64_t frames_dropped = 0;
    uint64_t bytes_written = 0;
    uint64_t consecutive_drops = 0;
    size_t queue_depth = 0;
    double keep = 1.0;
    bool closed = false;
  };
  StatsSnapshot Stats() const;
  /// The STATS command's value part, e.g.
  /// "enqueued=12 dropped=3 written_bytes=48000 keep=0.50 queue=7".
  std::string StatsLine() const;

 private:
  struct Outbound {
    std::string control;  // non-empty for control lines
    std::shared_ptr<const std::vector<uint8_t>> frame;
    FrameStamp stamp;     // write-stage anchor (frames only)
    size_t bytes() const {
      return frame ? frame->size() : control.size() + 1;
    }
  };

  void WriterLoop();
  void CloseLocked();
  /// Cached (and null-checked) write-stage histogram for one query
  /// label. Writer-thread-only.
  MetricHistogram* WriteStageHistogram(const std::string& query);

  const uint64_t id_;
  const ClientSessionOptions options_;
  int fd_;

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<Outbound> queue_;
  size_t queue_bytes_ = 0;
  bool closed_ = false;
  AdaptiveShedController shedding_;
  /// Keep-fraction carry: admit when the accumulated keep crosses 1.
  double keep_carry_ = 0.0;
  uint64_t frames_enqueued_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t consecutive_drops_ = 0;
  uint64_t bytes_written_ = 0;

  /// Shared registry counters (null without a registry).
  Counter* m_frames_enqueued_ = nullptr;
  Counter* m_frames_shed_ = nullptr;
  Counter* m_bytes_written_ = nullptr;
  /// Per-query write-stage histograms, resolved once each (may cache
  /// nullptr on a family kind conflict). Writer-thread-only.
  std::map<std::string, MetricHistogram*> write_stage_hists_;

  std::thread writer_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_CLIENT_SESSION_H_
