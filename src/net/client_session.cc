#include "net/client_session.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/socket_util.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace geostreams {

namespace {

AdaptiveSheddingOptions DeriveShedding(const ClientSessionOptions& options) {
  AdaptiveSheddingOptions shed;
  shed.high_watermark = options.shed_high_watermark != 0
                            ? options.shed_high_watermark
                            : std::max<size_t>(1, options.max_queue_events / 2);
  shed.low_watermark = options.shed_low_watermark != 0
                           ? options.shed_low_watermark
                           : std::max<size_t>(1, options.max_queue_events / 8);
  return shed;
}

}  // namespace

ClientSession::ClientSession(int fd, uint64_t id,
                             ClientSessionOptions options)
    : id_(id),
      options_(options),
      fd_(fd),
      // The backlog callback runs inside Observe(), which this class
      // only calls while holding mu_ — reading the queue is safe.
      shedding_([this] { return queue_.size(); }, DeriveShedding(options)) {
  if (options_.send_buffer_bytes > 0) {
    SetSendBuffer(fd_, options_.send_buffer_bytes);
  }
  if (options_.metrics != nullptr) {
    m_frames_enqueued_ = options_.metrics->GetCounter(
        "geostreams_client_frames_enqueued_total",
        "Result frames queued for delivery across all client sessions");
    m_frames_shed_ = options_.metrics->GetCounter(
        "geostreams_client_frames_shed_total",
        "Result frames shed by per-client backpressure");
    m_bytes_written_ = options_.metrics->GetCounter(
        "geostreams_client_bytes_written_total",
        "Bytes written to client sockets");
  }
  writer_ = std::thread([this] { WriterLoop(); });
}

ClientSession::~ClientSession() {
  Close();
  if (writer_.joinable()) writer_.join();
  CloseFd(fd_);
  fd_ = -1;
}

Status ClientSession::EnqueueControl(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return Status::FailedPrecondition(
        StringPrintf("session %llu is closed",
                     static_cast<unsigned long long>(id_)));
  }
  Outbound item;
  item.control = std::move(line);
  queue_bytes_ += item.bytes();
  queue_.push_back(std::move(item));
  ready_.notify_one();
  return Status::OK();
}

Status ClientSession::EnqueueFrame(
    std::shared_ptr<const std::vector<uint8_t>> frame, FrameStamp stamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return Status::FailedPrecondition(
        StringPrintf("session %llu is closed",
                     static_cast<unsigned long long>(id_)));
  }
  const size_t frame_bytes = frame->size();
  const double keep = shedding_.Observe();
  bool admit = queue_.size() < options_.max_queue_events &&
               queue_bytes_ + frame_bytes <= options_.max_queue_bytes;
  if (admit) {
    keep_carry_ += keep;
    if (keep_carry_ >= 1.0) {
      keep_carry_ -= 1.0;
    } else {
      admit = false;  // shed this frame; the carry earns the next one
    }
  }
  if (!admit) {
    ++frames_dropped_;
    if (m_frames_shed_) m_frames_shed_->Increment();
    if (++consecutive_drops_ >= options_.max_consecutive_drops) {
      GEOSTREAMS_LOG(kWarning)
          << "session " << id_ << ": " << consecutive_drops_
          << " consecutive dropped frames; disconnecting slow consumer";
      if (options_.event_log != nullptr) {
        options_.event_log->Append(
            EventSeverity::kError, "net", "slow-consumer-disconnect",
            StringPrintf("session=%llu consecutive_drops=%llu",
                         static_cast<unsigned long long>(id_),
                         static_cast<unsigned long long>(consecutive_drops_)));
      }
      CloseLocked();
      return Status::ResourceExhausted(StringPrintf(
          "session %llu dropped and disconnected (slow consumer)",
          static_cast<unsigned long long>(id_)));
    }
    return Status::ResourceExhausted(StringPrintf(
        "session %llu shed a frame (queue %zu, keep %.2f)",
        static_cast<unsigned long long>(id_), queue_.size(), keep));
  }
  consecutive_drops_ = 0;
  ++frames_enqueued_;
  if (m_frames_enqueued_) m_frames_enqueued_->Increment();
  Outbound item;
  item.frame = std::move(frame);
  item.stamp = std::move(stamp);
  queue_bytes_ += frame_bytes;
  queue_.push_back(std::move(item));
  ready_.notify_one();
  return Status::OK();
}

void ClientSession::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  CloseLocked();
}

void ClientSession::CloseLocked() {
  if (closed_) return;
  closed_ = true;
  // Half-close wakes both the peer (EOF) and any reader thread
  // blocked on this fd; the fd itself stays open until destruction so
  // no other thread can observe a recycled descriptor.
  ShutdownFd(fd_);
  queue_.clear();
  queue_bytes_ = 0;
  ready_.notify_all();
}

bool ClientSession::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

ClientSession::StatsSnapshot ClientSession::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snapshot;
  snapshot.frames_enqueued = frames_enqueued_;
  snapshot.frames_dropped = frames_dropped_;
  snapshot.bytes_written = bytes_written_;
  snapshot.consecutive_drops = consecutive_drops_;
  snapshot.queue_depth = queue_.size();
  snapshot.keep = shedding_.current_keep();
  snapshot.closed = closed_;
  return snapshot;
}

std::string ClientSession::StatsLine() const {
  const StatsSnapshot s = Stats();
  return StringPrintf(
      "enqueued=%llu dropped=%llu written_bytes=%llu keep=%.2f queue=%zu",
      static_cast<unsigned long long>(s.frames_enqueued),
      static_cast<unsigned long long>(s.frames_dropped),
      static_cast<unsigned long long>(s.bytes_written), s.keep,
      s.queue_depth);
}

MetricHistogram* ClientSession::WriteStageHistogram(const std::string& query) {
  // Writer-thread-only cache: one registry mutex + map walk per
  // (session, query), not per written frame. Null results (family
  // kind conflict) are cached too, so a misregistered family costs
  // one lookup, not one per frame.
  auto it = write_stage_hists_.find(query);
  if (it != write_stage_hists_.end()) return it->second;
  MetricHistogram* hist = options_.metrics->GetHistogram(
      "geostreams_e2e_latency_us",
      "Frame lifecycle stage latency (wall-clock microseconds between "
      "consecutive stage anchors; stage=total is capture to delivery)",
      {{"stage", "write"}, {"query", query}},
      MetricHistogram::LatencyBucketsUs());
  write_stage_hists_.emplace(query, hist);
  return hist;
}

void ClientSession::WriterLoop() {
  for (;;) {
    Outbound item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (closed_) return;
      item = std::move(queue_.front());
      queue_.pop_front();
      queue_bytes_ -= item.bytes();
    }
    Status st;
    size_t written = 0;
    if (item.frame) {
      st = WriteAll(fd_, item.frame->data(), item.frame->size());
      written = item.frame->size();
      if (st.ok() && item.stamp.delivered_wall_us != 0 &&
          options_.metrics != nullptr) {
        const uint64_t now = TraceWallNowUs();
        if (now > item.stamp.delivered_wall_us) {
          MetricHistogram* write_stage = WriteStageHistogram(item.stamp.query);
          const uint64_t latency = now - item.stamp.delivered_wall_us;
          if (write_stage == nullptr) {
            // Family kind conflict: metrics off for this stage.
          } else if (item.stamp.trace_ordinal != ~0ull) {
            write_stage->ObserveWithExemplar(latency, item.stamp.trace_ordinal,
                                             item.stamp.pipeline);
          } else {
            write_stage->Observe(latency);
          }
        }
      }
    } else {
      std::string line = item.control;
      line.push_back('\n');
      st = WriteAll(fd_, reinterpret_cast<const uint8_t*>(line.data()),
                    line.size());
      written = line.size();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!st.ok()) {
      if (!closed_) {
        GEOSTREAMS_LOG(kInfo) << "session " << id_
                              << " write failed: " << st.ToString();
      }
      CloseLocked();
      return;
    }
    bytes_written_ += written;
    if (m_bytes_written_) m_bytes_written_->Increment(written);
  }
}

}  // namespace geostreams
