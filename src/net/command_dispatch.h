// Text control plane: one command line in, one response out.
//
//   QUERY <text>       register a continuous query; its result frames
//                      start streaming to this connection
//                      -> "OK QUERY <id>"
//   QUERY <id>         attach to an already-registered query's result
//                      stream (a bare decimal argument is an id, never
//                      query text): several connections can watch one
//                      continuous query, each with its own shedding
//                      -> "OK QUERY <id>"
//   QUERY <text> SINCE <t>
//                      hybrid past+live query: recorded frames with id
//                      >= t replay from the tile store through the
//                      plan, then the live stream takes over at the
//                      watermark, exactly once -> "OK QUERY <id>"
//   UNREGISTER <id>    detach this connection from the query; the
//                      engine unregisters it when the last subscriber
//                      leaves -> "OK UNREGISTER <id>"
//   HEALTH             supervision health of every registered query
//                      -> "OK HEALTH n=<N> <id>=<STATE>..."
//   STATS              this connection's delivery stats (shedding!)
//                      -> "OK STATS enqueued=... dropped=... keep=..."
//   RESTART <id>       un-quarantine a failed query in place
//                      -> "OK RESTART <id>"
//   RESTART <name>     un-quarantine an ingest source (a non-numeric
//                      argument names a source stream): ingest flows
//                      again after a liveness quarantine
//                      -> "OK RESTART <name>"
//   ATTACH <source>    attach this connection as a producer for the
//                      source stream; sequenced binary INGEST
//                      messages may follow
//                      -> "OK ATTACH <source> next=<seq>"
//   ISTATS <source>    the source's ingest-session counters
//                      -> "OK ISTATS source=... next=... ..."
//   DLQ <id>           the query's retained dead-lettered events
//                      -> "OK DLQ <id> total=<t> kept=<k>" followed by
//                         k lines "DL <ordinal> <error>"
//   METRICS            the server's metrics registry in Prometheus
//                      text exposition 0.0.4 format; "METRICS
//                      openmetrics" renders OpenMetrics 1.0.0
//                      (exemplars on bucket lines, "# EOF") instead
//                      -> "OK METRICS lines=<n>" followed by n lines
//                         of "# HELP ...", "# TYPE ..." and samples
//   TRACE <id>         sampled per-batch trace records for the query
//                      (queue wait plus per-operator timings)
//                      -> "OK TRACE <id> total=<t> kept=<k>" followed
//                         by k lines "TR <ordinal> trace=... ..."
//   AUTH <token>       presents the control-plane credential; on a
//                      server configured with a control token, the
//                      mutating verbs (QUERY, UNREGISTER, RESTART,
//                      DLQ) answer ERR FailedPrecondition until the
//                      session has authenticated -> "OK AUTH"
//   PING               liveness -> "OK PONG"
//
// The control port also answers plain HTTP: "GET /metrics" returns
// the same Prometheus exposition as METRICS with proper HTTP framing
// (upgrading to OpenMetrics when the request carries "Accept:
// application/openmetrics-text"), so an unmodified Prometheus
// scraper can pull the registry in either format.
//
// Failures respond "ERR <CodeName> <message>". Dispatch is a free
// function over two narrow interfaces — the engine (DsmsServer) and
// the per-connection hooks — so the whole command surface unit-tests
// without a socket in sight.

#ifndef GEOSTREAMS_NET_COMMAND_DISPATCH_H_
#define GEOSTREAMS_NET_COMMAND_DISPATCH_H_

#include <string>

#include "mqo/region_index.h"
#include "common/status.h"

namespace geostreams {

class DsmsServer;

/// What a command needs from the connection it arrived on. The
/// NetServer session implements this; tests use fakes.
class SessionHooks {
 public:
  virtual ~SessionHooks() = default;
  /// Registers `text` as a continuous query whose frames stream back
  /// over this connection.
  virtual Result<QueryId> RegisterClientQuery(const std::string& text) = 0;
  /// `QUERY <text> SINCE <t>`: registers the query with store catch-up
  /// from frame id `since` before the live cut-over.
  virtual Result<QueryId> RegisterClientQuerySince(const std::string& text,
                                                   int64_t since) {
    (void)text;
    (void)since;
    return Status::Unimplemented("catch-up queries not supported here");
  }
  /// Detaches and unregisters a query this connection registered.
  virtual Status UnregisterClientQuery(QueryId id) = 0;
  /// The connection's delivery statistics (ClientSession::StatsLine).
  virtual std::string SessionStatsLine() = 0;

  // Ingest-plane hooks (net_server.h). Defaults answer Unimplemented
  // so command surfaces without an ingest plane — unit-test fakes,
  // embedded dispatchers — keep compiling unchanged.

  /// Attaches this connection to an existing query's result stream
  /// (`QUERY <id>` with a bare decimal argument).
  virtual Result<QueryId> AttachClientQuery(QueryId id) {
    (void)id;
    return Status::Unimplemented("query attach not supported here");
  }
  /// Attaches this connection as a producer for `source`; returns the
  /// next expected sequence number (the producer resumes from it).
  /// `token` is the shared producer credential from the ATTACH line
  /// (empty when the producer sent none); a server configured with a
  /// token rejects mismatches with FailedPrecondition.
  virtual Result<uint64_t> AttachIngestSource(const std::string& source,
                                              const std::string& token) {
    (void)source;
    (void)token;
    return Status::Unimplemented("ingest not supported here");
  }
  /// Un-quarantines an ingest source (`RESTART <name>`).
  virtual Status RestartIngestSource(const std::string& name) {
    (void)name;
    return Status::Unimplemented("ingest not supported here");
  }
  /// The source's IngestSession counters (`ISTATS <source>`).
  virtual Result<std::string> IngestStatsLine(const std::string& source) {
    (void)source;
    return Status::Unimplemented("ingest not supported here");
  }

  // Control-plane auth hooks. Defaults leave the session permanently
  // authorized, so embedded dispatchers and fakes are unaffected.

  /// `AUTH <token>`: presents the control credential for this session.
  virtual Status ControlAuth(const std::string& token) {
    (void)token;
    return Status::OK();
  }
  /// Gate consulted by the mutating verbs (QUERY, UNREGISTER,
  /// RESTART, DLQ). FailedPrecondition blocks the command.
  virtual Status AuthorizeControl() { return Status::OK(); }
};

/// True when `line` opens an HTTP request ("GET " / "HEAD ").
bool IsHttpRequestLine(const std::string& line);

/// Answers one HTTP request line with a complete HTTP/1.0 response
/// (headers + body, Connection: close). "GET /metrics" serves the
/// Prometheus 0.0.4 text exposition — or, when the scraper's Accept
/// header negotiated it (`accept_openmetrics`), the OpenMetrics
/// exposition with bucket exemplars and the `# EOF` terminator.
/// Other paths answer 404.
std::string HandleHttpRequest(DsmsServer* server,
                              const std::string& request_line,
                              bool accept_openmetrics = false);

/// Executes one control line and returns the complete response —
/// possibly multi-line ('\n'-separated, no trailing newline).
std::string ExecuteCommand(DsmsServer* server, SessionHooks* hooks,
                           const std::string& line);

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_COMMAND_DISPATCH_H_
