// Text control plane: one command line in, one response out.
//
//   QUERY <text>       register a continuous query; its result frames
//                      start streaming to this connection
//                      -> "OK QUERY <id>"
//   UNREGISTER <id>    stop and remove this connection's query
//                      -> "OK UNREGISTER <id>"
//   HEALTH             supervision health of every registered query
//                      -> "OK HEALTH n=<N> <id>=<STATE>..."
//   STATS              this connection's delivery stats (shedding!)
//                      -> "OK STATS enqueued=... dropped=... keep=..."
//   RESTART <id>       un-quarantine a failed query in place
//                      -> "OK RESTART <id>"
//   DLQ <id>           the query's retained dead-lettered events
//                      -> "OK DLQ <id> total=<t> kept=<k>" followed by
//                         k lines "DL <ordinal> <error>"
//   PING               liveness -> "OK PONG"
//
// Failures respond "ERR <CodeName> <message>". Dispatch is a free
// function over two narrow interfaces — the engine (DsmsServer) and
// the per-connection hooks — so the whole command surface unit-tests
// without a socket in sight.

#ifndef GEOSTREAMS_NET_COMMAND_DISPATCH_H_
#define GEOSTREAMS_NET_COMMAND_DISPATCH_H_

#include <string>

#include "mqo/region_index.h"
#include "common/status.h"

namespace geostreams {

class DsmsServer;

/// What a command needs from the connection it arrived on. The
/// NetServer session implements this; tests use fakes.
class SessionHooks {
 public:
  virtual ~SessionHooks() = default;
  /// Registers `text` as a continuous query whose frames stream back
  /// over this connection.
  virtual Result<QueryId> RegisterClientQuery(const std::string& text) = 0;
  /// Detaches and unregisters a query this connection registered.
  virtual Status UnregisterClientQuery(QueryId id) = 0;
  /// The connection's delivery statistics (ClientSession::StatsLine).
  virtual std::string SessionStatsLine() = 0;
};

/// Executes one control line and returns the complete response —
/// possibly multi-line ('\n'-separated, no trailing newline).
std::string ExecuteCommand(DsmsServer* server, SessionHooks* hooks,
                           const std::string& line);

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_COMMAND_DISPATCH_H_
