#include "net/socket_util.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/string_util.h"

namespace geostreams {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::IoError(
      StringPrintf("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Result<int> ListenTcp(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = ErrnoStatus("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = ErrnoStatus("listen");
    ::close(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<bool> PollReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (rc == 0) return false;
    // POLLHUP/POLLERR also count as readable: the next read reports
    // EOF or the error, which is what the caller must see.
    return true;
  }
}

Result<int> AcceptClient(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept");
  }
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not a numeric IPv4 host: " + host);
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    Status st = ErrnoStatus("connect");
    ::close(fd);
    return st;
  }
}

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection");
      }
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, uint8_t* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return static_cast<size_t>(0);  // peer gone = EOF
    return ErrnoStatus("recv");
  }
}

void SetSendBuffer(int fd, int bytes) {
  if (fd >= 0 && bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  }
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace geostreams
