#include "net/socket_util.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/string_util.h"

namespace geostreams {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::IoError(
      StringPrintf("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Result<int> ListenTcp(uint16_t port, int backlog, bool ipv6) {
  const int fd = ::socket(ipv6 ? AF_INET6 : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  int rc;
  if (ipv6) {
    ::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &one, sizeof(one));
    sockaddr_in6 addr{};
    addr.sin6_family = AF_INET6;
    addr.sin6_addr = in6addr_loopback;
    addr.sin6_port = htons(port);
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0) {
    Status st = ErrnoStatus("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = ErrnoStatus("listen");
    ::close(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
}

Result<bool> PollReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (rc == 0) return false;
    // POLLHUP/POLLERR also count as readable: the next read reports
    // EOF or the error, which is what the caller must see.
    return true;
  }
}

Result<int> AcceptClient(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept");
  }
}

namespace {

/// One connect attempt against a resolved address. With a positive
/// timeout the socket goes non-blocking for the handshake (poll for
/// writability, then read SO_ERROR) and returns to blocking mode on
/// success; without one this is a plain blocking connect.
Result<int> ConnectOne(const addrinfo& ai, int timeout_ms) {
  const int fd = ::socket(ai.ai_family, ai.ai_socktype, ai.ai_protocol);
  if (fd < 0) return ErrnoStatus("socket");
  Status st = Status::OK();
  if (timeout_ms <= 0) {
    for (;;) {
      if (::connect(fd, ai.ai_addr, ai.ai_addrlen) == 0) break;
      if (errno == EINTR) continue;
      st = ErrnoStatus("connect");
      break;
    }
  } else {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, ai.ai_addr, ai.ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
      st = ErrnoStatus("connect");
    } else if (rc != 0) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      for (;;) {
        rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0 && errno == EINTR) continue;
        break;
      }
      if (rc < 0) {
        st = ErrnoStatus("poll");
      } else if (rc == 0) {
        st = Status::Unavailable(StringPrintf(
            "connect timed out after %d ms", timeout_ms));
      } else {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
        if (so_error != 0) {
          st = Status::IoError(StringPrintf("connect: %s",
                                            std::strerror(so_error)));
        }
      }
    }
    if (st.ok()) ::fcntl(fd, F_SETFL, flags);
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;  // IPv4 and IPv6 alike
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string service = StringPrintf("%u", port);
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &results);
  if (rc != 0) {
    return Status::InvalidArgument(StringPrintf(
        "cannot resolve %s: %s", host.c_str(), ::gai_strerror(rc)));
  }
  Status last = Status::Unavailable("no addresses resolved for " + host);
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    Result<int> fd = ConnectOne(*ai, timeout_ms);
    if (fd.ok()) {
      ::freeaddrinfo(results);
      return fd;
    }
    last = fd.status();
  }
  ::freeaddrinfo(results);
  return last;
}

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection");
      }
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, uint8_t* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return static_cast<size_t>(0);  // peer gone = EOF
    return ErrnoStatus("recv");
  }
}

void SetSendBuffer(int fd, int bytes) {
  if (fd >= 0 && bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  }
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace geostreams
