#include "net/command_dispatch.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"
#include "server/dsms_server.h"

namespace geostreams {

namespace {

std::string ErrResponse(const Status& status) {
  return StringPrintf("ERR %s %s", StatusCodeName(status.code()),
                      status.message().c_str());
}

/// Parses the one-integer argument commands share. `rest` must be a
/// bare decimal id with nothing trailing.
Result<QueryId> ParseQueryId(std::string_view rest) {
  const std::string token(StripWhitespace(rest));
  if (token.empty()) {
    return Status::InvalidArgument("missing query id");
  }
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || value < 0) {
    return Status::InvalidArgument("not a query id: " + token);
  }
  return static_cast<QueryId>(value);
}

/// A bare decimal token (and nothing else)? Then `QUERY 7` is an
/// attach to query 7, and `RESTART goes-east` restarts a source.
bool IsBareNumber(std::string_view rest) {
  const std::string token(StripWhitespace(rest));
  if (token.empty()) return false;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Splits a trailing "SINCE <t>" clause off query text. Matched
/// case-insensitively against the LAST such clause, and only when the
/// tail is a bare (possibly negative) integer, so parenthesized query
/// grammar never collides with it.
struct SinceClause {
  bool present = false;
  int64_t since = 0;
  std::string text;
};

SinceClause SplitSinceClause(std::string_view text) {
  SinceClause out;
  out.text = std::string(StripWhitespace(text));
  const std::string lower = ToLower(out.text);
  const size_t pos = lower.rfind(" since ");
  if (pos == std::string::npos) return out;
  const std::string tail(
      StripWhitespace(std::string_view(out.text).substr(pos + 7)));
  if (tail.empty()) return out;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(tail.c_str(), &end, 10);
  if (end != tail.c_str() + tail.size() || errno == ERANGE) return out;
  out.present = true;
  out.since = static_cast<int64_t>(value);
  out.text = std::string(
      StripWhitespace(std::string_view(out.text).substr(0, pos)));
  return out;
}

/// Validates a source-name argument: source names travel inside
/// space-delimited ACK/NACK lines, so they must be single tokens.
Result<std::string> ParseSourceName(std::string_view rest) {
  const std::string token(StripWhitespace(rest));
  if (token.empty()) {
    return Status::InvalidArgument("missing source name");
  }
  if (token.find(' ') != std::string::npos) {
    return Status::InvalidArgument("source name cannot contain spaces");
  }
  return token;
}

std::string HandleHealth(DsmsServer* server) {
  const std::vector<QueryId> ids = server->QueryIds();
  std::string out = StringPrintf("OK HEALTH n=%zu", ids.size());
  // Storage-plane health rides along when a governor exists (servers
  // without journal/store keep the historical line shape).
  if (server->governor() != nullptr) {
    out += StringPrintf(" storage=%s",
                        server->governor()->degraded() ? "DEGRADED" : "OK");
  }
  for (QueryId id : ids) {
    Result<PipelineHealth> health = server->QueryHealth(id);
    out += StringPrintf(
        " %lld=%s", static_cast<long long>(id),
        health.ok() ? PipelineHealthName(*health) : "UNKNOWN");
  }
  return out;
}

std::string HandleDlq(DsmsServer* server, std::string_view rest) {
  Result<QueryId> id = ParseQueryId(rest);
  if (!id.ok()) return ErrResponse(id.status());
  Result<std::vector<DeadLetter>> letters = server->DeadLetters(*id);
  if (!letters.ok()) return ErrResponse(letters.status());
  // `total` counts ever dead-lettered (ordinals keep climbing after
  // ring eviction); `kept` is how many lines follow.
  const uint64_t total =
      letters->empty() ? 0 : letters->back().ordinal + 1;
  std::string out =
      StringPrintf("OK DLQ %lld total=%llu kept=%zu",
                   static_cast<long long>(*id),
                   static_cast<unsigned long long>(total), letters->size());
  for (const DeadLetter& letter : *letters) {
    out += StringPrintf("\nDL %llu %s",
                        static_cast<unsigned long long>(letter.ordinal),
                        letter.error.c_str());
  }
  return out;
}

std::string HandleMetrics(DsmsServer* server, std::string_view rest) {
  // `METRICS` serves the 0.0.4 exposition; `METRICS openmetrics`
  // opts into OpenMetrics (bucket exemplars + `# EOF`) so the
  // metrics -> TRACE loop closes over the control plane too.
  const std::string arg = ToLower(std::string(StripWhitespace(rest)));
  if (!arg.empty() && arg != "openmetrics") {
    return ErrResponse(
        Status::InvalidArgument("METRICS takes: [openmetrics]"));
  }
  const std::string body = server->RenderMetrics(arg == "openmetrics");
  // Count payload lines so the client knows how many ReadNext calls
  // follow the header (the exposition has no terminator of its own).
  size_t lines = 0;
  if (!body.empty()) {
    lines = 1;
    for (char c : body) {
      if (c == '\n') ++lines;
    }
    // RenderPrometheus ends each line with '\n'; the response joins
    // lines without a trailing newline, so drop the final count.
    if (body.back() == '\n') --lines;
  }
  std::string out = StringPrintf("OK METRICS lines=%zu", lines);
  if (lines > 0) {
    out.push_back('\n');
    out.append(body);
    if (out.back() == '\n') out.pop_back();
  }
  return out;
}

std::string HandleTrace(DsmsServer* server, std::string_view rest) {
  Result<QueryId> id = ParseQueryId(rest);
  if (!id.ok()) return ErrResponse(id.status());
  Result<TraceRing::Snapshot> traces = server->QueryTraces(*id);
  if (!traces.ok()) return ErrResponse(traces.status());
  // `total` counts ever recorded (ordinals keep climbing after ring
  // eviction); `kept` is how many lines follow.
  std::string out =
      StringPrintf("OK TRACE %lld total=%llu kept=%zu",
                   static_cast<long long>(*id),
                   static_cast<unsigned long long>(traces->total),
                   traces->records.size());
  for (const TraceRecord& record : traces->records) {
    out.push_back('\n');
    out.append(record.ToString());
  }
  return out;
}

std::string HandleEvents(DsmsServer* server) {
  const EventLog::Snapshot snapshot = server->Events();
  // `total` counts ever recorded (ordinals keep climbing after ring
  // eviction); `kept` is how many lines follow.
  std::string out =
      StringPrintf("OK EVENTS total=%llu kept=%zu",
                   static_cast<unsigned long long>(snapshot.total),
                   snapshot.events.size());
  for (const FlightEvent& event : snapshot.events) {
    out.push_back('\n');
    out.append(event.ToString());
  }
  return out;
}

}  // namespace

std::string ExecuteCommand(DsmsServer* server, SessionHooks* hooks,
                           const std::string& line) {
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty()) {
    return ErrResponse(Status::InvalidArgument("empty command"));
  }
  const size_t space = stripped.find(' ');
  const std::string verb =
      ToLower(stripped.substr(0, space));
  const std::string_view rest =
      space == std::string_view::npos ? std::string_view{}
                                      : stripped.substr(space + 1);

  if (verb == "ping") return "OK PONG";
  if (verb == "auth") {
    const std::string token(StripWhitespace(rest));
    if (token.empty() || token.find(' ') != std::string::npos) {
      return ErrResponse(
          Status::InvalidArgument("AUTH takes one token"));
    }
    Status st = hooks->ControlAuth(token);
    if (!st.ok()) return ErrResponse(st);
    return "OK AUTH";
  }
  // The mutating verbs sit behind the control credential (when the
  // server has one); read-only introspection stays open.
  const bool mutating = verb == "query" || verb == "unregister" ||
                        verb == "restart" || verb == "dlq";
  if (mutating) {
    Status authorized = hooks->AuthorizeControl();
    if (!authorized.ok()) return ErrResponse(authorized);
  }
  if (verb == "query") {
    const std::string text(StripWhitespace(rest));
    if (text.empty()) {
      return ErrResponse(Status::InvalidArgument("QUERY needs query text"));
    }
    if (IsBareNumber(text)) {
      // No query text is a bare number, so a bare number is an id:
      // attach to the existing query's fan-out instead of
      // registering a copy of the plan.
      Result<QueryId> parsed = ParseQueryId(text);
      if (!parsed.ok()) return ErrResponse(parsed.status());
      Result<QueryId> attached = hooks->AttachClientQuery(*parsed);
      if (!attached.ok()) return ErrResponse(attached.status());
      return StringPrintf("OK QUERY %lld",
                          static_cast<long long>(*attached));
    }
    const SinceClause since = SplitSinceClause(text);
    if (since.present) {
      if (since.text.empty()) {
        return ErrResponse(
            Status::InvalidArgument("QUERY SINCE needs query text"));
      }
      Result<QueryId> id =
          hooks->RegisterClientQuerySince(since.text, since.since);
      if (!id.ok()) return ErrResponse(id.status());
      return StringPrintf("OK QUERY %lld", static_cast<long long>(*id));
    }
    Result<QueryId> id = hooks->RegisterClientQuery(text);
    if (!id.ok()) return ErrResponse(id.status());
    return StringPrintf("OK QUERY %lld", static_cast<long long>(*id));
  }
  if (verb == "unregister") {
    Result<QueryId> id = ParseQueryId(rest);
    if (!id.ok()) return ErrResponse(id.status());
    Status st = hooks->UnregisterClientQuery(*id);
    if (!st.ok()) return ErrResponse(st);
    return StringPrintf("OK UNREGISTER %lld", static_cast<long long>(*id));
  }
  if (verb == "health") return HandleHealth(server);
  if (verb == "stats") return "OK STATS " + hooks->SessionStatsLine();
  if (verb == "restart") {
    if (!IsBareNumber(rest)) {
      // Non-numeric argument: an ingest source, not a query id.
      Result<std::string> name = ParseSourceName(rest);
      if (!name.ok()) return ErrResponse(name.status());
      Status st = hooks->RestartIngestSource(*name);
      if (!st.ok()) return ErrResponse(st);
      return "OK RESTART " + *name;
    }
    Result<QueryId> id = ParseQueryId(rest);
    if (!id.ok()) return ErrResponse(id.status());
    Status st = server->RestartQuery(*id);
    if (!st.ok()) return ErrResponse(st);
    return StringPrintf("OK RESTART %lld", static_cast<long long>(*id));
  }
  if (verb == "attach") {
    // ATTACH <source> [token] — the token is a shared producer
    // credential, a single opaque word.
    std::string_view args = StripWhitespace(rest);
    std::string token;
    const size_t space = args.find(' ');
    if (space != std::string_view::npos) {
      token = std::string(StripWhitespace(args.substr(space + 1)));
      args = args.substr(0, space);
      if (token.find(' ') != std::string::npos) {
        return ErrResponse(
            Status::InvalidArgument("ATTACH takes: <source> [token]"));
      }
    }
    Result<std::string> name = ParseSourceName(args);
    if (!name.ok()) return ErrResponse(name.status());
    Result<uint64_t> next = hooks->AttachIngestSource(*name, token);
    if (!next.ok()) return ErrResponse(next.status());
    return StringPrintf("OK ATTACH %s next=%llu", name->c_str(),
                        static_cast<unsigned long long>(*next));
  }
  if (verb == "istats") {
    Result<std::string> name = ParseSourceName(rest);
    if (!name.ok()) return ErrResponse(name.status());
    Result<std::string> stats = hooks->IngestStatsLine(*name);
    if (!stats.ok()) return ErrResponse(stats.status());
    return "OK ISTATS " + *stats;
  }
  if (verb == "dlq") return HandleDlq(server, rest);
  if (verb == "metrics") return HandleMetrics(server, rest);
  if (verb == "trace") return HandleTrace(server, rest);
  if (verb == "events") return HandleEvents(server);
  return ErrResponse(
      Status::InvalidArgument("unknown command: " + verb));
}

bool IsHttpRequestLine(const std::string& line) {
  const std::string_view stripped = StripWhitespace(line);
  return stripped.substr(0, 4) == "GET " ||
         stripped.substr(0, 5) == "HEAD ";
}

std::string HandleHttpRequest(DsmsServer* server,
                              const std::string& request_line,
                              bool accept_openmetrics) {
  const std::string_view stripped = StripWhitespace(request_line);
  const bool head = stripped.substr(0, 5) == "HEAD ";
  std::string_view rest = stripped.substr(head ? 5 : 4);
  // Path ends at the protocol-version token (absent in a bare
  // "GET /metrics" simple request).
  const size_t space = rest.find(' ');
  const std::string path(
      StripWhitespace(space == std::string_view::npos ? rest
                                                      : rest.substr(0, space)));
  std::string status_line;
  std::string content_type;
  std::string body;
  if (path == "/metrics") {
    status_line = "HTTP/1.0 200 OK";
    if (accept_openmetrics) {
      // The scraper negotiated OpenMetrics: exemplars are legal on
      // `_bucket` lines and the body ends with `# EOF`.
      content_type = "application/openmetrics-text; version=1.0.0; "
                     "charset=utf-8";
      body = server->RenderMetrics(/*openmetrics=*/true);
    } else {
      // The stable Prometheus 0.0.4 text format. Its parser treats
      // an exemplar tail as a malformed timestamp, so the rendering
      // carries none.
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = server->RenderMetrics();
    }
  } else if (path == "/eventz") {
    // The flight recorder, one event per line, newest last.
    status_line = "HTTP/1.0 200 OK";
    content_type = "text/plain; charset=utf-8";
    const EventLog::Snapshot snapshot = server->Events();
    body = StringPrintf("total=%llu kept=%zu\n",
                        static_cast<unsigned long long>(snapshot.total),
                        snapshot.events.size());
    for (const FlightEvent& event : snapshot.events) {
      body += event.ToString();
      body.push_back('\n');
    }
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found\n";
  }
  std::string response = status_line + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += StringPrintf("Content-Length: %zu\r\n", body.size());
  response += "Connection: close\r\n\r\n";
  if (!head) response += body;
  return response;
}

}  // namespace geostreams
