#include "net/command_dispatch.h"

#include <cstdlib>

#include "common/string_util.h"
#include "server/dsms_server.h"

namespace geostreams {

namespace {

std::string ErrResponse(const Status& status) {
  return StringPrintf("ERR %s %s", StatusCodeName(status.code()),
                      status.message().c_str());
}

/// Parses the one-integer argument commands share. `rest` must be a
/// bare decimal id with nothing trailing.
Result<QueryId> ParseQueryId(std::string_view rest) {
  const std::string token(StripWhitespace(rest));
  if (token.empty()) {
    return Status::InvalidArgument("missing query id");
  }
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || value < 0) {
    return Status::InvalidArgument("not a query id: " + token);
  }
  return static_cast<QueryId>(value);
}

std::string HandleHealth(DsmsServer* server) {
  const std::vector<QueryId> ids = server->QueryIds();
  std::string out = StringPrintf("OK HEALTH n=%zu", ids.size());
  for (QueryId id : ids) {
    Result<PipelineHealth> health = server->QueryHealth(id);
    out += StringPrintf(
        " %lld=%s", static_cast<long long>(id),
        health.ok() ? PipelineHealthName(*health) : "UNKNOWN");
  }
  return out;
}

std::string HandleDlq(DsmsServer* server, std::string_view rest) {
  Result<QueryId> id = ParseQueryId(rest);
  if (!id.ok()) return ErrResponse(id.status());
  Result<std::vector<DeadLetter>> letters = server->DeadLetters(*id);
  if (!letters.ok()) return ErrResponse(letters.status());
  // `total` counts ever dead-lettered (ordinals keep climbing after
  // ring eviction); `kept` is how many lines follow.
  const uint64_t total =
      letters->empty() ? 0 : letters->back().ordinal + 1;
  std::string out =
      StringPrintf("OK DLQ %lld total=%llu kept=%zu",
                   static_cast<long long>(*id),
                   static_cast<unsigned long long>(total), letters->size());
  for (const DeadLetter& letter : *letters) {
    out += StringPrintf("\nDL %llu %s",
                        static_cast<unsigned long long>(letter.ordinal),
                        letter.error.c_str());
  }
  return out;
}

}  // namespace

std::string ExecuteCommand(DsmsServer* server, SessionHooks* hooks,
                           const std::string& line) {
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty()) {
    return ErrResponse(Status::InvalidArgument("empty command"));
  }
  const size_t space = stripped.find(' ');
  const std::string verb =
      ToLower(stripped.substr(0, space));
  const std::string_view rest =
      space == std::string_view::npos ? std::string_view{}
                                      : stripped.substr(space + 1);

  if (verb == "ping") return "OK PONG";
  if (verb == "query") {
    const std::string text(StripWhitespace(rest));
    if (text.empty()) {
      return ErrResponse(Status::InvalidArgument("QUERY needs query text"));
    }
    Result<QueryId> id = hooks->RegisterClientQuery(text);
    if (!id.ok()) return ErrResponse(id.status());
    return StringPrintf("OK QUERY %lld", static_cast<long long>(*id));
  }
  if (verb == "unregister") {
    Result<QueryId> id = ParseQueryId(rest);
    if (!id.ok()) return ErrResponse(id.status());
    Status st = hooks->UnregisterClientQuery(*id);
    if (!st.ok()) return ErrResponse(st);
    return StringPrintf("OK UNREGISTER %lld", static_cast<long long>(*id));
  }
  if (verb == "health") return HandleHealth(server);
  if (verb == "stats") return "OK STATS " + hooks->SessionStatsLine();
  if (verb == "restart") {
    Result<QueryId> id = ParseQueryId(rest);
    if (!id.ok()) return ErrResponse(id.status());
    Status st = server->RestartQuery(*id);
    if (!st.ok()) return ErrResponse(st);
    return StringPrintf("OK RESTART %lld", static_cast<long long>(*id));
  }
  if (verb == "dlq") return HandleDlq(server, rest);
  return ErrResponse(
      Status::InvalidArgument("unknown command: " + verb));
}

}  // namespace geostreams
