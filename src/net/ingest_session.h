// Server-side state of one ingest source: the resilient half of the
// binary ingest plane (the producer half is ProducerClient).
//
// A producer attaches to a source with `ATTACH <source>` and then
// streams GSF1 kIngest messages, each carrying one StreamEvent under
// a per-source monotonic sequence number (1-based). The session is
// the paper's "stream generator -> server" arrow made fault
// tolerant:
//
//   * ordering   — exactly the next expected sequence number is
//     delivered into the query chain; anything already acked is a
//     duplicate (re-acked, dropped — replay after a reconnect is
//     idempotent) and anything beyond the expectation is a gap
//     (NACKed with the expected number so the producer rewinds);
//   * acks       — cumulative: `ACK <source> <n>` promises every
//     sequence number <= n was delivered (or deliberately shed), so
//     the producer can trim its replay buffer;
//   * admission  — before a point batch enters the chain the session
//     consults the server's MemoryTracker; past the configured byte
//     budget the batch is refused at the front door with
//     `NACK ... ResourceExhausted` (producer backs off and replays —
//     graceful degradation) or, under the kShed policy, acked-but-
//     dropped like the scheduler's own load shedding. Control events
//     (frame boundaries, stream end) are always admitted so
//     downstream buffering operators keep seeing well-formed frames;
//   * liveness   — a source that stops sending (no ingest message or
//     heartbeat for `idle_timeout_ms`) is quarantined: the owner
//     (NetServer) dead-letters the silence into the source's DLQ and
//     later ingest is NACKed until an admin `RESTART <source>`
//     un-quarantines it.
//
// Sessions outlive connections on purpose: sequence state is keyed by
// source, so a producer that reconnects resumes from the server's
// last ack instead of re-delivering (or skipping) history.
//
// Thread-safe: the connection reader delivering messages, the
// liveness sweeper, and admin commands from other connections all
// take the internal mutex. Delivery into the chain happens with the
// mutex held, serializing one source's events — the same guarantee an
// in-process producer has.

#ifndef GEOSTREAMS_NET_INGEST_SESSION_H_
#define GEOSTREAMS_NET_INGEST_SESSION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "net/wire_protocol.h"
#include "obs/metrics_registry.h"
#include "stream/memory_tracker.h"
#include "stream/operator.h"

namespace geostreams {

class EventLog;
class SourceJournal;
class StorageGovernor;

struct IngestSessionOptions {
  /// Quarantine the source after this long without an ingest message
  /// or heartbeat (0 = liveness not enforced). Measured from the
  /// producer's first attach; a delivered StreamEnd disarms it.
  uint64_t idle_timeout_ms = 0;
  /// Memory figure consulted for admission control (not owned; null =
  /// no admission control).
  const MemoryTracker* memory = nullptr;
  /// Admission budget in tracked bytes (0 = unlimited): point batches
  /// arriving while MemoryTracker::TotalBytes() exceeds this are
  /// refused at the boundary instead of growing queues.
  uint64_t admission_max_bytes = 0;
  /// What "refused" means: kNack preserves at-least-once (producer
  /// retries after backoff); kShed acknowledges and drops, trading
  /// completeness for producer progress like shedding_op does for
  /// query output.
  enum class OverloadPolicy : uint8_t { kNack, kShed };
  OverloadPolicy overload_policy = OverloadPolicy::kNack;
  /// Optional registry: the session keeps per-source
  /// `geostreams_ingest_*_total{source=...}` counters (acks, nacks,
  /// replays, gaps, delivered events, shed events/points/bytes) in
  /// sync with its internal stats. Not owned; may be null.
  MetricsRegistry* metrics = nullptr;
  /// Durable write-ahead journal for this source (not owned; null =
  /// no durability). When set, every event that advances the expected
  /// sequence — delivered OR deliberately shed — is appended (and
  /// fsynced, per the journal's policy) BEFORE the ACK goes out; an
  /// append failure NACKs Unavailable so the producer retries and the
  /// ack keeps meaning "safe across a crash". The session also seeds
  /// its expected sequence from the journal's recovered high-water
  /// mark at construction.
  SourceJournal* journal = nullptr;
  /// Optional disk-pressure governor (not owned; the journal consults
  /// it for admission on its own). The session only surfaces its
  /// state: ISTATS reports storage_degraded=1 while the storage plane
  /// is refusing writes, so operators can tell a full disk from a
  /// slow producer.
  const StorageGovernor* governor = nullptr;
  /// Per-source admission budget: a token bucket refilled at
  /// `source_rate_bytes_per_sec` with capacity `source_burst_bytes`
  /// (0 capacity = one second of rate). 0 rate disables the budget.
  /// Applies to point batches only (control events always pass) and
  /// is checked before the server-wide MemoryTracker gate, with the
  /// same OverloadPolicy treatment.
  uint64_t source_rate_bytes_per_sec = 0;
  uint64_t source_burst_bytes = 0;
  /// Injectable millisecond clock for the token bucket (tests pin
  /// time); null = steady_clock.
  std::function<uint64_t()> now_ms;
  /// Optional flight recorder (not owned): the session records
  /// liveness quarantines and NACK bursts (`nack_burst_events`
  /// consecutive refusals) into it.
  EventLog* event_log = nullptr;
  /// Consecutive NACKs that count as a burst worth one flight-recorder
  /// event (re-armed by the next ACK).
  uint64_t nack_burst_events = 8;
};

struct IngestSessionStats {
  uint64_t received = 0;         // ingest messages handled
  uint64_t delivered = 0;        // events delivered into the chain
  uint64_t duplicates = 0;       // seq already acked; re-acked
  uint64_t gaps = 0;             // seq ahead of expectation; NACKed
  uint64_t overload_nacks = 0;   // admission refusals (kNack)
  uint64_t overload_shed = 0;    // admission drops (kShed), in events
  uint64_t overload_shed_points = 0;  // points inside shed batches
  uint64_t overload_shed_bytes = 0;   // approx bytes inside shed batches
  uint64_t delivery_errors = 0;  // chain refused the event; NACKed
  uint64_t budget_nacks = 0;     // per-source budget refusals (kNack)
  uint64_t budget_shed = 0;      // per-source budget drops (kShed)
  uint64_t journaled = 0;        // records appended to the journal
  uint64_t journal_errors = 0;   // appends that failed; NACKed
  uint64_t next_expected = 1;    // next in-order sequence number
  /// Age of the newest delivered frame (now minus its capture — or,
  /// unstamped, admission — wall clock); 0 until a frame completes.
  uint64_t freshness_us = 0;
  /// p95 of the per-source end-to-end latency histogram
  /// (`geostreams_e2e_latency_us{stage="total",source=...}`); 0
  /// without a registry or observations.
  uint64_t e2e_p95_us = 0;
  bool durable = false;          // a journal gates the acks
  bool quarantined = false;
  bool ended = false;            // StreamEnd delivered
  bool storage_degraded = false; // governor refusing writes (disk pressure)
};

class IngestSession {
 public:
  /// `target` (the server's ingest sink for `source`) is not owned
  /// and must outlive the session.
  IngestSession(std::string source, EventSink* target,
                IngestSessionOptions options);

  const std::string& source() const { return source_; }

  /// A producer attached (or re-attached after reconnect). Returns
  /// the next expected sequence number, from which the producer must
  /// (re)send.
  uint64_t Attach();

  /// Handles one sequenced message and returns the response line to
  /// send back ("ACK <source> <n>" or "NACK <source> <seq> <Code>
  /// <detail>").
  std::string Handle(const IngestMessage& message);

  /// Records liveness without data (the producer's PING).
  void Touch();

  /// Liveness check, run periodically by the owner. When the idle
  /// timeout has newly expired this quarantines the session and
  /// returns the error to record (e.g. into the source's dead-letter
  /// queue); returns OK otherwise.
  Status CheckLiveness();

  /// Admin un-quarantine (`RESTART <source>`): clears the error and
  /// re-arms the idle clock.
  void Unquarantine();

  IngestSessionStats Stats() const;
  /// The ISTATS command's value part.
  std::string StatsLine() const;

 private:
  using Clock = std::chrono::steady_clock;

  std::string Ack(uint64_t upto) const;
  std::string Nack(uint64_t seq, const Status& status) const;
  /// Nack() plus burst accounting: a run of `nack_burst_events`
  /// consecutive refusals records one flight-recorder event.
  std::string NackTrackedLocked(uint64_t seq, const Status& status);

  /// Appends `message` to the journal (no-op without one). Must
  /// succeed before any path advances expected_ / acks.
  Status JournalLocked(const IngestMessage& message);
  /// Token-bucket admission for a batch of `bytes`; true = admitted.
  bool ConsumeBudgetLocked(uint64_t bytes);
  uint64_t NowMsLocked() const;

  const std::string source_;
  EventSink* target_;
  const IngestSessionOptions options_;

  mutable std::mutex mu_;
  uint64_t expected_ = 1;
  bool attached_ever_ = false;
  bool ended_ = false;
  bool quarantined_ = false;
  Status quarantine_error_ = Status::OK();
  Clock::time_point last_activity_ = Clock::now();
  IngestSessionStats stats_;
  uint64_t budget_tokens_ = 0;       // bytes currently admissible
  uint64_t budget_refilled_ms_ = 0;  // last refill timestamp
  /// Wall clock (epoch us) anchoring the newest delivered FrameEnd
  /// (its capture stamp when the producer sent one, else admission).
  uint64_t last_frame_wall_us_ = 0;
  uint64_t consecutive_nacks_ = 0;

  /// Registry counters labeled {source=...}; null when no registry
  /// was supplied. Incremented on the Handle path (relaxed atomics).
  Counter* m_acks_ = nullptr;
  Counter* m_nacks_ = nullptr;
  Counter* m_replays_ = nullptr;
  Counter* m_gaps_ = nullptr;
  Counter* m_delivered_ = nullptr;
  Counter* m_shed_events_ = nullptr;
  Counter* m_shed_points_ = nullptr;
  Counter* m_shed_bytes_ = nullptr;
  /// End-to-end total-latency histogram whose p95 ISTATS reports
  /// (observed by the delivery plane; the scrape-time freshness gauge
  /// lives in the server's collector).
  MetricHistogram* m_e2e_total_ = nullptr;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_INGEST_SESSION_H_
