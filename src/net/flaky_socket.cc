#include "net/flaky_socket.h"

#include <algorithm>
#include <cstring>

#include "common/math_util.h"
#include "net/socket_util.h"

namespace geostreams {

namespace {

/// Distinct hash streams per fault kind so enabling one fault never
/// shifts another's schedule.
constexpr uint64_t kPartialStream = 0x70617274;  // 'part'
constexpr uint64_t kCorruptStream = 0x636f7272;  // 'corr'
constexpr uint64_t kResetStream = 0x72736574;    // 'rset'
constexpr uint64_t kDropStream = 0x64726f70;     // 'drop'
constexpr uint64_t kDelayStream = 0x646c6179;    // 'dlay'

}  // namespace

FlakySocket::FlakySocket(int fd, FlakySocketOptions options)
    : fd_(fd), options_(options) {}

FlakySocket::~FlakySocket() { Close(); }

bool FlakySocket::Roll(uint64_t stream, uint64_t counter, double p) const {
  if (p <= 0.0) return false;
  return HashToUnit(Mix64(options_.seed * 0x9E3779B97F4A7C15ULL + stream) ^
                    Mix64(counter + 1)) < p;
}

Status FlakySocket::Write(const uint8_t* data, size_t len) {
  if (broken_ || fd_ < 0) {
    return Status::Unavailable("flaky socket: connection reset");
  }
  const uint64_t op = stats_.writes++;
  std::vector<uint8_t> scratch;
  if (Roll(kCorruptStream, op, options_.corrupt_write_p) && len > 0) {
    ++stats_.corrupted_writes;
    scratch.assign(data, data + len);
    // Flip one deterministic byte — enough to fail the payload CRC
    // (or, if it lands in the header, the magic/length validation).
    scratch[Mix64(options_.seed ^ op) % scratch.size()] ^= 0x20;
    data = scratch.data();
  }
  if (Roll(kResetStream, op, options_.reset_write_p)) {
    // Send a prefix so the peer is left holding a truncated frame,
    // then kill the connection for real.
    ++stats_.resets;
    const size_t prefix = len / 2;
    if (prefix > 0) {
      Status ignored = WriteAll(fd_, data, prefix);
      (void)ignored;
    }
    ShutdownFd(fd_);
    broken_ = true;
    return Status::Unavailable("flaky socket: injected connection reset");
  }
  if (Roll(kPartialStream, op, options_.partial_write_p) && len > 1) {
    // Split the buffer: send a short prefix, then the remainder in a
    // separate syscall. The peer sees two TCP segments and must
    // reassemble mid-frame.
    ++stats_.partial_writes;
    const size_t prefix = 1 + Mix64(options_.seed + op) % (len - 1);
    GEOSTREAMS_RETURN_IF_ERROR(WriteAll(fd_, data, prefix));
    return WriteAll(fd_, data + prefix, len - prefix);
  }
  return WriteAll(fd_, data, len);
}

Result<size_t> FlakySocket::Read(uint8_t* buf, size_t len) {
  if (fd_ < 0) return Status::Unavailable("flaky socket: closed");
  if (!delayed_.empty()) {
    const size_t n = std::min(len, delayed_.size());
    std::memcpy(buf, delayed_.data(), n);
    delayed_.erase(delayed_.begin(),
                   delayed_.begin() + static_cast<ptrdiff_t>(n));
    return n;
  }
  for (;;) {
    const uint64_t op = stats_.reads++;
    GEOSTREAMS_ASSIGN_OR_RETURN(size_t n, ReadSome(fd_, buf, len));
    if (n == 0) return n;  // EOF is never injected away
    if (Roll(kDropStream, op, options_.drop_read_p)) {
      // Swallow the chunk (a lost ack batch). Loop for more data; if
      // none is pending the caller's poll loop supplies the waiting.
      ++stats_.dropped_reads;
      GEOSTREAMS_ASSIGN_OR_RETURN(bool readable,
                                  geostreams::PollReadable(fd_, 0));
      if (!readable) return Status::Unavailable(
          "flaky socket: chunk dropped, no more data pending");
      continue;
    }
    if (Roll(kDelayStream, op, options_.delay_read_p)) {
      // Hold this chunk; it is delivered in front of the next read.
      ++stats_.delayed_reads;
      delayed_.assign(buf, buf + n);
      GEOSTREAMS_ASSIGN_OR_RETURN(bool readable,
                                  geostreams::PollReadable(fd_, 0));
      if (!readable) {
        // Nothing newer to reorder against: deliver it now after all.
        delayed_.clear();
        return n;
      }
      GEOSTREAMS_ASSIGN_OR_RETURN(size_t m, ReadSome(fd_, buf, len));
      if (m == 0) {
        delayed_.clear();
        return n;  // peer closed; deliver the held chunk as-is
      }
      // `buf` now holds the newer chunk; the held one follows on the
      // next Read call.
      return m;
    }
    return n;
  }
}

Result<bool> FlakySocket::PollReadable(int timeout_ms) {
  if (!delayed_.empty()) return true;
  if (fd_ < 0) return Status::Unavailable("flaky socket: closed");
  return geostreams::PollReadable(fd_, timeout_ms);
}

void FlakySocket::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

}  // namespace geostreams
