// Wire framing for streaming result delivery.
//
// The network boundary speaks two planes over one TCP connection:
// a line-based text control plane (commands and their "OK ..."/"ERR
// ..." responses) and a binary data plane carrying query result
// frames. Binary messages are self-delimiting and integrity-checked:
//
//   header (16 bytes)
//     0   magic        "GSF1"
//     4   type         u8   (MessageType)
//     5   flags        u8   (kFlagPng: payload is PNG, not doubles)
//     6   version      u16  LE (kWireVersion)
//     8   payload_len  u32  LE
//     12  payload_crc  u32  LE (CRC-32 of the payload bytes)
//
//   result-frame payload (preamble, 28 bytes)
//     0   query_id     i64  LE
//     8   frame_id     i64  LE
//     16  width        u32  LE
//     20  height       u32  LE
//     24  bands        u16  LE
//     26  reserved     u16
//   followed by width*height*bands doubles (LE bit patterns), or by
//   PNG bytes when kFlagPng is set.
//
//   ingest payload (kIngest — producer -> server)
//     0   source_len   u16  LE
//     2   source       source_len bytes (stream name)
//         seq          u64  LE   per-source monotonic sequence number
//         capture_us   u64  LE   only when kFlagCaptureTs is set:
//                                producer wall clock (Unix epoch us)
//                                at send — the first frame-lifecycle
//                                latency anchor. Optional and
//                                backward compatible: old producers
//                                never set the flag, and decoders
//                                only read the field when it is set.
//         event_kind   u8        (EventKind)
//     followed by the kind-specific event body:
//       kFrameBegin / kFrameEnd:
//         frame_id i64, expected_points i64, crs_len u16, crs bytes,
//         origin_x/origin_y/dx/dy f64, width i64, height i64
//       kPointBatch:
//         frame_id i64, band_count u32, checksum u64 (FNV-1a or 0),
//         n u32, cols n*i32, rows n*i32, timestamps n*i64,
//         values n*band_count*f64
//       kStreamEnd: empty
//
// The two planes demultiplex on the first byte: no text response
// begins with 'G' (responses start "OK "/"ERR "/"DL "/"ACK "/"NACK "),
// so a leading 'G' always opens a binary header. Decoding is strict —
// truncated, magic-less, oversized, or checksum-failing input yields
// InvalidArgument, never a crash or a silent partial frame.

#ifndef GEOSTREAMS_NET_WIRE_PROTOCOL_H_
#define GEOSTREAMS_NET_WIRE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/stream_event.h"
#include "raster/raster.h"

namespace geostreams {

inline constexpr char kWireMagic[4] = {'G', 'S', 'F', '1'};
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kWireHeaderSize = 16;
inline constexpr size_t kFramePreambleSize = 28;
/// Upper bound on one payload; larger lengths are treated as garbage
/// (a desynchronized or hostile peer must not drive allocation).
inline constexpr uint32_t kMaxWirePayload = 256u << 20;

enum class MessageType : uint8_t {
  kResultFrame = 1,
  kIngest = 2,
};

/// Source names longer than this are rejected (they share the wire
/// with attacker-controllable length fields).
inline constexpr size_t kMaxIngestSourceLen = 256;

inline constexpr uint8_t kFlagPng = 0x1;
/// kIngest only: the payload carries a producer capture timestamp
/// (u64 wall-clock microseconds) between `seq` and `event_kind`.
inline constexpr uint8_t kFlagCaptureTs = 0x2;

/// One decoded result frame.
struct FrameMessage {
  int64_t query_id = 0;
  int64_t frame_id = 0;
  uint32_t width = 0;
  uint32_t height = 0;
  uint16_t bands = 1;
  bool png = false;
  /// Raw samples, band-interleaved, width*height*bands (when !png).
  std::vector<double> samples;
  /// PNG bytes (when png).
  std::vector<uint8_t> png_bytes;
};

/// Encodes a complete message (header + payload) ready for the wire.
std::vector<uint8_t> EncodeFrameMessage(const FrameMessage& message);

/// Convenience: builds the message for one delivered frame. When
/// `png` is non-empty it is shipped as-is (kFlagPng); otherwise the
/// raster's raw samples are.
std::vector<uint8_t> EncodeResultFrame(int64_t query_id, int64_t frame_id,
                                       const Raster& raster,
                                       const std::vector<uint8_t>& png);

/// Decodes one complete message (header + payload). Strict: anything
/// malformed — short buffer, bad magic, unknown type/version, length
/// over kMaxWirePayload, CRC mismatch, truncated or trailing bytes —
/// is InvalidArgument.
Result<FrameMessage> DecodeFrameMessage(const uint8_t* data, size_t len);

/// One sequenced ingest event from a producer: which source stream it
/// belongs to, its per-source monotonic sequence number, and the
/// StreamEvent it carries. The ingest plane's unit of ack/replay.
struct IngestMessage {
  std::string source;
  uint64_t seq = 0;
  /// Producer wall clock (Unix epoch microseconds) when the event was
  /// published; 0 = producer did not stamp one (old producer, or
  /// timestamps disabled). Carried on the wire only under
  /// kFlagCaptureTs, so unstamped messages cost no extra bytes.
  uint64_t capture_wall_us = 0;
  StreamEvent event;
};

/// Encodes a complete kIngest message (header + payload).
std::vector<uint8_t> EncodeIngestMessage(const IngestMessage& message);

/// Decodes one complete kIngest message. Strict, like
/// DecodeFrameMessage; lattice CRS names are resolved through the
/// global registry, so an unknown CRS is InvalidArgument too.
Result<IngestMessage> DecodeIngestMessage(const uint8_t* data, size_t len);

/// Incremental decoder over a byte stream that interleaves text lines
/// and binary messages (the client side of one connection). Feed()
/// appends received bytes; Next() pulls decoded units in order.
class FrameDecoder {
 public:
  /// One demultiplexed unit: exactly one of `frame` / `ingest` /
  /// `line` is set.
  struct Unit {
    std::optional<FrameMessage> frame;
    std::optional<IngestMessage> ingest;
    std::optional<std::string> line;
  };

  void Feed(const uint8_t* data, size_t len);

  /// Next complete unit; nullopt when more bytes are needed. A
  /// malformed binary message poisons the stream: the error is
  /// returned now and on every later call (framing is lost for good).
  Result<std::optional<Unit>> Next();

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void Compact();

  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  Status poisoned_ = Status::OK();
};

}  // namespace geostreams

#endif  // GEOSTREAMS_NET_WIRE_PROTOCOL_H_
