#include "core/value.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace geostreams {

size_t SampleTypeSize(SampleType t) {
  switch (t) {
    case SampleType::kUInt8:
      return 1;
    case SampleType::kUInt16:
    case SampleType::kInt16:
      return 2;
    case SampleType::kFloat32:
      return 4;
    case SampleType::kFloat64:
      return 8;
  }
  return 8;
}

const char* SampleTypeName(SampleType t) {
  switch (t) {
    case SampleType::kUInt8:
      return "u8";
    case SampleType::kUInt16:
      return "u16";
    case SampleType::kInt16:
      return "i16";
    case SampleType::kFloat32:
      return "f32";
    case SampleType::kFloat64:
      return "f64";
  }
  return "?";
}

ValueSet::ValueSet(std::string name, SampleType sample_type, int bands,
                   double min_value, double max_value)
    : name_(std::move(name)),
      sample_type_(sample_type),
      bands_(bands),
      min_value_(min_value),
      max_value_(max_value) {}

ValueSet ValueSet::GrayscaleU8() {
  return ValueSet("grayscale", SampleType::kUInt8, 1, 0.0, 255.0);
}
ValueSet ValueSet::RgbU8() {
  return ValueSet("rgb", SampleType::kUInt8, 3, 0.0, 255.0);
}
ValueSet ValueSet::RadianceF32() {
  return ValueSet("radiance", SampleType::kFloat32, 1, 0.0, 1000.0);
}
ValueSet ValueSet::ReflectanceF32() {
  return ValueSet("reflectance", SampleType::kFloat32, 1, 0.0, 1.0);
}
ValueSet ValueSet::IndexF32() {
  return ValueSet("index", SampleType::kFloat32, 1, -1.0, 1.0);
}
ValueSet ValueSet::CountsU16() {
  return ValueSet("counts", SampleType::kUInt16, 1, 0.0, 65535.0);
}

Status ValueSet::Validate() const {
  if (bands_ < 1 || bands_ > kMaxBands) {
    return Status::InvalidArgument(
        StringPrintf("band count %d outside [1, %d]", bands_, kMaxBands));
  }
  if (!(min_value_ <= max_value_)) {
    return Status::InvalidArgument(
        StringPrintf("value range [%g, %g] is empty", min_value_,
                     max_value_));
  }
  return Status::OK();
}

double ValueSet::Clamp(double v) const {
  if (std::isnan(v)) return min_value_;
  return std::min(std::max(v, min_value_), max_value_);
}

bool ValueSet::operator==(const ValueSet& other) const {
  return name_ == other.name_ && sample_type_ == other.sample_type_ &&
         bands_ == other.bands_ && min_value_ == other.min_value_ &&
         max_value_ == other.max_value_;
}

std::string ValueSet::ToString() const {
  return StringPrintf("%s(%s x%d, [%g, %g])", name_.c_str(),
                      SampleTypeName(sample_type_), bands_, min_value_,
                      max_value_);
}

bool BandValue::operator==(const BandValue& o) const {
  if (bands != o.bands) return false;
  for (int i = 0; i < bands; ++i) {
    if (samples[static_cast<size_t>(i)] != o.samples[static_cast<size_t>(i)])
      return false;
  }
  return true;
}

const char* ComposeFnName(ComposeFn fn) {
  switch (fn) {
    case ComposeFn::kAdd:
      return "+";
    case ComposeFn::kSubtract:
      return "-";
    case ComposeFn::kMultiply:
      return "*";
    case ComposeFn::kDivide:
      return "/";
    case ComposeFn::kSupremum:
      return "sup";
    case ComposeFn::kInfimum:
      return "inf";
  }
  return "?";
}

double ApplyComposeFn(ComposeFn fn, double a, double b) {
  switch (fn) {
    case ComposeFn::kAdd:
      return a + b;
    case ComposeFn::kSubtract:
      return a - b;
    case ComposeFn::kMultiply:
      return a * b;
    case ComposeFn::kDivide:
      if (b == 0.0) {
        if (a == 0.0) return 0.0;
        return a > 0.0 ? std::numeric_limits<double>::max()
                       : std::numeric_limits<double>::lowest();
      }
      return a / b;
    case ComposeFn::kSupremum:
      return std::max(a, b);
    case ComposeFn::kInfimum:
      return std::min(a, b);
  }
  return 0.0;
}

}  // namespace geostreams
