// GeoStream descriptors (Definitions 3-5).
//
// A GeoStream is a V-valued function over a point lattice X = S x T
// whose spatial component carries a coordinate system. The descriptor
// is the schema of such a stream: its value set, reference lattice
// (CRS + resolution + nominal extent), point organization, and
// timestamping policy. Operators consume and produce descriptors so
// the query analyzer can check CRS/value-set preconditions and the
// algebra stays closed.

#ifndef GEOSTREAMS_CORE_GEOSTREAM_H_
#define GEOSTREAMS_CORE_GEOSTREAM_H_

#include <string>

#include "common/status.h"
#include "core/stream_event.h"
#include "core/value.h"
#include "geo/lattice.h"

namespace geostreams {

/// Schema of a GeoStream.
class GeoStreamDescriptor {
 public:
  GeoStreamDescriptor() = default;
  GeoStreamDescriptor(std::string name, ValueSet value_set,
                      GridLattice reference_lattice,
                      PointOrganization organization,
                      TimestampPolicy timestamp_policy);

  Status Validate() const;

  const std::string& name() const { return name_; }
  const ValueSet& value_set() const { return value_set_; }
  /// The nominal full-coverage lattice of the instrument (individual
  /// frames scan sub-lattices of it, aligned with it).
  const GridLattice& reference_lattice() const { return reference_lattice_; }
  const CrsPtr& crs() const { return reference_lattice_.crs(); }
  PointOrganization organization() const { return organization_; }
  TimestampPolicy timestamp_policy() const { return timestamp_policy_; }

  /// Returns a copy with a different name (operators derive output
  /// descriptors from input ones).
  GeoStreamDescriptor WithName(std::string name) const;
  GeoStreamDescriptor WithValueSet(ValueSet vs) const;
  GeoStreamDescriptor WithLattice(GridLattice lattice) const;
  GeoStreamDescriptor WithOrganization(PointOrganization org) const;

  std::string ToString() const;

 private:
  std::string name_;
  ValueSet value_set_;
  GridLattice reference_lattice_;
  PointOrganization organization_ = PointOrganization::kRowByRow;
  TimestampPolicy timestamp_policy_ = TimestampPolicy::kScanSectorId;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_CORE_GEOSTREAM_H_
