#include "core/stream_event.h"

#include "common/string_util.h"

namespace geostreams {

const char* PointOrganizationName(PointOrganization org) {
  switch (org) {
    case PointOrganization::kImageByImage:
      return "image-by-image";
    case PointOrganization::kRowByRow:
      return "row-by-row";
    case PointOrganization::kPointByPoint:
      return "point-by-point";
  }
  return "?";
}

const char* TimestampPolicyName(TimestampPolicy policy) {
  switch (policy) {
    case TimestampPolicy::kMeasurementTime:
      return "measurement-time";
    case TimestampPolicy::kScanSectorId:
      return "scan-sector-id";
  }
  return "?";
}

std::string FrameInfo::ToString() const {
  return StringPrintf("frame %lld %s expected=%lld",
                      static_cast<long long>(frame_id),
                      lattice.ToString().c_str(),
                      static_cast<long long>(expected_points));
}

void PointBatch::Append(int32_t col, int32_t row, int64_t t,
                        const double* vals) {
  cols.push_back(col);
  rows.push_back(row);
  timestamps.push_back(t);
  values.insert(values.end(), vals, vals + band_count);
}

void PointBatch::Append1(int32_t col, int32_t row, int64_t t, double v) {
  cols.push_back(col);
  rows.push_back(row);
  timestamps.push_back(t);
  values.push_back(v);
}

uint64_t PointBatch::ComputeChecksum() const {
  // FNV-1a over the logical content (not vector capacities), so a
  // copied batch hashes identically and any flipped payload byte is
  // detected downstream.
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](const void* data, size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(&frame_id, sizeof(frame_id));
  mix(&band_count, sizeof(band_count));
  mix(cols.data(), cols.size() * sizeof(int32_t));
  mix(rows.data(), rows.size() * sizeof(int32_t));
  mix(timestamps.data(), timestamps.size() * sizeof(int64_t));
  mix(values.data(), values.size() * sizeof(double));
  return h == 0 ? 1 : h;  // 0 is reserved for "unset"
}

size_t PointBatch::ApproxBytes() const {
  return cols.capacity() * sizeof(int32_t) +
         rows.capacity() * sizeof(int32_t) +
         timestamps.capacity() * sizeof(int64_t) +
         values.capacity() * sizeof(double);
}

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kFrameBegin:
      return "FrameBegin";
    case EventKind::kPointBatch:
      return "PointBatch";
    case EventKind::kFrameEnd:
      return "FrameEnd";
    case EventKind::kStreamEnd:
      return "StreamEnd";
  }
  return "?";
}

StreamEvent StreamEvent::FrameBegin(FrameInfo info) {
  StreamEvent e;
  e.kind = EventKind::kFrameBegin;
  e.frame = std::move(info);
  return e;
}

StreamEvent StreamEvent::Batch(PointBatchPtr batch) {
  StreamEvent e;
  e.kind = EventKind::kPointBatch;
  e.batch = std::move(batch);
  return e;
}

StreamEvent StreamEvent::FrameEnd(FrameInfo info) {
  StreamEvent e;
  e.kind = EventKind::kFrameEnd;
  e.frame = std::move(info);
  return e;
}

StreamEvent StreamEvent::StreamEnd() {
  StreamEvent e;
  e.kind = EventKind::kStreamEnd;
  return e;
}

std::string StreamEvent::ToString() const {
  switch (kind) {
    case EventKind::kFrameBegin:
      return std::string("FrameBegin{") + frame.ToString() + "}";
    case EventKind::kPointBatch:
      return StringPrintf("PointBatch{frame=%lld, n=%zu}",
                          batch ? static_cast<long long>(batch->frame_id) : -1,
                          batch ? batch->size() : 0);
    case EventKind::kFrameEnd:
      return StringPrintf("FrameEnd{frame=%lld}",
                          static_cast<long long>(frame.frame_id));
    case EventKind::kStreamEnd:
      return "StreamEnd{}";
  }
  return "?";
}

}  // namespace geostreams
