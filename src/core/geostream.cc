#include "core/geostream.h"

#include "common/string_util.h"

namespace geostreams {

GeoStreamDescriptor::GeoStreamDescriptor(std::string name, ValueSet value_set,
                                         GridLattice reference_lattice,
                                         PointOrganization organization,
                                         TimestampPolicy timestamp_policy)
    : name_(std::move(name)),
      value_set_(std::move(value_set)),
      reference_lattice_(std::move(reference_lattice)),
      organization_(organization),
      timestamp_policy_(timestamp_policy) {}

Status GeoStreamDescriptor::Validate() const {
  if (name_.empty()) {
    return Status::InvalidArgument("stream name must not be empty");
  }
  GEOSTREAMS_RETURN_IF_ERROR(value_set_.Validate());
  GEOSTREAMS_RETURN_IF_ERROR(reference_lattice_.Validate());
  return Status::OK();
}

GeoStreamDescriptor GeoStreamDescriptor::WithName(std::string name) const {
  GeoStreamDescriptor d = *this;
  d.name_ = std::move(name);
  return d;
}

GeoStreamDescriptor GeoStreamDescriptor::WithValueSet(ValueSet vs) const {
  GeoStreamDescriptor d = *this;
  d.value_set_ = std::move(vs);
  return d;
}

GeoStreamDescriptor GeoStreamDescriptor::WithLattice(
    GridLattice lattice) const {
  GeoStreamDescriptor d = *this;
  d.reference_lattice_ = std::move(lattice);
  return d;
}

GeoStreamDescriptor GeoStreamDescriptor::WithOrganization(
    PointOrganization org) const {
  GeoStreamDescriptor d = *this;
  d.organization_ = org;
  return d;
}

std::string GeoStreamDescriptor::ToString() const {
  return StringPrintf("geostream(%s: %s, %s, %s, %s)", name_.c_str(),
                      value_set_.ToString().c_str(),
                      reference_lattice_.ToString().c_str(),
                      PointOrganizationName(organization_),
                      TimestampPolicyName(timestamp_policy_));
}

}  // namespace geostreams
