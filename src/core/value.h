// Value sets (Definition 2) and point values.
//
// A value set is a homogeneous algebra: a set of values together with
// operations. Here a ValueSet describes the sample type, band count
// and valid range of a stream's values; point values themselves are
// small fixed-capacity band vectors (grey-scale Z, colour Z^3,
// multi-spectral Z^n, or floating-point radiances).

#ifndef GEOSTREAMS_CORE_VALUE_H_
#define GEOSTREAMS_CORE_VALUE_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace geostreams {

/// Storage/sample type of a value set.
enum class SampleType : uint8_t {
  kUInt8,
  kUInt16,
  kInt16,
  kFloat32,
  kFloat64,
};

/// Size of one sample in bytes (the physical width used for memory
/// accounting in buffering operators).
size_t SampleTypeSize(SampleType t);
const char* SampleTypeName(SampleType t);

/// Maximum number of spectral bands carried per point. GOES-class
/// imagers have 5-16 channels, but a single GeoStream in the paper's
/// model carries one spectral band; multi-band values arise from
/// compositions and colour products.
inline constexpr int kMaxBands = 8;

/// Descriptor of a value set V: what values a stream's points map to.
class ValueSet {
 public:
  ValueSet() = default;
  ValueSet(std::string name, SampleType sample_type, int bands,
           double min_value, double max_value);

  /// Common instances.
  static ValueSet GrayscaleU8();       // Z, [0, 255]
  static ValueSet RgbU8();             // Z^3, [0, 255] per band
  static ValueSet RadianceF32();       // R, raw sensor radiance
  static ValueSet ReflectanceF32();    // R, [0, 1]
  static ValueSet IndexF32();          // R, [-1, 1] (NDVI-style indices)
  static ValueSet CountsU16();         // Z, [0, 65535] sensor counts

  Status Validate() const;

  const std::string& name() const { return name_; }
  SampleType sample_type() const { return sample_type_; }
  int bands() const { return bands_; }
  double min_value() const { return min_value_; }
  double max_value() const { return max_value_; }

  /// Bytes occupied by one point value in this value set.
  size_t BytesPerPoint() const {
    return SampleTypeSize(sample_type_) * static_cast<size_t>(bands_);
  }

  bool InRange(double v) const { return v >= min_value_ && v <= max_value_; }

  /// Clamps v into the value range (used after arithmetic compositions
  /// to keep the algebra closed over the declared value set).
  double Clamp(double v) const;

  /// Two value sets are compatible for composition when band counts
  /// match (Definition 10 requires both streams over the same V).
  bool CompatibleWith(const ValueSet& other) const {
    return bands_ == other.bands_;
  }

  bool operator==(const ValueSet& other) const;

  std::string ToString() const;

 private:
  std::string name_ = "empty";
  SampleType sample_type_ = SampleType::kFloat64;
  int bands_ = 1;
  double min_value_ = 0.0;
  double max_value_ = 0.0;
};

/// A point value: up to kMaxBands samples. Plain value type.
struct BandValue {
  std::array<double, kMaxBands> samples{};
  int bands = 1;

  BandValue() = default;
  explicit BandValue(double v) : bands(1) { samples[0] = v; }
  BandValue(double a, double b, double c) : bands(3) {
    samples[0] = a;
    samples[1] = b;
    samples[2] = c;
  }

  double& operator[](int i) { return samples[static_cast<size_t>(i)]; }
  double operator[](int i) const { return samples[static_cast<size_t>(i)]; }

  bool operator==(const BandValue& o) const;
};

/// The composition operators gamma of Definition 10.
enum class ComposeFn : uint8_t {
  kAdd,       // +
  kSubtract,  // -
  kMultiply,  // *
  kDivide,    // / (0/0 -> 0, x/0 -> clamped extreme)
  kSupremum,  // max
  kInfimum,   // min
};

const char* ComposeFnName(ComposeFn fn);

/// Applies gamma bandwise to a pair of samples.
double ApplyComposeFn(ComposeFn fn, double a, double b);

}  // namespace geostreams

#endif  // GEOSTREAMS_CORE_VALUE_H_
