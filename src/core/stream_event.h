// The on-the-wire representation of a GeoStream (Definition 3).
//
// A stream G : X -> V arrives as a sequence of events: frame
// boundaries carrying scan-sector metadata (the lattice geometry of
// the sector being scanned, which Sec. 3.2 notes is what lets
// buffering operators bound their state), and batches of points.
// Points carry lattice cell addresses, a timestamp (measurement time
// or scan-sector identifier, Sec. 3.3), and band-interleaved values.

#ifndef GEOSTREAMS_CORE_STREAM_EVENT_H_
#define GEOSTREAMS_CORE_STREAM_EVENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "geo/lattice.h"

namespace geostreams {

class TraceContext;

/// Point-set organizations of Figure 1.
enum class PointOrganization : uint8_t {
  kImageByImage,  // airborne frame cameras: whole frames at a time
  kRowByRow,      // satellite scanners: one scan line at a time
  kPointByPoint,  // LIDAR-like: individual time-ordered points
};

const char* PointOrganizationName(PointOrganization org);

/// How point timestamps are assigned (Sec. 3.3): per-point measurement
/// time (under which compositions never match) or the scan-sector
/// identifier shared by all bands of one scan.
enum class TimestampPolicy : uint8_t {
  kMeasurementTime,
  kScanSectorId,
};

const char* TimestampPolicyName(TimestampPolicy policy);

/// Metadata describing one frame (scan sector): its id, the lattice
/// region being scanned, and where it sits in the stream.
struct FrameInfo {
  /// Scan-sector identifier; doubles as the frame's logical timestamp.
  int64_t frame_id = 0;
  /// Geometry of the sector being scanned. The operator implementations
  /// use this to bound their buffers (Sec. 3.2).
  GridLattice lattice;
  /// Number of points the sector will deliver (0 when unknown, e.g.
  /// point-by-point instruments).
  int64_t expected_points = 0;

  std::string ToString() const;
};

/// A batch of points, structure-of-arrays. All vectors have equal
/// length; `values` holds band_count samples per point, interleaved.
/// Batches are immutable after construction and shared between
/// consumers without copying.
struct PointBatch {
  int64_t frame_id = 0;
  int band_count = 1;
  std::vector<int32_t> cols;
  std::vector<int32_t> rows;
  std::vector<int64_t> timestamps;
  std::vector<double> values;
  /// FNV-1a digest over the point data, attached by instruments that
  /// checksum their downlink. 0 means "no checksum attached";
  /// ComputeChecksum never returns 0.
  uint64_t checksum = 0;

  size_t size() const { return cols.size(); }
  bool empty() const { return cols.empty(); }

  /// Digest of frame_id, band_count and all point arrays. Deterministic
  /// across runs; never 0 (0 is reserved for "unset").
  uint64_t ComputeChecksum() const;

  /// True when no checksum is attached or the attached one matches.
  bool ChecksumValid() const {
    return checksum == 0 || checksum == ComputeChecksum();
  }

  /// Value of band b at point index i.
  double ValueAt(size_t i, int b = 0) const {
    return values[i * static_cast<size_t>(band_count) +
                  static_cast<size_t>(b)];
  }

  void Reserve(size_t n) {
    cols.reserve(n);
    rows.reserve(n);
    timestamps.reserve(n);
    values.reserve(n * static_cast<size_t>(band_count));
  }

  /// Appends one point. `vals` must contain band_count samples.
  void Append(int32_t col, int32_t row, int64_t t, const double* vals);
  void Append1(int32_t col, int32_t row, int64_t t, double v);

  /// Approximate heap footprint in bytes (for memory accounting).
  size_t ApproxBytes() const;
};

using PointBatchPtr = std::shared_ptr<const PointBatch>;

enum class EventKind : uint8_t {
  kFrameBegin,
  kPointBatch,
  kFrameEnd,
  kStreamEnd,
};

const char* EventKindName(EventKind kind);

/// Frame-lifecycle wall-clock anchors (Unix epoch microseconds, 0 =
/// not stamped), set by the ingest plane as an event crosses each
/// boundary and copied onto a sampled trace at birth. Durations are
/// only ever computed between two anchors, never against the steady
/// clock.
struct StageAnchors {
  uint64_t capture_wall_us = 0;  // producer send (from the wire)
  uint64_t admit_wall_us = 0;    // ingest admission
  uint64_t durable_wall_us = 0;  // journal write acknowledged
};

/// One element of the event sequence making up a GeoStream.
struct StreamEvent {
  EventKind kind = EventKind::kStreamEnd;
  /// Valid for kFrameBegin / kFrameEnd.
  FrameInfo frame;
  /// Valid for kPointBatch.
  PointBatchPtr batch;
  /// End-to-end latency anchors stamped by the ingest plane (all
  /// zero for events born inside the engine).
  StageAnchors anchors;
  /// Sampled pipeline trace riding this event across async queue
  /// boundaries (null = untraced, the common case; copying a null
  /// shared_ptr is free). Within a synchronous operator chain the
  /// thread-local ActiveTrace() is authoritative instead, because
  /// operators emit freshly-built events. See src/obs/trace.h.
  std::shared_ptr<TraceContext> trace;

  static StreamEvent FrameBegin(FrameInfo info);
  static StreamEvent Batch(PointBatchPtr batch);
  static StreamEvent FrameEnd(FrameInfo info);
  static StreamEvent StreamEnd();

  std::string ToString() const;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_CORE_STREAM_EVENT_H_
