// Axis-aligned bounding box in the coordinates of some CRS.

#ifndef GEOSTREAMS_GEO_BOUNDING_BOX_H_
#define GEOSTREAMS_GEO_BOUNDING_BOX_H_

#include <algorithm>
#include <limits>
#include <string>

#include "common/string_util.h"

namespace geostreams {

/// Closed axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
/// The default-constructed box is empty.
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  BoundingBox() = default;
  BoundingBox(double x0, double y0, double x1, double y1)
      : min_x(std::min(x0, x1)),
        min_y(std::min(y0, y1)),
        max_x(std::max(x0, x1)),
        max_y(std::max(y0, y1)) {}

  bool empty() const { return min_x > max_x || min_y > max_y; }
  double width() const { return empty() ? 0.0 : max_x - min_x; }
  double height() const { return empty() ? 0.0 : max_y - min_y; }
  double area() const { return width() * height(); }

  bool Contains(double x, double y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }

  bool Intersects(const BoundingBox& o) const {
    return !empty() && !o.empty() && min_x <= o.max_x && o.min_x <= max_x &&
           min_y <= o.max_y && o.min_y <= max_y;
  }

  bool ContainsBox(const BoundingBox& o) const {
    return !o.empty() && min_x <= o.min_x && max_x >= o.max_x &&
           min_y <= o.min_y && max_y >= o.max_y;
  }

  /// Grows this box to cover the point (x, y).
  void ExpandToInclude(double x, double y) {
    min_x = std::min(min_x, x);
    min_y = std::min(min_y, y);
    max_x = std::max(max_x, x);
    max_y = std::max(max_y, y);
  }

  void ExpandToInclude(const BoundingBox& o) {
    if (o.empty()) return;
    ExpandToInclude(o.min_x, o.min_y);
    ExpandToInclude(o.max_x, o.max_y);
  }

  BoundingBox Intersection(const BoundingBox& o) const {
    if (!Intersects(o)) return BoundingBox();
    BoundingBox r;
    r.min_x = std::max(min_x, o.min_x);
    r.min_y = std::max(min_y, o.min_y);
    r.max_x = std::min(max_x, o.max_x);
    r.max_y = std::min(max_y, o.max_y);
    return r;
  }

  bool operator==(const BoundingBox& o) const {
    return min_x == o.min_x && min_y == o.min_y && max_x == o.max_x &&
           max_y == o.max_y;
  }

  std::string ToString() const {
    if (empty()) return "bbox(empty)";
    return StringPrintf("bbox(%g, %g, %g, %g)", min_x, min_y, max_x, max_y);
  }
};

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_BOUNDING_BOX_H_
