#include "geo/transverse_mercator_crs.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

namespace {
constexpr double kA = Wgs84::kSemiMajorM;
constexpr double kE2 = Wgs84::kE2;
constexpr double kE4 = kE2 * kE2;
constexpr double kE6 = kE4 * kE2;
// Latitude band where the series expansion is well conditioned; UTM is
// specified for [-80, 84] so this is generous.
constexpr double kMaxAbsLatDeg = 89.0;
}  // namespace

TransverseMercatorCrs::TransverseMercatorCrs(std::string name,
                                             double central_meridian_deg,
                                             double scale_factor,
                                             double false_easting_m,
                                             double false_northing_m)
    : name_(std::move(name)),
      central_meridian_deg_(central_meridian_deg),
      k0_(scale_factor),
      false_easting_(false_easting_m),
      false_northing_(false_northing_m) {
  m0_coef_ = 1.0 - kE2 / 4.0 - 3.0 * kE4 / 64.0 - 5.0 * kE6 / 256.0;
  m2_coef_ = 3.0 * kE2 / 8.0 + 3.0 * kE4 / 32.0 + 45.0 * kE6 / 1024.0;
  m4_coef_ = 15.0 * kE4 / 256.0 + 45.0 * kE6 / 1024.0;
  m6_coef_ = 35.0 * kE6 / 3072.0;
  const double sqrt1me2 = std::sqrt(1.0 - kE2);
  e1_ = (1.0 - sqrt1me2) / (1.0 + sqrt1me2);
  ep2_ = kE2 / (1.0 - kE2);
}

CrsPtr TransverseMercatorCrs::Utm(int zone, bool northern) {
  const double cm = -183.0 + 6.0 * zone;
  std::string name = StringPrintf("utm:%d%c", zone, northern ? 'n' : 's');
  return std::make_shared<TransverseMercatorCrs>(
      std::move(name), cm, 0.9996, 500000.0, northern ? 0.0 : 10000000.0);
}

double TransverseMercatorCrs::MeridionalArc(double phi) const {
  return kA * (m0_coef_ * phi - m2_coef_ * std::sin(2.0 * phi) +
               m4_coef_ * std::sin(4.0 * phi) -
               m6_coef_ * std::sin(6.0 * phi));
}

Status TransverseMercatorCrs::FromGeographic(double lon_deg, double lat_deg,
                                             double* x, double* y) const {
  if (std::fabs(lat_deg) > kMaxAbsLatDeg) {
    return Status::OutOfRange(StringPrintf(
        "latitude %g outside transverse Mercator domain", lat_deg));
  }
  double dlon = WrapLongitudeDeg(lon_deg - central_meridian_deg_);
  if (std::fabs(dlon) > 30.0) {
    // Far outside the zone the series diverges; refuse instead of
    // returning garbage coordinates.
    return Status::OutOfRange(StringPrintf(
        "longitude %g too far from central meridian %g", lon_deg,
        central_meridian_deg_));
  }
  const double phi = DegreesToRadians(lat_deg);
  const double lam = DegreesToRadians(dlon);
  const double sin_phi = std::sin(phi);
  const double cos_phi = std::cos(phi);
  const double tan_phi = std::tan(phi);

  const double n = kA / std::sqrt(1.0 - kE2 * sin_phi * sin_phi);
  const double t = tan_phi * tan_phi;
  const double c = ep2_ * cos_phi * cos_phi;
  const double a_term = lam * cos_phi;
  const double a2 = a_term * a_term;
  const double a3 = a2 * a_term;
  const double a4 = a2 * a2;
  const double a5 = a4 * a_term;
  const double a6 = a4 * a2;
  const double m = MeridionalArc(phi);

  *x = false_easting_ +
       k0_ * n *
           (a_term + (1.0 - t + c) * a3 / 6.0 +
            (5.0 - 18.0 * t + t * t + 72.0 * c - 58.0 * ep2_) * a5 / 120.0);
  *y = false_northing_ +
       k0_ * (m + n * tan_phi *
                      (a2 / 2.0 + (5.0 - t + 9.0 * c + 4.0 * c * c) * a4 / 24.0 +
                       (61.0 - 58.0 * t + t * t + 600.0 * c - 330.0 * ep2_) *
                           a6 / 720.0));
  return Status::OK();
}

Status TransverseMercatorCrs::ToGeographic(double x, double y, double* lon_deg,
                                           double* lat_deg) const {
  const double m = (y - false_northing_) / k0_;
  const double mu = m / (kA * m0_coef_);
  const double e1 = e1_;
  const double e1_2 = e1 * e1;
  const double e1_3 = e1_2 * e1;
  const double e1_4 = e1_2 * e1_2;

  // Footpoint latitude.
  const double phi1 =
      mu + (3.0 * e1 / 2.0 - 27.0 * e1_3 / 32.0) * std::sin(2.0 * mu) +
      (21.0 * e1_2 / 16.0 - 55.0 * e1_4 / 32.0) * std::sin(4.0 * mu) +
      (151.0 * e1_3 / 96.0) * std::sin(6.0 * mu) +
      (1097.0 * e1_4 / 512.0) * std::sin(8.0 * mu);

  const double sin_phi1 = std::sin(phi1);
  const double cos_phi1 = std::cos(phi1);
  if (std::fabs(cos_phi1) < 1e-12) {
    return Status::OutOfRange("inverse transverse Mercator at the pole");
  }
  const double tan_phi1 = std::tan(phi1);
  const double c1 = ep2_ * cos_phi1 * cos_phi1;
  const double t1 = tan_phi1 * tan_phi1;
  const double sin2 = sin_phi1 * sin_phi1;
  const double n1 = kA / std::sqrt(1.0 - kE2 * sin2);
  const double r1 =
      kA * (1.0 - kE2) / std::pow(1.0 - kE2 * sin2, 1.5);
  const double d = (x - false_easting_) / (n1 * k0_);
  const double d2 = d * d;
  const double d3 = d2 * d;
  const double d4 = d2 * d2;
  const double d5 = d4 * d;
  const double d6 = d4 * d2;

  const double phi =
      phi1 -
      (n1 * tan_phi1 / r1) *
          (d2 / 2.0 -
           (5.0 + 3.0 * t1 + 10.0 * c1 - 4.0 * c1 * c1 - 9.0 * ep2_) * d4 /
               24.0 +
           (61.0 + 90.0 * t1 + 298.0 * c1 + 45.0 * t1 * t1 - 252.0 * ep2_ -
            3.0 * c1 * c1) *
               d6 / 720.0);
  const double lam =
      (d - (1.0 + 2.0 * t1 + c1) * d3 / 6.0 +
       (5.0 - 2.0 * c1 + 28.0 * t1 - 3.0 * c1 * c1 + 8.0 * ep2_ +
        24.0 * t1 * t1) *
           d5 / 120.0) /
      cos_phi1;

  *lat_deg = RadiansToDegrees(phi);
  *lon_deg = WrapLongitudeDeg(central_meridian_deg_ + RadiansToDegrees(lam));
  if (std::fabs(*lat_deg) > 90.0) {
    return Status::OutOfRange("inverse transverse Mercator out of domain");
  }
  return Status::OK();
}

}  // namespace geostreams
