#include "geo/crs_registry.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "common/math_util.h"

#include "common/string_util.h"
#include "geo/geographic_crs.h"
#include "geo/geostationary_crs.h"
#include "geo/lambert_conformal_crs.h"
#include "geo/mercator_crs.h"
#include "geo/transverse_mercator_crs.h"

namespace geostreams {

namespace {
std::mutex g_cache_mutex;
std::map<std::string, CrsPtr>& Cache() {
  static std::map<std::string, CrsPtr> cache;
  return cache;
}
}  // namespace

CrsRegistry& CrsRegistry::Global() {
  static CrsRegistry registry;
  return registry;
}

Result<CrsPtr> CrsRegistry::Resolve(std::string_view name) {
  const std::string key = ToLower(StripWhitespace(name));
  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    auto it = Cache().find(key);
    if (it != Cache().end()) return it->second;
  }

  CrsPtr crs;
  if (key == "latlon" || key == "geographic" || key == "lonlat") {
    crs = GeographicCrs::Instance();
  } else if (key == "mercator") {
    crs = MercatorCrs::Instance();
  } else if (StartsWith(key, "utm:")) {
    const std::string spec = key.substr(4);
    if (spec.size() < 2) {
      return Status::ParseError("utm spec must be <zone><n|s>: " + key);
    }
    const char hemi = spec.back();
    if (hemi != 'n' && hemi != 's') {
      return Status::ParseError("utm hemisphere must be n or s: " + key);
    }
    char* end = nullptr;
    const long zone = std::strtol(spec.c_str(), &end, 10);
    if (end != spec.c_str() + spec.size() - 1 || zone < 1 || zone > 60) {
      return Status::ParseError("utm zone must be 1..60: " + key);
    }
    crs = TransverseMercatorCrs::Utm(static_cast<int>(zone), hemi == 'n');
  } else if (key == "lcc" || key == "lcc:conus") {
    crs = LambertConformalCrs::Conus();
  } else if (StartsWith(key, "lcc:")) {
    // lcc:<lat1>:<lat2>:<lat0>:<lon0>
    const std::vector<std::string> parts = Split(key.substr(4), ':');
    if (parts.size() != 4) {
      return Status::ParseError(
          "lcc spec must be lcc:<lat1>:<lat2>:<lat0>:<lon0>: " + key);
    }
    double v[4];
    for (size_t i = 0; i < 4; ++i) {
      char* end = nullptr;
      v[i] = std::strtod(parts[i].c_str(), &end);
      if (end != parts[i].c_str() + parts[i].size()) {
        return Status::ParseError("bad lcc parameter: " + key);
      }
    }
    if (std::fabs(v[0]) >= 89.0 || std::fabs(v[1]) >= 89.0 ||
        NearlyEqual(v[0], -v[1])) {
      return Status::ParseError(
          "lcc standard parallels must be in (-89, 89) and not "
          "antisymmetric: " +
          key);
    }
    crs = std::make_shared<LambertConformalCrs>(v[0], v[1], v[2], v[3]);
  } else if (StartsWith(key, "geos:")) {
    const std::string spec = key.substr(5);
    char* end = nullptr;
    const double lon = std::strtod(spec.c_str(), &end);
    if (end != spec.c_str() + spec.size() || lon < -180.0 || lon > 180.0) {
      return Status::ParseError("geos longitude must be in [-180, 180]: " +
                                key);
    }
    crs = std::make_shared<GeostationaryCrs>(lon);
  } else {
    return Status::NotFound("unknown CRS: " + std::string(name));
  }

  std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto [it, inserted] = Cache().emplace(key, std::move(crs));
  (void)inserted;
  return it->second;
}

Result<CrsPtr> ResolveCrs(std::string_view name) {
  return CrsRegistry::Global().Resolve(name);
}

}  // namespace geostreams
