#include "geo/mercator_crs.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

MercatorCrs::MercatorCrs() : name_("mercator") {}

Status MercatorCrs::ToGeographic(double x, double y, double* lon_deg,
                                 double* lat_deg) const {
  const double r = Wgs84::kSemiMajorM;
  *lon_deg = RadiansToDegrees(x / r);
  *lat_deg = RadiansToDegrees(2.0 * std::atan(std::exp(y / r)) - kHalfPi);
  return Status::OK();
}

Status MercatorCrs::FromGeographic(double lon_deg, double lat_deg, double* x,
                                   double* y) const {
  if (std::fabs(lat_deg) > kMaxLatitudeDeg) {
    return Status::OutOfRange(StringPrintf(
        "latitude %g outside Mercator domain [-%g, %g]", lat_deg,
        kMaxLatitudeDeg, kMaxLatitudeDeg));
  }
  const double r = Wgs84::kSemiMajorM;
  *x = r * DegreesToRadians(lon_deg);
  const double phi = DegreesToRadians(lat_deg);
  *y = r * std::log(std::tan(kPi / 4.0 + phi / 2.0));
  return Status::OK();
}

CrsPtr MercatorCrs::Instance() {
  static CrsPtr instance = std::make_shared<MercatorCrs>();
  return instance;
}

}  // namespace geostreams
