// Spatial regions used by spatial restrictions (Definition 6).
//
// Section 3.1 of the paper lists three ways a restriction region R can
// be specified: (1) an enumeration of x,y pairs, (2) constraint-model
// polynomial inequalities on x and y, and (3) a bounding box given by
// two corner points. All three are implemented here, plus polygons
// and boolean composites, since derived regions arise during query
// rewriting.

#ifndef GEOSTREAMS_GEO_REGION_H_
#define GEOSTREAMS_GEO_REGION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "geo/bounding_box.h"

namespace geostreams {

enum class RegionKind {
  kBBox,
  kPolygon,
  kConstraint,
  kEnumerated,
  kUnion,
  kIntersection,
  kAll,
};

/// Immutable predicate over spatial coordinates (in the coordinates of
/// whatever CRS the enclosing operator declares).
class Region {
 public:
  virtual ~Region() = default;

  virtual RegionKind kind() const = 0;

  /// True when the point (x, y) belongs to the region.
  virtual bool Contains(double x, double y) const = 0;

  /// A conservative bounding box: every contained point lies inside it.
  virtual BoundingBox bounds() const = 0;

  /// Parseable textual form (mirrors the query language syntax).
  virtual std::string ToString() const = 0;
};

using RegionPtr = std::shared_ptr<const Region>;

/// Rectangle given by two corner points — the common GUI case (3).
class BBoxRegion : public Region {
 public:
  explicit BBoxRegion(BoundingBox box) : box_(box) {}
  BBoxRegion(double x0, double y0, double x1, double y1)
      : box_(x0, y0, x1, y1) {}

  RegionKind kind() const override { return RegionKind::kBBox; }
  bool Contains(double x, double y) const override {
    return box_.Contains(x, y);
  }
  BoundingBox bounds() const override { return box_; }
  std::string ToString() const override { return box_.ToString(); }

  const BoundingBox& box() const { return box_; }

 private:
  BoundingBox box_;
};

/// Simple polygon, even-odd rule, closed implicitly.
class PolygonRegion : public Region {
 public:
  /// Vertices in order; at least 3 required (checked by the factory in
  /// the parser; the constructor trusts its input).
  explicit PolygonRegion(std::vector<std::pair<double, double>> vertices);

  RegionKind kind() const override { return RegionKind::kPolygon; }
  bool Contains(double x, double y) const override;
  BoundingBox bounds() const override { return bounds_; }
  std::string ToString() const override;

  const std::vector<std::pair<double, double>>& vertices() const {
    return vertices_;
  }

 private:
  std::vector<std::pair<double, double>> vertices_;
  BoundingBox bounds_;
};

/// One polynomial inequality sum(coef * x^px * y^py) <= 0.
struct PolynomialConstraint {
  struct Term {
    double coef;
    int x_power;
    int y_power;
  };
  std::vector<Term> terms;

  double Evaluate(double x, double y) const;
  std::string ToString() const;
};

/// Conjunction of polynomial constraints — the constraint data model
/// case (2). `bounds` must be supplied (polynomial root isolation is
/// out of scope); it is used only for pruning and may over-cover.
class ConstraintRegion : public Region {
 public:
  ConstraintRegion(std::vector<PolynomialConstraint> constraints,
                   BoundingBox bounds);

  RegionKind kind() const override { return RegionKind::kConstraint; }
  bool Contains(double x, double y) const override;
  BoundingBox bounds() const override { return bounds_; }
  std::string ToString() const override;

  /// Builds the disk (x-cx)^2 + (y-cy)^2 - r^2 <= 0.
  static std::shared_ptr<ConstraintRegion> Disk(double cx, double cy,
                                                double r);

  /// True when this region was built by Disk(); fills centre and
  /// squared radius. Disk regions evaluate Contains with the direct
  /// quadratic (x-cx)^2 + (y-cy)^2 <= r^2 — the same expression the
  /// vectorized kernel uses — instead of the expanded monomial sum,
  /// whose different association could disagree on boundary cells.
  bool AsDisk(double* cx, double* cy, double* r2) const;

 private:
  std::vector<PolynomialConstraint> constraints_;
  BoundingBox bounds_;
  bool is_disk_ = false;
  double disk_cx_ = 0.0, disk_cy_ = 0.0, disk_r2_ = 0.0;
  /// Query-language spelling when the region came from a sugar
  /// constructor (e.g. "disk(1, 2, 3)"); empty for raw constraints.
  std::string query_form_;
};

/// Explicit finite point set — enumeration case (1). Points are
/// matched with a tolerance of half the given cell size, so lattice
/// points snap correctly.
class EnumeratedRegion : public Region {
 public:
  EnumeratedRegion(std::vector<std::pair<double, double>> points,
                   double cell_size);

  RegionKind kind() const override { return RegionKind::kEnumerated; }
  bool Contains(double x, double y) const override;
  BoundingBox bounds() const override { return bounds_; }
  std::string ToString() const override;

  size_t size() const { return keys_.size(); }

 private:
  int64_t KeyOf(double v) const;

  double cell_size_;
  // Sorted (kx, ky) cell keys for binary search.
  std::vector<std::pair<int64_t, int64_t>> keys_;
  BoundingBox bounds_;
};

/// Union / intersection composites.
class CompositeRegion : public Region {
 public:
  CompositeRegion(RegionKind kind, std::vector<RegionPtr> children);

  RegionKind kind() const override { return kind_; }
  bool Contains(double x, double y) const override;
  BoundingBox bounds() const override { return bounds_; }
  std::string ToString() const override;

  const std::vector<RegionPtr>& children() const { return children_; }

 private:
  RegionKind kind_;  // kUnion or kIntersection
  std::vector<RegionPtr> children_;
  BoundingBox bounds_;
};

/// The trivial region containing every point (identity restriction).
class AllRegion : public Region {
 public:
  RegionKind kind() const override { return RegionKind::kAll; }
  bool Contains(double, double) const override { return true; }
  BoundingBox bounds() const override {
    return BoundingBox(-1e300, -1e300, 1e300, 1e300);
  }
  std::string ToString() const override { return "all()"; }

  static RegionPtr Instance();
};

/// Factory helpers.
RegionPtr MakeBBoxRegion(double x0, double y0, double x1, double y1);
RegionPtr MakePolygonRegion(std::vector<std::pair<double, double>> vertices);
RegionPtr MakeUnionRegion(std::vector<RegionPtr> children);
RegionPtr MakeIntersectionRegion(std::vector<RegionPtr> children);

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_REGION_H_
