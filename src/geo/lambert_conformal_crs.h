// Lambert conformal conic projection (two standard parallels).
//
// The workhorse CRS of CONUS weather products derived from GOES
// imagery (e.g. AWIPS grids). Spherical form of Snyder's equations
// (USGS PP 1395, eqs. 15-1..15-11) on the WGS84 authalic-ish sphere —
// conformal enough for product delivery, exactly invertible, and a
// third projection family for the re-projection operator to exercise.

#ifndef GEOSTREAMS_GEO_LAMBERT_CONFORMAL_CRS_H_
#define GEOSTREAMS_GEO_LAMBERT_CONFORMAL_CRS_H_

#include <string>

#include "geo/crs.h"

namespace geostreams {

/// Lambert conformal conic; coordinates in metres. Canonical name
/// "lcc:<lat1>:<lat2>:<lat0>:<lon0>" (degrees).
class LambertConformalCrs : public CoordinateSystem {
 public:
  /// `lat1_deg`, `lat2_deg`: standard parallels (equal => tangent
  /// cone); `lat0_deg`, `lon0_deg`: projection origin. Parallels must
  /// be in (-90, 90), non-antisymmetric (lat1 != -lat2).
  LambertConformalCrs(double lat1_deg, double lat2_deg, double lat0_deg,
                      double lon0_deg);

  /// The NWS-style CONUS setup: parallels 33N/45N, origin 39N 96W.
  static CrsPtr Conus();

  const std::string& name() const override { return name_; }
  CrsKind kind() const override { return CrsKind::kLambertConformal; }

  Status ToGeographic(double x, double y, double* lon_deg,
                      double* lat_deg) const override;
  Status FromGeographic(double lon_deg, double lat_deg, double* x,
                        double* y) const override;

  double cone_constant() const { return n_; }

 private:
  std::string name_;
  double lat0_deg_;
  double lon0_deg_;
  double n_;    // cone constant
  double f_;    // scaling constant F
  double rho0_; // radius at the origin latitude
};

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_LAMBERT_CONFORMAL_CRS_H_
