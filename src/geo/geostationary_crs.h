// Normalized geostationary projection (GOES fixed-grid style).
//
// The paper's prototype ingests GOES imagery in the satellite's native
// "GOES Variable Format" and re-projects it to latitude/longitude
// (Sec. 4). We model the native satellite view with the standard
// normalized geostationary projection (CGMS LRIT/HRIT, also used by
// the GOES-R fixed grid): native coordinates are E-W / N-S scan
// angles in radians as seen from the satellite.

#ifndef GEOSTREAMS_GEO_GEOSTATIONARY_CRS_H_
#define GEOSTREAMS_GEO_GEOSTATIONARY_CRS_H_

#include <string>

#include "geo/crs.h"

namespace geostreams {

/// Geostationary satellite view at a given sub-satellite longitude.
/// x = east-west scan angle (radians, positive east), y = north-south
/// elevation angle (radians, positive north). Points whose scan
/// angles miss the Earth disk are out of range.
class GeostationaryCrs : public CoordinateSystem {
 public:
  explicit GeostationaryCrs(double sub_satellite_lon_deg);

  const std::string& name() const override { return name_; }
  CrsKind kind() const override { return CrsKind::kGeostationary; }

  Status ToGeographic(double x, double y, double* lon_deg,
                      double* lat_deg) const override;
  Status FromGeographic(double lon_deg, double lat_deg, double* x,
                        double* y) const override;

  double sub_satellite_lon_deg() const { return sub_satellite_lon_deg_; }

  /// Distance from the Earth's centre to the satellite, metres.
  static constexpr double kSatelliteRadiusM = 42164160.0;
  /// Approximate half-width of the full-disk scan, radians. The Earth
  /// disk subtends about +-8.7 degrees from geostationary orbit.
  static constexpr double kFullDiskHalfAngleRad = 0.1518;

 private:
  std::string name_;
  double sub_satellite_lon_deg_;
  double lambda0_;  // radians
};

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_GEOSTATIONARY_CRS_H_
