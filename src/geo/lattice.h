// Regularly-spaced point lattices (Definition 1, restricted form).
//
// The paper restricts point sets to regularly-spaced lattices in R^n
// with an associated spatial resolution and coordinate system. A
// GridLattice describes such a lattice: an origin, per-axis spacing,
// and integer extents. Lattice cells are addressed by (col, row);
// point coordinates are cell centres.

#ifndef GEOSTREAMS_GEO_LATTICE_H_
#define GEOSTREAMS_GEO_LATTICE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "geo/bounding_box.h"
#include "geo/crs.h"

namespace geostreams {

/// Geometry of a regular spatial lattice in some CRS.
///
/// origin_x/origin_y locate the *centre* of cell (0, 0); dx > 0 steps
/// east per column; dy steps per row and may be negative for
/// north-up scan order (row 0 at the top).
class GridLattice {
 public:
  GridLattice() = default;
  GridLattice(CrsPtr crs, double origin_x, double origin_y, double dx,
              double dy, int64_t width, int64_t height);

  /// Validates the geometry (non-null CRS, positive extents, non-zero
  /// spacing).
  Status Validate() const;

  const CrsPtr& crs() const { return crs_; }
  double origin_x() const { return origin_x_; }
  double origin_y() const { return origin_y_; }
  double dx() const { return dx_; }
  double dy() const { return dy_; }
  int64_t width() const { return width_; }
  int64_t height() const { return height_; }
  int64_t num_cells() const { return width_ * height_; }

  /// Centre coordinates of cell (col, row); no bounds check.
  double CellX(int64_t col) const { return origin_x_ + col * dx_; }
  double CellY(int64_t row) const { return origin_y_ + row * dy_; }

  /// Nearest cell for spatial coordinates (x, y). The result may be
  /// outside [0, width) x [0, height); use ContainsCell to check.
  void NearestCell(double x, double y, int64_t* col, int64_t* row) const;

  bool ContainsCell(int64_t col, int64_t row) const {
    return col >= 0 && col < width_ && row >= 0 && row < height_;
  }

  /// Spatial extent covered by the lattice cells (cell centres padded
  /// by half a cell on each side).
  BoundingBox Extent() const;

  /// True when both lattices share CRS, spacing, and alignment: the
  /// precondition for point-by-point composition (Definition 10). The
  /// extents may differ.
  bool AlignedWith(const GridLattice& other) const;

  /// True when every field matches.
  bool operator==(const GridLattice& other) const;

  std::string ToString() const;

  /// Lattice covering the same spatial extent with the spacing scaled
  /// by 1/factor (magnification, Sec. 3.2) — factor > 1 increases the
  /// resolution.
  GridLattice Magnified(int factor) const;

  /// Lattice with spacing scaled by factor (resolution decrease);
  /// extents are rounded up so the coverage is preserved.
  GridLattice Reduced(int factor) const;

 private:
  CrsPtr crs_;
  double origin_x_ = 0.0;
  double origin_y_ = 0.0;
  double dx_ = 1.0;
  double dy_ = 1.0;
  int64_t width_ = 0;
  int64_t height_ = 0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_LATTICE_H_
