#include "geo/crs.h"

namespace geostreams {

Status TransformPoint(const CoordinateSystem& from,
                      const CoordinateSystem& to, double x, double y,
                      double* out_x, double* out_y) {
  if (from.Equals(to)) {
    *out_x = x;
    *out_y = y;
    return Status::OK();
  }
  double lon = 0.0, lat = 0.0;
  GEOSTREAMS_RETURN_IF_ERROR(from.ToGeographic(x, y, &lon, &lat));
  return to.FromGeographic(lon, lat, out_x, out_y);
}

BoundingBox TransformBoundingBox(const BoundingBox& box,
                                 const CoordinateSystem& from,
                                 const CoordinateSystem& to,
                                 int samples_per_edge) {
  BoundingBox out;
  if (box.empty()) return out;
  if (from.Equals(to)) return box;
  const int n = samples_per_edge < 2 ? 2 : samples_per_edge;
  // Sample an (n+1) x (n+1) grid: boundary curvature under non-affine
  // projections can make the extremes fall anywhere on the edges, and
  // for projections like geostationary the interior can matter too.
  for (int i = 0; i <= n; ++i) {
    const double fx = static_cast<double>(i) / n;
    const double x = box.min_x + fx * (box.max_x - box.min_x);
    for (int j = 0; j <= n; ++j) {
      const double fy = static_cast<double>(j) / n;
      const double y = box.min_y + fy * (box.max_y - box.min_y);
      double tx = 0.0, ty = 0.0;
      if (TransformPoint(from, to, x, y, &tx, &ty).ok()) {
        out.ExpandToInclude(tx, ty);
      }
    }
  }
  return out;
}

}  // namespace geostreams
