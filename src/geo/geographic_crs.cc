#include "geo/geographic_crs.h"

#include "common/string_util.h"

namespace geostreams {

GeographicCrs::GeographicCrs() : name_("latlon") {}

Status GeographicCrs::ToGeographic(double x, double y, double* lon_deg,
                                   double* lat_deg) const {
  if (y < -90.0 || y > 90.0) {
    return Status::OutOfRange(
        StringPrintf("latitude %g outside [-90, 90]", y));
  }
  *lon_deg = x;
  *lat_deg = y;
  return Status::OK();
}

Status GeographicCrs::FromGeographic(double lon_deg, double lat_deg,
                                     double* x, double* y) const {
  if (lat_deg < -90.0 || lat_deg > 90.0) {
    return Status::OutOfRange(
        StringPrintf("latitude %g outside [-90, 90]", lat_deg));
  }
  *x = lon_deg;
  *y = lat_deg;
  return Status::OK();
}

CrsPtr GeographicCrs::Instance() {
  static CrsPtr instance = std::make_shared<GeographicCrs>();
  return instance;
}

}  // namespace geostreams
