// Ellipsoidal Transverse Mercator projection and UTM zones.
//
// Implements the classic Snyder series expansions ("Map Projections —
// A Working Manual", USGS PP 1395, eqs. 8-9..8-25) on the WGS84
// ellipsoid. This stands in for the PROJ.4 dependency of the paper's
// prototype: the query model re-projects GOES streams to UTM
// (Sec. 3.4's example query applies f_UTM before a spatial
// restriction).

#ifndef GEOSTREAMS_GEO_TRANSVERSE_MERCATOR_CRS_H_
#define GEOSTREAMS_GEO_TRANSVERSE_MERCATOR_CRS_H_

#include <string>

#include "geo/crs.h"

namespace geostreams {

/// Transverse Mercator with configurable central meridian, scale
/// factor, and false easting/northing. Coordinates are metres.
class TransverseMercatorCrs : public CoordinateSystem {
 public:
  /// General constructor. `name` must be the canonical registry name.
  TransverseMercatorCrs(std::string name, double central_meridian_deg,
                        double scale_factor, double false_easting_m,
                        double false_northing_m);

  /// UTM zone constructor: zone in [1, 60], `northern` selects the
  /// hemisphere (false northing 0 vs 10,000,000 m). Name "utm:<z><n|s>".
  static CrsPtr Utm(int zone, bool northern);

  const std::string& name() const override { return name_; }
  CrsKind kind() const override { return CrsKind::kTransverseMercator; }

  Status ToGeographic(double x, double y, double* lon_deg,
                      double* lat_deg) const override;
  Status FromGeographic(double lon_deg, double lat_deg, double* x,
                        double* y) const override;

  double central_meridian_deg() const { return central_meridian_deg_; }

 private:
  /// Meridional arc length from the equator to latitude phi (radians).
  double MeridionalArc(double phi) const;

  std::string name_;
  double central_meridian_deg_;
  double k0_;
  double false_easting_;
  double false_northing_;
  // Precomputed series coefficients.
  double m0_coef_, m2_coef_, m4_coef_, m6_coef_;
  double e1_;
  double ep2_;  // second eccentricity squared
};

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_TRANSVERSE_MERCATOR_CRS_H_
