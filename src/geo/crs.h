// Coordinate reference systems for GeoStreams (Definition 5 of the
// paper requires every stream's spatial component to carry one).
//
// All CRSs convert to and from geographic coordinates (longitude /
// latitude in degrees on WGS84), which serves as the hub for
// re-projection between any two systems.

#ifndef GEOSTREAMS_GEO_CRS_H_
#define GEOSTREAMS_GEO_CRS_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "geo/bounding_box.h"

namespace geostreams {

/// Families of coordinate systems the library implements.
enum class CrsKind {
  kGeographic,           // longitude/latitude degrees
  kMercator,             // spherical Mercator, metres
  kTransverseMercator,   // UTM-style, metres
  kGeostationary,        // GOES-like satellite scan-angle coordinates
  kLambertConformal,     // conic, metres (CONUS product grids)
};

/// WGS84 ellipsoid constants used by the projected systems.
struct Wgs84 {
  static constexpr double kSemiMajorM = 6378137.0;
  static constexpr double kInverseFlattening = 298.257223563;
  static constexpr double kFlattening = 1.0 / kInverseFlattening;
  static constexpr double kSemiMinorM = kSemiMajorM * (1.0 - kFlattening);
  // First eccentricity squared.
  static constexpr double kE2 = kFlattening * (2.0 - kFlattening);
};

/// A coordinate reference system. Immutable and shareable.
class CoordinateSystem {
 public:
  virtual ~CoordinateSystem() = default;

  /// Canonical name, parseable by CrsRegistry ("latlon", "utm:10n",
  /// "mercator", "geos:-75").
  virtual const std::string& name() const = 0;

  virtual CrsKind kind() const = 0;

  /// Converts native coordinates to geographic lon/lat in degrees.
  /// Fails with OutOfRange for coordinates outside the projection's
  /// valid domain (e.g. scan angles that miss the Earth disk).
  virtual Status ToGeographic(double x, double y, double* lon_deg,
                              double* lat_deg) const = 0;

  /// Converts geographic lon/lat in degrees to native coordinates.
  virtual Status FromGeographic(double lon_deg, double lat_deg, double* x,
                                double* y) const = 0;

  /// Two CRSs are the same iff their canonical names match (the paper's
  /// precondition for binary operators, Sec. 2).
  bool Equals(const CoordinateSystem& other) const {
    return name() == other.name();
  }
};

using CrsPtr = std::shared_ptr<const CoordinateSystem>;

/// Transforms a point between two CRSs through the geographic hub.
/// A same-CRS transform is the identity and never fails.
Status TransformPoint(const CoordinateSystem& from,
                      const CoordinateSystem& to, double x, double y,
                      double* out_x, double* out_y);

/// Conservatively maps a bounding box from one CRS to another by
/// transforming a dense sampling of its boundary and interior grid.
/// Points that fall outside the target projection's domain are
/// skipped; if no point maps, returns an empty box.
BoundingBox TransformBoundingBox(const BoundingBox& box,
                                 const CoordinateSystem& from,
                                 const CoordinateSystem& to,
                                 int samples_per_edge = 16);

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_CRS_H_
