#include "geo/lattice.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

GridLattice::GridLattice(CrsPtr crs, double origin_x, double origin_y,
                         double dx, double dy, int64_t width, int64_t height)
    : crs_(std::move(crs)),
      origin_x_(origin_x),
      origin_y_(origin_y),
      dx_(dx),
      dy_(dy),
      width_(width),
      height_(height) {}

Status GridLattice::Validate() const {
  if (!crs_) return Status::InvalidArgument("lattice has no CRS");
  if (width_ <= 0 || height_ <= 0) {
    return Status::InvalidArgument(
        StringPrintf("lattice extents must be positive: %lld x %lld",
                     static_cast<long long>(width_),
                     static_cast<long long>(height_)));
  }
  if (dx_ <= 0.0 || dy_ == 0.0) {
    return Status::InvalidArgument(
        StringPrintf("lattice spacing invalid: dx=%g dy=%g", dx_, dy_));
  }
  return Status::OK();
}

void GridLattice::NearestCell(double x, double y, int64_t* col,
                              int64_t* row) const {
  *col = static_cast<int64_t>(std::llround((x - origin_x_) / dx_));
  *row = static_cast<int64_t>(std::llround((y - origin_y_) / dy_));
}

BoundingBox GridLattice::Extent() const {
  const double x0 = origin_x_ - dx_ / 2.0;
  const double x1 = origin_x_ + (width_ - 0.5) * dx_;
  const double y0 = origin_y_ - dy_ / 2.0;
  const double y1 = origin_y_ + (height_ - 0.5) * dy_;
  return BoundingBox(x0, y0, x1, y1);
}

bool GridLattice::AlignedWith(const GridLattice& other) const {
  if (!crs_ || !other.crs_ || !crs_->Equals(*other.crs_)) return false;
  if (!NearlyEqual(dx_, other.dx_) || !NearlyEqual(dy_, other.dy_)) {
    return false;
  }
  // Origins must differ by an integer number of cells.
  const double cx = (other.origin_x_ - origin_x_) / dx_;
  const double cy = (other.origin_y_ - origin_y_) / dy_;
  return NearlyEqual(cx, std::round(cx), 1e-6) &&
         NearlyEqual(cy, std::round(cy), 1e-6);
}

bool GridLattice::operator==(const GridLattice& other) const {
  return crs_ && other.crs_ && crs_->Equals(*other.crs_) &&
         NearlyEqual(origin_x_, other.origin_x_) &&
         NearlyEqual(origin_y_, other.origin_y_) &&
         NearlyEqual(dx_, other.dx_) && NearlyEqual(dy_, other.dy_) &&
         width_ == other.width_ && height_ == other.height_;
}

std::string GridLattice::ToString() const {
  return StringPrintf(
      "lattice(%s, origin=(%g, %g), step=(%g, %g), %lld x %lld)",
      crs_ ? crs_->name().c_str() : "<none>", origin_x_, origin_y_, dx_, dy_,
      static_cast<long long>(width_), static_cast<long long>(height_));
}

GridLattice GridLattice::Magnified(int factor) const {
  const double ndx = dx_ / factor;
  const double ndy = dy_ / factor;
  // Keep the covered extent: the first fine cell centre sits half a
  // coarse cell minus half a fine cell before the coarse origin.
  const double nox = origin_x_ - dx_ / 2.0 + ndx / 2.0;
  const double noy = origin_y_ - dy_ / 2.0 + ndy / 2.0;
  return GridLattice(crs_, nox, noy, ndx, ndy, width_ * factor,
                     height_ * factor);
}

GridLattice GridLattice::Reduced(int factor) const {
  const double ndx = dx_ * factor;
  const double ndy = dy_ * factor;
  const double nox = origin_x_ - dx_ / 2.0 + ndx / 2.0;
  const double noy = origin_y_ - dy_ / 2.0 + ndy / 2.0;
  const int64_t nw = (width_ + factor - 1) / factor;
  const int64_t nh = (height_ + factor - 1) / factor;
  return GridLattice(crs_, nox, noy, ndx, ndy, nw, nh);
}

}  // namespace geostreams
