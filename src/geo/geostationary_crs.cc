#include "geo/geostationary_crs.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

namespace {
constexpr double kReq = Wgs84::kSemiMajorM;            // equatorial radius
constexpr double kRpol = Wgs84::kSemiMinorM;           // polar radius
constexpr double kH = GeostationaryCrs::kSatelliteRadiusM;
constexpr double kReqOverRpol2 = (kReq * kReq) / (kRpol * kRpol);
constexpr double kRpolOverReq2 = (kRpol * kRpol) / (kReq * kReq);
// First eccentricity squared of the ellipse traced in the geocentric
// latitude computation.
constexpr double kEcc2 = (kReq * kReq - kRpol * kRpol) / (kReq * kReq);
}  // namespace

GeostationaryCrs::GeostationaryCrs(double sub_satellite_lon_deg)
    : name_(StringPrintf("geos:%g", sub_satellite_lon_deg)),
      sub_satellite_lon_deg_(sub_satellite_lon_deg),
      lambda0_(DegreesToRadians(sub_satellite_lon_deg)) {}

Status GeostationaryCrs::FromGeographic(double lon_deg, double lat_deg,
                                        double* x, double* y) const {
  if (std::fabs(lat_deg) > 90.0) {
    return Status::OutOfRange(
        StringPrintf("latitude %g outside [-90, 90]", lat_deg));
  }
  const double phi = DegreesToRadians(lat_deg);
  const double lam = DegreesToRadians(lon_deg);
  // Geocentric latitude of the point on the ellipsoid surface.
  const double phi_c = std::atan(kRpolOverReq2 * std::tan(phi));
  const double cos_pc = std::cos(phi_c);
  const double sin_pc = std::sin(phi_c);
  const double r_c = kRpol / std::sqrt(1.0 - kEcc2 * cos_pc * cos_pc);
  const double dlon = lam - lambda0_;

  const double sx = kH - r_c * cos_pc * std::cos(dlon);
  const double sy = -r_c * cos_pc * std::sin(dlon);
  const double sz = r_c * sin_pc;

  // Visibility: the surface point must face the satellite, i.e. the
  // vector from the point to the satellite must have a positive
  // component along the local position vector. Equivalent to
  // cos(phi_c) * cos(dlon) > r_c / H.
  if (cos_pc * std::cos(dlon) <= r_c / kH) {
    return Status::OutOfRange(StringPrintf(
        "point (%g, %g) not visible from geostationary longitude %g",
        lon_deg, lat_deg, sub_satellite_lon_deg_));
  }

  const double norm = std::sqrt(sx * sx + sy * sy + sz * sz);
  *x = std::asin(-sy / norm);
  *y = std::atan(sz / sx);
  return Status::OK();
}

Status GeostationaryCrs::ToGeographic(double x, double y, double* lon_deg,
                                      double* lat_deg) const {
  const double cos_x = std::cos(x);
  const double sin_x = std::sin(x);
  const double cos_y = std::cos(y);
  const double sin_y = std::sin(y);

  const double a = sin_x * sin_x +
                   cos_x * cos_x * (cos_y * cos_y +
                                    kReqOverRpol2 * sin_y * sin_y);
  const double b = -2.0 * kH * cos_x * cos_y;
  const double c = kH * kH - kReq * kReq;
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) {
    return Status::OutOfRange(StringPrintf(
        "scan angle (%g, %g) does not intersect the Earth disk", x, y));
  }
  const double r_s = (-b - std::sqrt(disc)) / (2.0 * a);

  const double sx = r_s * cos_x * cos_y;
  const double sy = -r_s * sin_x;
  const double sz = r_s * cos_x * sin_y;

  *lat_deg = RadiansToDegrees(std::atan(
      kReqOverRpol2 * sz / std::sqrt((kH - sx) * (kH - sx) + sy * sy)));
  *lon_deg = WrapLongitudeDeg(
      sub_satellite_lon_deg_ -
      RadiansToDegrees(std::atan2(sy, kH - sx)));
  return Status::OK();
}

}  // namespace geostreams
