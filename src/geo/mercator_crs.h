// Spherical Mercator projection (web-mapping style delivery CRS).

#ifndef GEOSTREAMS_GEO_MERCATOR_CRS_H_
#define GEOSTREAMS_GEO_MERCATOR_CRS_H_

#include <string>

#include "geo/crs.h"

namespace geostreams {

/// Spherical Mercator on the WGS84 semi-major axis. Latitudes are
/// limited to ±85.06° (the square web-Mercator domain); coordinates
/// are metres.
class MercatorCrs : public CoordinateSystem {
 public:
  MercatorCrs();

  const std::string& name() const override { return name_; }
  CrsKind kind() const override { return CrsKind::kMercator; }

  Status ToGeographic(double x, double y, double* lon_deg,
                      double* lat_deg) const override;
  Status FromGeographic(double lon_deg, double lat_deg, double* x,
                        double* y) const override;

  static CrsPtr Instance();

  /// Largest latitude representable in the square Mercator domain.
  static constexpr double kMaxLatitudeDeg = 85.05112878;

 private:
  std::string name_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_MERCATOR_CRS_H_
