// Geographic (longitude/latitude) coordinate system — the hub CRS.

#ifndef GEOSTREAMS_GEO_GEOGRAPHIC_CRS_H_
#define GEOSTREAMS_GEO_GEOGRAPHIC_CRS_H_

#include <string>

#include "geo/crs.h"

namespace geostreams {

/// Plate-carree lon/lat degrees: native coordinates are geographic
/// coordinates themselves. x = longitude, y = latitude.
class GeographicCrs : public CoordinateSystem {
 public:
  GeographicCrs();

  const std::string& name() const override { return name_; }
  CrsKind kind() const override { return CrsKind::kGeographic; }

  Status ToGeographic(double x, double y, double* lon_deg,
                      double* lat_deg) const override;
  Status FromGeographic(double lon_deg, double lat_deg, double* x,
                        double* y) const override;

  /// Shared singleton instance.
  static CrsPtr Instance();

 private:
  std::string name_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_GEOGRAPHIC_CRS_H_
