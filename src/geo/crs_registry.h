// Registry resolving canonical CRS names to shared instances.

#ifndef GEOSTREAMS_GEO_CRS_REGISTRY_H_
#define GEOSTREAMS_GEO_CRS_REGISTRY_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "geo/crs.h"

namespace geostreams {

/// Resolves a canonical CRS name. Recognized forms:
///   "latlon"            geographic lon/lat degrees
///   "mercator"          spherical Mercator metres
///   "utm:<zone><n|s>"   e.g. "utm:10n"
///   "geos:<lon>"        geostationary view, sub-satellite longitude
/// Instances are cached: resolving the same name twice returns the
/// same shared object. Thread-safe.
class CrsRegistry {
 public:
  /// Global registry instance.
  static CrsRegistry& Global();

  /// Resolves `name` (case-insensitive) to a CRS.
  Result<CrsPtr> Resolve(std::string_view name);

 private:
  CrsRegistry() = default;
};

/// Convenience wrapper over CrsRegistry::Global().Resolve().
Result<CrsPtr> ResolveCrs(std::string_view name);

}  // namespace geostreams

#endif  // GEOSTREAMS_GEO_CRS_REGISTRY_H_
