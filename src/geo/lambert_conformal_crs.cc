#include "geo/lambert_conformal_crs.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

namespace {
constexpr double kR = Wgs84::kSemiMajorM;  // spherical radius

double TanHalfCoLat(double phi) { return std::tan(kPi / 4.0 + phi / 2.0); }
}  // namespace

LambertConformalCrs::LambertConformalCrs(double lat1_deg, double lat2_deg,
                                         double lat0_deg, double lon0_deg)
    : name_(StringPrintf("lcc:%g:%g:%g:%g", lat1_deg, lat2_deg, lat0_deg,
                         lon0_deg)),
      lat0_deg_(lat0_deg),
      lon0_deg_(lon0_deg) {
  const double phi1 = DegreesToRadians(lat1_deg);
  const double phi2 = DegreesToRadians(lat2_deg);
  const double phi0 = DegreesToRadians(lat0_deg);
  if (NearlyEqual(lat1_deg, lat2_deg)) {
    n_ = std::sin(phi1);  // tangent cone
  } else {
    n_ = std::log(std::cos(phi1) / std::cos(phi2)) /
         std::log(TanHalfCoLat(phi2) / TanHalfCoLat(phi1));
  }
  f_ = std::cos(phi1) * std::pow(TanHalfCoLat(phi1), n_) / n_;
  rho0_ = kR * f_ / std::pow(TanHalfCoLat(phi0), n_);
}

CrsPtr LambertConformalCrs::Conus() {
  static CrsPtr instance =
      std::make_shared<LambertConformalCrs>(33.0, 45.0, 39.0, -96.0);
  return instance;
}

Status LambertConformalCrs::FromGeographic(double lon_deg, double lat_deg,
                                           double* x, double* y) const {
  // The pole opposite the cone apex is a singularity; stay away from
  // both poles for robustness.
  if (std::fabs(lat_deg) > 89.5) {
    return Status::OutOfRange(StringPrintf(
        "latitude %g outside Lambert conformal domain", lat_deg));
  }
  const double phi = DegreesToRadians(lat_deg);
  const double dlam =
      DegreesToRadians(WrapLongitudeDeg(lon_deg - lon0_deg_));
  const double rho = kR * f_ / std::pow(TanHalfCoLat(phi), n_);
  if (!std::isfinite(rho)) {
    return Status::OutOfRange(StringPrintf(
        "latitude %g maps to infinity in Lambert conformal", lat_deg));
  }
  const double theta = n_ * dlam;
  *x = rho * std::sin(theta);
  *y = rho0_ - rho * std::cos(theta);
  return Status::OK();
}

Status LambertConformalCrs::ToGeographic(double x, double y, double* lon_deg,
                                         double* lat_deg) const {
  const double sign = n_ >= 0.0 ? 1.0 : -1.0;
  const double dy = rho0_ - y;
  const double rho = sign * std::sqrt(x * x + dy * dy);
  if (rho == 0.0) {
    // The cone apex: the pole on the cone's side.
    *lat_deg = sign * 90.0;
    *lon_deg = lon0_deg_;
    return Status::OK();
  }
  const double theta = std::atan2(sign * x, sign * dy);
  const double phi =
      2.0 * std::atan(std::pow(kR * f_ / rho, 1.0 / n_)) - kHalfPi;
  if (!std::isfinite(phi)) {
    return Status::OutOfRange("Lambert conformal inverse out of domain");
  }
  *lat_deg = RadiansToDegrees(phi);
  *lon_deg = WrapLongitudeDeg(lon0_deg_ + RadiansToDegrees(theta / n_));
  return Status::OK();
}

}  // namespace geostreams
