#include "geo/region.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

// ---------------------------------------------------------------------------
// PolygonRegion

PolygonRegion::PolygonRegion(std::vector<std::pair<double, double>> vertices)
    : vertices_(std::move(vertices)) {
  for (const auto& [x, y] : vertices_) bounds_.ExpandToInclude(x, y);
}

bool PolygonRegion::Contains(double x, double y) const {
  if (!bounds_.Contains(x, y)) return false;
  // Even-odd ray casting toward +x.
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const double xi = vertices_[i].first, yi = vertices_[i].second;
    const double xj = vertices_[j].first, yj = vertices_[j].second;
    const bool crosses = (yi > y) != (yj > y);
    if (crosses && x < (xj - xi) * (y - yi) / (yj - yi) + xi) {
      inside = !inside;
    }
  }
  return inside;
}

std::string PolygonRegion::ToString() const {
  std::string s = "polygon(";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i) s += ", ";
    s += StringPrintf("%g, %g", vertices_[i].first, vertices_[i].second);
  }
  s += ")";
  return s;
}

// ---------------------------------------------------------------------------
// ConstraintRegion

double PolynomialConstraint::Evaluate(double x, double y) const {
  double sum = 0.0;
  for (const Term& t : terms) {
    sum += t.coef * std::pow(x, t.x_power) * std::pow(y, t.y_power);
  }
  return sum;
}

std::string PolynomialConstraint::ToString() const {
  std::string s;
  for (size_t i = 0; i < terms.size(); ++i) {
    const Term& t = terms[i];
    if (i) s += " + ";
    s += StringPrintf("%g*x^%d*y^%d", t.coef, t.x_power, t.y_power);
  }
  s += " <= 0";
  return s;
}

ConstraintRegion::ConstraintRegion(
    std::vector<PolynomialConstraint> constraints, BoundingBox bounds)
    : constraints_(std::move(constraints)), bounds_(bounds) {}

bool ConstraintRegion::Contains(double x, double y) const {
  if (!bounds_.Contains(x, y)) return false;
  if (is_disk_) {
    const double dx = x - disk_cx_;
    const double dy = y - disk_cy_;
    return dx * dx + dy * dy <= disk_r2_;
  }
  for (const PolynomialConstraint& c : constraints_) {
    if (c.Evaluate(x, y) > 0.0) return false;
  }
  return true;
}

bool ConstraintRegion::AsDisk(double* cx, double* cy, double* r2) const {
  if (!is_disk_) return false;
  *cx = disk_cx_;
  *cy = disk_cy_;
  *r2 = disk_r2_;
  return true;
}

std::string ConstraintRegion::ToString() const {
  if (!query_form_.empty()) return query_form_;
  std::string s = "constraint(";
  for (size_t i = 0; i < constraints_.size(); ++i) {
    if (i) s += " and ";
    s += constraints_[i].ToString();
  }
  s += ")";
  return s;
}

std::shared_ptr<ConstraintRegion> ConstraintRegion::Disk(double cx, double cy,
                                                         double r) {
  // (x - cx)^2 + (y - cy)^2 - r^2 <= 0, expanded into monomials.
  PolynomialConstraint c;
  c.terms = {{1.0, 2, 0},
             {-2.0 * cx, 1, 0},
             {1.0, 0, 2},
             {-2.0 * cy, 0, 1},
             {cx * cx + cy * cy - r * r, 0, 0}};
  auto region = std::make_shared<ConstraintRegion>(
      std::vector<PolynomialConstraint>{std::move(c)},
      BoundingBox(cx - r, cy - r, cx + r, cy + r));
  region->query_form_ = StringPrintf("disk(%g, %g, %g)", cx, cy, r);
  region->is_disk_ = true;
  region->disk_cx_ = cx;
  region->disk_cy_ = cy;
  region->disk_r2_ = r * r;
  return region;
}

// ---------------------------------------------------------------------------
// EnumeratedRegion

EnumeratedRegion::EnumeratedRegion(
    std::vector<std::pair<double, double>> points, double cell_size)
    : cell_size_(cell_size > 0 ? cell_size : 1.0) {
  keys_.reserve(points.size());
  for (const auto& [x, y] : points) {
    keys_.emplace_back(KeyOf(x), KeyOf(y));
    bounds_.ExpandToInclude(x, y);
  }
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
}

int64_t EnumeratedRegion::KeyOf(double v) const {
  return static_cast<int64_t>(std::llround(v / cell_size_));
}

bool EnumeratedRegion::Contains(double x, double y) const {
  const std::pair<int64_t, int64_t> key(KeyOf(x), KeyOf(y));
  return std::binary_search(keys_.begin(), keys_.end(), key);
}

std::string EnumeratedRegion::ToString() const {
  return StringPrintf("enumerated(%zu points, cell %g)", keys_.size(),
                      cell_size_);
}

// ---------------------------------------------------------------------------
// CompositeRegion

CompositeRegion::CompositeRegion(RegionKind kind,
                                 std::vector<RegionPtr> children)
    : kind_(kind), children_(std::move(children)) {
  if (kind_ == RegionKind::kUnion) {
    for (const RegionPtr& c : children_) bounds_.ExpandToInclude(c->bounds());
  } else {
    // Intersection: intersect the child boxes.
    bool first = true;
    for (const RegionPtr& c : children_) {
      if (first) {
        bounds_ = c->bounds();
        first = false;
      } else {
        bounds_ = bounds_.Intersection(c->bounds());
      }
    }
  }
}

bool CompositeRegion::Contains(double x, double y) const {
  if (kind_ == RegionKind::kUnion) {
    for (const RegionPtr& c : children_) {
      if (c->Contains(x, y)) return true;
    }
    return false;
  }
  for (const RegionPtr& c : children_) {
    if (!c->Contains(x, y)) return false;
  }
  return !children_.empty();
}

std::string CompositeRegion::ToString() const {
  std::string s = kind_ == RegionKind::kUnion ? "union(" : "intersection(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i) s += ", ";
    s += children_[i]->ToString();
  }
  s += ")";
  return s;
}

// ---------------------------------------------------------------------------
// AllRegion + factories

RegionPtr AllRegion::Instance() {
  static RegionPtr instance = std::make_shared<AllRegion>();
  return instance;
}

RegionPtr MakeBBoxRegion(double x0, double y0, double x1, double y1) {
  return std::make_shared<BBoxRegion>(x0, y0, x1, y1);
}

RegionPtr MakePolygonRegion(
    std::vector<std::pair<double, double>> vertices) {
  return std::make_shared<PolygonRegion>(std::move(vertices));
}

RegionPtr MakeUnionRegion(std::vector<RegionPtr> children) {
  return std::make_shared<CompositeRegion>(RegionKind::kUnion,
                                           std::move(children));
}

RegionPtr MakeIntersectionRegion(std::vector<RegionPtr> children) {
  return std::make_shared<CompositeRegion>(RegionKind::kIntersection,
                                           std::move(children));
}

}  // namespace geostreams
