// Histograms and CDFs backing the stretch value transforms
// (Sec. 3.2: linear contrast stretch, histogram equalization,
// Gaussian stretch).

#ifndef GEOSTREAMS_RASTER_HISTOGRAM_H_
#define GEOSTREAMS_RASTER_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace geostreams {

/// Fixed-bin histogram over a value range [lo, hi].
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double v);
  void AddN(const double* values, size_t n);
  void Reset();

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  uint64_t total() const { return total_; }
  uint64_t count(int bin) const { return counts_[static_cast<size_t>(bin)]; }

  /// Bin index of a value (clamped into range).
  int BinOf(double v) const;
  /// Representative (centre) value of a bin.
  double BinCenter(int bin) const;

  /// Empirical CDF at value v, in [0, 1]. 0 when the histogram is
  /// empty.
  double Cdf(double v) const;

  /// Value below which fraction q of the mass lies (q in [0, 1]).
  double Quantile(double q) const;

  /// Mean and standard deviation of the binned data.
  double Mean() const;
  double StdDev() const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_RASTER_HISTOGRAM_H_
