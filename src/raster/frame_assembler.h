// Assembles point batches of one frame back into a Raster.
//
// Frame-scoped operators (stretch transforms, image-organized
// compositions, delivery) need the points of a frame materialized as
// an image. The assembler tracks the frame lattice from FrameBegin
// metadata and fills a raster as batches arrive.

#ifndef GEOSTREAMS_RASTER_FRAME_ASSEMBLER_H_
#define GEOSTREAMS_RASTER_FRAME_ASSEMBLER_H_

#include <optional>

#include "common/status.h"
#include "core/stream_event.h"
#include "raster/raster.h"

namespace geostreams {

/// A completed frame: the raster plus the per-cell occupancy mask.
/// Restricted streams deliver only part of a sector; gather operators
/// (re-projection, affine transforms) must not fabricate values from
/// never-filled nodata cells.
struct AssembledFrame {
  Raster raster;
  std::vector<uint8_t> filled;  // 1 per cell that received a point

  bool IsFilled(int64_t col, int64_t row) const {
    return filled[static_cast<size_t>(row) *
                      static_cast<size_t>(raster.width()) +
                  static_cast<size_t>(col)] != 0;
  }
};

/// One-frame accumulator. Reusable: Finish() returns the frame and
/// resets for the next one.
class FrameAssembler {
 public:
  /// `nodata` fills cells no point arrived for.
  explicit FrameAssembler(double nodata = 0.0) : nodata_(nodata) {}

  /// Starts a frame; allocates the raster from the frame's lattice.
  Status Begin(const FrameInfo& info, int band_count);

  /// Adds a batch; points outside the frame lattice are rejected.
  Status Add(const PointBatch& batch);

  /// Completes the frame and returns the assembled raster + mask.
  Result<AssembledFrame> Finish();

  /// Abandons the open frame and frees its buffer (fault recovery).
  void Abort() {
    active_ = false;
    points_seen_ = 0;
    raster_ = Raster();
    filled_.clear();
  }

  bool active() const { return active_; }
  int64_t frame_id() const { return frame_id_; }
  int64_t points_seen() const { return points_seen_; }
  /// Bytes currently buffered (drives the memory accounting of
  /// frame-buffering operators, Sec. 3.2).
  size_t BufferedBytes() const { return active_ ? raster_.ApproxBytes() : 0; }

 private:
  double nodata_;
  bool active_ = false;
  int64_t frame_id_ = 0;
  int64_t points_seen_ = 0;
  Raster raster_;
  std::vector<uint8_t> filled_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_RASTER_FRAME_ASSEMBLER_H_
