#include "raster/resample.h"

#include <cmath>

#include "common/math_util.h"

namespace geostreams {

const char* ResampleKernelName(ResampleKernel k) {
  switch (k) {
    case ResampleKernel::kNearest:
      return "nearest";
    case ResampleKernel::kBilinear:
      return "bilinear";
  }
  return "?";
}

double SampleRaster(const Raster& src, double col, double row, int band,
                    ResampleKernel kernel) {
  switch (kernel) {
    case ResampleKernel::kNearest:
      return src.AtClamped(static_cast<int64_t>(std::llround(col)),
                           static_cast<int64_t>(std::llround(row)), band);
    case ResampleKernel::kBilinear: {
      const double fc = std::floor(col);
      const double fr = std::floor(row);
      const auto c0 = static_cast<int64_t>(fc);
      const auto r0 = static_cast<int64_t>(fr);
      const double tx = col - fc;
      const double ty = row - fr;
      const double v00 = src.AtClamped(c0, r0, band);
      const double v10 = src.AtClamped(c0 + 1, r0, band);
      const double v01 = src.AtClamped(c0, r0 + 1, band);
      const double v11 = src.AtClamped(c0 + 1, r0 + 1, band);
      return Lerp(Lerp(v00, v10, tx), Lerp(v01, v11, tx), ty);
    }
  }
  return 0.0;
}

double BoxAverage(const Raster& src, int64_t col0, int64_t row0, int k,
                  int band) {
  double sum = 0.0;
  int64_t n = 0;
  for (int dr = 0; dr < k; ++dr) {
    const int64_t r = row0 + dr;
    if (r < 0 || r >= src.height()) continue;
    for (int dc = 0; dc < k; ++dc) {
      const int64_t c = col0 + dc;
      if (c < 0 || c >= src.width()) continue;
      sum += src.At(c, r, band);
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

Result<Raster> ReduceRaster(const Raster& src, int k) {
  if (k < 1) return Status::InvalidArgument("reduction factor must be >= 1");
  if (src.empty()) return Status::InvalidArgument("empty source raster");
  const int64_t nw = (src.width() + k - 1) / k;
  const int64_t nh = (src.height() + k - 1) / k;
  Raster out(nw, nh, src.bands());
  for (int64_t r = 0; r < nh; ++r) {
    for (int64_t c = 0; c < nw; ++c) {
      for (int b = 0; b < src.bands(); ++b) {
        out.Set(c, r, b, BoxAverage(src, c * k, r * k, k, b));
      }
    }
  }
  return out;
}

Result<Raster> MagnifyRaster(const Raster& src, int k) {
  if (k < 1) {
    return Status::InvalidArgument("magnification factor must be >= 1");
  }
  if (src.empty()) return Status::InvalidArgument("empty source raster");
  Raster out(src.width() * k, src.height() * k, src.bands());
  for (int64_t r = 0; r < out.height(); ++r) {
    for (int64_t c = 0; c < out.width(); ++c) {
      for (int b = 0; b < src.bands(); ++b) {
        out.Set(c, r, b, src.At(c / k, r / k, b));
      }
    }
  }
  return out;
}

}  // namespace geostreams
