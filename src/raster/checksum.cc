#include "raster/checksum.h"

#include <array>

namespace geostreams {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

}  // namespace

uint32_t UpdateCrc32(uint32_t crc, const uint8_t* data, size_t len) {
  const auto& table = CrcTable();
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32(const uint8_t* data, size_t len) {
  return UpdateCrc32(0xFFFFFFFFu, data, len) ^ 0xFFFFFFFFu;
}

uint32_t Adler32(uint32_t adler, const uint8_t* data, size_t len) {
  constexpr uint32_t kMod = 65521;
  uint32_t a = adler & 0xFFFFu;
  uint32_t b = (adler >> 16) & 0xFFFFu;
  for (size_t i = 0; i < len; ++i) {
    a = (a + data[i]) % kMod;
    b = (b + a) % kMod;
  }
  return (b << 16) | a;
}

}  // namespace geostreams
