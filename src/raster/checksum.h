// CRC-32 (PNG chunk checksums) and Adler-32 (zlib stream checksum),
// implemented locally so PNG delivery has no external dependencies.

#ifndef GEOSTREAMS_RASTER_CHECKSUM_H_
#define GEOSTREAMS_RASTER_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace geostreams {

/// CRC-32 (ISO 3309 / ITU-T V.42, polynomial 0xEDB88320) as required
/// by the PNG specification. `crc` chains across calls; start from
/// 0xFFFFFFFF via Crc32() or pass a previous UpdateCrc32 result.
uint32_t UpdateCrc32(uint32_t crc, const uint8_t* data, size_t len);

/// One-shot CRC-32 of a buffer (pre/post-conditioned).
uint32_t Crc32(const uint8_t* data, size_t len);

/// Adler-32 checksum used by the zlib container. Start from 1.
uint32_t Adler32(uint32_t adler, const uint8_t* data, size_t len);

}  // namespace geostreams

#endif  // GEOSTREAMS_RASTER_CHECKSUM_H_
