// PGM/PPM (binary PNM) raster I/O. Used by examples and tests as a
// trivially-inspectable alternative to PNG delivery.

#ifndef GEOSTREAMS_RASTER_PNM_IO_H_
#define GEOSTREAMS_RASTER_PNM_IO_H_

#include <string>

#include "common/status.h"
#include "raster/raster.h"

namespace geostreams {

/// Writes a 1-band raster as binary PGM (P5) or a 3-band raster as
/// binary PPM (P6), linearly mapping [lo, hi] to [0, 255]; with
/// lo == hi the raster min/max are used.
Status WriteRasterPnm(const Raster& raster, const std::string& path,
                      double lo = 0.0, double hi = 0.0);

/// Reads a binary PGM/PPM file into a raster with values in [0, 255].
Result<Raster> ReadRasterPnm(const std::string& path);

}  // namespace geostreams

#endif  // GEOSTREAMS_RASTER_PNM_IO_H_
