#include "raster/pnm_io.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

Status WriteRasterPnm(const Raster& raster, const std::string& path,
                      double lo, double hi) {
  if (raster.empty()) return Status::InvalidArgument("empty raster");
  if (raster.bands() != 1 && raster.bands() != 3) {
    return Status::InvalidArgument(
        StringPrintf("PNM supports 1 or 3 bands, raster has %d",
                     raster.bands()));
  }
  if (lo == hi) {
    double mn = 0.0, mx = 0.0;
    raster.MinMax(0, &mn, &mx);
    lo = mn;
    hi = mx > mn ? mx : mn + 1.0;
  }
  const double scale = 255.0 / (hi - lo);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IoError("cannot open " + path);
  std::fprintf(f, "%s\n%lld %lld\n255\n", raster.bands() == 1 ? "P5" : "P6",
               static_cast<long long>(raster.width()),
               static_cast<long long>(raster.height()));
  std::vector<uint8_t> row(static_cast<size_t>(raster.width()) *
                           static_cast<size_t>(raster.bands()));
  for (int64_t r = 0; r < raster.height(); ++r) {
    size_t i = 0;
    for (int64_t c = 0; c < raster.width(); ++c) {
      for (int b = 0; b < raster.bands(); ++b) {
        const double v = (raster.At(c, r, b) - lo) * scale;
        row[i++] = static_cast<uint8_t>(Clamp(v, 0.0, 255.0));
      }
    }
    if (std::fwrite(row.data(), 1, row.size(), f) != row.size()) {
      std::fclose(f);
      return Status::IoError("short write to " + path);
    }
  }
  std::fclose(f);
  return Status::OK();
}

namespace {

/// Reads the next whitespace/comment-delimited integer token.
bool ReadPnmInt(std::FILE* f, long* out) {
  int c = std::fgetc(f);
  while (c != EOF) {
    if (c == '#') {
      while (c != EOF && c != '\n') c = std::fgetc(f);
    } else if (std::isspace(c)) {
      c = std::fgetc(f);
    } else {
      break;
    }
  }
  if (c == EOF || !std::isdigit(c)) return false;
  long v = 0;
  while (c != EOF && std::isdigit(c)) {
    v = v * 10 + (c - '0');
    c = std::fgetc(f);
  }
  *out = v;
  return true;
}

}  // namespace

Result<Raster> ReadRasterPnm(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::IoError("cannot open " + path);
  char magic[3] = {};
  if (std::fread(magic, 1, 2, f) != 2 ||
      (std::strncmp(magic, "P5", 2) != 0 &&
       std::strncmp(magic, "P6", 2) != 0)) {
    std::fclose(f);
    return Status::ParseError("not a binary PGM/PPM file: " + path);
  }
  const int bands = magic[1] == '5' ? 1 : 3;
  long w = 0, h = 0, maxval = 0;
  if (!ReadPnmInt(f, &w) || !ReadPnmInt(f, &h) || !ReadPnmInt(f, &maxval) ||
      w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) {
    std::fclose(f);
    return Status::ParseError("bad PNM header in " + path);
  }
  Raster out(w, h, bands);
  std::vector<uint8_t> row(static_cast<size_t>(w) *
                           static_cast<size_t>(bands));
  for (long r = 0; r < h; ++r) {
    if (std::fread(row.data(), 1, row.size(), f) != row.size()) {
      std::fclose(f);
      return Status::IoError("truncated PNM data in " + path);
    }
    size_t i = 0;
    for (long c = 0; c < w; ++c) {
      for (int b = 0; b < bands; ++b) {
        out.Set(c, r, b, static_cast<double>(row[i++]));
      }
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace geostreams
