#include "raster/raster.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace geostreams {

Raster::Raster(int64_t width, int64_t height, int bands, double fill)
    : width_(width),
      height_(height),
      bands_(bands),
      data_(static_cast<size_t>(width * height * bands), fill) {}

Result<Raster> Raster::Create(int64_t width, int64_t height, int bands,
                              double fill) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument(
        StringPrintf("raster extents must be positive: %lld x %lld",
                     static_cast<long long>(width),
                     static_cast<long long>(height)));
  }
  if (bands < 1 || bands > kMaxBands) {
    return Status::InvalidArgument(
        StringPrintf("raster band count %d outside [1, %d]", bands,
                     kMaxBands));
  }
  return Raster(width, height, bands, fill);
}

double Raster::AtClamped(int64_t col, int64_t row, int band) const {
  col = Clamp<int64_t>(col, 0, width_ - 1);
  row = Clamp<int64_t>(row, 0, height_ - 1);
  return At(col, row, band);
}

void Raster::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Raster::MinMax(int band, double* min_v, double* max_v) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int64_t r = 0; r < height_; ++r) {
    for (int64_t c = 0; c < width_; ++c) {
      const double v = At(c, r, band);
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  *min_v = lo;
  *max_v = hi;
}

double Raster::Mean(int band) const {
  if (empty()) return 0.0;
  double sum = 0.0;
  for (int64_t r = 0; r < height_; ++r) {
    for (int64_t c = 0; c < width_; ++c) sum += At(c, r, band);
  }
  return sum / static_cast<double>(num_pixels());
}

Result<double> Raster::AbsDifference(const Raster& a, const Raster& b) {
  if (a.width() != b.width() || a.height() != b.height() ||
      a.bands() != b.bands()) {
    return Status::InvalidArgument("raster shapes differ");
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    sum += std::fabs(a.data()[i] - b.data()[i]);
  }
  return sum;
}

}  // namespace geostreams
