// In-memory raster images (Definition 4: an image is an
// equi-timestamp subset of a stream; materialized here as a grid).

#ifndef GEOSTREAMS_RASTER_RASTER_H_
#define GEOSTREAMS_RASTER_RASTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/value.h"
#include "geo/lattice.h"

namespace geostreams {

/// Dense band-interleaved raster of double samples. (col, row) with
/// row 0 first; geometry, when present, comes from the lattice.
class Raster {
 public:
  Raster() = default;
  Raster(int64_t width, int64_t height, int bands, double fill = 0.0);

  static Result<Raster> Create(int64_t width, int64_t height, int bands,
                               double fill = 0.0);

  int64_t width() const { return width_; }
  int64_t height() const { return height_; }
  int bands() const { return bands_; }
  int64_t num_pixels() const { return width_ * height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  bool InBounds(int64_t col, int64_t row) const {
    return col >= 0 && col < width_ && row >= 0 && row < height_;
  }

  double At(int64_t col, int64_t row, int band = 0) const {
    return data_[Index(col, row, band)];
  }
  void Set(int64_t col, int64_t row, double v) { data_[Index(col, row, 0)] = v; }
  void Set(int64_t col, int64_t row, int band, double v) {
    data_[Index(col, row, band)] = v;
  }

  /// Clamped read: coordinates are clamped into bounds (edge
  /// replication for neighbourhood kernels at frame boundaries).
  double AtClamped(int64_t col, int64_t row, int band = 0) const;

  void Fill(double v);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Optional geometry.
  const GridLattice& lattice() const { return lattice_; }
  void set_lattice(GridLattice lattice) { lattice_ = std::move(lattice); }

  /// Min/max over one band (ignoring NaN).
  void MinMax(int band, double* min_v, double* max_v) const;
  /// Mean over one band (NaN-free input assumed).
  double Mean(int band = 0) const;

  /// Sum of absolute per-pixel differences over all bands; rasters
  /// must have identical shape.
  static Result<double> AbsDifference(const Raster& a, const Raster& b);

  size_t ApproxBytes() const { return data_.capacity() * sizeof(double); }

 private:
  size_t Index(int64_t col, int64_t row, int band) const {
    return (static_cast<size_t>(row) * static_cast<size_t>(width_) +
            static_cast<size_t>(col)) *
               static_cast<size_t>(bands_) +
           static_cast<size_t>(band);
  }

  int64_t width_ = 0;
  int64_t height_ = 0;
  int bands_ = 1;
  std::vector<double> data_;
  GridLattice lattice_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_RASTER_RASTER_H_
