// Self-contained PNG encoder for the delivery operator.
//
// The paper's prototype "ships stream results back to clients using
// the PNG image format" (Sec. 4). This encoder emits standards-
// conforming PNG files using stored (uncompressed) DEFLATE blocks, so
// no zlib dependency is needed; any PNG reader can decode the output.

#ifndef GEOSTREAMS_RASTER_PNG_ENCODER_H_
#define GEOSTREAMS_RASTER_PNG_ENCODER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "raster/raster.h"

namespace geostreams {

/// PNG colour types supported by the encoder.
enum class PngColor : uint8_t {
  kGray = 0,  // 8-bit grayscale
  kRgb = 2,   // 8-bit RGB
};

/// Encodes 8-bit image rows into an in-memory PNG. `pixels` holds
/// height*width samples (gray) or height*width*3 samples (rgb),
/// row-major.
Result<std::vector<uint8_t>> EncodePng(const uint8_t* pixels, int64_t width,
                                       int64_t height, PngColor color);

/// Encodes a raster band (or 3 bands for RGB) to PNG, linearly mapping
/// [lo, hi] to [0, 255]. With lo == hi the raster min/max are used.
Result<std::vector<uint8_t>> RasterToPng(const Raster& raster,
                                         double lo = 0.0, double hi = 0.0);

/// Writes bytes to a file.
Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes);

/// Convenience: RasterToPng + WriteFileBytes.
Status WriteRasterPng(const Raster& raster, const std::string& path,
                      double lo = 0.0, double hi = 0.0);

}  // namespace geostreams

#endif  // GEOSTREAMS_RASTER_PNG_ENCODER_H_
