// Resampling kernels used by spatial transforms and re-projection
// (Sec. 3.2: nearest point, linear interpolation, k x k box averages).

#ifndef GEOSTREAMS_RASTER_RESAMPLE_H_
#define GEOSTREAMS_RASTER_RESAMPLE_H_

#include "common/status.h"
#include "raster/raster.h"

namespace geostreams {

enum class ResampleKernel : uint8_t {
  kNearest,
  kBilinear,
};

const char* ResampleKernelName(ResampleKernel k);

/// Samples band `band` of `src` at fractional pixel coordinates
/// (col, row) where integer coordinates are pixel centres. Coordinates
/// outside the raster are clamped to the edge.
double SampleRaster(const Raster& src, double col, double row, int band,
                    ResampleKernel kernel);

/// Mean of the k x k block of source pixels whose top-left corner is
/// (col0, row0); out-of-bounds pixels are excluded from the average.
double BoxAverage(const Raster& src, int64_t col0, int64_t row0, int k,
                  int band);

/// Full-raster resolution decrease by integer factor k (Fig. 2a).
Result<Raster> ReduceRaster(const Raster& src, int k);

/// Full-raster magnification by integer factor k: each source pixel
/// becomes a k x k block (Sec. 3.2's zoom example).
Result<Raster> MagnifyRaster(const Raster& src, int k);

}  // namespace geostreams

#endif  // GEOSTREAMS_RASTER_RESAMPLE_H_
