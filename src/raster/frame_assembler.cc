#include "raster/frame_assembler.h"

#include "common/string_util.h"

namespace geostreams {

Status FrameAssembler::Begin(const FrameInfo& info, int band_count) {
  if (active_) {
    return Status::FailedPrecondition(
        StringPrintf("frame %lld still open",
                     static_cast<long long>(frame_id_)));
  }
  GEOSTREAMS_RETURN_IF_ERROR(info.lattice.Validate());
  GEOSTREAMS_ASSIGN_OR_RETURN(
      raster_, Raster::Create(info.lattice.width(), info.lattice.height(),
                              band_count, nodata_));
  raster_.set_lattice(info.lattice);
  filled_.assign(static_cast<size_t>(raster_.num_pixels()), 0);
  frame_id_ = info.frame_id;
  points_seen_ = 0;
  active_ = true;
  return Status::OK();
}

Status FrameAssembler::Add(const PointBatch& batch) {
  if (!active_) {
    return Status::FailedPrecondition("no open frame");
  }
  if (batch.frame_id != frame_id_) {
    return Status::InvalidArgument(
        StringPrintf("batch frame %lld does not match open frame %lld",
                     static_cast<long long>(batch.frame_id),
                     static_cast<long long>(frame_id_)));
  }
  if (batch.band_count != raster_.bands()) {
    return Status::InvalidArgument(
        StringPrintf("batch bands %d != raster bands %d", batch.band_count,
                     raster_.bands()));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    const int64_t c = batch.cols[i];
    const int64_t r = batch.rows[i];
    if (!raster_.InBounds(c, r)) {
      return Status::OutOfRange(
          StringPrintf("point (%lld, %lld) outside frame lattice",
                       static_cast<long long>(c),
                       static_cast<long long>(r)));
    }
    for (int b = 0; b < batch.band_count; ++b) {
      raster_.Set(c, r, b, batch.ValueAt(i, b));
    }
    filled_[static_cast<size_t>(r) * static_cast<size_t>(raster_.width()) +
            static_cast<size_t>(c)] = 1;
  }
  points_seen_ += static_cast<int64_t>(batch.size());
  return Status::OK();
}

Result<AssembledFrame> FrameAssembler::Finish() {
  if (!active_) {
    return Status::FailedPrecondition("no open frame");
  }
  active_ = false;
  AssembledFrame frame;
  frame.raster = std::move(raster_);
  frame.filled = std::move(filled_);
  return frame;
}

}  // namespace geostreams
