#include "raster/png_encoder.h"

#include <cstdio>
#include <cstring>

#include "common/math_util.h"
#include "common/string_util.h"
#include "raster/checksum.h"

namespace geostreams {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

void AppendChunk(std::vector<uint8_t>* out, const char type[4],
                 const std::vector<uint8_t>& payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  const size_t crc_start = out->size();
  out->insert(out->end(), type, type + 4);
  out->insert(out->end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32(out->data() + crc_start, out->size() - crc_start);
  PutU32(out, crc);
}

/// Wraps raw bytes into a zlib stream of stored (type 0) DEFLATE
/// blocks. Stored blocks carry at most 65535 bytes each.
std::vector<uint8_t> ZlibStored(const std::vector<uint8_t>& raw) {
  std::vector<uint8_t> z;
  z.reserve(raw.size() + raw.size() / 65535 * 5 + 16);
  z.push_back(0x78);  // CMF: deflate, 32K window
  z.push_back(0x01);  // FLG: check bits, no dict, fastest
  size_t pos = 0;
  do {
    const size_t n = std::min<size_t>(raw.size() - pos, 65535);
    const bool final_block = pos + n == raw.size();
    z.push_back(final_block ? 1 : 0);  // BFINAL, BTYPE=00
    z.push_back(static_cast<uint8_t>(n & 0xFF));
    z.push_back(static_cast<uint8_t>(n >> 8));
    z.push_back(static_cast<uint8_t>(~n & 0xFF));
    z.push_back(static_cast<uint8_t>((~n >> 8) & 0xFF));
    z.insert(z.end(), raw.begin() + static_cast<ptrdiff_t>(pos),
             raw.begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
  } while (pos < raw.size());
  const uint32_t adler = Adler32(1, raw.data(), raw.size());
  PutU32(&z, adler);
  return z;
}

}  // namespace

Result<std::vector<uint8_t>> EncodePng(const uint8_t* pixels, int64_t width,
                                       int64_t height, PngColor color) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("PNG dimensions must be positive");
  }
  if (width > 0x7FFFFFFF || height > 0x7FFFFFFF) {
    return Status::OutOfRange("PNG dimensions exceed 2^31-1");
  }
  const int channels = color == PngColor::kGray ? 1 : 3;
  const size_t row_bytes =
      static_cast<size_t>(width) * static_cast<size_t>(channels);

  std::vector<uint8_t> out;
  static const uint8_t kSignature[8] = {0x89, 'P', 'N', 'G',
                                        '\r', '\n', 0x1A, '\n'};
  out.insert(out.end(), kSignature, kSignature + 8);

  // IHDR.
  std::vector<uint8_t> ihdr;
  PutU32(&ihdr, static_cast<uint32_t>(width));
  PutU32(&ihdr, static_cast<uint32_t>(height));
  ihdr.push_back(8);  // bit depth
  ihdr.push_back(static_cast<uint8_t>(color));
  ihdr.push_back(0);  // compression
  ihdr.push_back(0);  // filter method
  ihdr.push_back(0);  // no interlace
  AppendChunk(&out, "IHDR", ihdr);

  // Raw scanlines, each prefixed by filter byte 0 (None).
  std::vector<uint8_t> raw;
  raw.reserve(static_cast<size_t>(height) * (row_bytes + 1));
  for (int64_t r = 0; r < height; ++r) {
    raw.push_back(0);
    const uint8_t* row = pixels + static_cast<size_t>(r) * row_bytes;
    raw.insert(raw.end(), row, row + row_bytes);
  }
  AppendChunk(&out, "IDAT", ZlibStored(raw));
  AppendChunk(&out, "IEND", {});
  return out;
}

Result<std::vector<uint8_t>> RasterToPng(const Raster& raster, double lo,
                                         double hi) {
  if (raster.empty()) return Status::InvalidArgument("empty raster");
  if (raster.bands() != 1 && raster.bands() != 3) {
    return Status::InvalidArgument(
        StringPrintf("PNG supports 1 or 3 bands, raster has %d",
                     raster.bands()));
  }
  if (lo == hi) {
    double mn = 0.0, mx = 0.0;
    raster.MinMax(0, &mn, &mx);
    for (int b = 1; b < raster.bands(); ++b) {
      double bmn = 0.0, bmx = 0.0;
      raster.MinMax(b, &bmn, &bmx);
      mn = std::min(mn, bmn);
      mx = std::max(mx, bmx);
    }
    lo = mn;
    hi = mx > mn ? mx : mn + 1.0;
  }
  const double scale = 255.0 / (hi - lo);
  const int channels = raster.bands();
  std::vector<uint8_t> pixels(
      static_cast<size_t>(raster.num_pixels()) *
      static_cast<size_t>(channels));
  size_t i = 0;
  for (int64_t r = 0; r < raster.height(); ++r) {
    for (int64_t c = 0; c < raster.width(); ++c) {
      for (int b = 0; b < channels; ++b) {
        const double v = (raster.At(c, r, b) - lo) * scale;
        pixels[i++] = static_cast<uint8_t>(Clamp(v, 0.0, 255.0));
      }
    }
  }
  return EncodePng(pixels.data(), raster.width(), raster.height(),
                   channels == 1 ? PngColor::kGray : PngColor::kRgb);
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IoError("cannot open " + path);
  const size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) return Status::IoError("short write to " + path);
  return Status::OK();
}

Status WriteRasterPng(const Raster& raster, const std::string& path,
                      double lo, double hi) {
  GEOSTREAMS_ASSIGN_OR_RETURN(std::vector<uint8_t> png,
                              RasterToPng(raster, lo, hi));
  return WriteFileBytes(path, png);
}

}  // namespace geostreams
