#include "raster/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace geostreams {

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo),
      hi_(hi),
      bin_width_((hi - lo) / (bins > 0 ? bins : 1)),
      counts_(static_cast<size_t>(bins > 0 ? bins : 1), 0) {}

void Histogram::Add(double v) {
  if (std::isnan(v)) return;
  ++counts_[static_cast<size_t>(BinOf(v))];
  ++total_;
  sum_ += v;
  sum_sq_ += v * v;
}

void Histogram::AddN(const double* values, size_t n) {
  for (size_t i = 0; i < n; ++i) Add(values[i]);
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

int Histogram::BinOf(double v) const {
  const int b = static_cast<int>((v - lo_) / bin_width_);
  return Clamp(b, 0, bins() - 1);
}

double Histogram::BinCenter(int bin) const {
  return lo_ + (bin + 0.5) * bin_width_;
}

double Histogram::Cdf(double v) const {
  if (total_ == 0) return 0.0;
  const int b = BinOf(v);
  uint64_t below = 0;
  for (int i = 0; i <= b; ++i) below += counts_[static_cast<size_t>(i)];
  return static_cast<double>(below) / static_cast<double>(total_);
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = Clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(
      q * static_cast<double>(total_));
  uint64_t seen = 0;
  for (int i = 0; i < bins(); ++i) {
    seen += counts_[static_cast<size_t>(i)];
    if (seen >= target) return BinCenter(i);
  }
  return hi_;
}

double Histogram::Mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double Histogram::StdDev() const {
  if (total_ == 0) return 0.0;
  const double m = Mean();
  const double var = sum_sq_ / static_cast<double>(total_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace geostreams
