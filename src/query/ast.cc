#include "query/ast.h"

#include "common/string_util.h"

namespace geostreams {

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kStreamRef:
      return "stream";
    case ExprKind::kSpatialRestrict:
      return "region";
    case ExprKind::kTemporalRestrict:
      return "time";
    case ExprKind::kValueRestrict:
      return "vrange";
    case ExprKind::kValueTransform:
      return "vmap";
    case ExprKind::kStretch:
      return "stretch";
    case ExprKind::kMagnify:
      return "magnify";
    case ExprKind::kReduce:
      return "reduce";
    case ExprKind::kReproject:
      return "reproject";
    case ExprKind::kCompose:
      return "compose";
    case ExprKind::kNdviMacro:
      return "ndvi";
    case ExprKind::kBandStack:
      return "stack";
    case ExprKind::kAggregate:
      return "aggregate";
    case ExprKind::kShed:
      return "shed";
  }
  return "?";
}

namespace {
const char* ComposeKeyword(ComposeFn gamma) {
  switch (gamma) {
    case ComposeFn::kAdd:
      return "add";
    case ComposeFn::kSubtract:
      return "sub";
    case ComposeFn::kMultiply:
      return "mul";
    case ComposeFn::kDivide:
      return "div";
    case ComposeFn::kSupremum:
      return "sup";
    case ComposeFn::kInfimum:
      return "inf";
  }
  return "?";
}
}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kStreamRef:
      return stream_name;
    case ExprKind::kSpatialRestrict:
      return StringPrintf("region(%s, %s)", child->ToString().c_str(),
                          region->ToString().c_str());
    case ExprKind::kTemporalRestrict:
      return StringPrintf("time(%s, %s)", child->ToString().c_str(),
                          times.ToQueryString().c_str());
    case ExprKind::kValueRestrict: {
      std::string s = "vrange(" + child->ToString();
      for (const ValueBandRange& r : ranges) {
        s += StringPrintf(", %d, %g, %g", r.band, r.lo, r.hi);
      }
      return s + ")";
    }
    case ExprKind::kValueTransform:
      switch (value_spec.kind) {
        case ValueFnSpec::Kind::kGray:
          return StringPrintf("gray(%s)", child->ToString().c_str());
        case ValueFnSpec::Kind::kRescale:
          return StringPrintf("rescale(%s, %g, %g)",
                              child->ToString().c_str(), value_spec.a,
                              value_spec.b);
        case ValueFnSpec::Kind::kClamp:
          return StringPrintf("clampv(%s, %g, %g)",
                              child->ToString().c_str(), value_spec.a,
                              value_spec.b);
        case ValueFnSpec::Kind::kAbs:
          return StringPrintf("absv(%s)", child->ToString().c_str());
        case ValueFnSpec::Kind::kBandSelect:
          return StringPrintf("band(%s, %d)", child->ToString().c_str(),
                              value_spec.band);
        case ValueFnSpec::Kind::kCustom:
          break;  // programmatic function: no query-language spelling
      }
      return StringPrintf("vmap[%s](%s)", value_fn.name.c_str(),
                          child->ToString().c_str());
    case ExprKind::kStretch:
      return StringPrintf("stretch(%s, \"%s\")", child->ToString().c_str(),
                          StretchModeName(stretch.mode));
    case ExprKind::kMagnify:
      return StringPrintf("magnify(%s, %d)", child->ToString().c_str(),
                          factor);
    case ExprKind::kReduce:
      return StringPrintf("reduce(%s, %d)", child->ToString().c_str(),
                          factor);
    case ExprKind::kReproject:
      return StringPrintf("reproject(%s, \"%s\", \"%s\")",
                          child->ToString().c_str(), target_crs.c_str(),
                          ResampleKernelName(kernel));
    case ExprKind::kCompose:
      return StringPrintf("%s(%s, %s)", ComposeKeyword(gamma),
                          child->ToString().c_str(),
                          right->ToString().c_str());
    case ExprKind::kNdviMacro:
      return StringPrintf("ndvi(%s, %s)", child->ToString().c_str(),
                          right->ToString().c_str());
    case ExprKind::kBandStack:
      return StringPrintf("stack(%s, %s)", child->ToString().c_str(),
                          right->ToString().c_str());
    case ExprKind::kShed: {
      const char* mode = shed_mode == SheddingMode::kDropPoints ? "points"
                         : shed_mode == SheddingMode::kDropRows ? "rows"
                                                                : "frames";
      return StringPrintf("shed(%s, \"%s\", %g)", child->ToString().c_str(),
                          mode, shed_keep);
    }
    case ExprKind::kAggregate: {
      std::string s =
          StringPrintf("aggregate(%s, \"%s\", %d", child->ToString().c_str(),
                       AggregateFnName(agg_fn), agg_window);
      if (agg_slide > 0) s += StringPrintf(", %d", agg_slide);
      for (const RegionPtr& r : agg_regions) s += ", " + r->ToString();
      return s + ")";
    }
  }
  return "?";
}

ExprPtr MakeStreamRef(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStreamRef;
  e->stream_name = std::move(name);
  return e;
}

ExprPtr MakeSpatialRestrict(ExprPtr child, RegionPtr region) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSpatialRestrict;
  e->child = std::move(child);
  e->region = std::move(region);
  return e;
}

ExprPtr MakeTemporalRestrict(ExprPtr child, TimeSet times) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kTemporalRestrict;
  e->child = std::move(child);
  e->times = std::move(times);
  return e;
}

ExprPtr MakeValueRestrict(ExprPtr child,
                          std::vector<ValueBandRange> ranges) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kValueRestrict;
  e->child = std::move(child);
  e->ranges = std::move(ranges);
  return e;
}

ExprPtr MakeValueTransform(ExprPtr child, ValueFn fn) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kValueTransform;
  e->child = std::move(child);
  e->value_fn = std::move(fn);
  return e;
}

ExprPtr MakeStretch(ExprPtr child, StretchOptions options) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStretch;
  e->child = std::move(child);
  e->stretch = options;
  return e;
}

ExprPtr MakeMagnify(ExprPtr child, int factor) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kMagnify;
  e->child = std::move(child);
  e->factor = factor;
  return e;
}

ExprPtr MakeReduce(ExprPtr child, int factor) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kReduce;
  e->child = std::move(child);
  e->factor = factor;
  return e;
}

ExprPtr MakeReproject(ExprPtr child, std::string target_crs,
                      ResampleKernel kernel) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kReproject;
  e->child = std::move(child);
  e->target_crs = std::move(target_crs);
  e->kernel = kernel;
  return e;
}

ExprPtr MakeCompose(ComposeFn gamma, ExprPtr left, ExprPtr right) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCompose;
  e->gamma = gamma;
  e->child = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeNdvi(ExprPtr nir, ExprPtr vis) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNdviMacro;
  e->child = std::move(nir);
  e->right = std::move(vis);
  return e;
}

ExprPtr MakeBandStack(ExprPtr left, ExprPtr right) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBandStack;
  e->child = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeAggregate(ExprPtr child, AggregateFn fn,
                      std::vector<RegionPtr> regions, int window,
                      int slide) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregate;
  e->child = std::move(child);
  e->agg_fn = fn;
  e->agg_regions = std::move(regions);
  e->agg_window = window;
  e->agg_slide = slide;
  return e;
}

ExprPtr MakeShed(ExprPtr child, SheddingMode mode, double keep) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kShed;
  e->child = std::move(child);
  e->shed_mode = mode;
  e->shed_keep = keep;
  return e;
}

ExprPtr CloneExpr(const ExprPtr& expr) {
  if (!expr) return nullptr;
  auto e = std::make_shared<Expr>(*expr);
  e->child = CloneExpr(expr->child);
  e->right = CloneExpr(expr->right);
  return e;
}

int ExprSize(const ExprPtr& expr) {
  if (!expr) return 0;
  return 1 + ExprSize(expr->child) + ExprSize(expr->right);
}

}  // namespace geostreams
