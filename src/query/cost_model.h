// Analytical cost model for query plans (Sec. 3's cost discussion
// made quantitative).
//
// Costs are estimated per nominal frame of each source stream: how
// many points flow through each operator (driven by restriction
// selectivities and resolution changes), a per-point CPU weight, and
// the intermediate buffering each operator needs. The optimizer's
// pushdown rules are justified by exactly these numbers; EXPLAIN
// prints them and E6 validates them against measurements.

#ifndef GEOSTREAMS_QUERY_COST_MODEL_H_
#define GEOSTREAMS_QUERY_COST_MODEL_H_

#include <map>
#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace geostreams {

/// Estimated cost of one node, per nominal frame.
struct NodeCost {
  double input_points = 0.0;
  double output_points = 0.0;
  /// Abstract CPU units (weighted per-point work).
  double cpu = 0.0;
  /// Intermediate state the operator must hold.
  double buffer_bytes = 0.0;
  /// Fraction of input points surviving (restrictions) or the
  /// output/input ratio (transforms).
  double selectivity = 1.0;
};

/// Whole-plan summary.
struct PlanCost {
  double total_cpu = 0.0;
  double total_points_processed = 0.0;
  double max_buffer_bytes = 0.0;

  std::string ToString() const;
};

/// Estimates the cost of an analyzed query. Per-node details are
/// keyed by the node pointer when `per_node` is supplied.
Result<PlanCost> EstimatePlanCost(
    const ExprPtr& analyzed,
    std::map<const Expr*, NodeCost>* per_node = nullptr);

}  // namespace geostreams

#endif  // GEOSTREAMS_QUERY_COST_MODEL_H_
