#include "query/parser.h"

#include <cmath>

#include "common/string_util.h"
#include "query/lexer.h"

namespace geostreams {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != TokenKind::kEnd) {
      return Err("trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("%s (at offset %zu)", msg.c_str(), Peek().offset));
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Err(StringPrintf("expected %s", what));
    }
    ++pos_;
    return Status::OK();
  }

  Result<double> ExpectNumber() {
    if (Peek().kind != TokenKind::kNumber) return Err("expected a number");
    return Next().number;
  }

  Result<int> ExpectInt(const char* what) {
    GEOSTREAMS_ASSIGN_OR_RETURN(double v, ExpectNumber());
    if (v != std::floor(v)) {
      return Err(StringPrintf("%s must be an integer", what));
    }
    return static_cast<int>(v);
  }

  Result<std::string> ExpectString() {
    if (Peek().kind != TokenKind::kString) {
      return Err("expected a quoted string");
    }
    return Next().text;
  }

  bool ConsumeComma() {
    if (Peek().kind == TokenKind::kComma) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ExprPtr> ParseExpr() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err("expected a stream name or function");
    }
    const Token head = Next();
    if (Peek().kind != TokenKind::kLParen) {
      // A bare identifier is a stream reference.
      return MakeStreamRef(head.text);
    }
    ++pos_;  // consume '('
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr e, ParseCall(ToLower(head.text)));
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return e;
  }

  Result<ExprPtr> ParseCall(const std::string& fn) {
    if (fn == "region") return ParseRegionCall();
    if (fn == "time") return ParseTimeCall();
    if (fn == "vrange") return ParseVrangeCall();
    if (fn == "gray") return ParseValueFnCall(ValueFnSpec::Kind::kGray, 0);
    if (fn == "rescale") {
      return ParseValueFnCall(ValueFnSpec::Kind::kRescale, 2);
    }
    if (fn == "clampv") return ParseValueFnCall(ValueFnSpec::Kind::kClamp, 2);
    if (fn == "absv") return ParseValueFnCall(ValueFnSpec::Kind::kAbs, 0);
    if (fn == "band") {
      return ParseValueFnCall(ValueFnSpec::Kind::kBandSelect, -1);
    }
    if (fn == "stretch") return ParseStretchCall();
    if (fn == "magnify" || fn == "reduce") return ParseFactorCall(fn);
    if (fn == "reproject") return ParseReprojectCall();
    if (fn == "add") return ParseComposeCall(ComposeFn::kAdd);
    if (fn == "sub") return ParseComposeCall(ComposeFn::kSubtract);
    if (fn == "mul") return ParseComposeCall(ComposeFn::kMultiply);
    if (fn == "div") return ParseComposeCall(ComposeFn::kDivide);
    if (fn == "sup") return ParseComposeCall(ComposeFn::kSupremum);
    if (fn == "inf") return ParseComposeCall(ComposeFn::kInfimum);
    if (fn == "ndvi") return ParseNdviCall();
    if (fn == "stack") return ParseStackCall();
    if (fn == "rgb") return ParseRgbCall();
    if (fn == "aggregate") return ParseAggregateCall();
    if (fn == "shed") return ParseShedCall();
    return Err("unknown function '" + fn + "'");
  }

  // region(expr, regionspec)
  Result<ExprPtr> ParseRegionCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(RegionPtr region, ParseRegionSpec());
    return MakeSpatialRestrict(std::move(child), std::move(region));
  }

  Result<RegionPtr> ParseRegionSpec() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err("expected a region constructor");
    }
    const std::string name = ToLower(Next().text);
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    RegionPtr region;
    if (name == "bbox") {
      double v[4];
      for (int i = 0; i < 4; ++i) {
        if (i) GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
        GEOSTREAMS_ASSIGN_OR_RETURN(v[i], ExpectNumber());
      }
      region = MakeBBoxRegion(v[0], v[1], v[2], v[3]);
    } else if (name == "polygon") {
      std::vector<std::pair<double, double>> verts;
      do {
        GEOSTREAMS_ASSIGN_OR_RETURN(double x, ExpectNumber());
        GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
        GEOSTREAMS_ASSIGN_OR_RETURN(double y, ExpectNumber());
        verts.emplace_back(x, y);
      } while (ConsumeComma());
      if (verts.size() < 3) return Err("polygon needs at least 3 vertices");
      region = MakePolygonRegion(std::move(verts));
    } else if (name == "disk") {
      GEOSTREAMS_ASSIGN_OR_RETURN(double cx, ExpectNumber());
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(double cy, ExpectNumber());
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(double r, ExpectNumber());
      region = ConstraintRegion::Disk(cx, cy, r);
    } else if (name == "points") {
      GEOSTREAMS_ASSIGN_OR_RETURN(double cell, ExpectNumber());
      std::vector<std::pair<double, double>> pts;
      while (ConsumeComma()) {
        GEOSTREAMS_ASSIGN_OR_RETURN(double x, ExpectNumber());
        GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
        GEOSTREAMS_ASSIGN_OR_RETURN(double y, ExpectNumber());
        pts.emplace_back(x, y);
      }
      if (pts.empty()) return Err("points() needs at least one point");
      region = std::make_shared<EnumeratedRegion>(std::move(pts), cell);
    } else if (name == "all") {
      region = AllRegion::Instance();
    } else if (name == "union" || name == "intersection") {
      std::vector<RegionPtr> children;
      do {
        GEOSTREAMS_ASSIGN_OR_RETURN(RegionPtr r, ParseRegionSpec());
        children.push_back(std::move(r));
      } while (ConsumeComma());
      region = name == "union" ? MakeUnionRegion(std::move(children))
                               : MakeIntersectionRegion(std::move(children));
    } else {
      return Err("unknown region constructor '" + name + "'");
    }
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return region;
  }

  // time(expr, timespec [, timespec]...)
  Result<ExprPtr> ParseTimeCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    TimeSet times;
    do {
      GEOSTREAMS_ASSIGN_OR_RETURN(TimeSet t, ParseTimeSpec());
      times.Add(t);
    } while (ConsumeComma());
    return MakeTemporalRestrict(std::move(child), std::move(times));
  }

  Result<TimeSet> ParseTimeSpec() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err("expected a time constructor");
    }
    const std::string name = ToLower(Next().text);
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    TimeSet out;
    if (name == "range") {
      GEOSTREAMS_ASSIGN_OR_RETURN(double lo, ExpectNumber());
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(double hi, ExpectNumber());
      out = TimeSet::Range(static_cast<int64_t>(lo),
                           static_cast<int64_t>(hi));
    } else if (name == "instants") {
      std::vector<int64_t> ts;
      do {
        GEOSTREAMS_ASSIGN_OR_RETURN(double t, ExpectNumber());
        ts.push_back(static_cast<int64_t>(t));
      } while (ConsumeComma());
      out = TimeSet::Instants(std::move(ts));
    } else if (name == "every") {
      GEOSTREAMS_ASSIGN_OR_RETURN(double p, ExpectNumber());
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(double lo, ExpectNumber());
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(double hi, ExpectNumber());
      out = TimeSet::Every(static_cast<int64_t>(p), static_cast<int64_t>(lo),
                           static_cast<int64_t>(hi));
    } else if (name == "all") {
      out = TimeSet::All();
    } else {
      return Err("unknown time constructor '" + name + "'");
    }
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return out;
  }

  // vrange(expr, band, lo, hi [, band, lo, hi]...)
  Result<ExprPtr> ParseVrangeCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    std::vector<ValueBandRange> ranges;
    while (ConsumeComma()) {
      ValueBandRange r;
      GEOSTREAMS_ASSIGN_OR_RETURN(r.band, ExpectInt("band"));
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(r.lo, ExpectNumber());
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(r.hi, ExpectNumber());
      ranges.push_back(r);
    }
    if (ranges.empty()) return Err("vrange needs at least one band range");
    return MakeValueRestrict(std::move(child), std::move(ranges));
  }

  Result<ExprPtr> ParseValueFnCall(ValueFnSpec::Kind kind, int numeric_args) {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    ValueFnSpec spec;
    spec.kind = kind;
    if (kind == ValueFnSpec::Kind::kBandSelect) {
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(spec.band, ExpectInt("band"));
    } else if (numeric_args == 2) {
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(spec.a, ExpectNumber());
      GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      GEOSTREAMS_ASSIGN_OR_RETURN(spec.b, ExpectNumber());
    }
    ExprPtr e = MakeValueTransform(std::move(child), ValueFn());
    e->value_spec = spec;
    return e;
  }

  // stretch(expr, "linear"|"histeq"|"gauss" [, clip_fraction])
  Result<ExprPtr> ParseStretchCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(std::string mode, ExpectString());
    StretchOptions opts;
    const std::string m = ToLower(mode);
    if (m == "linear") {
      opts.mode = StretchMode::kLinear;
    } else if (m == "histeq" || m == "hist-eq") {
      opts.mode = StretchMode::kHistogramEqualization;
    } else if (m == "gauss" || m == "gaussian") {
      opts.mode = StretchMode::kGaussian;
    } else {
      return Err("unknown stretch mode '" + mode + "'");
    }
    if (ConsumeComma()) {
      GEOSTREAMS_ASSIGN_OR_RETURN(opts.clip_fraction, ExpectNumber());
    }
    return MakeStretch(std::move(child), opts);
  }

  Result<ExprPtr> ParseFactorCall(const std::string& fn) {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(int k, ExpectInt("factor"));
    if (k < 1) return Err("factor must be >= 1");
    return fn == "magnify" ? MakeMagnify(std::move(child), k)
                           : MakeReduce(std::move(child), k);
  }

  // reproject(expr, "crs" [, "nearest"|"bilinear"])
  Result<ExprPtr> ParseReprojectCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(std::string crs, ExpectString());
    ResampleKernel kernel = ResampleKernel::kNearest;
    if (ConsumeComma()) {
      GEOSTREAMS_ASSIGN_OR_RETURN(std::string k, ExpectString());
      const std::string kl = ToLower(k);
      if (kl == "nearest") {
        kernel = ResampleKernel::kNearest;
      } else if (kl == "bilinear") {
        kernel = ResampleKernel::kBilinear;
      } else {
        return Err("unknown resample kernel '" + k + "'");
      }
    }
    return MakeReproject(std::move(child), std::move(crs), kernel);
  }

  Result<ExprPtr> ParseComposeCall(ComposeFn gamma) {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr left, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr right, ParseExpr());
    return MakeCompose(gamma, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseNdviCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr nir, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr vis, ParseExpr());
    return MakeNdvi(std::move(nir), std::move(vis));
  }

  // stack(e1, e2): band concatenation.
  Result<ExprPtr> ParseStackCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr left, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr right, ParseExpr());
    return MakeBandStack(std::move(left), std::move(right));
  }

  // rgb(r, g, b): sugar for stack(stack(r, g), b).
  Result<ExprPtr> ParseRgbCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr r, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr b, ParseExpr());
    return MakeBandStack(MakeBandStack(std::move(r), std::move(g)),
                         std::move(b));
  }

  // shed(expr, "points"|"rows"|"frames", keep_fraction)
  Result<ExprPtr> ParseShedCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(std::string mode_name, ExpectString());
    SheddingMode mode;
    const std::string m = ToLower(mode_name);
    if (m == "points") {
      mode = SheddingMode::kDropPoints;
    } else if (m == "rows") {
      mode = SheddingMode::kDropRows;
    } else if (m == "frames") {
      mode = SheddingMode::kDropFrames;
    } else {
      return Err("unknown shedding mode '" + mode_name + "'");
    }
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(double keep, ExpectNumber());
    if (keep < 0.0 || keep > 1.0) {
      return Err("keep fraction must be in [0, 1]");
    }
    return MakeShed(std::move(child), mode, keep);
  }

  // aggregate(expr, "fn", window [, slide], regionspec [, regionspec]...)
  Result<ExprPtr> ParseAggregateCall() {
    GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(std::string fn_name, ExpectString());
    AggregateFn fn;
    const std::string f = ToLower(fn_name);
    if (f == "count") {
      fn = AggregateFn::kCount;
    } else if (f == "sum") {
      fn = AggregateFn::kSum;
    } else if (f == "avg") {
      fn = AggregateFn::kAvg;
    } else if (f == "min") {
      fn = AggregateFn::kMin;
    } else if (f == "max") {
      fn = AggregateFn::kMax;
    } else {
      return Err("unknown aggregate '" + fn_name + "'");
    }
    GEOSTREAMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
    GEOSTREAMS_ASSIGN_OR_RETURN(int window, ExpectInt("window"));
    if (window < 1) return Err("window must be >= 1");
    int slide = 0;
    std::vector<RegionPtr> regions;
    bool first = true;
    while (ConsumeComma()) {
      // An optional numeric slide may precede the region list.
      if (first && Peek().kind == TokenKind::kNumber) {
        GEOSTREAMS_ASSIGN_OR_RETURN(slide, ExpectInt("slide"));
        if (slide < 1 || slide > window) {
          return Err("slide must be in [1, window]");
        }
        first = false;
        continue;
      }
      first = false;
      GEOSTREAMS_ASSIGN_OR_RETURN(RegionPtr r, ParseRegionSpec());
      regions.push_back(std::move(r));
    }
    if (regions.empty()) return Err("aggregate needs at least one region");
    return MakeAggregate(std::move(child), fn, std::move(regions), window,
                         slide);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseQuery(std::string_view query) {
  GEOSTREAMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace geostreams
