#include "query/explain.h"

#include "common/string_util.h"
#include "query/cost_model.h"

namespace geostreams {

namespace {

std::string NodeLabel(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kStreamRef:
      return "Stream " + e.stream_name;
    case ExprKind::kSpatialRestrict:
      return std::string("SpatialRestrict ") + e.region->ToString() +
             (e.derived_restriction ? " [derived]" : "");
    case ExprKind::kTemporalRestrict:
      return "TemporalRestrict " + e.times.ToString();
    case ExprKind::kValueRestrict: {
      std::string s = "ValueRestrict";
      for (const ValueBandRange& r : e.ranges) {
        s += StringPrintf(" b%d:[%g, %g]", r.band, r.lo, r.hi);
      }
      return s;
    }
    case ExprKind::kValueTransform:
      return "ValueTransform " + e.value_fn.name;
    case ExprKind::kStretch:
      return StringPrintf("StretchTransform %s",
                          StretchModeName(e.stretch.mode));
    case ExprKind::kMagnify:
      return StringPrintf("Magnify x%d", e.factor);
    case ExprKind::kReduce:
      return StringPrintf("Reduce 1/%d", e.factor);
    case ExprKind::kReproject:
      return StringPrintf("Reproject -> %s (%s)", e.target_crs.c_str(),
                          ResampleKernelName(e.kernel));
    case ExprKind::kCompose:
      return StringPrintf("Compose gamma=%s", ComposeFnName(e.gamma));
    case ExprKind::kNdviMacro:
      return "NdviMacro";
    case ExprKind::kBandStack:
      return "BandStack";
    case ExprKind::kShed:
      return StringPrintf("LoadShed %s keep=%.0f%%",
                          SheddingModeName(e.shed_mode),
                          e.shed_keep * 100.0);
    case ExprKind::kAggregate:
      return StringPrintf("Aggregate %s window=%d regions=%zu",
                          AggregateFnName(e.agg_fn), e.agg_window,
                          e.agg_regions.size());
  }
  return "?";
}

void Render(const Expr* e, int depth,
            const std::map<const Expr*, NodeCost>* costs,
            std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += NodeLabel(*e);
  if (e->analyzed) {
    *out += StringPrintf("  {%s, %s}",
                         e->out_desc.value_set().ToString().c_str(),
                         e->out_desc.reference_lattice().crs()
                             ? e->out_desc.reference_lattice()
                                   .crs()
                                   ->name()
                                   .c_str()
                             : "<none>");
  }
  if (costs) {
    auto it = costs->find(e);
    if (it != costs->end()) {
      *out += StringPrintf(
          "  [in=%.0f out=%.0f cpu=%.0f buf=%.0fB]", it->second.input_points,
          it->second.output_points, it->second.cpu,
          it->second.buffer_bytes);
    }
  }
  *out += "\n";
  if (e->child) Render(e->child.get(), depth + 1, costs, out);
  if (e->right) Render(e->right.get(), depth + 1, costs, out);
}

}  // namespace

std::string ExplainPlanMetrics(const ExecutablePlan& plan) {
  std::string out;
  out += StringPrintf("plan output: %s\n",
                      plan.output_descriptor().ToString().c_str());
  OperatorMetrics total;
  for (const auto& op : plan.operators()) {
    const OperatorMetrics& m = op->metrics();
    total.MergeFrom(m);
    out += StringPrintf(
        "%-22s points_in=%-10llu points_out=%-10llu frames=%llu "
        "buffered_peak=%lluB\n",
        op->name().c_str(), static_cast<unsigned long long>(m.points_in),
        static_cast<unsigned long long>(m.points_out),
        static_cast<unsigned long long>(m.frames_in),
        static_cast<unsigned long long>(m.buffered_bytes_high_water));
  }
  out += StringPrintf(
      "%-22s points_in=%-10llu points_out=%-10llu frames=%llu "
      "buffered_peak<=%lluB (worst op %lluB)\n",
      "(total)", static_cast<unsigned long long>(total.points_in),
      static_cast<unsigned long long>(total.points_out),
      static_cast<unsigned long long>(total.frames_in),
      static_cast<unsigned long long>(total.buffered_bytes_high_water),
      static_cast<unsigned long long>(total.buffered_bytes_high_water_max));
  return out;
}

std::string ExplainQuery(const ExprPtr& analyzed, bool with_cost) {
  if (!analyzed) return "(null query)\n";
  std::map<const Expr*, NodeCost> costs;
  bool have_costs = false;
  if (with_cost && analyzed->analyzed) {
    have_costs = EstimatePlanCost(analyzed, &costs).ok();
  }
  std::string out;
  Render(analyzed.get(), 0, have_costs ? &costs : nullptr, &out);
  return out;
}

}  // namespace geostreams
