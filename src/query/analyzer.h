// Semantic analysis of query expressions.
//
// Checks the preconditions of the Sec. 3 operators against a catalog
// of registered GeoStreams and annotates every node with its output
// descriptor — the witness that the algebra is closed (each operator
// result is again a GeoStream with a CRS, value set, lattice and
// organization).
//
// Checked preconditions:
//  * stream references exist in the catalog;
//  * composition inputs share the coordinate system (Sec. 2: "one
//    precondition for applying operations on pairs of image data is
//    that their point lattices are based on the same coordinate
//    system"), have aligned lattices and compatible value sets;
//  * value transforms match the child's band count;
//  * stretches apply to single-band framed streams;
//  * re-projection targets resolve in the CRS registry.

#ifndef GEOSTREAMS_QUERY_ANALYZER_H_
#define GEOSTREAMS_QUERY_ANALYZER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace geostreams {

/// Catalog of available input streams, by name.
class StreamCatalog {
 public:
  Status Register(const GeoStreamDescriptor& desc);
  Result<GeoStreamDescriptor> Lookup(const std::string& name) const;
  const std::map<std::string, GeoStreamDescriptor>& streams() const {
    return streams_;
  }

 private:
  std::map<std::string, GeoStreamDescriptor> streams_;
};

/// Analyzes (and annotates) the tree in place. Idempotent.
Status AnalyzeQuery(const StreamCatalog& catalog, const ExprPtr& expr);

}  // namespace geostreams

#endif  // GEOSTREAMS_QUERY_ANALYZER_H_
