// Lowers analyzed expression trees to wired physical operator plans.
//
// The physical plan is the Fig. 3 "Execution" stage for one continuous
// query: a DAG of push-based operators whose leaves are named stream
// inputs. A stream referenced more than once (e.g. both sides of an
// expanded NDVI) is fanned out through a broadcast sink.

#ifndef GEOSTREAMS_QUERY_PLANNER_H_
#define GEOSTREAMS_QUERY_PLANNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "query/ast.h"
#include "stream/operator.h"

namespace geostreams {

/// Fan-out sink: forwards every event to each registered target.
class BroadcastSink : public EventSink {
 public:
  void AddTarget(EventSink* sink) { targets_.push_back(sink); }

  Status Consume(const StreamEvent& event) override {
    for (EventSink* t : targets_) {
      GEOSTREAMS_RETURN_IF_ERROR(t->Consume(event));
    }
    return Status::OK();
  }

  size_t num_targets() const { return targets_.size(); }

 private:
  std::vector<EventSink*> targets_;
};

/// A runnable physical plan. Push source events into input(name);
/// results arrive at the sink the plan was built with.
class ExecutablePlan {
 public:
  /// Entry sink for source stream `name`; null when the plan does not
  /// read that stream.
  EventSink* input(const std::string& name) const;

  /// Names of all source streams the plan consumes.
  std::vector<std::string> input_names() const;

  /// Descriptor of the plan's output GeoStream (closure property).
  const GeoStreamDescriptor& output_descriptor() const { return out_desc_; }

  /// All physical operators, upstream first (introspection/metrics).
  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return ops_;
  }

  /// Drops buffered frame state in every operator (fault recovery;
  /// see Operator::Reset). Must not run concurrently with event
  /// delivery — the scheduler guarantees this by holding the
  /// pipeline's claim while resetting.
  void Reset();

  /// Sum of current and high-water buffered bytes across operators.
  uint64_t BufferedHighWater() const;
  /// Total points the operators emitted downstream.
  uint64_t PointsProcessed() const;

 private:
  friend class PlanBuilder;
  std::vector<std::unique_ptr<Operator>> ops_;
  std::map<std::string, std::unique_ptr<BroadcastSink>> inputs_;
  GeoStreamDescriptor out_desc_;
};

/// Builds a physical plan for an analyzed query, wired into `sink`
/// (not owned; must outlive the plan).
Result<std::unique_ptr<ExecutablePlan>> BuildPlan(
    const ExprPtr& analyzed, EventSink* sink,
    MemoryTracker* tracker = nullptr);

}  // namespace geostreams

#endif  // GEOSTREAMS_QUERY_PLANNER_H_
