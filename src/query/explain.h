// EXPLAIN: human-readable plan trees with descriptors and costs.

#ifndef GEOSTREAMS_QUERY_EXPLAIN_H_
#define GEOSTREAMS_QUERY_EXPLAIN_H_

#include <string>

#include "query/ast.h"
#include "query/planner.h"

namespace geostreams {

/// Renders an analyzed query as an indented operator tree. With
/// `with_cost`, each node is annotated with the cost model's
/// estimated input/output points and buffering.
std::string ExplainQuery(const ExprPtr& analyzed, bool with_cost = true);

/// EXPLAIN ANALYZE: one line per physical operator of a (possibly
/// running) plan with its ACTUAL counters — points in/out, frames,
/// peak buffered bytes. Pairs with ExplainQuery's estimates to
/// validate the cost model against reality.
std::string ExplainPlanMetrics(const ExecutablePlan& plan);

}  // namespace geostreams

#endif  // GEOSTREAMS_QUERY_EXPLAIN_H_
