#include "query/planner.h"

#include "common/string_util.h"
#include "geo/crs_registry.h"
#include "ops/compose_op.h"
#include "ops/macro_ops.h"
#include "ops/reproject_op.h"
#include "ops/restriction_ops.h"
#include "ops/shedding_op.h"
#include "ops/spatial_transform_op.h"
#include "ops/stretch_transform_op.h"
#include "ops/value_transform_op.h"

namespace geostreams {

EventSink* ExecutablePlan::input(const std::string& name) const {
  auto it = inputs_.find(name);
  return it == inputs_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ExecutablePlan::input_names() const {
  std::vector<std::string> names;
  names.reserve(inputs_.size());
  for (const auto& [name, sink] : inputs_) names.push_back(name);
  return names;
}

void ExecutablePlan::Reset() {
  for (auto& op : ops_) op->Reset();
}

uint64_t ExecutablePlan::BufferedHighWater() const {
  uint64_t total = 0;
  for (const auto& op : ops_) {
    total += op->metrics().buffered_bytes_high_water;
  }
  return total;
}

uint64_t ExecutablePlan::PointsProcessed() const {
  uint64_t total = 0;
  for (const auto& op : ops_) total += op->metrics().points_in;
  return total;
}

// Not in an anonymous namespace: ExecutablePlan befriends this class.
class PlanBuilder {
 public:
  PlanBuilder(EventSink* sink, MemoryTracker* tracker)
      : sink_(sink), tracker_(tracker) {}

  Result<std::unique_ptr<ExecutablePlan>> Build(const ExprPtr& root) {
    plan_ = std::make_unique<ExecutablePlan>();
    GEOSTREAMS_RETURN_IF_ERROR(BuildNode(root.get(), sink_));
    plan_->out_desc_ = root->out_desc;
    return std::move(plan_);
  }

 private:
  std::string NextName(const char* kind) {
    return StringPrintf("op%d.%s", ++counter_, kind);
  }

  /// Registers `op`, binds its output, and recurses into inputs.
  Status Attach(std::unique_ptr<Operator> op, const Expr* e,
                EventSink* out) {
    op->BindOutput(out);
    if (tracker_) op->BindMemoryTracker(tracker_);
    Operator* raw = op.get();
    plan_->ops_.push_back(std::move(op));
    if (e->child) {
      GEOSTREAMS_RETURN_IF_ERROR(BuildNode(e->child.get(), raw->input(0)));
    }
    if (e->right) {
      GEOSTREAMS_RETURN_IF_ERROR(BuildNode(e->right.get(), raw->input(1)));
    }
    return Status::OK();
  }

  Status BuildNode(const Expr* e, EventSink* out) {
    if (!e->analyzed) {
      return Status::FailedPrecondition(
          "planner requires an analyzed query");
    }
    switch (e->kind) {
      case ExprKind::kStreamRef: {
        auto& broadcast = plan_->inputs_[e->stream_name];
        if (!broadcast) broadcast = std::make_unique<BroadcastSink>();
        broadcast->AddTarget(out);
        return Status::OK();
      }
      case ExprKind::kSpatialRestrict:
        // The descriptor's reference lattice covers frameless
        // organizations (point-by-point streams never deliver a
        // FrameBegin); frames override it while open.
        return Attach(std::make_unique<SpatialRestrictionOp>(
                          NextName("region"), e->region,
                          e->child->out_desc.reference_lattice()),
                      e, out);
      case ExprKind::kTemporalRestrict:
        return Attach(std::make_unique<TemporalRestrictionOp>(
                          NextName("time"), e->times),
                      e, out);
      case ExprKind::kValueRestrict:
        return Attach(std::make_unique<ValueRestrictionOp>(
                          NextName("vrange"), e->ranges),
                      e, out);
      case ExprKind::kValueTransform:
        return Attach(std::make_unique<ValueTransformOp>(
                          NextName("vmap"), e->value_fn),
                      e, out);
      case ExprKind::kStretch: {
        StretchOptions opts = e->stretch;
        // Default the input histogram range to the child's value set
        // when that range is informative.
        const ValueSet& vs = e->child->out_desc.value_set();
        if (opts.in_lo == 0.0 && opts.in_hi == 1024.0 &&
            vs.max_value() - vs.min_value() < 1e12) {
          opts.in_lo = vs.min_value();
          opts.in_hi = vs.max_value();
        }
        return Attach(std::make_unique<StretchTransformOp>(
                          NextName("stretch"), opts),
                      e, out);
      }
      case ExprKind::kMagnify:
        return Attach(
            std::make_unique<MagnifyOp>(NextName("magnify"), e->factor), e,
            out);
      case ExprKind::kReduce:
        return Attach(
            std::make_unique<ReduceOp>(NextName("reduce"), e->factor), e,
            out);
      case ExprKind::kReproject: {
        GEOSTREAMS_ASSIGN_OR_RETURN(CrsPtr target,
                                    ResolveCrs(e->target_crs));
        return Attach(std::make_unique<ReprojectOp>(NextName("reproject"),
                                                    std::move(target),
                                                    e->kernel),
                      e, out);
      }
      case ExprKind::kCompose:
        return Attach(
            std::make_unique<ComposeOp>(
                NextName(ComposeFnName(e->gamma)), e->gamma,
                e->child->out_desc.value_set().bands()),
            e, out);
      case ExprKind::kNdviMacro:
        return Attach(MakeNdviOp(NextName("ndvi")), e, out);
      case ExprKind::kBandStack:
        return Attach(std::make_unique<ComposeOp>(
                          NextName("stack"),
                          BinaryValueFn::Stack(
                              e->child->out_desc.value_set().bands(),
                              e->right->out_desc.value_set().bands())),
                      e, out);
      case ExprKind::kShed:
        return Attach(std::make_unique<LoadSheddingOp>(
                          NextName("shed"), e->shed_mode, e->shed_keep),
                      e, out);
      case ExprKind::kAggregate:
        return Attach(std::make_unique<AggregateOp>(
                          NextName("aggregate"), e->agg_fn, e->agg_regions,
                          e->agg_window, e->agg_slide),
                      e, out);
    }
    return Status::Internal("unreachable");
  }

  EventSink* sink_;
  MemoryTracker* tracker_;
  std::unique_ptr<ExecutablePlan> plan_;
  int counter_ = 0;
};

Result<std::unique_ptr<ExecutablePlan>> BuildPlan(const ExprPtr& analyzed,
                                                  EventSink* sink,
                                                  MemoryTracker* tracker) {
  if (!analyzed) return Status::InvalidArgument("null query");
  if (!sink) return Status::InvalidArgument("plan needs a sink");
  PlanBuilder builder(sink, tracker);
  return builder.Build(analyzed);
}

}  // namespace geostreams
