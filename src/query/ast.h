// Abstract syntax of the GeoStreams query algebra (Sec. 3).
//
// The algebra is closed: every node consumes one or two GeoStreams and
// produces a GeoStream. An Expr tree is built by the parser (or
// programmatically), annotated with output descriptors by the
// analyzer, rewritten by the optimizer, and lowered to physical
// operators by the planner.

#ifndef GEOSTREAMS_QUERY_AST_H_
#define GEOSTREAMS_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/geostream.h"
#include "core/value.h"
#include "geo/region.h"
#include "ops/aggregate_op.h"
#include "ops/restriction_ops.h"
#include "ops/stretch_transform_op.h"
#include "ops/shedding_op.h"
#include "ops/time_set.h"
#include "ops/value_transform_op.h"
#include "raster/resample.h"

namespace geostreams {

enum class ExprKind : uint8_t {
  kStreamRef,         // leaf: a registered GeoStream
  kSpatialRestrict,   // G|R           (Def. 6)
  kTemporalRestrict,  // G|T           (Def. 7)
  kValueRestrict,     // G|V           (Sec. 3.1)
  kValueTransform,    // f_val . G     (Def. 8, pointwise)
  kStretch,           // frame-scoped stretch (Sec. 3.2)
  kMagnify,           // resolution increase (Sec. 3.2)
  kReduce,            // resolution decrease (Fig. 2a)
  kReproject,         // G . f_crs     (Sec. 3.2 / Fig. 2b)
  kCompose,           // G1 gamma G2   (Def. 10)
  kNdviMacro,         // fused NDVI macro operator (Sec. 4)
  kBandStack,         // band concatenation (colour Z^3 / multi-spectral)
  kAggregate,         // spatio-temporal aggregate (Sec. 6 outlook)
  kShed,              // load shedding (intro's DSMS technique, adapted)
};

const char* ExprKindName(ExprKind kind);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Parsed (not yet band-resolved) value transform. The analyzer
/// materializes the ValueFn once the child's band count is known.
struct ValueFnSpec {
  enum class Kind : uint8_t {
    kCustom,      // value_fn supplied programmatically
    kGray,        // gray(e): colour -> luma
    kRescale,     // rescale(e, a, b): v -> a*v + b
    kClamp,       // clampv(e, lo, hi)
    kAbs,         // absv(e)
    kBandSelect,  // band(e, i)
  };
  Kind kind = Kind::kCustom;
  double a = 0.0;
  double b = 0.0;
  int band = 0;
};

/// One node of a query. A tagged struct rather than a class hierarchy:
/// the optimizer pattern-matches on kind and rebuilds nodes freely.
struct Expr {
  ExprKind kind = ExprKind::kStreamRef;
  ExprPtr child;  // unary input (left input for kCompose/kNdviMacro)
  ExprPtr right;  // right input for binary nodes

  // --- payloads (validity depends on kind) ---
  std::string stream_name;              // kStreamRef
  RegionPtr region;                     // kSpatialRestrict
  TimeSet times;                        // kTemporalRestrict
  std::vector<ValueBandRange> ranges;   // kValueRestrict
  ValueFn value_fn;                     // kValueTransform
  ValueFnSpec value_spec;               // kValueTransform (parser form)
  StretchOptions stretch;               // kStretch
  int factor = 1;                       // kMagnify / kReduce
  std::string target_crs;               // kReproject
  ResampleKernel kernel = ResampleKernel::kNearest;  // kReproject
  ComposeFn gamma = ComposeFn::kAdd;    // kCompose
  AggregateFn agg_fn = AggregateFn::kAvg;          // kAggregate
  std::vector<RegionPtr> agg_regions;   // kAggregate
  int agg_window = 1;                   // kAggregate
  int agg_slide = 0;                    // kAggregate (0 = tumbling)
  SheddingMode shed_mode = SheddingMode::kDropPoints;  // kShed
  double shed_keep = 1.0;               // kShed

  /// Output stream descriptor; filled in by the analyzer.
  GeoStreamDescriptor out_desc;
  bool analyzed = false;
  /// Set on conservative restrictions the optimizer synthesized below
  /// a spatial transform (prevents the pushdown rule from re-firing).
  bool derived_restriction = false;
  /// Set on a spatial-transform node (reproject/magnify/reduce) once a
  /// conservative restriction has been planted below it: the pushdown
  /// keeps chasing the derived restriction further down, so the
  /// transform itself must remember that the rewrite already happened.
  bool pushdown_applied = false;

  /// Parseable textual form (round-trips through the parser for all
  /// region/time shapes the language can express).
  std::string ToString() const;
};

// --- construction helpers -------------------------------------------------

ExprPtr MakeStreamRef(std::string name);
ExprPtr MakeSpatialRestrict(ExprPtr child, RegionPtr region);
ExprPtr MakeTemporalRestrict(ExprPtr child, TimeSet times);
ExprPtr MakeValueRestrict(ExprPtr child, std::vector<ValueBandRange> ranges);
ExprPtr MakeValueTransform(ExprPtr child, ValueFn fn);
ExprPtr MakeStretch(ExprPtr child, StretchOptions options);
ExprPtr MakeMagnify(ExprPtr child, int factor);
ExprPtr MakeReduce(ExprPtr child, int factor);
ExprPtr MakeReproject(ExprPtr child, std::string target_crs,
                      ResampleKernel kernel = ResampleKernel::kNearest);
ExprPtr MakeCompose(ComposeFn gamma, ExprPtr left, ExprPtr right);
ExprPtr MakeNdvi(ExprPtr nir, ExprPtr vis);
/// Concatenates the bands of two streams (left bands first).
ExprPtr MakeBandStack(ExprPtr left, ExprPtr right);
ExprPtr MakeAggregate(ExprPtr child, AggregateFn fn,
                      std::vector<RegionPtr> regions, int window,
                      int slide = 0);
/// Load shedding: keeps ~`keep` of the stream at the given granularity.
ExprPtr MakeShed(ExprPtr child, SheddingMode mode, double keep);

/// Deep copy (descriptors and analysis flags are copied too).
ExprPtr CloneExpr(const ExprPtr& expr);

/// Number of nodes in the tree.
int ExprSize(const ExprPtr& expr);

}  // namespace geostreams

#endif  // GEOSTREAMS_QUERY_AST_H_
