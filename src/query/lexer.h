// Tokenizer for the textual query language.
//
// The paper's users submit queries through a front end that converts
// them into algebra expressions (Sec. 4); our textual language writes
// the algebra directly in a functional syntax, e.g. the Sec. 3.4
// example query:
//
//   region(reproject(stretch(ndvi(goes.band2, goes.band1), "linear"),
//                    "utm:10n"), bbox(500000, 4000000, 700000, 4300000))

#ifndef GEOSTREAMS_QUERY_LEXER_H_
#define GEOSTREAMS_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace geostreams {

enum class TokenKind : uint8_t {
  kIdentifier,  // letters, digits, '_', '.', ':' (not starting a digit)
  kNumber,      // [+-]?digits[.digits][e[+-]digits]
  kString,      // "..."
  kLParen,
  kRParen,
  kComma,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier/string contents
  double number = 0.0; // kNumber
  size_t offset = 0;   // position in the input, for error messages
};

/// Tokenizes `input`; fails on unterminated strings or stray bytes.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace geostreams

#endif  // GEOSTREAMS_QUERY_LEXER_H_
