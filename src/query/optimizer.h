// Rule-based query rewriting (Sec. 3.4).
//
// "Rather than performing the composition of all point data from the
// two streams, followed by a value and spatial transform on all the
// resulting points, the final spatial restriction R can be pushed
// inwards and applied first ... The query optimizer has to identify
// such rewrites in particular for spatial selections, as these result
// in the most significant space and time gains."
//
// Rules (all output-equivalent; conservative rules retain the
// original restriction on top):
//  * spatial pushdown through pointwise value transforms and value
//    restrictions (exact);
//  * spatial pushdown through compositions, into both inputs (exact);
//  * spatial pushdown through re-projection: the region's bounding box
//    is mapped back into the source CRS (the Sec. 3.4 example: R given
//    in UTM "needs to be mapped to the coordinate system C") and
//    planted below as a conservative pre-filter (exact overall);
//  * spatial pushdown through magnify/reduce with an inflated
//    bounding box (exact overall);
//  * temporal pushdown through value ops and compositions, and through
//    spatial transforms under scan-sector timestamping (exact);
//  * merging of nested spatial restrictions into an intersection;
//  * removal of trivial (all) restrictions;
//  * NDVI macro fusion: div(sub(a,b), add(a,b)) -> ndvi(a,b), or macro
//    expansion in the other direction (for the ablation bench).

#ifndef GEOSTREAMS_QUERY_OPTIMIZER_H_
#define GEOSTREAMS_QUERY_OPTIMIZER_H_

#include "common/status.h"
#include "query/analyzer.h"
#include "query/ast.h"

namespace geostreams {

struct OptimizerOptions {
  bool spatial_pushdown = true;
  bool temporal_pushdown = true;
  bool merge_restrictions = true;
  bool remove_trivial = true;
  bool fuse_ndvi_macro = true;
  /// Expands ndvi(a, b) into div(sub(a, b), add(a, b)) instead of
  /// fusing (mutually exclusive with fuse_ndvi_macro; expansion wins).
  bool expand_macros = false;
  /// Safety valve for the rewrite fixpoint loop.
  int max_passes = 16;
};

struct OptimizerStats {
  int passes = 0;
  int rewrites = 0;
};

/// Rewrites a clone of `expr` to fixpoint and returns it analyzed.
/// `expr` itself must already be analyzed against `catalog`.
Result<ExprPtr> OptimizeQuery(const StreamCatalog& catalog,
                              const ExprPtr& expr,
                              const OptimizerOptions& options = {},
                              OptimizerStats* stats = nullptr);

}  // namespace geostreams

#endif  // GEOSTREAMS_QUERY_OPTIMIZER_H_
